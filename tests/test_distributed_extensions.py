"""Tests for the distributed extensions: ridge/elastic-net solvers,
distributed tuning, distributed evolving-data updates."""

import numpy as np
import pytest

from repro.baselines.dense import LocalDenseGramWorker
from repro.core import (
    CostModel,
    exd_transform,
    extend_transform,
    extend_transform_distributed,
    tune_dictionary_size,
    tune_dictionary_size_distributed,
)
from repro.data.subspaces import union_of_subspaces
from repro.solvers import distributed_elastic_net, distributed_ridge
from repro.solvers.elastic_net import elastic_net_gd
from repro.solvers.ridge import ridge_gd


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(101)
    a = rng.standard_normal((50, 40))
    x_true = np.zeros(40)
    x_true[[3, 17]] = [2.0, -1.0]
    y = a @ x_true
    return a, y


class TestDistributedRidgeElasticNet:
    def test_ridge_matches_serial(self, problem, small_cluster):
        a, y = problem

        def factory(comm):
            return LocalDenseGramWorker(comm, a)
        dist, spmd = distributed_ridge(small_cluster, factory, y, 0.5,
                                       lr=0.3, max_iter=120, tol=0.0)
        serial = ridge_gd(lambda v: a.T @ (a @ v), a.T @ y, 40, 0.5,
                          lr=0.3, max_iter=120, tol=0.0)
        assert np.allclose(dist.x, serial.x, atol=1e-8)
        assert spmd.simulated_time > 0

    def test_elastic_net_matches_serial(self, problem, small_cluster):
        a, y = problem

        def factory(comm):
            return LocalDenseGramWorker(comm, a)
        dist, _ = distributed_elastic_net(small_cluster, factory, y,
                                          1e-3, 0.1, lr=0.3,
                                          max_iter=120, tol=0.0)
        serial = elastic_net_gd(lambda v: a.T @ (a @ v), a.T @ y, 40,
                                1e-3, 0.1, lr=0.3, max_iter=120, tol=0.0)
        assert np.allclose(dist.x, serial.x, atol=1e-8)

    def test_negative_penalties_rejected(self, problem, small_cluster):
        a, y = problem

        def factory(comm):
            return LocalDenseGramWorker(comm, a)
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            distributed_elastic_net(small_cluster, factory, y, -1.0, 0.1)


class TestDistributedTuning:
    @pytest.fixture(scope="class")
    def data(self):
        a, _ = union_of_subspaces(40, 400, n_subspaces=4, dim=3,
                                  noise=0.01, seed=21)
        return a

    def test_matches_serial_tuner(self, data, small_cluster):
        model = CostModel(small_cluster)
        serial = tune_dictionary_size(data, 0.1, model, seed=0,
                                      candidates=[40, 80, 160])
        dist, spmd = tune_dictionary_size_distributed(
            data, 0.1, model, seed=0, candidates=[40, 80, 160])
        assert dist.best_size == serial.best_size
        assert [r[0] for r in dist.table] == [r[0] for r in serial.table]
        assert spmd.simulated_time > 0

    def test_infeasible_raises(self, rng, small_cluster):
        a = rng.standard_normal((30, 60))
        model = CostModel(small_cluster)
        from repro.errors import TuningError
        with pytest.raises(TuningError):
            tune_dictionary_size_distributed(a, 0.001, model,
                                             candidates=[2, 3], seed=0)

    def test_default_candidates(self, data, small_cluster):
        model = CostModel(small_cluster)
        dist, _ = tune_dictionary_size_distributed(
            data, 0.15, model, seed=0, subset_fraction=0.4)
        assert len(dist.table) >= 2


class TestDistributedEvolve:
    @pytest.fixture(scope="class")
    def base(self):
        a, model = union_of_subspaces(24, 120, n_subspaces=2, dim=2,
                                      noise=0.0, seed=31)
        t, _ = exd_transform(a, 40, 0.05, seed=0)
        return a, model, t

    def test_matches_serial_update(self, base, small_cluster, rng):
        a, model, t = base
        new_cols = np.stack(
            [model.bases[i % 2] @ rng.standard_normal(2)
             for i in range(12)], axis=1)
        serial = extend_transform(t, new_cols, seed=1)
        dist, spmd = extend_transform_distributed(t, new_cols,
                                                  small_cluster, seed=1)
        assert dist.appended_columns == serial.appended_columns
        assert dist.transform.coefficients.allclose(
            serial.transform.coefficients)
        assert spmd.simulated_time > 0
        assert spmd.total_flops > 0

    def test_growth_path(self, base, small_cluster):
        a, _, t = base
        novel, _ = union_of_subspaces(24, 10, n_subspaces=1, dim=3,
                                      noise=0.0, seed=77)
        dist, _ = extend_transform_distributed(t, novel, small_cluster,
                                               seed=2)
        assert dist.dictionary_grew
        combined = np.concatenate([a, novel], axis=1)
        assert dist.transform.transformation_error(combined) <= 0.05 + 1e-6

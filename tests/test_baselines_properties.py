"""Hypothesis property tests for the transformation baselines."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baselines import oasis_transform, rcss_transform
from repro.data.subspaces import union_of_subspaces
from repro.linalg.norms import relative_frobenius_error
from repro.linalg.pseudo_inverse import least_squares_coefficients


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_rcss_error_nonincreasing_in_size(seed):
    """More random columns can only improve the least-squares fit
    (nested column subsets; here checked statistically via fixed seed
    sampling of nested prefixes)."""
    rng = np.random.default_rng(seed)
    a, _ = union_of_subspaces(16, 60, n_subspaces=2, dim=3, noise=0.05,
                              seed=seed)
    order = rng.permutation(60)
    errors = []
    for l in (5, 15, 30):
        d = a[:, order[:l]]
        coef = least_squares_coefficients(d, a)
        errors.append(relative_frobenius_error(a, d @ coef))
    assert errors[0] >= errors[1] - 1e-9 >= errors[2] - 2e-9


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.05, 0.3, allow_nan=False))
def test_rcss_meets_requested_error(seed, eps):
    a, _ = union_of_subspaces(16, 60, n_subspaces=2, dim=3, noise=0.02,
                              seed=seed)
    t = rcss_transform(a, eps, seed=seed)
    assert t.transformation_error(a) <= eps + 1e-9


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_oasis_selects_distinct_informative_columns(seed):
    a, _ = union_of_subspaces(16, 60, n_subspaces=3, dim=2, noise=0.02,
                              seed=seed)
    t = oasis_transform(a, 0.1, seed=seed)
    idx = t.dictionary.indices
    assert len(set(idx.tolist())) == idx.size
    assert t.transformation_error(a) <= 0.1 + 1e-9


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_oasis_residuals_shrink_with_budget(seed):
    """Greedy selection: a larger size budget never fits worse."""
    a, _ = union_of_subspaces(16, 50, n_subspaces=2, dim=3, noise=0.05,
                              seed=seed)
    t_small = oasis_transform(a, 0.5, size=4, seed=seed)
    t_big = oasis_transform(a, 0.5, size=12, seed=seed)
    assume(t_small.l < t_big.l)
    assert t_big.transformation_error(a) <= \
        t_small.transformation_error(a) + 1e-9

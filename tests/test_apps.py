"""Application-level tests: denoising, super-resolution, PCA."""

import numpy as np
import pytest

from repro.apps import (
    eigenvalue_error,
    exact_gram_eigenvalues,
    make_denoising_setup,
    make_super_resolution_setup,
    run_denoising,
    run_pca,
    run_super_resolution,
)
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def denoise_setup():
    return make_denoising_setup(image_size=16, n_atoms=160, n_bases=8,
                                snr_db=20.0, seed=0)


@pytest.fixture(scope="module")
def sr_setup():
    return make_super_resolution_setup(cams=3, cams_sub=2, patch=4,
                                       image_size=20, n_images=2,
                                       stride=4, seed=0)


class TestDenoising:
    def test_denoising_improves_psnr(self, denoise_setup):
        from repro.data import psnr
        noisy_psnr = psnr(denoise_setup.y_clean, denoise_setup.y_noisy)
        res = run_denoising(denoise_setup, method="extdict", eps=0.01,
                            max_iter=250, seed=0)
        assert res.psnr_db > noisy_psnr + 2.0

    @pytest.mark.parametrize("method", ["extdict", "dense", "sgd"])
    def test_all_methods_run_serial(self, denoise_setup, method):
        res = run_denoising(denoise_setup, method=method, max_iter=60,
                            seed=0)
        assert res.method == method
        assert res.reconstruction.shape == denoise_setup.y_clean.shape
        assert np.isfinite(res.psnr_db)

    @pytest.mark.parametrize("method", ["extdict", "dense", "sgd"])
    def test_all_methods_run_distributed(self, denoise_setup, method,
                                         small_cluster):
        res = run_denoising(denoise_setup, method=method, max_iter=40,
                            cluster=small_cluster, seed=0)
        assert res.simulated_time > 0

    def test_extdict_preprocessing_reported(self, denoise_setup):
        res = run_denoising(denoise_setup, method="extdict", max_iter=20,
                            seed=0)
        assert "dictionary_size" in res.preprocessing
        assert res.preprocessing["alpha"] > 0

    def test_unknown_method(self, denoise_setup):
        with pytest.raises(ValidationError):
            run_denoising(denoise_setup, method="magic")

    def test_serial_and_distributed_agree(self, denoise_setup,
                                          small_cluster):
        serial = run_denoising(denoise_setup, method="dense", max_iter=50,
                               tol=0.0, seed=0)
        dist = run_denoising(denoise_setup, method="dense", max_iter=50,
                             tol=0.0, cluster=small_cluster, seed=0)
        assert np.allclose(serial.x, dist.x, atol=1e-8)


class TestSuperResolution:
    def test_reconstructs_unseen_views(self, sr_setup):
        res = run_super_resolution(sr_setup, method="extdict", eps=0.01,
                                   max_iter=300, seed=0)
        # The reconstruction is scored on ALL rows, including the
        # cameras never observed.
        assert res.reconstruction_error < 0.25
        assert res.psnr_db > 15.0

    def test_row_restriction(self, sr_setup):
        assert sr_setup.a_low.shape[0] < sr_setup.a_full.shape[0]
        assert sr_setup.y_low.size == sr_setup.rows.size

    @pytest.mark.parametrize("method", ["extdict", "dense", "sgd"])
    def test_all_methods_run(self, sr_setup, method):
        res = run_super_resolution(sr_setup, method=method, max_iter=40,
                                   seed=0)
        assert res.reconstruction.shape == sr_setup.y_full.shape

    def test_distributed_runs(self, sr_setup, small_cluster):
        res = run_super_resolution(sr_setup, method="extdict",
                                   max_iter=30, cluster=small_cluster,
                                   seed=0)
        assert res.simulated_time > 0


class TestPCA:
    @pytest.fixture(scope="class")
    def matrix(self):
        from repro.data import load_dataset
        return load_dataset("salina", n=192, seed=7).matrix

    def test_exact_eigenvalues(self, matrix):
        vals = exact_gram_eigenvalues(matrix, 5)
        assert vals.shape == (5,)
        assert np.all(np.diff(vals) <= 0)

    def test_exact_k_validation(self, matrix):
        with pytest.raises(ValidationError):
            exact_gram_eigenvalues(matrix, 10_000)

    def test_eigenvalue_error_zero_for_exact(self, matrix):
        vals = exact_gram_eigenvalues(matrix, 4)
        assert eigenvalue_error(vals, vals) == 0.0

    def test_eigenvalue_error_shape_mismatch(self):
        with pytest.raises(ValidationError):
            eigenvalue_error(np.ones(3), np.ones(4))

    def test_dense_pca_matches_exact(self, matrix):
        res = run_pca(matrix, 4, method="dense", seed=0, tol=1e-10,
                      max_iter=500)
        exact = exact_gram_eigenvalues(matrix, 4)
        assert eigenvalue_error(res.eigenvalues, exact) < 1e-3

    def test_extdict_pca_small_error(self, matrix):
        res = run_pca(matrix, 4, method="extdict", eps=0.05, seed=0,
                      tol=1e-10, max_iter=500)
        exact = exact_gram_eigenvalues(matrix, 4)
        assert eigenvalue_error(res.eigenvalues, exact) < 0.1

    def test_distributed_pca(self, matrix, small_cluster):
        res = run_pca(matrix, 3, method="extdict", eps=0.05, seed=0,
                      cluster=small_cluster, tol=1e-9, max_iter=300)
        exact = exact_gram_eigenvalues(matrix, 3)
        assert eigenvalue_error(res.eigenvalues, exact) < 0.1
        assert res.simulated_time > 0

    def test_error_grows_with_eps(self, matrix):
        exact = exact_gram_eigenvalues(matrix, 3)
        errs = []
        for eps in (0.01, 0.3):
            res = run_pca(matrix, 3, method="extdict", eps=eps, seed=0,
                          tol=1e-10, max_iter=400)
            errs.append(eigenvalue_error(res.eigenvalues, exact))
        assert errs[0] <= errs[1] + 1e-6

"""Algorithm 2 tests: correctness, case split, communication bounds."""

import numpy as np
import pytest

from repro.core import (
    TransformedGramOperator,
    exd_transform,
    run_distributed_gram,
    select_case,
)
from repro.errors import ValidationError
from repro.mpi import run_spmd
from repro.platform import platform_by_name


@pytest.fixture(scope="module")
def transform_small_l(noisy_union_data):
    """Case 1 transform: L=40 < M is false here (M=30) — construct both."""
    a, _ = noisy_union_data          # M=30, N=200
    t, _ = exd_transform(a, 20, 0.1, seed=0)   # L=20 <= M=30 -> Case 1
    return a, t


@pytest.fixture(scope="module")
def transform_large_l(noisy_union_data):
    a, _ = noisy_union_data
    t, _ = exd_transform(a, 80, 0.1, seed=0)   # L=80 > M=30 -> Case 2
    return a, t


class TestSelectCase:
    def test_boundaries(self):
        assert select_case(10, 10) == 1
        assert select_case(10, 9) == 1
        assert select_case(10, 11) == 2

    def test_invalid(self):
        with pytest.raises(ValidationError):
            select_case(0, 5)


class TestSerialOperator:
    def test_matches_dense_gram(self, transform_small_l, rng):
        a, t = transform_small_l
        op = TransformedGramOperator(t)
        x = rng.standard_normal(t.n)
        recon = t.reconstruct()
        assert np.allclose(op(x), recon.T @ (recon @ x), atol=1e-7)
        assert op.flops > 0

    def test_precompute_gram_toggle(self, transform_large_l, rng):
        a, t = transform_large_l
        x = rng.standard_normal(t.n)
        with_gram = TransformedGramOperator(t, precompute_gram=True)
        without = TransformedGramOperator(t, precompute_gram=False)
        assert np.allclose(with_gram(x), without(x), atol=1e-7)

    def test_approximates_true_gram(self, transform_small_l, rng):
        a, t = transform_small_l
        op = TransformedGramOperator(t)
        x = rng.standard_normal(t.n)
        exact = a.T @ (a @ x)
        rel = np.linalg.norm(op(x) - exact) / np.linalg.norm(exact)
        assert rel < 0.5  # ε=0.1 transform: Gram error bounded by ~2ε+ε²


class TestDistributedGram:
    @pytest.mark.parametrize("fixture_name",
                             ["transform_small_l", "transform_large_l"])
    def test_matches_serial(self, fixture_name, request, rng,
                            small_cluster):
        a, t = request.getfixturevalue(fixture_name)
        x = rng.standard_normal(t.n)
        serial = TransformedGramOperator(t)(x)
        dist, _ = run_distributed_gram(t, x, small_cluster)
        assert np.allclose(dist, serial, atol=1e-7)

    def test_multi_iteration(self, transform_small_l, rng, small_cluster):
        a, t = transform_small_l
        x = rng.standard_normal(t.n)
        op = TransformedGramOperator(t)
        serial = op(op(op(x)))
        dist, _ = run_distributed_gram(t, x, small_cluster, iterations=3)
        assert np.allclose(dist, serial, rtol=1e-6, atol=1e-5)

    def test_normalized_iteration(self, transform_small_l, rng,
                                  small_cluster):
        a, t = transform_small_l
        x = rng.standard_normal(t.n)
        dist, _ = run_distributed_gram(t, x, small_cluster, iterations=5,
                                       normalize=True)
        assert np.linalg.norm(dist) == pytest.approx(1.0, rel=1e-9)

    def test_case1_communication_bound(self, transform_small_l, rng,
                                       small_cluster):
        """Case 1 (L<=M): one L-word reduce + one L-word bcast per
        iteration — the paper's min(M, L) bound (×2 for the round trip)."""
        a, t = transform_small_l
        x = rng.standard_normal(t.n)
        iters = 4
        _, res = run_distributed_gram(t, x, small_cluster, iterations=iters)
        words = res.traffic.total_payload_words("reduce", "bcast")
        assert words == iters * 2 * t.l
        assert t.l == min(t.m, t.l)

    def test_case2_communication_bound(self, transform_large_l, rng,
                                       small_cluster):
        """Case 2 (L>M): M-word reduce + M-word bcast per iteration."""
        a, t = transform_large_l
        x = rng.standard_normal(t.n)
        iters = 3
        _, res = run_distributed_gram(t, x, small_cluster, iterations=iters)
        words = res.traffic.total_payload_words("reduce", "bcast")
        assert words == iters * 2 * t.m
        assert t.m == min(t.m, t.l)

    def test_flops_match_model(self, transform_small_l, rng, small_cluster):
        """Per-iteration multiplies: 2·nnz(C) sparse + L² root Gram."""
        a, t = transform_small_l
        x = rng.standard_normal(t.n)
        _, res = run_distributed_gram(t, x, small_cluster, iterations=1)
        # Total mults+adds across ranks; the dominant terms are exact.
        expected_min = 2 * t.nnz + 2 * t.l * t.l
        assert res.total_flops >= expected_min
        assert res.total_flops <= 3 * expected_min + 4 * t.n

    def test_shape_validation(self, transform_small_l, small_cluster):
        a, t = transform_small_l
        with pytest.raises(ValidationError):
            run_distributed_gram(t, np.ones(3), small_cluster)

    def test_works_on_more_ranks_than_columns_block(self, rng):
        """Degenerate partitioning: more ranks than some blocks' columns."""
        from repro.data.subspaces import union_of_subspaces
        a, _ = union_of_subspaces(12, 10, n_subspaces=2, dim=2, seed=0)
        t, _ = exd_transform(a, 6, 0.2, seed=0)
        x = rng.standard_normal(10)
        cluster = platform_by_name("2x8")  # 16 ranks > 10 columns
        dist, _ = run_distributed_gram(t, x, cluster)
        serial = TransformedGramOperator(t)(x)
        assert np.allclose(dist, serial, atol=1e-7)

"""Evolving-data update tests (Sec. V-E / Fig. 3)."""

import numpy as np
import pytest

from repro.core import exd_transform, extend_transform
from repro.data.subspaces import union_of_subspaces
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def base():
    a, model = union_of_subspaces(24, 120, n_subspaces=2, dim=2,
                                  noise=0.0, seed=31)
    t, _ = exd_transform(a, 40, 0.05, seed=0)
    return a, model, t


class TestRepresentableAppend:
    def test_same_subspace_columns_append(self, base, rng):
        a, model, t = base
        # New columns from the SAME subspaces: representable by D.
        new_cols = np.stack(
            [model.bases[i % 2] @ rng.standard_normal(2) for i in range(15)],
            axis=1)
        res = extend_transform(t, new_cols, seed=1)
        assert not res.dictionary_grew
        assert res.appended_columns == 15
        assert res.extended_columns == 0
        combined = np.concatenate([a, new_cols], axis=1)
        assert res.transform.transformation_error(combined) <= 0.05 + 1e-9
        assert res.transform.l == t.l

    def test_column_order_preserved(self, base, rng):
        a, model, t = base
        new_cols = np.stack(
            [model.bases[0] @ rng.standard_normal(2) for _ in range(5)],
            axis=1)
        res = extend_transform(t, new_cols, seed=1)
        recon = res.transform.reconstruct()
        assert np.allclose(recon[:, a.shape[1]:], new_cols,
                           atol=0.06 * np.abs(new_cols).max() + 0.05)


class TestDictionaryGrowth:
    def test_novel_structure_grows_dictionary(self, base, rng):
        a, model, t = base
        # Drastically different content: a new random subspace.
        novel, _ = union_of_subspaces(24, 20, n_subspaces=1, dim=3,
                                      noise=0.0, seed=77)
        res = extend_transform(t, novel, seed=2)
        assert res.dictionary_grew
        assert res.extended_columns > 0
        assert res.transform.l > t.l
        combined = np.concatenate([a, novel], axis=1)
        assert res.transform.transformation_error(combined) <= 0.05 + 1e-6

    def test_zero_padding_block_structure(self, base):
        a, model, t = base
        novel, _ = union_of_subspaces(24, 10, n_subspaces=1, dim=2,
                                      noise=0.0, seed=78)
        res = extend_transform(t, novel, seed=2)
        c = res.transform.coefficients.to_dense()
        n_old = a.shape[1]
        # Old columns never reference the new atoms (Fig. 3 zero blocks).
        assert np.all(c[t.l:, :n_old] == 0.0)

    def test_mixed_batch(self, base, rng):
        a, model, t = base
        representable = np.stack(
            [model.bases[0] @ rng.standard_normal(2) for _ in range(6)],
            axis=1)
        novel, _ = union_of_subspaces(24, 6, n_subspaces=1, dim=2,
                                      noise=0.0, seed=79)
        batch = np.concatenate([representable, novel], axis=1)
        res = extend_transform(t, batch, seed=3)
        assert res.appended_columns + res.extended_columns == 12
        combined = np.concatenate([a, batch], axis=1)
        assert res.transform.transformation_error(combined) <= 0.05 + 1e-6

    def test_new_dictionary_size_override(self, base):
        a, _, t = base
        novel, _ = union_of_subspaces(24, 15, n_subspaces=1, dim=3,
                                      noise=0.0, seed=80)
        res = extend_transform(t, novel, seed=2, new_dictionary_size=10)
        if res.dictionary_grew:
            assert res.transform.l <= t.l + 10


class TestValidation:
    def test_row_mismatch(self, base):
        _, _, t = base
        with pytest.raises(ValidationError):
            extend_transform(t, np.ones((5, 3)))

    def test_repeated_updates_compose(self, base, rng):
        a, model, t = base
        current = t
        total = a
        for i in range(3):
            new_cols = np.stack(
                [model.bases[i % 2] @ rng.standard_normal(2)
                 for _ in range(4)], axis=1)
            res = extend_transform(current, new_cols, seed=i)
            current = res.transform
            total = np.concatenate([total, new_cols], axis=1)
        assert current.n == total.shape[1]
        assert current.transformation_error(total) <= 0.05 + 1e-6

"""Evolving-data update tests (Sec. V-E / Fig. 3)."""

import numpy as np
import pytest

from repro.core import exd_transform, extend_transform
from repro.data.subspaces import union_of_subspaces
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def base():
    a, model = union_of_subspaces(24, 120, n_subspaces=2, dim=2,
                                  noise=0.0, seed=31)
    t, _ = exd_transform(a, 40, 0.05, seed=0)
    return a, model, t


class TestRepresentableAppend:
    def test_same_subspace_columns_append(self, base, rng):
        a, model, t = base
        # New columns from the SAME subspaces: representable by D.
        new_cols = np.stack(
            [model.bases[i % 2] @ rng.standard_normal(2) for i in range(15)],
            axis=1)
        res = extend_transform(t, new_cols, seed=1)
        assert not res.dictionary_grew
        assert res.appended_columns == 15
        assert res.extended_columns == 0
        combined = np.concatenate([a, new_cols], axis=1)
        assert res.transform.transformation_error(combined) <= 0.05 + 1e-9
        assert res.transform.l == t.l

    def test_column_order_preserved(self, base, rng):
        a, model, t = base
        new_cols = np.stack(
            [model.bases[0] @ rng.standard_normal(2) for _ in range(5)],
            axis=1)
        res = extend_transform(t, new_cols, seed=1)
        recon = res.transform.reconstruct()
        assert np.allclose(recon[:, a.shape[1]:], new_cols,
                           atol=0.06 * np.abs(new_cols).max() + 0.05)


class TestDictionaryGrowth:
    def test_novel_structure_grows_dictionary(self, base, rng):
        a, model, t = base
        # Drastically different content: a new random subspace.
        novel, _ = union_of_subspaces(24, 20, n_subspaces=1, dim=3,
                                      noise=0.0, seed=77)
        res = extend_transform(t, novel, seed=2)
        assert res.dictionary_grew
        assert res.extended_columns > 0
        assert res.transform.l > t.l
        combined = np.concatenate([a, novel], axis=1)
        assert res.transform.transformation_error(combined) <= 0.05 + 1e-6

    def test_zero_padding_block_structure(self, base):
        a, model, t = base
        novel, _ = union_of_subspaces(24, 10, n_subspaces=1, dim=2,
                                      noise=0.0, seed=78)
        res = extend_transform(t, novel, seed=2)
        c = res.transform.coefficients.to_dense()
        n_old = a.shape[1]
        # Old columns never reference the new atoms (Fig. 3 zero blocks).
        assert np.all(c[t.l:, :n_old] == 0.0)

    def test_mixed_batch(self, base, rng):
        a, model, t = base
        representable = np.stack(
            [model.bases[0] @ rng.standard_normal(2) for _ in range(6)],
            axis=1)
        novel, _ = union_of_subspaces(24, 6, n_subspaces=1, dim=2,
                                      noise=0.0, seed=79)
        batch = np.concatenate([representable, novel], axis=1)
        res = extend_transform(t, batch, seed=3)
        assert res.appended_columns + res.extended_columns == 12
        combined = np.concatenate([a, batch], axis=1)
        assert res.transform.transformation_error(combined) <= 0.05 + 1e-6

    def test_new_dictionary_size_override(self, base):
        a, _, t = base
        novel, _ = union_of_subspaces(24, 15, n_subspaces=1, dim=3,
                                      noise=0.0, seed=80)
        res = extend_transform(t, novel, seed=2, new_dictionary_size=10)
        if res.dictionary_grew:
            assert res.transform.l <= t.l + 10


class TestConvergedMask:
    def test_mask_matches_eps_criterion(self, base, rng):
        """Regression: per-column converged flags now come from the
        Batch-OMP stats instead of a dense reconstruction pass; they
        must agree with the actual per-column relative errors."""
        from repro.linalg import batch_omp_matrix
        a, model, t = base
        novel, _ = union_of_subspaces(24, 8, n_subspaces=1, dim=3,
                                      noise=0.0, seed=90)
        batch = np.concatenate(
            [np.stack([model.bases[0] @ rng.standard_normal(2)
                       for _ in range(6)], axis=1), novel], axis=1)
        c, stats = batch_omp_matrix(t.dictionary.atoms, batch, 0.05)
        assert stats.converged_mask is not None
        assert stats.converged_mask.shape == (batch.shape[1],)
        errs = np.linalg.norm(batch - t.dictionary.atoms @ c.to_dense(),
                              axis=0)
        norms = np.linalg.norm(batch, axis=0)
        ok = errs <= 0.05 * norms + 1e-9
        np.testing.assert_array_equal(stats.converged_mask, ok)
        assert stats.converged_columns == int(ok.sum())

    def test_extend_with_workers_matches_serial(self, base, rng):
        a, model, t = base
        batch = np.concatenate(
            [np.stack([model.bases[1] @ rng.standard_normal(2)
                       for _ in range(5)], axis=1),
             union_of_subspaces(24, 5, n_subspaces=1, dim=2,
                                noise=0.0, seed=91)[0]], axis=1)
        serial = extend_transform(t, batch, seed=7)
        par = extend_transform(t, batch, seed=7, workers=2)
        assert serial.appended_columns == par.appended_columns
        assert serial.extended_columns == par.extended_columns
        assert serial.dictionary_grew == par.dictionary_grew
        np.testing.assert_array_equal(serial.transform.coefficients.data,
                                      par.transform.coefficients.data)


def _assert_same_extension(res_a, res_b):
    """Bitwise equality of two ExtensionResults."""
    assert res_a.appended_columns == res_b.appended_columns
    assert res_a.extended_columns == res_b.extended_columns
    assert res_a.dictionary_grew == res_b.dictionary_grew
    ta, tb = res_a.transform, res_b.transform
    np.testing.assert_array_equal(ta.dictionary.atoms, tb.dictionary.atoms)
    np.testing.assert_array_equal(ta.dictionary.indices,
                                  tb.dictionary.indices)
    np.testing.assert_array_equal(ta.coefficients.data, tb.coefficients.data)
    np.testing.assert_array_equal(ta.coefficients.indices,
                                  tb.coefficients.indices)
    np.testing.assert_array_equal(ta.coefficients.indptr,
                                  tb.coefficients.indptr)


class TestBlockedExtension:
    """Satellite: new columns fed in blocks == single-shot extension.

    The streamed (store-backed) path encodes the new columns in
    fixed-width blocks; the dense path sees them all at once.  Both use
    the same absolutely-aligned 256-column encode panels, so the results
    must match bit for bit — serial and parallel alike.
    """

    @pytest.fixture(scope="class")
    def representable(self, base):
        _, model, _ = base
        r = np.random.default_rng(123)
        return np.stack(
            [model.bases[i % 2] @ r.standard_normal(2) for i in range(520)],
            axis=1)

    @pytest.fixture(scope="class")
    def novel(self):
        cols, _ = union_of_subspaces(24, 300, n_subspaces=1, dim=3,
                                     noise=0.0, seed=88)
        return cols

    def _store(self, tmp_path, cols, chunk_width):
        from repro.store import ColumnStore
        return ColumnStore.from_matrix(tmp_path / "new.store", cols,
                                       chunk_width=chunk_width)

    def test_store_blocks_equal_single_shot_append(self, base, representable,
                                                   tmp_path):
        _, _, t = base
        single = extend_transform(t, representable, seed=5)
        assert not single.dictionary_grew
        store = self._store(tmp_path, representable, 128)
        blocked = extend_transform(t, store, seed=5, block_width=256)
        _assert_same_extension(single, blocked)

    def test_store_blocks_equal_single_shot_growth(self, base, novel,
                                                   tmp_path):
        _, _, t = base
        single = extend_transform(t, novel, seed=5)
        assert single.dictionary_grew
        store = self._store(tmp_path, novel, 64)
        blocked = extend_transform(t, store, seed=5, block_width=256)
        _assert_same_extension(single, blocked)

    @pytest.mark.parametrize("cols_fixture", ["representable", "novel"])
    def test_workers_match_serial_both_paths(self, base, cols_fixture,
                                             tmp_path, request):
        _, _, t = base
        cols = request.getfixturevalue(cols_fixture)
        serial = extend_transform(t, cols, seed=5)
        par = extend_transform(t, cols, seed=5, workers=2)
        _assert_same_extension(serial, par)
        store = self._store(tmp_path, cols, 128)
        par_store = extend_transform(t, store, seed=5, workers=2,
                                     block_width=256)
        _assert_same_extension(serial, par_store)

    def test_sequential_batches_equal_single_shot_append(self, base,
                                                         representable):
        """Append-only updates compose: feeding the new columns in
        256-aligned batches over repeated calls produces the same final
        transform as one call with everything (growth never triggers, so
        the dictionary each batch encodes against is identical)."""
        _, _, t = base
        single = extend_transform(t, representable, seed=5)
        current = t
        counts = 0
        for lo in range(0, representable.shape[1], 256):
            res = extend_transform(current, representable[:, lo:lo + 256],
                                   seed=5)
            assert not res.dictionary_grew
            counts += res.appended_columns
            current = res.transform
        assert counts == single.appended_columns
        np.testing.assert_array_equal(current.dictionary.atoms,
                                      single.transform.dictionary.atoms)
        np.testing.assert_array_equal(
            current.coefficients.data, single.transform.coefficients.data)
        np.testing.assert_array_equal(
            current.coefficients.indptr,
            single.transform.coefficients.indptr)


class TestValidation:
    def test_row_mismatch(self, base):
        _, _, t = base
        with pytest.raises(ValidationError):
            extend_transform(t, np.ones((5, 3)))

    def test_repeated_updates_compose(self, base, rng):
        a, model, t = base
        current = t
        total = a
        for i in range(3):
            new_cols = np.stack(
                [model.bases[i % 2] @ rng.standard_normal(2)
                 for _ in range(4)], axis=1)
            res = extend_transform(current, new_cols, seed=i)
            current = res.transform
            total = np.concatenate([total, new_cols], axis=1)
        assert current.n == total.shape[1]
        assert current.transformation_error(total) <= 0.05 + 1e-6

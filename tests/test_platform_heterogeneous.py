"""Heterogeneous-cluster tests: per-node machines, bottleneck links."""

import numpy as np
import pytest

from repro.errors import PlatformError
from repro.mpi import run_spmd
from repro.platform import ClusterConfig, MachineSpec, calibrate_from_spec, p2p_time


def _machine(name, flop_rate, bw_scale=1.0):
    return MachineSpec(
        name=name, flop_rate=flop_rate,
        intra_bw=1e8 * bw_scale, inter_bw=5e7 * bw_scale,
        intra_latency=1e-6, inter_latency=2e-6,
        energy_per_flop=1e-9, energy_per_word_intra=1e-8,
        energy_per_word_inter=4e-8)


@pytest.fixture()
def fast_slow_cluster():
    fast = _machine("fast", 1e10)
    slow = _machine("slow", 1e9, bw_scale=0.5)
    return ClusterConfig(machine=fast, nodes=2, cores_per_node=2,
                         node_machines=(fast, slow))


class TestConfig:
    def test_name_marks_heterogeneous(self, fast_slow_cluster):
        assert fast_slow_cluster.heterogeneous
        assert fast_slow_cluster.name == "2x2-het"

    def test_machine_of(self, fast_slow_cluster):
        assert fast_slow_cluster.machine_of(0).name == "fast"
        assert fast_slow_cluster.machine_of(1).name == "fast"
        assert fast_slow_cluster.machine_of(2).name == "slow"
        assert fast_slow_cluster.machine_of(3).name == "slow"

    def test_slowest_machine(self, fast_slow_cluster):
        assert fast_slow_cluster.slowest_machine().name == "slow"

    def test_wrong_count_rejected(self):
        m = _machine("m", 1e9)
        with pytest.raises(PlatformError):
            ClusterConfig(machine=m, nodes=3, cores_per_node=1,
                          node_machines=(m,))

    def test_non_machine_rejected(self):
        m = _machine("m", 1e9)
        with pytest.raises(PlatformError):
            ClusterConfig(machine=m, nodes=1, cores_per_node=1,
                          node_machines=("cpu",))

    def test_homogeneous_default(self):
        m = _machine("m", 1e9)
        c = ClusterConfig(machine=m, nodes=2, cores_per_node=1)
        assert not c.heterogeneous
        assert c.machine_of(1) is m
        assert c.slowest_machine() is m


class TestCosts:
    def test_link_bottlenecked_by_slow_endpoint(self, fast_slow_cluster):
        # fast<->fast intra link vs fast<->slow inter link.
        t_fast = p2p_time(fast_slow_cluster, 0, 1, 100)
        t_mixed = p2p_time(fast_slow_cluster, 0, 2, 100)
        # slow node: inter_bw 2.5e7 words/s -> 4e-8 s/word.
        assert t_mixed == pytest.approx(2e-6 + 100 * 4e-8)
        assert t_fast == pytest.approx(1e-6 + 100 * 1e-8)

    def test_calibration_uses_slowest(self, fast_slow_cluster):
        rbf = calibrate_from_spec(fast_slow_cluster)
        slow = fast_slow_cluster.slowest_machine()
        expected = slow.word_time(inter_node=True) * slow.flop_rate
        assert rbf.time == pytest.approx(expected)


class TestExecution:
    def test_slow_node_dominates_makespan(self, fast_slow_cluster):
        def prog(comm):
            comm.charge_flops(1_000_000)
            return comm.clock.time
        res = run_spmd(0, prog, cluster=fast_slow_cluster)
        # Fast ranks: 0.1 ms; slow ranks: 1 ms.
        assert res.returns[0] == pytest.approx(1e6 / 1e10)
        assert res.returns[2] == pytest.approx(1e6 / 1e9)
        assert res.simulated_time == pytest.approx(1e6 / 1e9)

    def test_collective_waits_for_slow_node(self, fast_slow_cluster):
        def prog(comm):
            comm.charge_flops(1_000_000)
            comm.allreduce(1.0)
            return comm.clock.time
        res = run_spmd(0, prog, cluster=fast_slow_cluster)
        # After the allreduce every clock is past the slow node's compute.
        assert min(res.returns) >= 1e6 / 1e9

    def test_gram_update_runs_heterogeneous(self, fast_slow_cluster,
                                            union_data, rng):
        from repro.core import TransformedGramOperator, exd_transform, run_distributed_gram
        a, _ = union_data
        t, _ = exd_transform(a, 20, 0.1, seed=0)
        x = rng.standard_normal(t.n)
        y, res = run_distributed_gram(t, x, fast_slow_cluster)
        assert np.allclose(y, TransformedGramOperator(t)(x), atol=1e-7)
        assert res.simulated_time > 0

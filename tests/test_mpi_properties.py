"""Hypothesis property tests: emulator collectives vs numpy references."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import run_spmd

SIZES = st.integers(2, 6)
VALUES = st.lists(st.integers(-100, 100), min_size=2, max_size=6)


@settings(max_examples=20, deadline=None)
@given(SIZES, st.integers(0, 2**31 - 1))
def test_allreduce_sum_matches_numpy(size, seed):
    data = np.random.default_rng(seed).integers(-50, 50, size=(size, 4))

    def prog(comm):
        return comm.allreduce(data[comm.Get_rank()].astype(float))
    res = run_spmd(size, prog)
    expected = data.sum(axis=0).astype(float)
    for r in res.returns:
        assert np.array_equal(r, expected)


@settings(max_examples=20, deadline=None)
@given(SIZES, st.sampled_from(["max", "min"]), st.integers(0, 2**31 - 1))
def test_allreduce_extrema(size, op, seed):
    data = np.random.default_rng(seed).integers(-50, 50, size=size)

    def prog(comm):
        return comm.allreduce(int(data[comm.Get_rank()]), op=op)
    res = run_spmd(size, prog)
    expected = data.max() if op == "max" else data.min()
    assert all(r == expected for r in res.returns)


@settings(max_examples=20, deadline=None)
@given(VALUES)
def test_gather_preserves_order(values):
    size = len(values)

    def prog(comm):
        return comm.gather(values[comm.Get_rank()], root=0)
    res = run_spmd(size, prog)
    assert res.returns[0] == values


@settings(max_examples=20, deadline=None)
@given(VALUES)
def test_scatter_gather_roundtrip(values):
    size = len(values)

    def prog(comm):
        mine = comm.scatter(values if comm.Get_rank() == 0 else None,
                            root=0)
        return comm.gather(mine, root=0)
    res = run_spmd(size, prog)
    assert res.returns[0] == values


@settings(max_examples=20, deadline=None)
@given(SIZES, st.integers(0, 2**31 - 1))
def test_alltoall_is_transpose(size, seed):
    data = np.random.default_rng(seed).integers(0, 100, size=(size, size))

    def prog(comm):
        return comm.alltoall(data[comm.Get_rank()].tolist())
    res = run_spmd(size, prog)
    received = np.array(res.returns)
    assert np.array_equal(received, data.T)


@settings(max_examples=15, deadline=None)
@given(SIZES, st.integers(0, 5))
def test_bcast_from_any_root(size, root_raw):
    root = root_raw % size

    def prog(comm):
        value = ("secret", root) if comm.Get_rank() == root else None
        return comm.bcast(value, root=root)
    res = run_spmd(size, prog)
    assert all(r == ("secret", root) for r in res.returns)

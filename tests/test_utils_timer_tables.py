"""Unit tests for repro.utils.timer and repro.utils.tables."""

import time

import pytest

from repro.utils.tables import format_table
from repro.utils.timer import Timer


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first >= 0.01

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_running_flag(self):
        t = Timer()
        assert not t.running
        with t:
            assert t.running
        assert not t.running


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(["name", "value"],
                           [["a", 1], ["bbbb", 2.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2] and "value" in lines[2]
        assert "bbbb" in out and "2.5" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [[1]])

    def test_float_rendering(self):
        out = format_table(["v"], [[1e-9], [123456.0], [0.0]])
        assert "1.000e-09" in out
        assert "1.235e+05" in out
        assert "\n0" in out

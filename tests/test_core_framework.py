"""End-to-end tests of the ExtDict framework API."""

import numpy as np
import pytest

from repro.core import ExtDict
from repro.errors import ReproError, ValidationError


@pytest.fixture(scope="module")
def data():
    from repro.data.subspaces import union_of_subspaces
    a, _ = union_of_subspaces(32, 300, n_subspaces=3, dim=3, noise=0.01,
                              seed=41)
    return a


class TestFit:
    def test_fixed_size_fit(self, data):
        ext = ExtDict(eps=0.1, size=60, seed=0).fit(data)
        assert ext.transform_.l == 60
        assert ext.transform_.transformation_error(data) <= 0.1 + 1e-9
        assert ext.report_.tuned_size == 60
        assert ext.report_.tuning_seconds == 0.0

    def test_auto_tuned_fit(self, data, small_cluster):
        ext = ExtDict(eps=0.1, cluster=small_cluster, seed=0,
                      subset_fraction=0.4).fit(data)
        assert ext.transform_ is not None
        report = ext.preprocessing_report()
        assert report.tuning_seconds > 0
        assert report.transform_seconds > 0
        assert len(report.tuning_table) >= 1

    def test_tuning_without_cluster_rejected(self, data):
        with pytest.raises(ValidationError):
            ExtDict(eps=0.1).fit(data)

    def test_distributed_preprocess_records_sim_time(self, data,
                                                     small_cluster):
        ext = ExtDict(eps=0.1, size=50, cluster=small_cluster, seed=0,
                      distributed_preprocess=True).fit(data)
        assert ext.report_.simulated_transform_seconds > 0

    def test_use_before_fit_raises(self):
        ext = ExtDict(eps=0.1, size=10)
        with pytest.raises(ReproError):
            ext.gram_operator()
        with pytest.raises(ReproError):
            ext.preprocessing_report()

    def test_invalid_objective(self):
        with pytest.raises(ValidationError):
            ExtDict(objective="speed")


class TestExecution:
    def test_gram_operator(self, data, rng):
        ext = ExtDict(eps=0.05, size=80, seed=0).fit(data)
        op = ext.gram_operator()
        x = rng.standard_normal(data.shape[1])
        exact = data.T @ (data @ x)
        rel = np.linalg.norm(op(x) - exact) / np.linalg.norm(exact)
        assert rel < 0.3

    def test_gram_distributed_requires_cluster(self, data, rng):
        ext = ExtDict(eps=0.1, size=50, seed=0).fit(data)
        with pytest.raises(ValidationError):
            ext.gram_apply_distributed(rng.standard_normal(data.shape[1]))

    def test_gram_distributed(self, data, rng, small_cluster):
        ext = ExtDict(eps=0.1, size=50, cluster=small_cluster,
                      seed=0).fit(data)
        x = rng.standard_normal(data.shape[1])
        y, spmd = ext.gram_apply_distributed(x)
        assert np.allclose(y, ext.gram_operator()(x), atol=1e-7)
        assert spmd.simulated_time > 0

    def test_power_method(self, data):
        ext = ExtDict(eps=0.02, size=100, seed=0).fit(data)
        values, vectors, _ = ext.power_method(3, seed=0)
        exact = np.linalg.svd(data, compute_uv=False)[:3] ** 2
        assert np.allclose(values, exact, rtol=0.15)

    def test_lasso(self, data, rng):
        ext = ExtDict(eps=0.02, size=100, seed=0).fit(data)
        x_true = np.zeros(data.shape[1])
        x_true[[3, 50, 200]] = [1.0, -2.0, 0.5]
        y = data @ x_true
        result = ext.lasso(y, lam=1e-4, lr=0.3, max_iter=400)
        recon = data @ result.x
        assert np.linalg.norm(recon - y) / np.linalg.norm(y) < 0.15

    def test_ridge(self, data, rng):
        ext = ExtDict(eps=0.02, size=100, seed=0).fit(data)
        x_true = np.zeros(data.shape[1])
        x_true[[10, 100]] = [1.0, -1.0]
        y = data @ x_true
        res = ext.ridge(y, lam=0.01, lr=0.3, max_iter=800)
        assert np.linalg.norm(data @ res.x - y) / np.linalg.norm(y) < 0.1

    def test_elastic_net(self, data):
        ext = ExtDict(eps=0.02, size=100, seed=0).fit(data)
        x_true = np.zeros(data.shape[1])
        x_true[[5, 42]] = [2.0, 1.0]
        y = data @ x_true
        res = ext.elastic_net(y, lam1=1e-4, lam2=0.01, lr=0.3,
                              max_iter=800)
        assert np.linalg.norm(data @ res.x - y) / np.linalg.norm(y) < 0.15

    def test_sparse_pca(self, data):
        ext = ExtDict(eps=0.02, size=100, seed=0).fit(data)
        values, comps = ext.sparse_pca(2, sparsity=20, seed=0)
        assert comps.shape == (data.shape[1], 2)
        assert np.count_nonzero(comps[:, 0]) <= 20
        exact_top = float(np.linalg.eigvalsh(data.T @ data)[-1])
        assert values[0] > 0.2 * exact_top

    def test_update_evolving(self, data, rng):
        ext = ExtDict(eps=0.1, size=60, seed=0).fit(data)
        n_before = ext.transform_.n
        new_cols = data[:, :10] + 0.001 * rng.standard_normal((32, 10))
        ext.update(new_cols)
        assert ext.transform_.n == n_before + 10

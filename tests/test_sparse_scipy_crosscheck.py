"""Cross-validation of our sparse kernels against scipy.sparse."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import CSCMatrix, CSRMatrix


def random_sparse(seed, max_dim=12, density=0.4):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, max_dim))
    n = int(rng.integers(1, max_dim))
    dense = rng.standard_normal((m, n))
    dense[rng.random((m, n)) > density] = 0.0
    return dense


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_csc_matvec_matches_scipy(seed):
    dense = random_sparse(seed)
    ours = CSCMatrix.from_dense(dense)
    theirs = sp.csc_matrix(dense)
    x = np.random.default_rng(seed + 1).standard_normal(dense.shape[1])
    assert np.allclose(ours.matvec(x), theirs @ x, atol=1e-10)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_csc_rmatvec_matches_scipy(seed):
    dense = random_sparse(seed)
    ours = CSCMatrix.from_dense(dense)
    theirs = sp.csc_matrix(dense)
    y = np.random.default_rng(seed + 2).standard_normal(dense.shape[0])
    assert np.allclose(ours.rmatvec(y), theirs.T @ y, atol=1e-10)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_csc_structure_matches_scipy(seed):
    """Same canonical (sorted-indices) CSC arrays as scipy produces."""
    dense = random_sparse(seed)
    ours = CSCMatrix.from_dense(dense)
    theirs = sp.csc_matrix(dense)
    theirs.sort_indices()
    assert np.array_equal(ours.indptr, theirs.indptr)
    assert np.array_equal(ours.indices, theirs.indices)
    assert np.allclose(ours.data, theirs.data)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_csr_structure_matches_scipy(seed):
    dense = random_sparse(seed)
    ours = CSRMatrix.from_dense(dense)
    theirs = sp.csr_matrix(dense)
    theirs.sort_indices()
    assert np.array_equal(ours.indptr, theirs.indptr)
    assert np.array_equal(ours.indices, theirs.indices)
    assert np.allclose(ours.data, theirs.data)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1), st.data())
def test_column_slice_matches_scipy(seed, data):
    dense = random_sparse(seed)
    ours = CSCMatrix.from_dense(dense)
    theirs = sp.csc_matrix(dense)
    n = dense.shape[1]
    start = data.draw(st.integers(0, n))
    stop = data.draw(st.integers(start, n))
    sliced = ours.slice_columns(start, stop)
    assert np.array_equal(sliced.to_dense(),
                          theirs[:, start:stop].toarray())


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_to_scipy_roundtrip(seed):
    dense = random_sparse(seed)
    ours = CSCMatrix.from_dense(dense)
    back = ours.to_scipy().toarray()
    assert np.array_equal(back, dense)

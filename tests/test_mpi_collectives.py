"""Collective semantics of the MPI emulator."""

import numpy as np
import pytest

from repro.errors import MPIEmulatorError, RankFailedError, ValidationError
from repro.mpi import run_spmd


class TestBcast:
    def test_object_bcast(self):
        def prog(comm):
            data = {"k": [1, 2]} if comm.Get_rank() == 0 else None
            return comm.bcast(data, root=0)
        res = run_spmd(4, prog)
        assert all(r == {"k": [1, 2]} for r in res.returns)

    def test_bcast_nonzero_root(self):
        def prog(comm):
            data = "payload" if comm.Get_rank() == 2 else None
            return comm.bcast(data, root=2)
        res = run_spmd(4, prog)
        assert all(r == "payload" for r in res.returns)

    def test_bcast_copies_are_independent(self):
        def prog(comm):
            data = [0] if comm.Get_rank() == 0 else None
            out = comm.bcast(data, root=0)
            out.append(comm.Get_rank())
            return out
        res = run_spmd(3, prog)
        assert res.returns == [[0, 0], [0, 1], [0, 2]]

    def test_buffer_bcast(self):
        def prog(comm):
            buf = np.arange(6.0) if comm.Get_rank() == 0 else np.zeros(6)
            comm.Bcast(buf, root=0)
            return buf.sum()
        res = run_spmd(3, prog)
        assert res.returns == [15.0, 15.0, 15.0]


class TestReduce:
    def test_scalar_sum(self):
        def prog(comm):
            return comm.reduce(comm.Get_rank() + 1, op="sum", root=0)
        res = run_spmd(4, prog)
        assert res.returns[0] == 10
        assert res.returns[1:] == [None, None, None]

    def test_array_sum(self):
        def prog(comm):
            return comm.allreduce(np.full(3, float(comm.Get_rank())))
        res = run_spmd(4, prog)
        assert np.array_equal(res.returns[2], np.full(3, 6.0))

    @pytest.mark.parametrize("op,expected", [
        ("max", 3), ("min", 0), ("prod", 0), ("sum", 6)])
    def test_named_ops(self, op, expected):
        def prog(comm):
            return comm.allreduce(comm.Get_rank(), op=op)
        res = run_spmd(4, prog)
        assert res.returns[0] == expected

    def test_callable_op(self):
        def prog(comm):
            return comm.allreduce(comm.Get_rank() + 1,
                                  op=lambda a, b: a * b)
        res = run_spmd(4, prog)
        assert res.returns[0] == 24

    def test_unknown_op(self):
        def prog(comm):
            return comm.allreduce(1, op="median")
        with pytest.raises(Exception) as exc_info:
            run_spmd(2, prog)
        assert "median" in str(exc_info.value)

    def test_buffer_reduce(self):
        def prog(comm):
            send = np.full(4, float(comm.Get_rank()))
            recv = np.zeros(4)
            comm.Reduce(send, recv, op="sum", root=1)
            return recv.copy()
        res = run_spmd(3, prog)
        assert np.array_equal(res.returns[1], np.full(4, 3.0))
        assert np.array_equal(res.returns[0], np.zeros(4))

    def test_buffer_allreduce(self):
        def prog(comm):
            send = np.full(2, float(comm.Get_rank()))
            recv = np.zeros(2)
            comm.Allreduce(send, recv, op="max")
            return recv.copy()
        res = run_spmd(3, prog)
        assert all(np.array_equal(r, np.full(2, 2.0)) for r in res.returns)

    def test_reduce_result_is_private(self):
        def prog(comm):
            out = comm.allreduce(np.ones(2))
            out += comm.Get_rank()
            return float(out[0])
        res = run_spmd(3, prog)
        assert res.returns == [3.0, 4.0, 5.0]


class TestGatherScatter:
    def test_gather(self):
        def prog(comm):
            return comm.gather(comm.Get_rank() ** 2, root=0)
        res = run_spmd(4, prog)
        assert res.returns[0] == [0, 1, 4, 9]
        assert res.returns[1] is None

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(chr(ord("a") + comm.Get_rank()))
        res = run_spmd(3, prog)
        assert all(r == ["a", "b", "c"] for r in res.returns)

    def test_scatter(self):
        def prog(comm):
            values = [i * 10 for i in range(comm.Get_size())] \
                if comm.Get_rank() == 0 else None
            return comm.scatter(values, root=0)
        res = run_spmd(4, prog)
        assert res.returns == [0, 10, 20, 30]

    def test_scatter_wrong_length(self):
        def prog(comm):
            values = [1] if comm.Get_rank() == 0 else None
            return comm.scatter(values, root=0)
        with pytest.raises(Exception) as exc_info:
            run_spmd(2, prog)
        assert "scatter" in str(exc_info.value)

    def test_buffer_gather(self):
        def prog(comm):
            send = np.full(3, float(comm.Get_rank()))
            recv = np.zeros((comm.Get_size(), 3)) \
                if comm.Get_rank() == 0 else np.zeros(0)
            comm.Gather(send, recv if comm.Get_rank() == 0 else None, root=0)
            return recv.copy() if comm.Get_rank() == 0 else None
        res = run_spmd(3, prog)
        assert np.array_equal(res.returns[0],
                              np.array([[0.0] * 3, [1.0] * 3, [2.0] * 3]))

    def test_buffer_allgather(self):
        def prog(comm):
            send = np.array([float(comm.Get_rank())])
            recv = np.zeros((comm.Get_size(), 1))
            comm.Allgather(send, recv)
            return recv.ravel().tolist()
        res = run_spmd(3, prog)
        assert all(r == [0.0, 1.0, 2.0] for r in res.returns)

    def test_buffer_scatter(self):
        def prog(comm):
            send = np.arange(8.0).reshape(4, 2) \
                if comm.Get_rank() == 0 else None
            recv = np.zeros(2)
            comm.Scatter(send, recv, root=0)
            return recv.tolist()
        res = run_spmd(4, prog)
        assert res.returns == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_alltoall(self):
        def prog(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            return comm.alltoall([(rank, dst) for dst in range(size)])
        res = run_spmd(3, prog)
        # Rank r receives (src, r) from each src.
        assert res.returns[1] == [(0, 1), (1, 1), (2, 1)]

    def test_alltoall_wrong_length(self):
        def prog(comm):
            return comm.alltoall([1])
        with pytest.raises(Exception):
            run_spmd(3, prog)


class TestBarrierAndMismatch:
    def test_barrier_completes(self):
        def prog(comm):
            for _ in range(3):
                comm.barrier()
            return True
        res = run_spmd(5, prog)
        assert all(res.returns)

    def test_mismatched_collectives_abort(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.barrier()
            else:
                comm.bcast(1, root=1)
        with pytest.raises((RankFailedError, MPIEmulatorError)):
            run_spmd(2, prog, timeout=5)

    def test_mismatched_roots_abort(self):
        def prog(comm):
            comm.bcast(1, root=comm.Get_rank())
        with pytest.raises((RankFailedError, MPIEmulatorError)):
            run_spmd(2, prog, timeout=5)

    def test_invalid_root(self):
        def prog(comm):
            comm.bcast(1, root=9)
        with pytest.raises((RankFailedError, ValidationError)):
            run_spmd(2, prog, timeout=5)

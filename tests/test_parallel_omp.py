"""Tests for the shared-memory parallel Batch-OMP encoding engine.

The engine's contract is *bit-identical* output: for every worker count
and chunk size, the merged CSC factors and the ``BatchOMPStats`` must
equal the serial path exactly (``data``, ``indices``, ``indptr``, and
every stats field).  These tests pin that contract on random Gaussian
data and on union-of-subspaces data, and cover the Gram cache, the
worker-count resolution, and the parallel dense solver used by the
baselines.
"""

import numpy as np
import pytest

from repro.core.alpha import measure_alpha
from repro.core.dictionary import sample_dictionary
from repro.core.exd import exd_transform
from repro.errors import DictionaryError, ValidationError
from repro.linalg.omp import batch_omp_matrix
from repro.linalg.parallel_omp import (
    GRAM_CACHE,
    GramCache,
    _can_fork,
    default_chunk_size,
    fork_map,
    parallel_batch_omp_matrix,
    parallel_least_squares,
    resolve_workers,
)


@pytest.fixture(scope="module")
def gaussian_problem():
    rng = np.random.default_rng(42)
    d = rng.standard_normal((24, 16))
    d /= np.linalg.norm(d, axis=0, keepdims=True)
    coefs = np.zeros((16, 60))
    for j in range(60):
        support = rng.choice(16, size=4, replace=False)
        coefs[support, j] = rng.standard_normal(4)
    a = d @ coefs + 0.01 * rng.standard_normal((24, 60))
    return d, a


@pytest.fixture(scope="module")
def union_problem(union_data):
    a, _model = union_data
    d = sample_dictionary(a, 12, seed=3).atoms
    return d, a


def _assert_identical(serial, candidate):
    c0, s0 = serial
    c1, s1 = candidate
    assert c1.shape == c0.shape
    np.testing.assert_array_equal(c1.indptr, c0.indptr)
    np.testing.assert_array_equal(c1.indices, c0.indices)
    # Bitwise, not approximate: the parallel path must run the exact
    # serial float-op sequence.
    np.testing.assert_array_equal(c1.data, c0.data)
    assert s1.columns == s0.columns
    assert s1.converged_columns == s0.converged_columns
    assert s1.total_iterations == s0.total_iterations
    assert s1.flops == s0.flops
    np.testing.assert_array_equal(s1.converged_mask, s0.converged_mask)


class TestSerialParallelEquality:
    @pytest.mark.parametrize("problem", ["gaussian_problem", "union_problem"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", [None, 1, 7, 13])
    def test_csc_bit_identical(self, problem, workers, chunk_size, request):
        d, a = request.getfixturevalue(problem)
        eps = 0.1
        serial = batch_omp_matrix(d, a, eps)
        par = parallel_batch_omp_matrix(d, a, eps, workers=workers,
                                        chunk_size=chunk_size)
        _assert_identical(serial, par)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_through_batch_omp_matrix_kwarg(self, gaussian_problem, workers):
        d, a = gaussian_problem
        serial = batch_omp_matrix(d, a, 0.05)
        par = batch_omp_matrix(d, a, 0.05, workers=workers)
        _assert_identical(serial, par)

    def test_max_atoms_respected(self, gaussian_problem):
        d, a = gaussian_problem
        serial = batch_omp_matrix(d, a, 0.0, max_atoms=2)
        par = parallel_batch_omp_matrix(d, a, 0.0, max_atoms=2, workers=3)
        _assert_identical(serial, par)
        assert np.max(np.diff(par[0].indptr)) <= 2

    def test_strict_failure_matches_serial(self):
        # One atom cannot code generic 2-D signals: both paths must
        # raise, and the parallel path must report the same message
        # (smallest failing column) regardless of chunking.
        d = np.array([[1.0], [0.0]])
        a = np.array([[1.0, 2.0, 0.5], [1.0, -1.0, 3.0]])
        with pytest.raises(DictionaryError) as serial_exc:
            batch_omp_matrix(d, a, eps=0.01, strict=True)
        with pytest.raises(DictionaryError) as par_exc:
            parallel_batch_omp_matrix(d, a, eps=0.01, strict=True,
                                      workers=2, chunk_size=1)
        assert str(par_exc.value) == str(serial_exc.value)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            parallel_batch_omp_matrix(np.ones((3, 2)), np.ones((4, 5)), 0.1,
                                      workers=2)

    def test_empty_matrix(self, gaussian_problem):
        d, _ = gaussian_problem
        a = np.empty((24, 0))
        c, stats = parallel_batch_omp_matrix(d, a, 0.1, workers=2)
        assert c.shape == (16, 0) and c.nnz == 0
        assert stats.columns == 0


class TestResolveWorkers:
    def test_none_zero_one_are_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_positive_is_literal(self):
        assert resolve_workers(7) == 7

    def test_negative_means_all_cores(self):
        assert resolve_workers(-1) >= 1

    def test_default_chunk_size(self):
        assert default_chunk_size(100, 4) == 7  # ceil(100 / 16)
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(0, 4) == 1


class TestGramCache:
    def test_hit_on_same_array(self):
        cache = GramCache()
        d = np.random.default_rng(0).standard_normal((10, 6))
        g1 = cache.get(d)
        g2 = cache.get(d)
        assert g1 is g2
        assert cache.hits == 1 and cache.misses == 1
        np.testing.assert_allclose(g1, d.T @ d)

    def test_distinct_arrays_distinct_entries(self):
        cache = GramCache()
        d1 = np.eye(4)
        d2 = np.eye(4) * 2.0
        cache.get(d1)
        cache.get(d2)
        assert len(cache) == 2 and cache.misses == 2

    def test_weakref_eviction(self):
        cache = GramCache()
        d = np.eye(5)
        cache.get(d)
        assert len(cache) == 1
        del d
        import gc
        gc.collect()
        assert len(cache) == 0

    def test_in_place_mutation_invalidates(self):
        """Regression: K-SVD rewrites atoms of the same array object
        between sweeps; the cache must recompute, not serve the stale
        Gram of the pre-mutation contents."""
        cache = GramCache()
        d = np.eye(4)
        g1 = cache.get(d)
        np.testing.assert_allclose(g1, np.eye(4))
        d[0, 0] = 3.0
        g2 = cache.get(d)
        np.testing.assert_allclose(g2, d.T @ d)
        assert cache.misses == 2
        # And the fresh entry is served on the next unchanged lookup.
        assert cache.get(d) is g2

    def test_lru_bound(self):
        cache = GramCache(max_entries=2)
        keep = [np.eye(3) * i for i in range(1, 5)]
        for d in keep:
            cache.get(d)
        assert len(cache) == 2

    def test_oversized_not_retained(self):
        cache = GramCache(max_bytes=8)   # one float64
        d = np.eye(4)
        g = cache.get(d)
        np.testing.assert_allclose(g, np.eye(4))
        assert len(cache) == 0

    def test_process_cache_used_by_matrix_encode(self, gaussian_problem):
        d, a = gaussian_problem
        GRAM_CACHE.clear()
        batch_omp_matrix(d, a, 0.1)
        misses = GRAM_CACHE.misses
        batch_omp_matrix(d, a, 0.1)
        assert GRAM_CACHE.misses == misses
        assert GRAM_CACHE.hits >= 1


def _backend_probe(shared, payload):
    """Report the kernel a task would resolve, then poison the env.

    With backend pinning every task (and every reused pool worker)
    still resolves the backend the parent chose at ``fork_map`` entry;
    without it the second task re-resolves the poisoned env and raises.
    """
    import os

    from repro.linalg.kernels import resolve_backend

    name = resolve_backend(None).name
    os.environ["REPRO_OMP_BACKEND"] = "no-such-kernel"
    return name


class TestForkMapBackendPinning:
    def test_fallback_path_ignores_env_mutation(self, monkeypatch):
        import os
        monkeypatch.delenv("REPRO_OMP_BACKEND", raising=False)
        try:
            names = fork_map(_backend_probe, range(4), None, workers=1)
        finally:
            os.environ.pop("REPRO_OMP_BACKEND", None)
        assert names == ["numpy"] * 4

    def test_fork_pool_path_ignores_env_mutation(self, monkeypatch):
        import os
        if not _can_fork():
            pytest.skip("fork pool unavailable in this process")
        monkeypatch.delenv("REPRO_OMP_BACKEND", raising=False)
        try:
            names = fork_map(_backend_probe, range(6), None, workers=2)
        finally:
            os.environ.pop("REPRO_OMP_BACKEND", None)
        assert names == ["numpy"] * 6


class TestParallelLeastSquares:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_matches_serial(self, gaussian_problem, workers):
        d, a = gaussian_problem
        serial = parallel_least_squares(d, a)
        par = parallel_least_squares(d, a, workers=workers, chunk_size=9)
        np.testing.assert_allclose(par, serial, rtol=1e-12, atol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            parallel_least_squares(np.ones((3, 2)), np.ones((4, 5)),
                                   workers=2)


class TestWorkersPlumbing:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_exd_transform_identical(self, union_data, workers):
        a, _ = union_data
        t0, s0 = exd_transform(a, 10, 0.2, seed=0)
        t1, s1 = exd_transform(a, 10, 0.2, seed=0, workers=workers)
        np.testing.assert_array_equal(t1.coefficients.data,
                                      t0.coefficients.data)
        np.testing.assert_array_equal(t1.coefficients.indices,
                                      t0.coefficients.indices)
        np.testing.assert_array_equal(t1.coefficients.indptr,
                                      t0.coefficients.indptr)
        assert s1.omp_iterations == s0.omp_iterations

    def test_measure_alpha_identical(self, union_data):
        a, _ = union_data
        e0 = measure_alpha(a, 10, 0.2, trials=3, seed=5)
        e1 = measure_alpha(a, 10, 0.2, trials=3, seed=5, workers=2)
        assert e1.values == e0.values
        assert e1.errors == e0.errors
        assert e1.feasible == e0.feasible

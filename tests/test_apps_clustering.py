"""Subspace clustering and spectral partitioning tests."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import (
    clustering_accuracy,
    code_affinity,
    cut_size,
    fiedler_vector,
    kmeans,
    spectral_bisection,
    spectral_embedding,
    subspace_cluster,
)
from repro.core import exd_transform
from repro.data import union_of_subspaces
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def clustered_data():
    a, model = union_of_subspaces(40, 240, n_subspaces=3, dim=3,
                                  noise=0.01, seed=11)
    return a, model


class TestCodeAffinity:
    def test_within_subspace_affinity_dominates(self, clustered_data):
        """Sec. V-B: codes select same-subspace atoms, so within-cluster
        affinity must exceed cross-cluster affinity on average."""
        a, model = clustered_data
        t, _ = exd_transform(a, 60, 0.05, seed=0)
        w = code_affinity(t)
        same = model.labels[:, None] == model.labels[None, :]
        np.fill_diagonal(same, False)
        within = w[same].mean()
        across = w[~same & ~np.eye(len(model.labels), dtype=bool)].mean()
        assert within > 5 * across

    def test_symmetric_nonnegative_zero_diag(self, clustered_data):
        a, _ = clustered_data
        t, _ = exd_transform(a, 60, 0.05, seed=0)
        w = code_affinity(t)
        assert np.allclose(w, w.T)
        assert np.all(w >= 0)
        assert np.all(np.diag(w) == 0)


class TestSpectralEmbedding:
    def test_rows_unit_or_zero_norm(self, clustered_data):
        a, _ = clustered_data
        t, _ = exd_transform(a, 60, 0.05, seed=0)
        emb = spectral_embedding(code_affinity(t), 3, seed=0)
        assert emb.shape == (a.shape[1], 3)
        norms = np.linalg.norm(emb, axis=1)
        # Isolated columns (zero affinity degree) stay at the origin;
        # every connected column is projected onto the unit sphere.
        connected = norms > 1e-8
        assert np.allclose(norms[connected], 1.0, atol=1e-6)
        assert connected.mean() > 0.9

    def test_validation(self):
        with pytest.raises(ValidationError):
            spectral_embedding(np.ones((3, 4)), 2)
        with pytest.raises(ValidationError):
            spectral_embedding(-np.ones((3, 3)), 2)
        with pytest.raises(ValidationError):
            spectral_embedding(np.ones((3, 3)), 5)


class TestKMeans:
    def test_separated_blobs(self):
        rng = np.random.default_rng(0)
        pts = np.concatenate([rng.normal(0, 0.1, (30, 2)),
                              rng.normal(5, 0.1, (30, 2))])
        labels = kmeans(pts, 2, seed=0)
        assert clustering_accuracy(labels,
                                   np.array([0] * 30 + [1] * 30)) == 1.0

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        pts = rng.standard_normal((40, 3))
        l1 = kmeans(pts, 3, seed=7)
        l2 = kmeans(pts, 3, seed=7)
        assert np.array_equal(l1, l2)

    def test_validation(self):
        with pytest.raises(ValidationError):
            kmeans(np.ones(5), 2)
        with pytest.raises(ValidationError):
            kmeans(np.ones((3, 2)), 5)


class TestSubspaceCluster:
    def test_recovers_ground_truth(self, clustered_data):
        a, model = clustered_data
        res = subspace_cluster(a, 3, eps=0.05, seed=0)
        assert clustering_accuracy(res.labels, model.labels) > 0.9

    def test_noisier_data_still_good(self):
        a, model = union_of_subspaces(40, 180, n_subspaces=2, dim=3,
                                      noise=0.05, seed=13)
        res = subspace_cluster(a, 2, eps=0.1, seed=0)
        assert clustering_accuracy(res.labels, model.labels) > 0.85


class TestClusteringAccuracy:
    def test_perfect_and_permuted(self):
        truth = np.array([0, 0, 1, 1, 2, 2])
        assert clustering_accuracy(truth, truth) == 1.0
        permuted = np.array([2, 2, 0, 0, 1, 1])
        assert clustering_accuracy(permuted, truth) == 1.0

    def test_partial(self):
        truth = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 1, 1])
        assert clustering_accuracy(pred, truth) == 0.75

    def test_validation(self):
        with pytest.raises(ValidationError):
            clustering_accuracy([0, 1], [0, 1, 2])
        with pytest.raises(ValidationError):
            clustering_accuracy(np.arange(9), np.arange(9))


class TestSpectralPartitioning:
    @pytest.fixture(scope="class")
    def two_communities(self):
        g = nx.planted_partition_graph(2, 20, 0.8, 0.05, seed=3)
        truth = np.array([0] * 20 + [1] * 20)
        return g, truth

    def test_fiedler_eigenpair(self, two_communities):
        g, _ = two_communities
        lam2, vec = fiedler_vector(g, seed=0)
        lap = nx.laplacian_matrix(g).toarray().astype(float)
        exact = np.sort(np.linalg.eigvalsh(lap))[1]
        assert lam2 == pytest.approx(exact, rel=1e-3, abs=1e-6)
        assert abs(float(np.ones(40) @ vec)) < 1e-6  # orthogonal to 1

    def test_bisection_recovers_communities(self, two_communities):
        g, truth = two_communities
        labels = spectral_bisection(g, seed=0)
        acc = max(np.mean(labels == truth), np.mean(labels != truth))
        assert acc > 0.9

    def test_cut_smaller_than_random(self, two_communities):
        g, _ = two_communities
        labels = spectral_bisection(g, seed=0)
        rng = np.random.default_rng(0)
        random_cut = cut_size(g, rng.integers(0, 2, size=40))
        assert cut_size(g, labels) < random_cut

    def test_path_graph_split(self):
        g = nx.path_graph(10)
        labels = spectral_bisection(g, seed=0)
        # A path's Fiedler split separates the two halves contiguously.
        assert cut_size(g, labels) == 1.0

    def test_adjacency_array_input(self):
        adj = np.array(nx.to_numpy_array(nx.cycle_graph(6)))
        lam2, _ = fiedler_vector(adj, seed=0)
        assert lam2 == pytest.approx(1.0, rel=1e-3)  # 2-2cos(2pi/6)

    def test_validation(self):
        with pytest.raises(ValidationError):
            fiedler_vector(np.ones((2, 3)))
        with pytest.raises(ValidationError):
            fiedler_vector(np.array([[0.0, 1.0], [2.0, 0.0]]))  # asym
        with pytest.raises(ValidationError):
            fiedler_vector(np.zeros((1, 1)))
        with pytest.raises(ValidationError):
            cut_size(np.zeros((3, 3)), [0, 1])

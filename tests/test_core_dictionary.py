"""Unit tests for dictionary sampling (Alg. 1 step 0)."""

import numpy as np
import pytest

from repro.core import Dictionary, sample_dictionary
from repro.errors import ValidationError


class TestSampleDictionary:
    def test_atoms_come_from_data(self, union_data):
        a, _ = union_data
        d = sample_dictionary(a, 10, seed=0)
        assert d.atoms.shape == (a.shape[0], 10)
        for k in range(10):
            assert np.array_equal(d.atoms[:, k], a[:, d.indices[k]])

    def test_indices_distinct_and_sorted(self, union_data):
        a, _ = union_data
        d = sample_dictionary(a, 20, seed=1)
        assert np.array_equal(d.indices, np.sort(d.indices))
        assert len(set(d.indices.tolist())) == 20

    def test_deterministic_with_seed(self, union_data):
        a, _ = union_data
        d1 = sample_dictionary(a, 8, seed=42)
        d2 = sample_dictionary(a, 8, seed=42)
        assert np.array_equal(d1.indices, d2.indices)

    def test_oversampling_rejected_without_replace(self, union_data):
        a, _ = union_data
        with pytest.raises(ValidationError):
            sample_dictionary(a, a.shape[1] + 1)

    def test_oversampling_with_replace(self, union_data):
        a, _ = union_data
        d = sample_dictionary(a, a.shape[1] + 5, seed=0, replace=True)
        assert d.size == a.shape[1] + 5

    def test_full_sampling(self, union_data):
        a, _ = union_data
        d = sample_dictionary(a, a.shape[1], seed=0)
        assert np.array_equal(np.sort(d.indices), np.arange(a.shape[1]))

    def test_atoms_are_copies(self, union_data):
        a, _ = union_data
        d = sample_dictionary(a.copy(), 5, seed=0)
        original = d.atoms.copy()
        d.atoms[0, 0] += 100  # dataclass holds an independent array
        assert d.atoms[0, 0] != original[0, 0]


class TestDictionary:
    def test_properties(self, rng):
        atoms = rng.standard_normal((7, 3))
        d = Dictionary(atoms, np.arange(3))
        assert d.m == 7 and d.size == 3
        assert d.memory_words == 21

    def test_gram(self, rng):
        atoms = rng.standard_normal((7, 3))
        d = Dictionary(atoms, np.arange(3))
        assert np.allclose(d.gram(), atoms.T @ atoms)

    def test_concat(self, rng):
        d1 = Dictionary(rng.standard_normal((5, 2)), np.array([0, 1]))
        d2 = Dictionary(rng.standard_normal((5, 3)), np.array([-1, -1, -1]))
        both = d1.concat(d2)
        assert both.size == 5
        assert both.indices.tolist() == [0, 1, -1, -1, -1]

    def test_concat_row_mismatch(self, rng):
        d1 = Dictionary(rng.standard_normal((5, 2)), np.array([0, 1]))
        d2 = Dictionary(rng.standard_normal((6, 2)), np.array([0, 1]))
        with pytest.raises(ValidationError):
            d1.concat(d2)

    def test_indices_length_validated(self, rng):
        with pytest.raises(ValidationError):
            Dictionary(rng.standard_normal((5, 2)), np.array([0]))

"""Shared fixtures: small deterministic datasets and platforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.subspaces import union_of_subspaces
from repro.platform import ClusterConfig, MachineSpec, platform_by_name


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def union_data():
    """Small union-of-subspaces matrix (M=24, N=160, 3×rank-2)."""
    a, model = union_of_subspaces(24, 160, n_subspaces=3, dim=2,
                                  noise=0.0, seed=7)
    return a, model


@pytest.fixture(scope="session")
def noisy_union_data():
    """Union-of-subspaces with 1% noise (realistic ε targets)."""
    a, model = union_of_subspaces(30, 200, n_subspaces=4, dim=3,
                                  noise=0.01, seed=11)
    return a, model


@pytest.fixture(scope="session")
def small_cluster():
    """A 1×4 platform for fast distributed tests."""
    return platform_by_name("1x4")


@pytest.fixture(scope="session")
def two_node_cluster():
    """A 2-node platform exercising inter-node links."""
    return platform_by_name("2x8")


@pytest.fixture()
def tiny_machine():
    """A machine with round numbers for exact cost assertions."""
    return MachineSpec(
        name="tiny",
        flop_rate=1e9,
        intra_bw=1e8,          # words/s -> 10 ns/word
        inter_bw=5e7,          # 20 ns/word
        intra_latency=1e-6,
        inter_latency=2e-6,
        energy_per_flop=1e-9,
        energy_per_word_intra=1e-8,
        energy_per_word_inter=4e-8,
    )


@pytest.fixture()
def tiny_cluster(tiny_machine):
    return ClusterConfig(machine=tiny_machine, nodes=2, cores_per_node=2)

"""FISTA and conjugate-gradient solver tests."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.solvers import conjugate_gradient, estimate_lipschitz, fista
from repro.solvers.lasso import lasso_gd


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(91)
    a = rng.standard_normal((80, 50))
    x_true = np.zeros(50)
    x_true[[4, 20, 44]] = [2.0, -1.0, 1.5]
    y = a @ x_true
    return a, y, a.T @ a


class TestFista:
    def test_solves_lasso(self, problem):
        a, y, gram = problem
        res = fista(lambda v: gram @ v, a.T @ y, 50, lam=1e-3,
                    max_iter=500)
        assert res.converged
        assert np.linalg.norm(a @ res.x - y) / np.linalg.norm(y) < 0.02

    def test_faster_than_adagrad_gd(self, problem):
        """Acceleration: fewer iterations to the same tolerance."""
        a, y, gram = problem
        res_f = fista(lambda v: gram @ v, a.T @ y, 50, lam=1e-3,
                      max_iter=3000, tol=1e-8)
        res_g = lasso_gd(lambda v: gram @ v, a.T @ y, 50, lam=1e-3,
                         lr=0.3, max_iter=3000, tol=1e-8)
        assert res_f.iterations < res_g.iterations

    def test_explicit_lipschitz(self, problem):
        a, y, gram = problem
        lip = 2.0 * float(np.linalg.eigvalsh(gram)[-1])
        res = fista(lambda v: gram @ v, a.T @ y, 50, lam=1e-3,
                    lipschitz=lip, max_iter=500)
        assert res.converged

    def test_lipschitz_estimate_is_upper_bound(self, problem):
        _, _, gram = problem
        est = estimate_lipschitz(lambda v: gram @ v, 50, seed=0)
        exact = 2.0 * float(np.linalg.eigvalsh(gram)[-1])
        assert est >= exact * 0.99

    def test_validation(self, problem):
        a, y, gram = problem
        with pytest.raises(ValidationError):
            fista(lambda v: gram @ v, a.T @ y, 50, lam=-1.0)
        with pytest.raises(ValidationError):
            fista(lambda v: gram @ v, a.T @ y, 50, lam=0.1, lipschitz=0.0)
        with pytest.raises(ValidationError):
            fista(lambda v: gram @ v, np.ones(3), 50, lam=0.1)

    def test_strong_penalty_gives_sparse(self, problem):
        a, y, gram = problem
        res = fista(lambda v: gram @ v, a.T @ y, 50, lam=50.0,
                    max_iter=300)
        assert np.sum(np.abs(res.x) > 1e-8) <= 10


class TestConjugateGradient:
    def test_matches_direct_solve(self, problem):
        a, y, gram = problem
        lam = 0.2
        res = conjugate_gradient(lambda v: gram @ v, a.T @ y, 50,
                                 lam=lam, tol=1e-12)
        closed = np.linalg.solve(gram + lam * np.eye(50), a.T @ y)
        assert res.converged
        assert np.allclose(res.x, closed, rtol=1e-6)

    def test_exact_in_n_iterations(self):
        rng = np.random.default_rng(3)
        b_mat = rng.standard_normal((10, 10))
        gram = b_mat @ b_mat.T + 10 * np.eye(10)
        b = rng.standard_normal(10)
        res = conjugate_gradient(lambda v: gram @ v, b, 10, tol=1e-10,
                                 max_iter=30)
        assert res.converged
        assert res.iterations <= 12

    def test_warm_start(self, problem):
        a, y, gram = problem
        closed = np.linalg.solve(gram + 0.1 * np.eye(50), a.T @ y)
        res = conjugate_gradient(lambda v: gram @ v, a.T @ y, 50,
                                 lam=0.1, x0=closed, tol=1e-10,
                                 max_iter=5)
        assert res.converged
        assert res.iterations <= 2

    def test_history_decreases(self, problem):
        a, y, gram = problem
        res = conjugate_gradient(lambda v: gram @ v, a.T @ y, 50,
                                 lam=0.5, tol=1e-12, max_iter=100)
        assert res.history[-1] < res.history[0]

    def test_raise_on_fail(self, problem):
        a, y, gram = problem
        with pytest.raises(ConvergenceError):
            conjugate_gradient(lambda v: gram @ v, a.T @ y, 50, lam=0.0,
                               tol=1e-16, max_iter=2, raise_on_fail=True)

    def test_validation(self, problem):
        a, y, gram = problem
        with pytest.raises(ValidationError):
            conjugate_gradient(lambda v: gram @ v, a.T @ y, 50, lam=-1)
        with pytest.raises(ValidationError):
            conjugate_gradient(lambda v: gram @ v, np.ones(3), 50)

    def test_on_transformed_gram(self, union_data):
        """CG through the ExD operator reproduces the ridge solution."""
        from repro.core import TransformedGramOperator, exd_transform
        a, _ = union_data
        t, _ = exd_transform(a, 60, 0.01, seed=0)
        op = TransformedGramOperator(t)
        y = a @ np.eye(a.shape[1])[0]
        res = conjugate_gradient(op, t.project_adjoint(y), a.shape[1],
                                 lam=0.5, tol=1e-10)
        recon = t.reconstruct()
        closed = np.linalg.solve(recon.T @ recon + 0.5 * np.eye(a.shape[1]),
                                 recon.T @ y)
        assert np.allclose(res.x, closed, atol=1e-5)

"""Unit tests for repro.platform: machine, cluster, clock, cost, presets."""

import math

import pytest

from repro.errors import PlatformError
from repro.platform import (
    ClusterConfig,
    MachineSpec,
    VirtualClock,
    calibrate_from_spec,
    calibrate_measured,
    collective_energy,
    collective_time,
    p2p_energy,
    p2p_time,
    paper_platforms,
    platform_by_name,
    xeon_x5660_like,
)


class TestMachineSpec:
    def test_rejects_nonpositive_rates(self, tiny_machine):
        with pytest.raises(PlatformError):
            MachineSpec(name="bad", flop_rate=0, intra_bw=1, inter_bw=1,
                        intra_latency=0, inter_latency=0, energy_per_flop=0,
                        energy_per_word_intra=0, energy_per_word_inter=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(PlatformError):
            MachineSpec(name="bad", flop_rate=1, intra_bw=1, inter_bw=1,
                        intra_latency=-1, inter_latency=0, energy_per_flop=0,
                        energy_per_word_intra=0, energy_per_word_inter=0)

    def test_compute_time_energy(self, tiny_machine):
        assert tiny_machine.compute_time(2e9) == pytest.approx(2.0)
        assert tiny_machine.compute_energy(100) == pytest.approx(1e-7)

    def test_link_selection(self, tiny_machine):
        assert tiny_machine.word_time(inter_node=False) == pytest.approx(1e-8)
        assert tiny_machine.word_time(inter_node=True) == pytest.approx(2e-8)
        assert tiny_machine.latency(inter_node=True) == 2e-6
        assert tiny_machine.word_energy(inter_node=True) == 4e-8


class TestClusterConfig:
    def test_size_and_naming(self, tiny_machine):
        c = ClusterConfig(machine=tiny_machine, nodes=3, cores_per_node=4)
        assert c.size == 12
        assert c.name == "3x4"
        assert "3 node(s)" in c.describe()

    def test_node_mapping(self, tiny_cluster):
        assert tiny_cluster.node_of(0) == 0
        assert tiny_cluster.node_of(1) == 0
        assert tiny_cluster.node_of(2) == 1
        assert not tiny_cluster.is_inter_node(0, 1)
        assert tiny_cluster.is_inter_node(1, 2)

    def test_rank_out_of_range(self, tiny_cluster):
        with pytest.raises(PlatformError):
            tiny_cluster.node_of(4)

    def test_invalid_shape(self, tiny_machine):
        with pytest.raises(PlatformError):
            ClusterConfig(machine=tiny_machine, nodes=0, cores_per_node=1)

    def test_worst_link(self, tiny_machine, tiny_cluster):
        assert tiny_cluster.worst_link_inter()
        single = ClusterConfig(machine=tiny_machine, nodes=1,
                               cores_per_node=8)
        assert not single.worst_link_inter()


class TestVirtualClock:
    def test_advance_and_sync(self):
        c = VirtualClock()
        c.advance(1.0, 2.0)
        assert c.time == 1.0 and c.energy == 2.0
        c.synchronize_to(0.5)          # no going back
        assert c.time == 1.0
        c.synchronize_to(3.0)
        assert c.time == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(PlatformError):
            VirtualClock().advance(-1.0)

    def test_charge_compute(self, tiny_machine):
        c = VirtualClock()
        c.charge_compute(1e9, tiny_machine)
        assert c.time == pytest.approx(1.0)
        assert c.flops == int(1e9)

    def test_snapshot(self):
        c = VirtualClock()
        c.record_traffic(10, 2)
        snap = c.snapshot()
        assert snap["words_sent"] == 10 and snap["messages_sent"] == 2


class TestCostFunctions:
    def test_p2p_intra_vs_inter(self, tiny_cluster):
        intra = p2p_time(tiny_cluster, 0, 1, 100)
        inter = p2p_time(tiny_cluster, 0, 2, 100)
        assert intra == pytest.approx(1e-6 + 100 * 1e-8)
        assert inter == pytest.approx(2e-6 + 100 * 2e-8)
        assert p2p_time(tiny_cluster, 1, 1, 100) == 0.0

    def test_p2p_energy(self, tiny_cluster):
        assert p2p_energy(tiny_cluster, 0, 2, 10) == pytest.approx(4e-7)
        assert p2p_energy(tiny_cluster, 0, 1, 10) == pytest.approx(1e-7)

    def test_collective_flat_time(self, tiny_cluster):
        participants = list(range(4))
        t = collective_time(tiny_cluster, 0, participants, 50,
                            algorithm="flat")
        assert t == pytest.approx(2e-6 + 50 * 2e-8)

    def test_collective_tree_time(self, tiny_cluster):
        participants = list(range(4))
        t = collective_time(tiny_cluster, 0, participants, 50,
                            algorithm="tree")
        assert t == pytest.approx(math.ceil(math.log2(4)) *
                                  (2e-6 + 50 * 2e-8))

    def test_collective_single_participant_free(self, tiny_cluster):
        assert collective_time(tiny_cluster, 0, [0], 100) == 0.0

    def test_collective_energy_counts_links(self, tiny_cluster):
        participants = list(range(4))
        e = collective_energy(tiny_cluster, 0, participants, 10)
        # root=0: rank1 intra (1e-8), ranks 2,3 inter (4e-8)
        assert e == pytest.approx(10 * (1e-8 + 4e-8 + 4e-8))

    def test_unknown_algorithm(self, tiny_cluster):
        with pytest.raises(PlatformError):
            collective_time(tiny_cluster, 0, [0, 1], 10, algorithm="magic")

    def test_negative_words(self, tiny_cluster):
        with pytest.raises(PlatformError):
            p2p_time(tiny_cluster, 0, 1, -5)


class TestCalibration:
    def test_from_spec_uses_bottleneck(self, tiny_machine):
        single = ClusterConfig(machine=tiny_machine, nodes=1,
                               cores_per_node=4)
        multi = ClusterConfig(machine=tiny_machine, nodes=2,
                              cores_per_node=2)
        r_single = calibrate_from_spec(single)
        r_multi = calibrate_from_spec(multi)
        assert r_single.time == pytest.approx(1e9 * 1e-8)   # intra
        assert r_multi.time == pytest.approx(1e9 * 2e-8)    # inter
        assert r_multi.energy == pytest.approx(4e-8 / 1e-9)

    def test_measured_is_positive(self):
        r = calibrate_measured(size=1 << 14, repeats=1)
        assert r.time > 0

    def test_measured_rejects_tiny(self):
        with pytest.raises(PlatformError):
            calibrate_measured(size=10)


class TestPresets:
    def test_four_paper_platforms(self):
        platforms = paper_platforms()
        assert [p.name for p in platforms] == ["1x1", "1x4", "2x8", "8x8"]
        assert [p.size for p in platforms] == [1, 4, 16, 64]

    def test_lookup_by_name(self):
        assert platform_by_name("2x8").size == 16
        with pytest.raises(KeyError):
            platform_by_name("3x3")

    def test_machine_is_sane(self):
        m = xeon_x5660_like()
        assert m.flop_rate > 1e9
        assert m.intra_bw > m.inter_bw

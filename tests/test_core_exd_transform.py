"""Unit tests for the ExD transform (Alg. 1) and TransformedData."""

import numpy as np
import pytest

from repro.core import TransformedData, exd_transform, exd_transform_distributed
from repro.core.dictionary import Dictionary
from repro.errors import DictionaryError, ValidationError
from repro.sparse import CSCMatrix


class TestExdTransform:
    def test_error_bound_met(self, noisy_union_data):
        a, _ = noisy_union_data
        for eps in (0.05, 0.1, 0.3):
            t, stats = exd_transform(a, 60, eps, seed=0)
            assert stats.all_converged
            assert t.transformation_error(a) <= eps + 1e-9

    def test_zero_eps_full_dictionary_exact(self, union_data):
        a, _ = union_data
        t, stats = exd_transform(a, a.shape[1], 0.0, seed=0)
        assert stats.all_converged
        assert t.transformation_error(a) <= 1e-6

    def test_sparsity_tracks_subspace_dimension(self, union_data):
        a, model = union_data
        t, _ = exd_transform(a, 40, 0.01, seed=0)
        # Union of rank-2 subspaces: with a redundant dictionary the
        # average density must be close to 2 (Sec. V-B guarantee).
        assert t.alpha <= max(model.dims) + 1.0

    def test_alpha_decreases_with_size(self, noisy_union_data):
        a, _ = noisy_union_data
        alphas = []
        for l in (30, 60, 120):
            t, _ = exd_transform(a, l, 0.05, seed=3)
            alphas.append(t.alpha)
        assert alphas[0] >= alphas[-1]

    def test_unnormalized_mode(self, union_data):
        a, _ = union_data
        scaled = a * np.linspace(1, 10, a.shape[1])
        t, stats = exd_transform(scaled, 40, 0.05, seed=0, normalize=False)
        # Per-column OMP still enforces relative error on raw columns.
        assert t.transformation_error(scaled) <= 0.05 + 1e-9

    def test_normalization_rescales_correctly(self, union_data):
        a, _ = union_data
        scaled = a * np.linspace(0.1, 50, a.shape[1])
        t, _ = exd_transform(scaled, 40, 0.05, seed=0, normalize=True)
        assert t.transformation_error(scaled) <= 0.05 + 1e-9

    def test_strict_mode_raises_for_tiny_dictionary(self, union_data):
        a, _ = union_data
        with pytest.raises(DictionaryError):
            exd_transform(a, 1, 0.001, seed=0, strict=True)

    def test_nonstrict_flags_unconverged(self, union_data):
        a, _ = union_data
        _, stats = exd_transform(a, 1, 0.001, seed=0)
        assert not stats.all_converged

    def test_reuse_dictionary(self, union_data):
        a, _ = union_data
        t1, _ = exd_transform(a, 30, 0.05, seed=9)
        t2, _ = exd_transform(a, 30, 0.05, dictionary=t1.dictionary)
        assert np.array_equal(t1.dictionary.indices, t2.dictionary.indices)

    def test_dictionary_row_mismatch(self, union_data, rng):
        a, _ = union_data
        bad = Dictionary(rng.standard_normal((a.shape[0] + 1, 4)),
                         np.arange(4))
        with pytest.raises(ValidationError):
            exd_transform(a, 4, 0.1, dictionary=bad)

    def test_invalid_eps(self, union_data):
        a, _ = union_data
        with pytest.raises(ValidationError):
            exd_transform(a, 10, 1.5)


class TestExdDistributed:
    def test_matches_serial_with_same_seed(self, union_data, small_cluster):
        a, _ = union_data
        serial, _ = exd_transform(a, 30, 0.05, seed=4)
        dist, stats, spmd = exd_transform_distributed(a, 30, 0.05,
                                                      small_cluster, seed=4)
        assert np.array_equal(serial.dictionary.indices,
                              dist.dictionary.indices)
        assert dist.transformation_error(a) <= 0.05 + 1e-9
        assert dist.n == a.shape[1]
        assert spmd.simulated_time > 0
        assert stats.all_converged

    def test_preprocessing_flops_charged(self, union_data, small_cluster):
        a, _ = union_data
        _, _, spmd = exd_transform_distributed(a, 30, 0.05, small_cluster,
                                               seed=4)
        assert spmd.total_flops > 0

    def test_size_exceeding_columns_fast_fails(self, union_data,
                                               small_cluster):
        # Regression: L > N used to surface as a RankFailedError from
        # inside a rank thread; it must be a ValidationError up front.
        a, _ = union_data
        with pytest.raises(ValidationError,
                           match="distinct dictionary columns"):
            exd_transform_distributed(a, a.shape[1] + 1, 0.05,
                                      small_cluster, seed=4)

    def test_matches_serial_with_workers(self, union_data, small_cluster):
        a, _ = union_data
        base, _, _ = exd_transform_distributed(a, 30, 0.05, small_cluster,
                                               seed=4)
        par, _, _ = exd_transform_distributed(a, 30, 0.05, small_cluster,
                                              seed=4, workers=2)
        assert np.array_equal(base.coefficients.data, par.coefficients.data)
        assert np.array_equal(base.coefficients.indices,
                              par.coefficients.indices)


class TestTransformedData:
    @pytest.fixture()
    def transform(self, union_data):
        a, _ = union_data
        t, _ = exd_transform(a, 30, 0.05, seed=0)
        return a, t

    def test_shape_aliases(self, transform):
        a, t = transform
        assert t.shape == a.shape
        assert t.m == a.shape[0] and t.n == a.shape[1]
        assert t.l == 30

    def test_memory_accounting(self, transform):
        _, t = transform
        assert t.memory_words == t.m * t.l + t.nnz
        per_node = t.memory_words_per_node(4)
        assert per_node >= t.m * t.l
        assert t.memory_words_per_node(1) >= per_node

    def test_invalid_p(self, transform):
        _, t = transform
        with pytest.raises(ValidationError):
            t.memory_words_per_node(0)

    def test_project_vector_adjoint(self, transform, rng):
        a, t = transform
        x = rng.standard_normal(t.n)
        y = rng.standard_normal(t.m)
        recon = t.reconstruct()
        assert np.allclose(t.project_vector(x), recon @ x, atol=1e-8)
        assert np.allclose(t.project_adjoint(y), recon.T @ y, atol=1e-8)

    def test_reconstruct_columns(self, transform):
        _, t = transform
        cols = [3, 7, 1]
        assert np.allclose(t.reconstruct_columns(cols),
                           t.reconstruct()[:, cols])

    def test_row_mismatch_rejected(self, rng):
        d = Dictionary(rng.standard_normal((5, 3)), np.arange(3))
        c = CSCMatrix.zeros((4, 10))  # wrong: 4 rows vs 3 atoms
        with pytest.raises(ValidationError):
            TransformedData(dictionary=d, coefficients=c, eps=0.1)

"""Conformance suite for the pluggable OMP kernel backends.

Every registered backend is held to the documented contract against the
numpy reference (:mod:`repro.linalg.kernels.numpy_ref`):

* **identical atom-selection sequences** on the golden cases, and
* coefficients within ``COEF_RTOL`` / ``COEF_ATOL``.

Backends whose optional dependency is absent (numba in a bare
environment) are skipped with the backend's own ``unavailable_reason``
so the skip is self-explanatory in CI logs.  The suite also pins the
selection precedence (explicit arg > process default > environment
variable > ``numpy``) and the end-to-end invariant that serial,
parallel, streaming and serving paths agree under any one backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DictionaryError, KernelError
from repro.linalg import batch_omp_matrix
from repro.linalg.kernels import (
    COEF_ATOL,
    COEF_RTOL,
    OMP_BACKEND_ENV,
    OMPKernelBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    registered_backend_names,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.linalg.kernels.numpy_ref import NumpyBackend, batch_omp_column
from repro.linalg.parallel_omp import parallel_batch_omp_matrix


def _backend_or_skip(name: str) -> OMPKernelBackend:
    try:
        return get_backend(name)
    except KernelError as exc:
        pytest.skip(f"backend {name!r} unavailable: {exc}")


def _reference_panel(gram, dta, col_sq, eps, max_atoms):
    return [batch_omp_column(gram, dta[:, j], float(col_sq[j]), eps,
                             max_atoms)
            for j in range(dta.shape[1])]


def _golden_cases():
    """Deterministic (dictionary, signals, eps, max_atoms) cases.

    Well-conditioned by construction (random gaussian atoms, exact
    sparse combinations) so the argmax sequence has no ties a compiled
    backend could legitimately break differently.
    """
    cases = []
    rng = np.random.default_rng(42)
    for m, l, n, sparsity, eps, cap in [
        (20, 12, 9, 3, 0.0, None),
        (32, 24, 16, 4, 0.1, None),
        (16, 40, 11, 2, 0.05, None),     # overcomplete
        (24, 16, 8, 5, 0.0, 3),          # max_atoms cap binds
        (12, 8, 5, 2, 0.5, 1),
    ]:
        d = rng.standard_normal((m, l))
        d /= np.linalg.norm(d, axis=0, keepdims=True)
        c = np.zeros((l, n))
        for j in range(n):
            support = rng.choice(l, size=sparsity, replace=False)
            c[support, j] = rng.standard_normal(sparsity)
        a = d @ c
        noise = 0.01 * rng.standard_normal(a.shape) if eps else 0.0
        cases.append((d, a + noise, eps, cap))
    return cases


def _panel_inputs(d, a):
    gram = d.T @ d
    dta = d.T @ a
    col_sq = np.einsum("ij,ij->j", a, a)
    return gram, dta, col_sq


@pytest.mark.parametrize("name", registered_backend_names())
class TestBackendConformance:
    """Contract: supports identical, coefficients within tolerance."""

    def test_golden_cases_match_reference(self, name):
        kernel = _backend_or_skip(name)
        for d, a, eps, cap in _golden_cases():
            gram, dta, col_sq = _panel_inputs(d, a)
            got = kernel.batch_omp_columns(gram, dta, col_sq, eps, cap)
            want = _reference_panel(gram, dta, col_sq, eps, cap)
            assert len(got) == len(want) == a.shape[1]
            for (gs, gc, gr, gi, gok), (ws, wc, wr, wi, wok) in \
                    zip(got, want):
                np.testing.assert_array_equal(
                    np.asarray(gs), np.asarray(ws),
                    err_msg=f"{name}: atom-selection sequence diverged")
                np.testing.assert_allclose(
                    np.asarray(gc), np.asarray(wc),
                    rtol=COEF_RTOL, atol=COEF_ATOL,
                    err_msg=f"{name}: coefficients out of tolerance")
                assert gi == wi
                assert bool(gok) == bool(wok)
                assert gr == pytest.approx(wr, rel=1e-6, abs=1e-12)

    def test_numpy_backend_is_bit_exact(self, name):
        if name != "numpy":
            pytest.skip("bit-exactness is the numpy backend's contract")
        kernel = _backend_or_skip(name)
        for d, a, eps, cap in _golden_cases():
            gram, dta, col_sq = _panel_inputs(d, a)
            got = kernel.batch_omp_columns(gram, dta, col_sq, eps, cap)
            want = _reference_panel(gram, dta, col_sq, eps, cap)
            for (gs, gc, gr, _, _), (ws, wc, wr, _, _) in zip(got, want):
                np.testing.assert_array_equal(gs, ws)
                np.testing.assert_array_equal(gc, wc)
                assert gr == wr

    def test_zero_columns(self, name):
        kernel = _backend_or_skip(name)
        rng = np.random.default_rng(0)
        d = rng.standard_normal((10, 6))
        d /= np.linalg.norm(d, axis=0, keepdims=True)
        a = np.zeros((10, 3))
        gram, dta, col_sq = _panel_inputs(d, a)
        for support, coef, res_sq, it, ok in kernel.batch_omp_columns(
                gram, dta, col_sq, 0.1, None):
            assert np.asarray(support).size == 0
            assert np.asarray(coef).size == 0
            assert res_sq == 0.0 and it == 0 and ok

    def test_dependent_atoms_are_banned(self, name):
        # A dictionary with a duplicated atom: once one copy is
        # selected, the other has zero Cholesky pivot and must be
        # banned, not selected (which would blow up the solve).
        kernel = _backend_or_skip(name)
        rng = np.random.default_rng(3)
        base = rng.standard_normal((12, 4))
        base /= np.linalg.norm(base, axis=0, keepdims=True)
        d = np.concatenate([base, base[:, :2]], axis=1)  # atoms 4,5 dup 0,1
        a = base @ np.array([[1.0], [0.5], [0.25], [0.1]])
        gram, dta, col_sq = _panel_inputs(d, a)
        results = kernel.batch_omp_columns(gram, dta, col_sq, 0.0, None)
        (support, coef, res_sq, it, ok), = results
        support = np.asarray(support)
        # never both copies of a duplicated atom
        assert not ({0, 4} <= set(support.tolist()))
        assert not ({1, 5} <= set(support.tolist()))
        want = _reference_panel(gram, dta, col_sq, 0.0, None)[0]
        np.testing.assert_array_equal(support, np.asarray(want[0]))
        np.testing.assert_allclose(np.asarray(coef), np.asarray(want[1]),
                                   rtol=COEF_RTOL, atol=COEF_ATOL)

    def test_max_atoms_cap(self, name):
        kernel = _backend_or_skip(name)
        d, a, _, _ = _golden_cases()[0]
        gram, dta, col_sq = _panel_inputs(d, a)
        for cap in (0, 1, 2):
            for support, _, _, it, _ in kernel.batch_omp_columns(
                    gram, dta, col_sq, 0.0, cap):
                assert np.asarray(support).size <= cap
                assert it <= cap

    def test_strict_failure_on_smallest_column(self, name):
        # End-to-end: under strict mode the orchestration layer raises
        # for the first failing column, whichever backend ran the panel.
        _backend_or_skip(name)
        d = np.array([[1.0], [0.0]])
        a = np.array([[1.0, 0.5], [1.0, 0.5]])
        with pytest.raises(DictionaryError) as exc:
            batch_omp_matrix(d, a, eps=0.01, strict=True, backend=name)
        assert "eps" in str(exc.value)


class TestSelectionPrecedence:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(OMP_BACKEND_ENV, raising=False)
        set_default_backend(None)
        assert default_backend_name() == "numpy"
        assert resolve_backend().name == "numpy"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(OMP_BACKEND_ENV, "numpy")
        set_default_backend(None)
        assert resolve_backend().name == "numpy"
        monkeypatch.setenv(OMP_BACKEND_ENV, "no-such-backend")
        with pytest.raises(KernelError):
            resolve_backend()

    def test_process_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(OMP_BACKEND_ENV, "no-such-backend")
        try:
            assert set_default_backend("numpy") == "numpy"
            assert resolve_backend().name == "numpy"
        finally:
            set_default_backend(None)

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(OMP_BACKEND_ENV, "no-such-backend")
        assert resolve_backend("numpy").name == "numpy"
        assert resolve_backend(NumpyBackend()).name == "numpy"

    def test_auto_degrades_to_numpy_without_warning(self, monkeypatch):
        monkeypatch.delenv(OMP_BACKEND_ENV, raising=False)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolved = resolve_backend("auto")
        assert isinstance(resolved, OMPKernelBackend)
        if "numba" in available_backends():
            assert resolved.name == "numba"
        else:
            assert resolved.name == "numpy"

    def test_unknown_name_raises_kernel_error(self):
        with pytest.raises(KernelError, match="unknown OMP kernel"):
            get_backend("no-such-backend")
        with pytest.raises(KernelError):
            resolve_backend("no-such-backend")
        with pytest.raises(KernelError):
            set_default_backend("no-such-backend")

    def test_unavailable_backend_reports_reason(self):
        with pytest.raises(KernelError, match="unavailable"):
            get_backend("cupy")

    def test_bad_type_raises(self):
        with pytest.raises(KernelError):
            resolve_backend(42)

    def test_use_backend_restores_previous(self, monkeypatch):
        monkeypatch.delenv(OMP_BACKEND_ENV, raising=False)
        set_default_backend(None)
        with use_backend("numpy"):
            assert default_backend_name() == "numpy"
            with use_backend(None):      # no-op nesting
                assert default_backend_name() == "numpy"
        assert default_backend_name() == "numpy"  # env default
        try:
            set_default_backend("numpy")
            with use_backend("numpy"):
                pass
            assert default_backend_name() == "numpy"
        finally:
            set_default_backend(None)

    def test_register_rejects_reserved_names(self):
        with pytest.raises(KernelError):
            register_backend(type("Bad", (OMPKernelBackend,),
                                  {"name": "auto"}))


@pytest.mark.parametrize("name", registered_backend_names())
class TestEndToEndConsistency:
    """Serial, parallel, streaming and serve paths agree per backend."""

    def test_serial_vs_parallel_identical(self, name, union_data):
        _backend_or_skip(name)
        a, _ = union_data
        rng = np.random.default_rng(9)
        d = rng.standard_normal((a.shape[0], 10))
        d /= np.linalg.norm(d, axis=0, keepdims=True)
        c1, s1 = batch_omp_matrix(d, a, eps=0.4, backend=name)
        c2, s2 = parallel_batch_omp_matrix(d, a, eps=0.4, workers=2,
                                           backend=name)
        np.testing.assert_array_equal(c1.indptr, c2.indptr)
        np.testing.assert_array_equal(c1.indices, c2.indices)
        np.testing.assert_array_equal(c1.data, c2.data)
        assert s1.total_iterations == s2.total_iterations

    def test_streaming_matches_in_memory(self, name, union_data, tmp_path):
        _backend_or_skip(name)
        from repro.store import ColumnStore, StreamingEncoder

        a, _ = union_data
        store = ColumnStore.from_matrix(tmp_path / "store", a,
                                        chunk_width=37)
        t_mem, _ = __import__("repro.core", fromlist=["exd_transform"]) \
            .exd_transform(a, 10, 0.4, seed=3)
        enc = StreamingEncoder(store, 10, 0.4, seed=3, backend=name)
        t_str, _, _ = enc.run()
        assert enc.backend == name
        np.testing.assert_array_equal(t_mem.dictionary.atoms,
                                      t_str.dictionary.atoms)
        np.testing.assert_array_equal(t_mem.coefficients.indices,
                                      t_str.coefficients.indices)
        if name == "numpy":   # in-memory ref ran the process default
            np.testing.assert_array_equal(t_mem.coefficients.data,
                                          t_str.coefficients.data)
        else:
            np.testing.assert_allclose(t_mem.coefficients.data,
                                       t_str.coefficients.data,
                                       rtol=COEF_RTOL, atol=COEF_ATOL)

    def test_coefficients_meet_eps(self, name, union_data):
        kernel = _backend_or_skip(name)
        a, _ = union_data
        rng = np.random.default_rng(9)
        d = rng.standard_normal((a.shape[0], 12))
        d /= np.linalg.norm(d, axis=0, keepdims=True)
        c, stats = batch_omp_matrix(d, a, eps=0.5, backend=kernel)
        if stats.converged_columns == stats.columns:
            err = np.linalg.norm(a - d @ c.toarray(), axis=0)
            norms = np.linalg.norm(a, axis=0)
            assert np.all(err <= 0.5 * norms + 1e-9)


@pytest.mark.parametrize("name", registered_backend_names())
class TestDictOperatorConformance:
    """Backends see identical (G, DᵀA) whether D arrives as a dense
    array or as a DictOperator whose factor chain is exact — so their
    outputs must be identical too, per backend.
    """

    @staticmethod
    def _exact_operator(m, seed=0):
        from repro.core.dictionary import Dictionary
        from repro.core.fastdict import FastDict, FastFactor

        rng = np.random.default_rng(seed)
        fd = FastDict((FastFactor.diagonal(0.5 + rng.random(m)),
                       FastFactor.permutation(rng.permutation(m))))
        dense = Dictionary(fd.atoms.copy(),
                           np.arange(m, dtype=np.int64))
        return fd, dense

    def test_operator_precompute_matches_dense(self, name):
        _backend_or_skip(name)
        fd, dense = self._exact_operator(24, seed=5)
        rng = np.random.default_rng(6)
        a = fd.atoms @ rng.standard_normal((24, 90))
        a += 0.05 * rng.standard_normal(a.shape)
        c1, s1 = batch_omp_matrix(dense.atoms, a, 0.3, backend=name)
        c2, s2 = batch_omp_matrix(fd, a, 0.3, backend=name)
        np.testing.assert_array_equal(c1.indptr, c2.indptr)
        np.testing.assert_array_equal(c1.indices, c2.indices)
        np.testing.assert_array_equal(c1.data, c2.data)
        assert s1.total_iterations == s2.total_iterations

    def test_operator_serial_vs_parallel(self, name):
        _backend_or_skip(name)
        fd, _ = self._exact_operator(24, seed=7)
        rng = np.random.default_rng(8)
        a = rng.standard_normal((24, 80))
        c1, _ = batch_omp_matrix(fd, a, 0.4, backend=name)
        c2, _ = parallel_batch_omp_matrix(fd, a, 0.4, workers=2,
                                          backend=name)
        np.testing.assert_array_equal(c1.indices, c2.indices)
        np.testing.assert_array_equal(c1.data, c2.data)

"""Point-to-point semantics of the MPI emulator."""

import numpy as np
import pytest

from repro.errors import DeadlockError, MPIEmulatorError, ValidationError
from repro.mpi import ANY_SOURCE, ANY_TAG, run_spmd


class TestSendRecv:
    def test_object_roundtrip(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send({"a": 7, "b": [1, 2]}, dest=1, tag=3)
                return None
            return comm.recv(source=0, tag=3)
        res = run_spmd(2, prog)
        assert res.returns[1] == {"a": 7, "b": [1, 2]}

    def test_payload_is_private_copy(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                payload = [1, 2, 3]
                comm.send(payload, dest=1)
                payload.append(99)  # must not affect the receiver
                return None
            return comm.recv(source=0)
        res = run_spmd(2, prog)
        assert res.returns[1] == [1, 2, 3]

    def test_buffer_roundtrip(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.arange(10.0), dest=1, tag=7)
                return None
            buf = np.empty(10)
            comm.Recv(buf, source=0, tag=7)
            return buf.sum()
        res = run_spmd(2, prog)
        assert res.returns[1] == 45.0

    def test_message_ordering_fifo(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=0)
                return None
            return [comm.recv(source=0, tag=0) for _ in range(5)]
        res = run_spmd(2, prog)
        assert res.returns[1] == [0, 1, 2, 3, 4]

    def test_tag_selectivity(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send("low", dest=1, tag=1)
                comm.send("high", dest=1, tag=2)
                return None
            high = comm.recv(source=0, tag=2)
            low = comm.recv(source=0, tag=1)
            return (high, low)
        res = run_spmd(2, prog)
        assert res.returns[1] == ("high", "low")

    def test_any_source_deterministic_lowest_first(self):
        def prog(comm):
            rank = comm.Get_rank()
            if rank in (1, 2):
                comm.send(rank, dest=0, tag=0)
                return None
            comm.barrier() if False else None
            # Both messages are in flight before the receives because
            # sends are buffered; lowest source must win.
            first = comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            second = comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            return (first, second)

        def prog_sync(comm):
            rank = comm.Get_rank()
            if rank in (1, 2):
                comm.send(rank, dest=0, tag=0)
            comm.barrier()
            if rank == 0:
                return (comm.recv(), comm.recv())
            return None
        res = run_spmd(3, prog_sync)
        assert res.returns[0] == (1, 2)

    def test_sendrecv(self):
        def prog(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            right = (rank + 1) % size
            left = (rank - 1) % size
            return comm.sendrecv(rank, dest=right, source=left)
        res = run_spmd(4, prog)
        assert res.returns == [3, 0, 1, 2]

    def test_recv_buffer_too_small(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.arange(8.0), dest=1)
                return None
            buf = np.empty(4)
            comm.Recv(buf, source=0)
        with pytest.raises(Exception) as exc_info:
            run_spmd(2, prog)
        assert "too small" in str(exc_info.value)

    def test_send_to_invalid_rank(self):
        def prog(comm):
            comm.send(1, dest=5)
        with pytest.raises(Exception) as exc_info:
            run_spmd(2, prog)
        assert "dest" in str(exc_info.value)


class TestNonBlocking:
    def test_isend_irecv(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                req = comm.isend([1, 2], dest=1, tag=4)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=4)
            return req.wait()
        res = run_spmd(2, prog)
        assert res.returns[1] == [1, 2]

    def test_irecv_test_polling(self):
        def prog(comm):
            rank = comm.Get_rank()
            if rank == 0:
                comm.barrier()
                comm.send("x", dest=1)
                return None
            req = comm.irecv(source=0)
            done, _ = req.test()
            assert not done  # nothing sent yet
            comm.barrier()
            return req.wait()
        res = run_spmd(2, prog)
        assert res.returns[1] == "x"

    def test_request_completed_flag(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                req = comm.isend(1, dest=1)
                assert req.completed is False
                req.wait()
                assert req.completed is True
                return None
            return comm.recv(source=0)
        run_spmd(2, prog)


class TestDeadlocks:
    def test_recv_without_send_deadlocks(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.recv(source=1, tag=9)
        with pytest.raises(DeadlockError):
            run_spmd(2, prog, timeout=5)

    def test_single_rank_self_deadlock(self):
        def prog(comm):
            comm.recv(source=0, tag=1)
        with pytest.raises(DeadlockError):
            run_spmd(1, prog, timeout=5)

    def test_self_send_recv_works(self):
        def prog(comm):
            comm.send("me", dest=comm.Get_rank(), tag=1)
            return comm.recv(source=comm.Get_rank(), tag=1)
        res = run_spmd(1, prog)
        assert res.returns[0] == "me"

"""Execution-trace and timeline-rendering tests."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mpi import run_spmd
from repro.platform import platform_by_name
from repro.utils import render_timeline, trace_summary


def _traced_run():
    cluster = platform_by_name("1x4")

    def prog(comm):
        comm.charge_flops(100_000 * (comm.Get_rank() + 1))
        comm.allreduce(np.ones(64))
        if comm.Get_rank() == 0:
            comm.Send(np.zeros(32), dest=1)
        elif comm.Get_rank() == 1:
            buf = np.empty(32)
            comm.Recv(buf, source=0)
        comm.barrier()
    return run_spmd(0, prog, cluster=cluster, trace=True)


class TestTraceCollection:
    def test_trace_off_by_default(self):
        res = run_spmd(2, lambda comm: comm.allreduce(1),
                       cluster=platform_by_name("1x4") if False else None)
        assert res.trace is None

    def test_events_recorded_and_ordered(self):
        res = _traced_run()
        assert res.trace is not None
        ops = {e["op"] for e in res.trace}
        assert {"compute", "allreduce", "send", "barrier"} <= ops
        starts = [e["start"] for e in res.trace]
        assert starts == sorted(starts)

    def test_event_invariants(self):
        res = _traced_run()
        for event in res.trace:
            assert event["end"] >= event["start"] >= 0.0
            assert event["end"] <= res.simulated_time + 1e-12
            assert all(0 <= r < 4 for r in event["ranks"])
            assert event["words"] >= 0

    def test_collective_involves_all_ranks(self):
        res = _traced_run()
        allreduces = [e for e in res.trace if e["op"] == "allreduce"]
        assert allreduces
        assert set(allreduces[0]["ranks"]) == {0, 1, 2, 3}

    def test_compute_per_rank_duration_scales(self):
        res = _traced_run()
        computes = {e["ranks"][0]: e["end"] - e["start"]
                    for e in res.trace if e["op"] == "compute"}
        assert computes[3] == pytest.approx(4 * computes[0], rel=1e-6)


class TestSummaryAndRendering:
    def test_summary_totals(self):
        res = _traced_run()
        totals = trace_summary(res.trace)
        assert totals["compute"] > 0
        assert set(totals) >= {"compute", "allreduce"}

    def test_render_contains_rows_and_legend(self):
        res = _traced_run()
        art = render_timeline(res.trace, 4, width=60)
        lines = art.splitlines()
        assert len(lines) == 6  # header + 4 ranks + legend
        assert "rank 0" in lines[1]
        assert "#" in art and "A" in art
        assert "A=allreduce" in lines[-1]

    def test_render_empty_trace(self):
        assert render_timeline([], 2) == "(empty trace)"

    def test_render_validation(self):
        res = _traced_run()
        with pytest.raises(ValidationError):
            render_timeline(None, 2)
        with pytest.raises(ValidationError):
            render_timeline(res.trace, 0)
        with pytest.raises(ValidationError):
            trace_summary(None)

    def test_rank_rows_reflect_straggler(self):
        """Rank 3 computes 4x longer: its compute bar must be longer."""
        res = _traced_run()
        art = render_timeline(res.trace, 4, width=72)
        lines = art.splitlines()
        assert lines[4].count("#") > lines[1].count("#")

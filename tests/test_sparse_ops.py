"""Unit tests for repro.sparse.ops — kernels and FLOP counting."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sparse import (
    CSCMatrix,
    FlopCount,
    counted_dense_matvec,
    counted_dense_rmatvec,
    counted_matvec,
    counted_rmatvec,
    csc_matvec,
    csc_rmatvec,
)


@pytest.fixture()
def mats(rng):
    dense = rng.standard_normal((6, 9))
    dense[np.abs(dense) < 0.8] = 0.0
    return dense, CSCMatrix.from_dense(dense)


class TestKernels:
    def test_matvec_matches_dense(self, mats, rng):
        dense, c = mats
        x = rng.standard_normal(9)
        assert np.allclose(csc_matvec(c, x), dense @ x)

    def test_rmatvec_matches_dense(self, mats, rng):
        dense, c = mats
        y = rng.standard_normal(6)
        assert np.allclose(csc_rmatvec(c, y), dense.T @ y)

    def test_empty_matrix(self):
        c = CSCMatrix.zeros((4, 3))
        assert np.array_equal(csc_matvec(c, np.ones(3)), np.zeros(4))
        assert np.array_equal(csc_rmatvec(c, np.ones(4)), np.zeros(3))

    def test_shape_errors(self, mats):
        _, c = mats
        with pytest.raises(ValidationError):
            csc_matvec(c, np.ones(5))
        with pytest.raises(ValidationError):
            csc_rmatvec(c, np.ones(5))


class TestFlopCounting:
    def test_counted_matvec_flops(self, mats, rng):
        dense, c = mats
        x = rng.standard_normal(9)
        out, flops = counted_matvec(c, x)
        assert np.allclose(out, dense @ x)
        assert flops.mults == c.nnz

    def test_counted_rmatvec_flops(self, mats, rng):
        dense, c = mats
        y = rng.standard_normal(6)
        out, flops = counted_rmatvec(c, y)
        assert np.allclose(out, dense.T @ y)
        assert flops.mults == c.nnz

    def test_dense_matvec_flops(self, rng):
        d = rng.standard_normal((5, 7))
        v = rng.standard_normal(7)
        out, flops = counted_dense_matvec(d, v)
        assert np.allclose(out, d @ v)
        assert flops.mults == 35 and flops.adds == 5 * 6

    def test_dense_rmatvec_flops(self, rng):
        d = rng.standard_normal((5, 7))
        w = rng.standard_normal(5)
        out, flops = counted_dense_rmatvec(d, w)
        assert np.allclose(out, d.T @ w)
        assert flops.mults == 35 and flops.adds == 4 * 7

    def test_dense_shape_errors(self, rng):
        d = rng.standard_normal((5, 7))
        with pytest.raises(ValidationError):
            counted_dense_matvec(d, np.ones(5))
        with pytest.raises(ValidationError):
            counted_dense_rmatvec(d, np.ones(7))


class TestFlopCount:
    def test_total_and_add(self):
        a = FlopCount(mults=3, adds=2)
        b = FlopCount(mults=1, adds=1)
        assert a.total == 5
        assert (a + b).mults == 4 and (a + b).adds == 3

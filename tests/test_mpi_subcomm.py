"""Sub-communicator (Split), probe and reduce_scatter tests."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mpi import run_spmd


class TestSplit:
    def test_split_by_parity(self):
        def prog(comm):
            sub = comm.Split(color=comm.Get_rank() % 2)
            return (sub.Get_size(), sub.Get_rank(),
                    sub.allreduce(comm.Get_rank()))
        res = run_spmd(6, prog)
        # Even group {0,2,4}: sum 6; odd group {1,3,5}: sum 9.
        assert res.returns[0] == (3, 0, 6)
        assert res.returns[2] == (3, 1, 6)
        assert res.returns[1] == (3, 0, 9)
        assert res.returns[5] == (3, 2, 9)

    def test_key_orders_ranks(self):
        def prog(comm):
            # Reverse ordering within one colour.
            sub = comm.Split(color=0, key=-comm.Get_rank())
            return sub.Get_rank()
        res = run_spmd(4, prog)
        assert res.returns == [3, 2, 1, 0]

    def test_undefined_color(self):
        def prog(comm):
            sub = comm.Split(color=-1 if comm.Get_rank() == 0 else 0)
            if sub is None:
                return "excluded"
            return sub.allreduce(1)
        res = run_spmd(3, prog)
        assert res.returns == ["excluded", 2, 2]

    def test_p2p_within_subcomm_uses_local_ranks(self):
        def prog(comm):
            sub = comm.Split(color=comm.Get_rank() // 2)
            # Local rank 0 sends to local rank 1 inside each pair.
            if sub.Get_rank() == 0:
                sub.send(("from-world", comm.Get_rank()), dest=1)
                return None
            return sub.recv(source=0)
        res = run_spmd(4, prog)
        assert res.returns[1] == ("from-world", 0)
        assert res.returns[3] == ("from-world", 2)

    def test_messages_do_not_cross_communicators(self):
        def prog(comm):
            rank = comm.Get_rank()
            sub = comm.Split(color=rank % 2)
            # World-comm message with same tag as the sub-comm one.
            if rank == 0:
                comm.send("world", dest=2, tag=5)
                sub.send("sub", dest=1, tag=5)   # to world rank 2!
            if rank == 2:
                got_sub = sub.recv(source=0, tag=5)
                got_world = comm.recv(source=0, tag=5)
                return got_sub, got_world
            return None
        res = run_spmd(4, prog)
        assert res.returns[2] == ("sub", "world")

    def test_nested_split(self):
        def prog(comm):
            half = comm.Split(color=comm.Get_rank() // 4)
            quarter = half.Split(color=half.Get_rank() // 2)
            return quarter.allreduce(comm.Get_rank())
        res = run_spmd(8, prog)
        assert res.returns == [1, 1, 5, 5, 9, 9, 13, 13]

    def test_subcomm_collectives_charge_group_clocks(self):
        from repro.platform import platform_by_name
        cluster = platform_by_name("2x8")

        def prog(comm):
            sub = comm.Split(color=0 if comm.Get_rank() < 8 else 1)
            sub.allreduce(np.zeros(1000))
            return comm.clock.time
        res = run_spmd(0, prog, cluster=cluster)
        # Each sub-group stays on one node -> intra-node collective cost.
        assert all(t > 0 for t in res.returns)


class TestDup:
    def test_dup_isolates_tag_space(self):
        def prog(comm):
            lib = comm.Dup()
            if comm.Get_rank() == 0:
                comm.send("app", dest=1, tag=7)
                lib.send("lib", dest=1, tag=7)
                return None
            # The library's receive must never steal the app message.
            got_lib = lib.recv(source=0, tag=7)
            got_app = comm.recv(source=0, tag=7)
            return got_lib, got_app
        res = run_spmd(2, prog)
        assert res.returns[1] == ("lib", "app")

    def test_dup_preserves_group(self):
        def prog(comm):
            dup = comm.Dup()
            return (dup.Get_rank(), dup.Get_size(),
                    dup.allreduce(comm.Get_rank()))
        res = run_spmd(3, prog)
        assert res.returns == [(0, 3, 3), (1, 3, 3), (2, 3, 3)]

    def test_dup_of_split(self):
        def prog(comm):
            sub = comm.Split(color=comm.Get_rank() % 2)
            dup = sub.Dup()
            return dup.allreduce(1)
        res = run_spmd(4, prog)
        assert res.returns == [2, 2, 2, 2]


class TestProbe:
    def test_probe_true_after_send(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send(1, dest=1, tag=3)
                comm.barrier()
                return None
            before = comm.probe(source=0, tag=3)
            comm.barrier()
            after = comm.probe(source=0, tag=3)
            wrong_tag = comm.probe(source=0, tag=9)
            _ = comm.recv(source=0, tag=3)
            drained = comm.probe(source=0, tag=3)
            return before or after, wrong_tag, drained
        res = run_spmd(2, prog)
        assert res.returns[1] == (True, False, False)

    def test_iprobe_alias(self):
        def prog(comm):
            return comm.Iprobe()
        res = run_spmd(2, prog)
        assert res.returns == [False, False]


class TestReduceScatter:
    def test_chunks_scattered(self):
        def prog(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            values = [np.full(2, float(rank + dst))
                      for dst in range(size)]
            return comm.reduce_scatter(values)
        res = run_spmd(3, prog)
        # Rank r receives sum over src of (src + r) = 3r + 3.
        for r in range(3):
            assert np.array_equal(res.returns[r], np.full(2, 3.0 * r + 3))

    def test_scalar_values(self):
        def prog(comm):
            size = comm.Get_size()
            return comm.reduce_scatter([comm.Get_rank()] * size, op="max")
        res = run_spmd(4, prog)
        assert res.returns == [3, 3, 3, 3]

    def test_wrong_length(self):
        def prog(comm):
            comm.reduce_scatter([1])
        with pytest.raises(Exception):
            run_spmd(3, prog)

    def test_traffic_recorded(self):
        def prog(comm):
            comm.reduce_scatter([np.zeros(8)] * comm.Get_size())
        res = run_spmd(4, prog)
        tally = res.traffic.snapshot()["reduce_scatter"]
        assert tally.calls == 1
        assert tally.payload_words == 16

"""Hypothesis property tests for the sparse substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import CSCMatrix, ColumnBuilder

SMALL_FLOATS = st.floats(min_value=-10, max_value=10, allow_nan=False,
                         allow_infinity=False, width=64)


def dense_matrices(max_rows=8, max_cols=8):
    return st.integers(1, max_rows).flatmap(
        lambda r: st.integers(1, max_cols).flatmap(
            lambda c: arrays(np.float64, (r, c), elements=SMALL_FLOATS)))


@settings(max_examples=60, deadline=None)
@given(dense_matrices())
def test_from_dense_roundtrip(dense):
    c = CSCMatrix.from_dense(dense)
    assert np.array_equal(c.to_dense(), dense)
    assert c.nnz == int(np.count_nonzero(dense))


@settings(max_examples=60, deadline=None)
@given(dense_matrices(), st.integers(0, 2**32 - 1))
def test_matvec_matches_dense(dense, seed):
    c = CSCMatrix.from_dense(dense)
    x = np.random.default_rng(seed).standard_normal(dense.shape[1])
    assert np.allclose(c.matvec(x), dense @ x, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(dense_matrices(), st.integers(0, 2**32 - 1))
def test_rmatvec_matches_dense(dense, seed):
    c = CSCMatrix.from_dense(dense)
    y = np.random.default_rng(seed).standard_normal(dense.shape[0])
    assert np.allclose(c.rmatvec(y), dense.T @ y, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(dense_matrices(), dense_matrices())
def test_hstack_matches_concatenate(a, b):
    if a.shape[0] != b.shape[0]:
        b = np.resize(b, (a.shape[0], b.shape[1]))
    ca, cb = CSCMatrix.from_dense(a), CSCMatrix.from_dense(b)
    assert np.array_equal(ca.hstack(cb).to_dense(),
                          np.concatenate([a, b], axis=1))


@settings(max_examples=40, deadline=None)
@given(dense_matrices(), st.data())
def test_slice_columns_matches_numpy(dense, data):
    c = CSCMatrix.from_dense(dense)
    ncols = dense.shape[1]
    start = data.draw(st.integers(0, ncols))
    stop = data.draw(st.integers(start, ncols))
    assert np.array_equal(c.slice_columns(start, stop).to_dense(),
                          dense[:, start:stop])


@settings(max_examples=40, deadline=None)
@given(dense_matrices())
def test_builder_reproduces_matrix(dense):
    b = ColumnBuilder(nrows=dense.shape[0])
    for j in range(dense.shape[1]):
        b.add_dense_column(dense[:, j])
    assert np.array_equal(b.finalize().to_dense(), dense)


@settings(max_examples=40, deadline=None)
@given(dense_matrices())
def test_transpose_csr_involution(dense):
    c = CSCMatrix.from_dense(dense)
    back = c.transpose_csr().transpose_csc()
    assert np.array_equal(back.to_dense(), dense)

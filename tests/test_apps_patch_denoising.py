"""Patch-based denoising pipeline tests."""

import numpy as np
import pytest

from repro.apps.patch_denoising import (
    build_patch_dictionary,
    denoise_image_patches,
    estimate_noise_sigma,
)
from repro.data import add_noise_snr, psnr, synthetic_image
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def corpus():
    return [synthetic_image(48, seed=i) for i in range(4)]


@pytest.fixture(scope="module")
def noisy_pair():
    target = synthetic_image(48, seed=99)
    noisy = add_noise_snr(target, 15.0, seed=1)
    return target, noisy


class TestDictionary:
    def test_shape_and_normalisation(self, corpus):
        d = build_patch_dictionary(corpus, patch=8, size=128, seed=0)
        assert d.shape[0] == 64
        assert d.shape[1] <= 129  # DC atom + sampled (degenerates dropped)
        assert np.allclose(np.linalg.norm(d, axis=0), 1.0, atol=1e-8)

    def test_dc_atom_first(self, corpus):
        d = build_patch_dictionary(corpus, patch=8, size=64, seed=0)
        assert np.allclose(d[:, 0], d[0, 0])

    def test_oversampling_rejected(self, corpus):
        with pytest.raises(ValidationError):
            build_patch_dictionary(corpus, patch=8, size=10_000, seed=0)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValidationError):
            build_patch_dictionary([], patch=8, size=4)


class TestNoiseEstimate:
    def test_close_to_truth(self, noisy_pair):
        target, noisy = noisy_pair
        true_sigma = float(np.std(noisy - target))
        est = estimate_noise_sigma(noisy)
        assert est == pytest.approx(true_sigma, rel=0.25)

    def test_clean_image_low_estimate(self):
        img = synthetic_image(48, seed=3)
        assert estimate_noise_sigma(img) < 0.03


class TestDenoising:
    def test_improves_psnr_substantially(self, corpus, noisy_pair):
        target, noisy = noisy_pair
        d = build_patch_dictionary(corpus, patch=8, size=256, seed=0)
        res = denoise_image_patches(noisy, d, patch=8, stride=2)
        assert psnr(target, res.image) > psnr(target, noisy) + 5.0

    def test_explicit_sigma(self, corpus, noisy_pair):
        target, noisy = noisy_pair
        sigma = float(np.std(noisy - target))
        d = build_patch_dictionary(corpus, patch=8, size=256, seed=0)
        res = denoise_image_patches(noisy, d, patch=8, stride=2,
                                    noise_sigma=sigma)
        assert res.meta["noise_sigma"] == sigma
        assert psnr(target, res.image) > psnr(target, noisy) + 5.0

    def test_clean_input_roughly_preserved(self, corpus):
        img = synthetic_image(48, seed=5)
        d = build_patch_dictionary(corpus, patch=8, size=256, seed=0)
        res = denoise_image_patches(img, d, patch=8, stride=2,
                                    noise_sigma=0.01)
        assert psnr(img, res.image) > 28.0

    def test_statistics_reported(self, corpus, noisy_pair):
        _, noisy = noisy_pair
        d = build_patch_dictionary(corpus, patch=8, size=128, seed=0)
        res = denoise_image_patches(noisy, d, patch=8, stride=4)
        assert res.patches > 0
        assert 0.0 <= res.meta["active_fraction"] <= 1.0
        assert res.atoms_used_per_patch >= 0.0

    def test_dictionary_shape_validated(self, noisy_pair):
        _, noisy = noisy_pair
        with pytest.raises(ValidationError):
            denoise_image_patches(noisy, np.ones((10, 5)), patch=8)

    def test_non_image_rejected(self, corpus):
        d = build_patch_dictionary(corpus, patch=8, size=64, seed=0)
        with pytest.raises(ValidationError):
            denoise_image_patches(np.ones(10), d, patch=8)

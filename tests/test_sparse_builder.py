"""Unit tests for repro.sparse.builder."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sparse import ColumnBuilder


class TestColumnBuilder:
    def test_basic_build(self):
        b = ColumnBuilder(nrows=4)
        b.add_column([0, 2], [1.0, -1.0])
        b.add_column([], [])
        b.add_column([3], [5.0])
        c = b.finalize()
        expected = np.zeros((4, 3))
        expected[0, 0], expected[2, 0], expected[3, 2] = 1.0, -1.0, 5.0
        assert np.array_equal(c.to_dense(), expected)

    def test_sorts_rows(self):
        b = ColumnBuilder(nrows=5)
        b.add_column([4, 1, 3], [4.0, 1.0, 3.0])
        c = b.finalize()
        assert c.indices.tolist() == [1, 3, 4]
        assert c.data.tolist() == [1.0, 3.0, 4.0]

    def test_growth_beyond_capacity(self):
        b = ColumnBuilder(nrows=10, capacity=2)
        for j in range(20):
            b.add_column([j % 10], [float(j)])
        c = b.finalize()
        assert c.nnz == 20 and c.shape == (10, 20)

    def test_add_dense_column(self):
        b = ColumnBuilder(nrows=3)
        b.add_dense_column([0.0, 2.0, 0.0])
        c = b.finalize()
        assert c.nnz == 1 and c.column(0)[1] == 2.0

    def test_dense_column_tol(self):
        b = ColumnBuilder(nrows=2)
        b.add_dense_column([1e-9, 1.0], tol=1e-6)
        assert b.finalize().nnz == 1

    def test_duplicate_rows_rejected(self):
        b = ColumnBuilder(nrows=4)
        with pytest.raises(ValidationError, match="duplicate"):
            b.add_column([1, 1], [1.0, 2.0])

    def test_out_of_range_rejected(self):
        b = ColumnBuilder(nrows=4)
        with pytest.raises(ValidationError):
            b.add_column([4], [1.0])

    def test_double_finalize_rejected(self):
        b = ColumnBuilder(nrows=2)
        b.finalize()
        with pytest.raises(ValidationError):
            b.finalize()

    def test_add_after_finalize_rejected(self):
        b = ColumnBuilder(nrows=2)
        b.finalize()
        with pytest.raises(ValidationError):
            b.add_column([0], [1.0])

    def test_mismatched_lengths(self):
        b = ColumnBuilder(nrows=4)
        with pytest.raises(ValidationError):
            b.add_column([0, 1], [1.0])

    def test_invalid_nrows(self):
        with pytest.raises(ValidationError):
            ColumnBuilder(nrows=0)

    def test_counters(self):
        b = ColumnBuilder(nrows=4)
        b.add_column([0], [1.0])
        b.add_column([1, 2], [1.0, 2.0])
        assert b.ncols == 2 and b.nnz == 3

"""Emulator robustness under injected failures."""

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.errors import DeadlockError, MPIEmulatorError, RankFailedError
from repro.mpi import run_spmd

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend requires the fork start method")


class TestFailurePropagation:
    def test_failure_wakes_blocked_receivers(self):
        """A rank crash must unblock peers stuck in recv, and the crash
        — not a deadlock — must be reported."""
        def prog(comm):
            if comm.Get_rank() == 0:
                raise RuntimeError("dies before sending")
            comm.recv(source=0)
        with pytest.raises(RankFailedError) as exc_info:
            run_spmd(3, prog, timeout=10)
        assert isinstance(exc_info.value.failures[0], RuntimeError)

    def test_failure_wakes_blocked_collective(self):
        def prog(comm):
            if comm.Get_rank() == 1:
                raise ValueError("skips the barrier")
            comm.barrier()
        with pytest.raises(RankFailedError):
            run_spmd(4, prog, timeout=10)

    def test_failure_inside_reduction_callable(self):
        """A user-supplied op that raises surfaces as a rank failure."""
        def bad_op(a, b):
            raise ArithmeticError("bad op")

        def prog(comm):
            comm.allreduce(comm.Get_rank(), op=bad_op)
        with pytest.raises(RankFailedError) as exc_info:
            run_spmd(3, prog, timeout=10)
        assert any(isinstance(e, ArithmeticError)
                   for e in exc_info.value.failures.values())

    def test_late_failure_after_successful_collectives(self):
        def prog(comm):
            for _ in range(5):
                comm.allreduce(1)
            if comm.Get_rank() == 2:
                raise KeyError("late")
            comm.barrier()
        with pytest.raises(RankFailedError):
            run_spmd(3, prog, timeout=10)

    def test_partial_completion_keeps_no_state(self):
        """After an aborted run a fresh run on a new world succeeds."""
        def failing(comm):
            if comm.Get_rank() == 0:
                raise RuntimeError("x")
            comm.barrier()
        with pytest.raises(RankFailedError):
            run_spmd(2, failing, timeout=10)
        res = run_spmd(2, lambda comm: comm.allreduce(1))
        assert res.returns == [2, 2]


class TestDeadlockVariants:
    def test_cyclic_blocking_recv(self):
        """Everyone receives from the left, nobody ever sends."""
        def prog(comm):
            left = (comm.Get_rank() - 1) % comm.Get_size()
            comm.recv(source=left)
        with pytest.raises(DeadlockError):
            run_spmd(3, prog, timeout=5)

    def test_mismatched_barrier_counts(self):
        def prog(comm):
            comm.barrier()
            if comm.Get_rank() != 0:
                comm.barrier()  # rank 0 never joins
        with pytest.raises(DeadlockError):
            run_spmd(3, prog, timeout=5)

    def test_slow_but_progressing_is_not_deadlock(self):
        """Heavy but productive traffic must not trip the detector."""
        def prog(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            total = 0
            for round_ in range(30):
                dest = (rank + 1) % size
                comm.send(round_, dest=dest)
                total += comm.recv(source=(rank - 1) % size)
            return total
        res = run_spmd(4, prog, timeout=30)
        assert res.returns == [sum(range(30))] * 4


class TestTimeoutTeardown:
    def test_wedged_rank_does_not_stall_teardown(self):
        """A rank stuck in user code past the abort grace must not keep
        ``run_spmd`` from returning, and its late send must raise
        against the invalidated world instead of silently depositing."""
        release = threading.Event()
        late: list = []

        def prog(comm):
            if comm.Get_rank() == 0:
                comm.recv(source=1)  # never satisfied -> deadlock
            else:
                release.wait(20.0)  # wedged well past timeout + grace
                try:
                    comm.send(1, dest=0)
                except MPIEmulatorError as exc:
                    late.append(exc)
                    raise

        t0 = time.monotonic()
        with pytest.raises(DeadlockError):
            run_spmd(2, prog, timeout=0.5, backend="threads")
        # Pre-fix the launcher joined the wedged thread for the full
        # 20 s sleep; with the abort grace it returns in ~1 s.
        assert time.monotonic() - t0 < 5.0
        release.set()
        deadline = time.monotonic() + 5.0
        while not late and time.monotonic() < deadline:
            time.sleep(0.02)
        assert late, "late send did not raise against the dead world"
        assert isinstance(late[0], MPIEmulatorError)

    @needs_fork
    def test_wedged_process_rank_is_terminated(self):
        """Process backend: a straggler is terminated and reaped after
        the grace window rather than left running."""
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.recv(source=1)  # never satisfied -> deadlock
            else:
                time.sleep(30.0)

        t0 = time.monotonic()
        with pytest.raises(DeadlockError):
            run_spmd(2, prog, timeout=0.5, backend="processes")
        assert time.monotonic() - t0 < 15.0
        leftovers = [p for p in multiprocessing.active_children()
                     if p.name.startswith("repro-mpi-rank")]
        assert not leftovers


@needs_fork
class TestProcessRankDeath:
    def test_sigkilled_rank_mid_collective(self):
        """SIGKILL of one worker while peers sit in a collective must
        surface as RankFailedError within the timeout, not a hang."""
        def prog(comm):
            if comm.Get_rank() == 1:
                time.sleep(0.3)  # let the peers enter the allreduce
                os.kill(os.getpid(), signal.SIGKILL)
            return comm.allreduce(1)

        t0 = time.monotonic()
        with pytest.raises(RankFailedError) as exc_info:
            run_spmd(3, prog, timeout=20, backend="processes")
        assert time.monotonic() - t0 < 20.0
        assert 1 in exc_info.value.failures
        assert "died" in str(exc_info.value.failures[1])

    def test_sigkilled_rank_leaves_no_shm(self):
        """Segments of a killed run are swept at teardown."""
        def prog(comm):
            payload = np.ones(100_000)  # above the shm threshold
            if comm.Get_rank() == 0:
                os.kill(os.getpid(), signal.SIGKILL)
            return comm.bcast(payload if comm.Get_rank() == 0 else None,
                              root=0)

        with pytest.raises(RankFailedError):
            run_spmd(2, prog, timeout=20, backend="processes")
        if os.path.isdir("/dev/shm"):
            import glob
            assert not glob.glob("/dev/shm/repro-mpi-*")


class TestStress:
    def test_many_ranks_collective_storm(self):
        def prog(comm):
            acc = 0.0
            for _ in range(10):
                acc += comm.allreduce(float(comm.Get_rank()))
            return acc
        res = run_spmd(32, prog, timeout=60)
        expected = 10 * sum(range(32))
        assert all(r == expected for r in res.returns)

    def test_interleaved_p2p_and_collectives(self):
        def prog(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            for i in range(5):
                if rank == 0:
                    for dst in range(1, size):
                        comm.Send(np.full(4, float(i)), dest=dst, tag=i)
                else:
                    buf = np.empty(4)
                    comm.Recv(buf, source=0, tag=i)
                    assert buf[0] == float(i)
                comm.barrier()
            return comm.allreduce(1)
        res = run_spmd(6, prog, timeout=30)
        assert res.returns == [6] * 6

    def test_return_values_not_aliased(self):
        """Array results from collectives must be private per rank."""
        def prog(comm):
            out = comm.allreduce(np.ones(4))
            out *= (comm.Get_rank() + 1)
            return float(out.sum())
        res = run_spmd(4, prog)
        assert res.returns == [16.0, 32.0, 48.0, 64.0]

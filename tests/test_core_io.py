"""Transform persistence tests."""

import numpy as np
import pytest

from repro.core import exd_transform, load_transform, save_transform
from repro.errors import ValidationError


@pytest.fixture()
def transform(union_data):
    a, _ = union_data
    t, _ = exd_transform(a, 30, 0.05, seed=0)
    return t


class TestSaveLoad:
    def test_roundtrip_values(self, transform, tmp_path):
        path = save_transform(transform, tmp_path / "t")
        assert path.suffix == ".npz"
        back = load_transform(path)
        assert back.eps == transform.eps
        assert back.method == transform.method
        assert back.l == transform.l and back.n == transform.n
        assert np.array_equal(back.dictionary.atoms,
                              transform.dictionary.atoms)
        assert np.array_equal(back.dictionary.indices,
                              transform.dictionary.indices)
        assert back.coefficients.allclose(transform.coefficients)

    def test_meta_preserved(self, transform, tmp_path):
        transform.meta["note"] = "hello"
        transform.meta["unpicklable"] = object()  # silently dropped
        back = load_transform(save_transform(transform, tmp_path / "t"))
        assert back.meta["note"] == "hello"
        assert "unpicklable" not in back.meta
        assert back.meta["normalized"] == transform.meta["normalized"]

    def test_suffix_added_once(self, transform, tmp_path):
        path = save_transform(transform, tmp_path / "t.npz")
        assert path.name == "t.npz"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no such"):
            load_transform(tmp_path / "absent.npz")

    def test_not_a_transform_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(ValidationError, match="not a repro transform"):
            load_transform(path)

    def test_loaded_transform_is_usable(self, transform, tmp_path, rng):
        back = load_transform(save_transform(transform, tmp_path / "t"))
        x = rng.standard_normal(back.n)
        from repro.core import TransformedGramOperator
        op_a = TransformedGramOperator(transform)
        op_b = TransformedGramOperator(back)
        assert np.allclose(op_a(x), op_b(x))

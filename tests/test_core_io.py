"""Transform persistence tests."""

import json
import warnings

import numpy as np
import pytest

from repro.core import exd_transform, load_transform, save_transform
from repro.errors import ValidationError


@pytest.fixture()
def transform(union_data):
    a, _ = union_data
    t, _ = exd_transform(a, 30, 0.05, seed=0)
    return t


class TestSaveLoad:
    def test_roundtrip_values(self, transform, tmp_path):
        path = save_transform(transform, tmp_path / "t")
        assert path.suffix == ".npz"
        back = load_transform(path)
        assert back.eps == transform.eps
        assert back.method == transform.method
        assert back.l == transform.l and back.n == transform.n
        assert np.array_equal(back.dictionary.atoms,
                              transform.dictionary.atoms)
        assert np.array_equal(back.dictionary.indices,
                              transform.dictionary.indices)
        assert back.coefficients.allclose(transform.coefficients)

    def test_meta_preserved(self, transform, tmp_path):
        transform.meta["note"] = "hello"
        back = load_transform(save_transform(transform, tmp_path / "t"))
        assert back.meta["note"] == "hello"
        assert back.meta["normalized"] == transform.meta["normalized"]

    def test_non_scalar_meta_dropped_with_warning(self, transform, tmp_path):
        transform.meta["note"] = "kept"
        transform.meta["unserialisable"] = object()
        transform.meta["array"] = np.ones(3)
        with pytest.warns(UserWarning,
                          match=r"\['array', 'unserialisable'\]"):
            path = save_transform(transform, tmp_path / "t")
        back = load_transform(path)
        assert back.meta["note"] == "kept"
        assert "unserialisable" not in back.meta
        assert "array" not in back.meta

    def test_scalar_meta_saves_without_warning(self, transform, tmp_path):
        transform.meta["note"] = "hello"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            save_transform(transform, tmp_path / "t")

    def test_suffix_added_once(self, transform, tmp_path):
        path = save_transform(transform, tmp_path / "t.npz")
        assert path.name == "t.npz"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no such"):
            load_transform(tmp_path / "absent.npz")

    def test_not_a_transform_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(ValidationError, match="not a repro transform"):
            load_transform(path)

    def test_not_a_zip_at_all(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(ValidationError,
                           match="garbage.npz is corrupt or truncated"):
            load_transform(path)

    def test_truncated_archive(self, transform, tmp_path):
        path = save_transform(transform, tmp_path / "t")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ValidationError,
                           match="corrupt or truncated"):
            load_transform(path)

    def test_newer_format_version_rejected(self, transform, tmp_path):
        from repro.core import io as core_io

        path = save_transform(transform, tmp_path / "t")
        with np.load(path) as blob:
            arrays = {k: blob[k] for k in blob.files}
        header = json.loads(bytes(arrays["header"]).decode("utf-8"))
        header["format_version"] = core_io._FORMAT_VERSION + 1
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ValidationError,
                           match="newer than the latest supported"):
            load_transform(path)

    def test_invalid_format_version_rejected(self, transform, tmp_path):
        from repro.core import io as core_io

        path = save_transform(transform, tmp_path / "t")
        with np.load(path) as blob:
            arrays = {k: blob[k] for k in blob.files}
        header = json.loads(bytes(arrays["header"]).decode("utf-8"))
        header["format_version"] = "banana"
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ValidationError,
                           match="unsupported transform format"):
            load_transform(path)
        # v2 added factored (FastDict / block-operator) dictionaries;
        # dense transforms still round-trip through the v1 layout.
        assert core_io._FORMAT_VERSION == 2
        assert core_io._DENSE_FORMAT_VERSION == 1

    def test_loaded_transform_is_usable(self, transform, tmp_path, rng):
        back = load_transform(save_transform(transform, tmp_path / "t"))
        x = rng.standard_normal(back.n)
        from repro.core import TransformedGramOperator
        op_a = TransformedGramOperator(transform)
        op_b = TransformedGramOperator(back)
        assert np.allclose(op_a(x), op_b(x))

"""Encode-service tests: protocol, registry, batcher, HTTP end-to-end.

The load-bearing claim is the serving analogue of the store's: a
column's sparse code is bit-identical no matter how the micro-batcher
grouped it — 64 concurrent single-column requests must reproduce one
serial :func:`~repro.linalg.omp.batch_omp_matrix` call over the same
columns, bit for bit, while the run report proves actual coalescing
happened.  Around that sit the service semantics: multi-tenant
generation registry, atomic hot-swap mid-traffic, 429 backpressure and
504 deadlines.
"""

import asyncio
import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import observability
from repro.core import exd_transform
from repro.data.subspaces import union_of_subspaces
from repro.linalg.omp import batch_omp_matrix
from repro.serve import (
    DictionaryRegistry,
    EncodeRequest,
    MicroBatcher,
    ServeApp,
    ServeError,
    parse_encode_request,
    parse_vector,
)

M, N, L, EPS = 32, 220, 24, 0.15


@pytest.fixture(scope="module")
def data():
    a, _ = union_of_subspaces(M, N, n_subspaces=4, dim=3,
                              noise=0.01, seed=11)
    return a


@pytest.fixture(scope="module")
def transform(data):
    t, _ = exd_transform(data, size=L, eps=EPS, seed=3)
    return t


@pytest.fixture(scope="module")
def transform_b(data):
    t, _ = exd_transform(data, size=L + 4, eps=EPS, seed=7)
    return t


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_vector_rejects_bad_payloads(self):
        with pytest.raises(ServeError) as err:
            parse_vector("nope", "column")
        assert err.value.status == 400
        with pytest.raises(ServeError):
            parse_vector([1.0, float("nan")], "column")
        with pytest.raises(ServeError):
            parse_vector([[1.0], [2.0]], "column")
        with pytest.raises(ServeError):
            parse_vector([1.0, 2.0], "column", m=3)

    def test_parse_encode_request_defaults_and_validation(self):
        req = parse_encode_request({"column": [1.0, 2.0]},
                                   default_tenant="default")
        assert req.tenant == "default"
        assert req.generation is None and req.eps is None
        np.testing.assert_array_equal(req.column, [1.0, 2.0])

        for bad in (
            {"column": [1.0], "tenant": ""},
            {"column": []},
            {"column": [1.0], "generation": 0},
            {"column": [1.0], "generation": True},
            {"column": [1.0], "eps": 1.5},
            {"column": [1.0], "eps": 0.0},
            {"column": [1.0], "max_atoms": -2},
            {"column": [1.0], "timeout_ms": 0},
            "not a dict",
        ):
            with pytest.raises(ServeError) as err:
                parse_encode_request(bad, default_tenant="default")
            assert err.value.status == 400


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_generations_and_default(self, transform, transform_b):
        reg = DictionaryRegistry()
        g1 = reg.add_transform("t1", transform)
        assert g1.number == 1
        assert reg.resolve("t1").number == 1
        g2 = reg.add_transform("t1", transform_b, set_default=False)
        assert g2.number == 2
        assert reg.resolve("t1").number == 1  # default unchanged
        assert reg.resolve("t1", 2).transform is transform_b
        reg.set_default("t1", 2)
        assert reg.resolve("t1").number == 2

    def test_resolution_errors(self, transform):
        reg = DictionaryRegistry()
        with pytest.raises(ServeError) as err:
            reg.resolve("ghost")
        assert err.value.status == 404
        reg.add_transform("t1", transform)
        with pytest.raises(ServeError) as err:
            reg.resolve("t1", 99)
        assert err.value.status == 404

    def test_retire_guards_default(self, transform, transform_b):
        reg = DictionaryRegistry()
        reg.add_transform("t1", transform)
        reg.add_transform("t1", transform_b)
        with pytest.raises(ServeError) as err:
            reg.retire("t1", 2)  # default
        assert err.value.status == 409
        reg.retire("t1", 1)
        with pytest.raises(ServeError):
            reg.resolve("t1", 1)

    def test_load_from_disk(self, transform, tmp_path):
        from repro.core import save_transform
        path = tmp_path / "t.npz"
        save_transform(transform, path)
        reg = DictionaryRegistry()
        gen = reg.load("t1", path)
        assert gen.source == str(path)
        np.testing.assert_array_equal(
            gen.transform.dictionary.atoms, transform.dictionary.atoms)

    def test_describe_shape(self, transform):
        reg = DictionaryRegistry()
        reg.add_transform("t1", transform)
        doc = reg.describe()
        info = doc["tenants"]["t1"]
        assert info["default_generation"] == 1
        assert info["generations"][0]["m"] == transform.m
        assert info["generations"][0]["l"] == transform.l

    def test_warm_gram_cache(self, transform_b):
        from repro.linalg.parallel_omp import cached_gram
        reg = DictionaryRegistry()
        reg.add_transform("warm", transform_b)
        atoms = transform_b.dictionary.atoms
        np.testing.assert_array_equal(cached_gram(atoms), atoms.T @ atoms)


# ----------------------------------------------------------------------
# batcher (driven directly through asyncio)
# ----------------------------------------------------------------------
def run_async(coro):
    return asyncio.run(coro)


class TestBatcher:
    def test_submit_before_start_is_503(self, transform):
        reg = DictionaryRegistry()
        reg.add_transform("t", transform)
        batcher = MicroBatcher(reg)

        async def go():
            with pytest.raises(ServeError) as err:
                await batcher.submit(
                    EncodeRequest(tenant="t", column=np.ones(M)))
            assert err.value.status == 503

        run_async(go())

    def test_shape_mismatch_is_400(self, transform):
        reg = DictionaryRegistry()
        reg.add_transform("t", transform)

        async def go():
            batcher = MicroBatcher(reg)
            await batcher.start()
            try:
                with pytest.raises(ServeError) as err:
                    await batcher.submit(
                        EncodeRequest(tenant="t", column=np.ones(M + 1)))
                assert err.value.status == 400
            finally:
                await batcher.stop()

        run_async(go())

    def test_concurrent_submits_coalesce_bit_identically(
            self, data, transform):
        """The tentpole invariant, at the batcher layer."""
        reg = DictionaryRegistry()
        reg.add_transform("t", transform)
        d = transform.dictionary.atoms
        c_ref, _ = batch_omp_matrix(d, data, EPS)

        async def go():
            batcher = MicroBatcher(reg, max_batch=16, max_wait_ms=20.0)
            await batcher.start()
            try:
                results = await asyncio.gather(*[
                    batcher.submit(EncodeRequest(
                        tenant="t", column=data[:, j]))
                    for j in range(N)
                ])
            finally:
                await batcher.stop()
            return results

        results = run_async(go())
        for j, res in enumerate(results):
            lo, hi = int(c_ref.indptr[j]), int(c_ref.indptr[j + 1])
            np.testing.assert_array_equal(res.support,
                                          c_ref.indices[lo:hi])
            np.testing.assert_array_equal(res.coefficients,
                                          c_ref.data[lo:hi])
        assert any(res.batch_size > 1 for res in results)

    def test_queue_full_is_429_with_retry_after(self, transform):
        reg = DictionaryRegistry()
        reg.add_transform("t", transform)

        async def go():
            batcher = MicroBatcher(reg, max_queue=2, max_wait_ms=0.0,
                                   max_batch=1, timeout_ms=30000.0)
            gate = threading.Event()
            real_encode = batcher._encode

            def slow_encode(*a, **kw):
                gate.wait(5.0)
                return real_encode(*a, **kw)

            batcher._encode = slow_encode
            await batcher.start()
            try:
                # let the collector pick up the first request so it
                # blocks inside the slow encode ...
                first = asyncio.create_task(batcher.submit(EncodeRequest(
                    tenant="t", column=np.ones(M))))
                await asyncio.sleep(0.1)
                # ... then fill the queue behind it
                queued = [asyncio.create_task(batcher.submit(EncodeRequest(
                    tenant="t", column=np.ones(M))))
                    for _ in range(2)]
                await asyncio.sleep(0.05)
                with pytest.raises(ServeError) as err:
                    await batcher.submit(EncodeRequest(
                        tenant="t", column=np.ones(M)))
                assert err.value.status == 429
                assert err.value.retry_after is not None
                gate.set()
                await asyncio.gather(first, *queued)
            finally:
                gate.set()
                await batcher.stop()

        run_async(go())

    def test_expired_deadline_is_504(self, transform):
        reg = DictionaryRegistry()
        reg.add_transform("t", transform)

        async def go():
            batcher = MicroBatcher(reg, max_batch=1, max_wait_ms=0.0)
            gate = threading.Event()
            real_encode = batcher._encode

            def slow_encode(*a, **kw):
                gate.wait(5.0)
                return real_encode(*a, **kw)

            batcher._encode = slow_encode
            await batcher.start()
            try:
                first = asyncio.create_task(batcher.submit(EncodeRequest(
                    tenant="t", column=np.ones(M))))
                await asyncio.sleep(0.05)
                # queued behind the stalled encode with a 1 ms deadline
                second = asyncio.create_task(batcher.submit(EncodeRequest(
                    tenant="t", column=np.ones(M), timeout_ms=1.0)))
                await asyncio.sleep(0.05)
                gate.set()
                await first
                with pytest.raises(ServeError) as err:
                    await second
                assert err.value.status == 504
            finally:
                gate.set()
                await batcher.stop()

        run_async(go())

    def test_mixed_eps_groups_stay_bit_identical(self, data, transform):
        """Requests with different eps batch together but encode in
        separate shared-G groups, each bit-identical to its serial run."""
        reg = DictionaryRegistry()
        reg.add_transform("t", transform)
        d = transform.dictionary.atoms
        eps_values = (0.1, 0.3)
        refs = {e: batch_omp_matrix(d, data[:, :8], e)[0]
                for e in eps_values}

        async def go():
            batcher = MicroBatcher(reg, max_batch=16, max_wait_ms=20.0)
            await batcher.start()
            try:
                return await asyncio.gather(*[
                    batcher.submit(EncodeRequest(
                        tenant="t", column=data[:, j], eps=e))
                    for e in eps_values for j in range(8)
                ])
            finally:
                await batcher.stop()

        results = run_async(go())
        for i, (e, j) in enumerate(
                (e, j) for e in eps_values for j in range(8)):
            ref = refs[e]
            lo, hi = int(ref.indptr[j]), int(ref.indptr[j + 1])
            np.testing.assert_array_equal(results[i].support,
                                          ref.indices[lo:hi])
            np.testing.assert_array_equal(results[i].coefficients,
                                          ref.data[lo:hi])


class TestBatcherRegressions:
    """Dedicated regressions for serve-path bugs (each fails pre-fix)."""

    def test_submit_after_stop_is_immediate_503(self, transform):
        # Pre-fix, stop() left self._queue alive: a late submit would
        # enqueue into a queue nothing drains and hang until its own
        # deadline instead of failing fast with 503.
        reg = DictionaryRegistry()
        reg.add_transform("t", transform)

        async def go():
            batcher = MicroBatcher(reg, timeout_ms=30000.0)
            await batcher.start()
            await batcher.stop()
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            with pytest.raises(ServeError) as err:
                await asyncio.wait_for(batcher.submit(EncodeRequest(
                    tenant="t", column=np.ones(M))), 5.0)
            assert err.value.status == 503
            assert loop.time() - t0 < 1.0
            assert batcher.queue_depth == 0

        run_async(go())

    def test_queued_504_arrives_at_the_deadline(self, transform):
        # Pre-fix, deadlines were only checked when the collector
        # dispatched the request: a request stuck behind a slow batch
        # got its 504 only after the batch finished.  The awaiting-side
        # wait_for must deliver it at ~the deadline instead.
        reg = DictionaryRegistry()
        reg.add_transform("t", transform)

        async def go():
            batcher = MicroBatcher(reg, max_batch=1, max_wait_ms=0.0)
            gate = threading.Event()
            real_encode = batcher._encode

            def slow_encode(*a, **kw):
                gate.wait(5.0)
                return real_encode(*a, **kw)

            batcher._encode = slow_encode
            await batcher.start()
            try:
                first = asyncio.create_task(batcher.submit(EncodeRequest(
                    tenant="t", column=np.ones(M))))
                await asyncio.sleep(0.05)  # collector now stalled
                loop = asyncio.get_running_loop()
                t0 = loop.time()
                with pytest.raises(ServeError) as err:
                    await batcher.submit(EncodeRequest(
                        tenant="t", column=np.ones(M), timeout_ms=50.0))
                elapsed = loop.time() - t0
                assert err.value.status == 504
                # the gate holds the batch for seconds; the 504 must
                # arrive at roughly the 50 ms deadline, not after it
                assert elapsed < 0.75, f"504 took {elapsed:.3f}s"
                gate.set()
                await first
            finally:
                gate.set()
                await batcher.stop()

        run_async(go())

    def test_max_batch_clamp_tracks_encode_block_cols(self, transform,
                                                      monkeypatch):
        # Pre-fix the clamp was a bare 256 literal that would silently
        # diverge from the panel width it is supposed to mirror.
        import repro.linalg.omp as omp_mod
        from repro.serve.batcher import MAX_BATCH_LIMIT

        assert MAX_BATCH_LIMIT == omp_mod.ENCODE_BLOCK_COLS
        reg = DictionaryRegistry()
        reg.add_transform("t", transform)
        monkeypatch.setattr(omp_mod, "ENCODE_BLOCK_COLS", 64)
        batcher = MicroBatcher(reg, max_batch=100000)
        assert batcher.max_batch == 64

    def test_bad_backend_fails_at_construction(self, transform):
        from repro.errors import KernelError
        reg = DictionaryRegistry()
        reg.add_transform("t", transform)
        with pytest.raises(KernelError):
            MicroBatcher(reg, backend="no-such-backend")
        assert MicroBatcher(reg, backend="numpy").backend == "numpy"


# ----------------------------------------------------------------------
# HTTP end-to-end
# ----------------------------------------------------------------------
class _Server:
    """ServeApp on a background event-loop thread, for blocking tests."""

    def __init__(self, app: ServeApp):
        self.app = app
        self.loop = asyncio.new_event_loop()
        self._addr = None
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self._addr = self.loop.run_until_complete(self.app.start())
        self._ready.set()
        self.loop.run_forever()

    def __enter__(self):
        self.thread.start()
        assert self._ready.wait(10)
        self.host, self.port = self._addr
        return self

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(
            self.app.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()

    def request(self, method, path, body=None, timeout=30):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(method, path, body=payload)
            resp = conn.getresponse()
            headers = dict(resp.getheaders())
            return resp.status, json.loads(resp.read()), headers
        finally:
            conn.close()


@pytest.fixture()
def server(transform):
    app = ServeApp(max_batch=64, max_wait_ms=25.0, observe=True)
    app.registry.add_transform("default", transform)
    observability.reset()
    with _Server(app) as srv:
        yield srv
    observability.disable()
    observability.reset()


class TestHTTP:
    def test_healthz_and_dictionaries(self, server, transform):
        status, body, _ = server.request("GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        assert body["tenants"] == ["default"]
        status, body, _ = server.request("GET", "/v1/dictionaries")
        assert status == 200
        gens = body["tenants"]["default"]["generations"]
        assert gens[0]["l"] == transform.l

    def test_unknown_route_and_method(self, server):
        assert server.request("GET", "/nope")[0] == 404
        assert server.request("POST", "/healthz")[0] == 405

    def test_bad_json_is_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=10)
        try:
            conn.request("POST", "/v1/encode", body="{not json")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_64_concurrent_encodes_bit_identical_to_serial(
            self, server, data, transform):
        """The acceptance criterion, over real HTTP."""
        k = 64
        d = transform.dictionary.atoms
        c_ref, _ = batch_omp_matrix(d, data[:, :k], EPS)

        def encode(j):
            status, body, _ = server.request(
                "POST", "/v1/encode",
                {"column": [float(v) for v in data[:, j]]})
            assert status == 200, body
            return j, body

        with ThreadPoolExecutor(max_workers=k) as pool:
            results = list(pool.map(encode, range(k)))

        coalesced = 0
        for j, body in results:
            lo, hi = int(c_ref.indptr[j]), int(c_ref.indptr[j + 1])
            assert body["support"] == [int(i) for i in
                                       c_ref.indices[lo:hi]]
            ref_coef = np.asarray(c_ref.data[lo:hi])
            got_coef = np.asarray(body["coefficients"])
            np.testing.assert_array_equal(got_coef, ref_coef)
            coalesced = max(coalesced, body["batch_size"])
        assert coalesced > 1, "no request was coalesced into a batch"

        status, report, _ = server.request("GET", "/v1/metrics")
        assert status == 200
        counters = report["metrics"]["counters"]
        assert counters.get("serve.coalesced_batches", 0) >= 1
        hist = report["metrics"]["histograms"].get("serve.batch_size")
        assert hist is not None and hist["max"] > 1
        assert report["meta"]["encoded_columns"] >= k

    def test_hot_swap_mid_traffic(self, server, data, transform,
                                  transform_b, tmp_path):
        """Load a second generation and swap defaults while encoding."""
        from repro.core import save_transform
        path = tmp_path / "gen2.npz"
        save_transform(transform_b, path)

        stop = threading.Event()
        failures = []

        def hammer():
            j = 0
            while not stop.is_set():
                status, body, _ = server.request(
                    "POST", "/v1/encode",
                    {"column": [float(v) for v in data[:, j % N]]})
                if status != 200:
                    failures.append((status, body))
                j += 1

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            time.sleep(0.2)
            status, body, _ = server.request(
                "POST", "/v1/dictionaries",
                {"path": str(path), "set_default": False})
            assert status == 200 and body["generation"] == 2
            status, body, _ = server.request(
                "POST", "/v1/dictionaries/default",
                {"generation": 2})
            assert status == 200
            assert body["default_generation"] == 2
            time.sleep(0.2)
        finally:
            stop.set()
            for t in threads:
                t.join(10)
        assert not failures, failures[:3]

        # traffic after the swap answers with the new generation
        status, body, _ = server.request(
            "POST", "/v1/encode",
            {"column": [float(v) for v in data[:, 0]]})
        assert status == 200 and body["generation"] == 2
        d2 = transform_b.dictionary.atoms
        c_ref, _ = batch_omp_matrix(d2, data[:, :1], EPS)
        assert body["support"] == [int(i) for i in
                                   c_ref.indices[:c_ref.indptr[1]]]

    def test_maintenance_swap_under_load_never_torn(self, server, data,
                                                    transform):
        """Concurrent encodes racing a maintenance hot-swap must each be
        bit-identical to ONE of the two generations — a response mixing
        the old Gram with the new atoms (or vice versa) is a torn read.

        The swapped-in generation comes from the real maintenance path:
        an ``OnlineMaintainer`` refreshes atoms off the serve thread and
        ``build_generation`` snapshots them for the registry swap.
        """
        from repro.online import MaintenanceConfig, OnlineMaintainer

        mnt = OnlineMaintainer(data, transform, seed=0,
                               config=MaintenanceConfig(batch=64))
        try:
            mnt.run(2)  # mutate the working copy: gen2 differs from gen1
            gen2_transform = mnt.build_generation()
        finally:
            mnt.close()
        d1 = transform.dictionary.atoms
        d2 = gen2_transform.dictionary.atoms
        assert not np.array_equal(d1, d2)

        k = 48
        ref = {}
        for number, atoms in ((1, d1), (2, d2)):
            c, _ = batch_omp_matrix(atoms, data[:, :k], EPS)
            ref[number] = c

        stop = threading.Event()
        failures = []
        seen_generations = set()

        def hammer(worker):
            j = worker
            while not stop.is_set():
                col = j % k
                status, body, _ = server.request(
                    "POST", "/v1/encode",
                    {"column": [float(v) for v in data[:, col]]})
                if status != 200:
                    failures.append((status, body))
                    return
                c_ref = ref.get(body["generation"])
                if c_ref is None:
                    failures.append(("generation", body["generation"]))
                    return
                lo = int(c_ref.indptr[col])
                hi = int(c_ref.indptr[col + 1])
                support_ok = body["support"] == [
                    int(i) for i in c_ref.indices[lo:hi]]
                coef_ok = np.array_equal(
                    np.asarray(body["coefficients"]),
                    np.asarray(c_ref.data[lo:hi]))
                if not (support_ok and coef_ok):
                    failures.append(("torn", body["generation"], col))
                    return
                seen_generations.add(body["generation"])
                j += 1

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        try:
            time.sleep(0.15)
            # the maintenance publish: warm-before-visible hot-swap
            gen = server.app.registry.add_transform(
                "default", gen2_transform, source="maintenance:test",
                set_default=True)
            assert gen.number == 2
            time.sleep(0.15)
        finally:
            stop.set()
            for t in threads:
                t.join(10)
        assert not failures, failures[:3]
        assert 2 in seen_generations, "no request saw the new generation"

    def test_metrics_expose_maintenance_status(self, data, transform):
        """GET /v1/metrics embeds drift status and atom-usage summaries
        while a maintenance loop is attached."""
        from repro.online import (
            MaintenanceConfig,
            MaintenanceLoop,
            OnlineMaintainer,
        )

        app = ServeApp(max_batch=8, max_wait_ms=1.0, observe=True)
        app.registry.add_transform("default", transform)
        observability.reset()
        mnt = OnlineMaintainer(data, transform, seed=0,
                               config=MaintenanceConfig(batch=32))
        loop = MaintenanceLoop(app.registry, "default", mnt,
                               interval_s=60.0)
        try:
            with _Server(app) as srv:
                srv.app.attach_maintenance(loop, start=False)
                loop.run_once()
                loop.run_once()
                status, report, _ = srv.request("GET", "/v1/metrics")
                assert status == 200
                maint = report["meta"]["maintenance"]
                assert maint["tenant"] == "default"
                assert maint["maintainer"]["steps"] == 2
                usage = maint["maintainer"]["atom_usage"]
                assert usage["atoms"] == transform.l
                assert usage["columns"] > 0
                counters = report["metrics"]["counters"]
                assert counters.get("online.steps", 0) == 2
                # the publication went through the registry hot-swap
                if maint["published_generations"]:
                    gens = srv.app.registry.describe()
                    default = gens["tenants"]["default"]
                    assert default["default_generation"] > 1
        finally:
            mnt.close()
            observability.disable()
            observability.reset()

    def test_pinned_generation_survives_swap(self, server, data,
                                             transform, transform_b,
                                             tmp_path):
        from repro.core import save_transform
        path = tmp_path / "gen2.npz"
        save_transform(transform_b, path)
        server.request("POST", "/v1/dictionaries", {"path": str(path)})
        # generation 1 can still be addressed explicitly
        status, body, _ = server.request(
            "POST", "/v1/encode",
            {"column": [float(v) for v in data[:, 5]], "generation": 1})
        assert status == 200 and body["generation"] == 1
        d1 = transform.dictionary.atoms
        c_ref, _ = batch_omp_matrix(d1, data[:, 5:6], EPS)
        assert body["support"] == [int(i) for i in
                                   c_ref.indices[:c_ref.indptr[1]]]

    def test_reconstruct_round_trip(self, server, data, transform):
        status, code, _ = server.request(
            "POST", "/v1/encode",
            {"column": [float(v) for v in data[:, 3]]})
        assert status == 200
        status, body, _ = server.request(
            "POST", "/v1/reconstruct",
            {"support": code["support"],
             "coefficients": code["coefficients"]})
        assert status == 200
        d = transform.dictionary.atoms
        expect = d[:, code["support"]] @ np.asarray(code["coefficients"])
        np.testing.assert_array_equal(np.asarray(body["column"]), expect)

    def test_reconstruct_validates_support(self, server):
        status, body, _ = server.request(
            "POST", "/v1/reconstruct",
            {"support": [0, 9999], "coefficients": [1.0, 2.0]})
        assert status == 400

    def test_pca_endpoint(self, server, data, transform):
        status, body, _ = server.request("POST", "/v1/pca", {"k": 3})
        assert status == 200
        assert len(body["eigenvalues"]) == 3
        assert body["eigenvalues"] == sorted(body["eigenvalues"],
                                             reverse=True)
        status, _, _ = server.request("POST", "/v1/pca", {"k": 0})
        assert status == 400

    def test_unknown_tenant_is_404(self, server):
        status, _, _ = server.request(
            "POST", "/v1/encode",
            {"column": [1.0] * M, "tenant": "ghost"})
        assert status == 404

    def test_backpressure_sets_retry_after(self, transform, data):
        app = ServeApp(max_batch=1, max_wait_ms=0.0, max_queue=1,
                       observe=False)
        app.registry.add_transform("default", transform)
        gate = threading.Event()
        real_encode = app.batcher._encode

        def slow_encode(*a, **kw):
            gate.wait(5.0)
            return real_encode(*a, **kw)

        app.batcher._encode = slow_encode
        with _Server(app) as srv:
            def encode(j):
                return srv.request(
                    "POST", "/v1/encode",
                    {"column": [float(v) for v in data[:, j % N]]},
                    timeout=30)

            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = [pool.submit(encode, j) for j in range(8)]
                time.sleep(0.3)
                gate.set()
                statuses = [f.result()[0] for f in futures]
                rejected = [f.result() for f in futures
                            if f.result()[0] == 429]
            assert any(s == 429 for s in statuses), statuses
            for _status, _body, headers in rejected:
                assert "Retry-After" in headers

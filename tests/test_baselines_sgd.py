"""Tests for the SGD baseline."""

import numpy as np
import pytest

from repro.baselines import distributed_sgd_lasso, sgd_lasso
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def regression_problem():
    rng = np.random.default_rng(61)
    a = rng.standard_normal((80, 50))
    x_true = np.zeros(50)
    x_true[[3, 17, 40]] = [2.0, -1.5, 1.0]
    y = a @ x_true + 0.01 * rng.standard_normal(80)
    return a, y, x_true


class TestSerialSGD:
    def test_reduces_objective(self, regression_problem):
        a, y, _ = regression_problem
        res = sgd_lasso(a, y, lam=1e-3, batch=16, lr=0.1, max_iter=500,
                        tol=0.0, seed=0)
        final = np.linalg.norm(a @ res.x - y) ** 2
        assert final < np.linalg.norm(y) ** 2 * 0.2

    def test_batch_clamped_to_rows(self, regression_problem):
        a, y, _ = regression_problem
        res = sgd_lasso(a, y, lam=1e-3, batch=10_000, max_iter=20, seed=0)
        assert res.iterations == 20

    def test_deterministic_with_seed(self, regression_problem):
        a, y, _ = regression_problem
        r1 = sgd_lasso(a, y, lam=1e-3, max_iter=50, seed=5)
        r2 = sgd_lasso(a, y, lam=1e-3, max_iter=50, seed=5)
        assert np.array_equal(r1.x, r2.x)

    def test_shape_validation(self, regression_problem):
        a, _, _ = regression_problem
        with pytest.raises(ValidationError):
            sgd_lasso(a, np.ones(3), lam=0.1)


class TestDistributedSGD:
    def test_matches_serial_solution_quality(self, regression_problem,
                                             small_cluster):
        a, y, _ = regression_problem
        res = distributed_sgd_lasso(a, y, 1e-3, small_cluster, batch=16,
                                    lr=0.1, max_iter=300, tol=0.0, seed=0)
        final = np.linalg.norm(a @ res.x - y) ** 2
        assert final < np.linalg.norm(y) ** 2 * 0.25
        assert res.spmd.simulated_time > 0

    def test_communication_bounded_by_batch(self, regression_problem,
                                            small_cluster):
        """Per-iteration traffic is one batch-length reduce + bcast —
        independent of M and N (the paper's SGD communication claim)."""
        a, y, _ = regression_problem
        batch, iters = 16, 10
        res = distributed_sgd_lasso(a, y, 1e-3, small_cluster, batch=batch,
                                    max_iter=iters, tol=0.0, seed=0)
        words = res.spmd.traffic.total_payload_words("reduce", "bcast")
        # + the one-time... no broadcast of y in SGD; allreduce carries
        # the stopping scalars separately.
        assert words == iters * 2 * batch

    def test_identical_batches_across_ranks(self, regression_problem,
                                            small_cluster):
        """The solution must not depend on the rank count (same batch
        stream everywhere)."""
        a, y, _ = regression_problem
        from repro.platform import platform_by_name
        r1 = distributed_sgd_lasso(a, y, 1e-3, platform_by_name("1x1"),
                                   batch=16, max_iter=40, tol=0.0, seed=3)
        r4 = distributed_sgd_lasso(a, y, 1e-3, small_cluster, batch=16,
                                   max_iter=40, tol=0.0, seed=3)
        assert np.allclose(r1.x, r4.x, atol=1e-10)

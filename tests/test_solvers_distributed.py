"""Distributed solver tests: LASSO and Power method on the emulator."""

import numpy as np
import pytest

from repro.baselines.dense import LocalDenseGramWorker
from repro.core import LocalGramWorker, exd_transform
from repro.solvers import distributed_lasso, distributed_power_method, power_method_transformed
from repro.solvers.lasso import lasso_gd


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(81)
    from repro.data.subspaces import union_of_subspaces
    a, _ = union_of_subspaces(40, 200, n_subspaces=3, dim=3, noise=0.01,
                              seed=81)
    x_true = np.zeros(200)
    x_true[[5, 60, 150]] = [2.0, -1.0, 1.5]
    y = a @ x_true
    return a, y, x_true


class TestDistributedLasso:
    def test_dense_backend_matches_serial(self, problem, small_cluster):
        a, y, _ = problem

        def factory(comm):
            return LocalDenseGramWorker(comm, a)
        dist, spmd = distributed_lasso(small_cluster, factory, y, 1e-3,
                                       lr=0.3, max_iter=150, tol=0.0)
        serial = lasso_gd(lambda v: a.T @ (a @ v), a.T @ y, a.shape[1],
                          1e-3, lr=0.3, max_iter=150, tol=0.0)
        assert np.allclose(dist.x, serial.x, atol=1e-8)
        assert spmd.simulated_time > 0

    def test_transform_backend_converges(self, problem, small_cluster):
        a, y, _ = problem
        t, _ = exd_transform(a, 80, 0.02, seed=0)
        d, c = t.dictionary.atoms, t.coefficients

        def factory(comm):
            return LocalGramWorker(comm, d, c)
        res, _ = distributed_lasso(small_cluster, factory, y, 1e-3,
                                   lr=0.3, max_iter=300, tol=1e-8)
        assert np.linalg.norm(a @ res.x - y) / np.linalg.norm(y) < 0.1

    def test_rank_count_invariance(self, problem):
        """Gradient descent is deterministic: 1 and 16 ranks agree."""
        from repro.platform import platform_by_name
        a, y, _ = problem

        def factory16(comm):
            return LocalDenseGramWorker(comm, a)
        r1, _ = distributed_lasso(platform_by_name("1x1"), factory16, y,
                                  1e-3, lr=0.3, max_iter=60, tol=0.0)
        r16, _ = distributed_lasso(platform_by_name("2x8"), factory16, y,
                                   1e-3, lr=0.3, max_iter=60, tol=0.0)
        assert np.allclose(r1.x, r16.x, atol=1e-8)


class TestDistributedPowerMethod:
    def test_matches_exact_spectrum(self, problem, small_cluster):
        a, _, _ = problem

        def factory(comm):
            return LocalDenseGramWorker(comm, a)
        res = distributed_power_method(small_cluster, factory, 3,
                                       tol=1e-10, max_iter=500, seed=0)
        exact = np.linalg.svd(a, compute_uv=False)[:3] ** 2
        assert np.allclose(res.eigenvalues, exact, rtol=1e-3)
        assert res.eigenvectors.shape == (a.shape[1], 3)
        assert res.spmd.simulated_time > 0

    def test_transform_flavour(self, problem, small_cluster):
        a, _, _ = problem
        t, _ = exd_transform(a, 100, 0.01, seed=0)
        res = power_method_transformed(t, small_cluster, 3, tol=1e-10,
                                       max_iter=500, seed=0)
        exact = np.linalg.svd(a, compute_uv=False)[:3] ** 2
        assert np.allclose(res.eigenvalues, exact, rtol=0.1)

    def test_eigenvectors_orthonormal(self, problem, small_cluster):
        a, _, _ = problem

        def factory(comm):
            return LocalDenseGramWorker(comm, a)
        res = distributed_power_method(small_cluster, factory, 4,
                                       tol=1e-10, max_iter=500, seed=0)
        v = res.eigenvectors
        assert np.allclose(v.T @ v, np.eye(4), atol=1e-4)

    def test_eigenvalues_descending(self, problem, small_cluster):
        a, _, _ = problem

        def factory(comm):
            return LocalDenseGramWorker(comm, a)
        res = distributed_power_method(small_cluster, factory, 4,
                                       tol=1e-9, max_iter=500, seed=0)
        vals = res.eigenvalues
        assert all(vals[i] >= vals[i + 1] - 1e-6 * vals[0]
                   for i in range(len(vals) - 1))

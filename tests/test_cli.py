"""CLI tests (invoked in-process through repro.cli.main)."""

import numpy as np
import pytest

from repro.cli import main
from repro.core import load_transform


class TestInfo:
    def test_lists_platforms_and_datasets(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in ("1x1", "1x4", "2x8", "8x8"):
            assert name in out
        for name in ("salina", "cancer", "lightfield"):
            assert name in out


class TestTune:
    def test_prints_tuning_table(self, capsys):
        assert main(["tune", "--dataset", "salina", "--n", "256",
                     "--eps", "0.1", "--platform", "1x4"]) == 0
        out = capsys.readouterr().out
        assert "L*" in out
        assert "alpha(L)" in out

    def test_memory_objective(self, capsys):
        assert main(["tune", "--dataset", "lightfield", "--n", "256",
                     "--objective", "memory"]) == 0
        assert "memory cost" in capsys.readouterr().out


class TestTransform:
    def test_fixed_size_saves_file(self, tmp_path, capsys):
        out_path = tmp_path / "t.npz"
        assert main(["transform", "--dataset", "salina", "--n", "256",
                     "--size", "48", "--eps", "0.1",
                     "--out", str(out_path)]) == 0
        assert out_path.exists()
        t = load_transform(out_path)
        assert t.l == 48 and t.n == 256
        assert "saved transform" in capsys.readouterr().out

    def test_from_npy_input(self, tmp_path, rng, capsys):
        data = rng.standard_normal((20, 3)) @ rng.standard_normal((3, 60))
        npy = tmp_path / "data.npy"
        np.save(npy, data)
        out_path = tmp_path / "t.npz"
        assert main(["transform", "--input", str(npy), "--size", "20",
                     "--eps", "0.05", "--out", str(out_path)]) == 0
        t = load_transform(out_path)
        assert t.shape == (20, 60)

    def test_bad_input_shape(self, tmp_path, capsys):
        npy = tmp_path / "bad.npy"
        np.save(npy, np.ones(5))
        assert main(["transform", "--input", str(npy), "--size", "2",
                     "--out", str(tmp_path / "t.npz")]) == 1
        assert "error:" in capsys.readouterr().err


class TestPca:
    def test_serial(self, capsys):
        assert main(["pca", "--dataset", "salina", "--n", "192",
                     "--k", "3", "--eps", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Top-3 eigenvalues" in out
        assert "cumulative error" in out

    def test_distributed(self, capsys):
        assert main(["pca", "--dataset", "lightfield", "--n", "192",
                     "--k", "2", "--platform", "1x4"]) == 0
        assert "simulated runtime on 1x4" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_metrics_json_written(self, tmp_path, capsys):
        import json
        path = tmp_path / "report.json"
        assert main(["transform", "--dataset", "salina", "--n", "128",
                     "--size", "24", "--metrics-json", str(path),
                     "--out", str(tmp_path / "t.npz")]) == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.run_report/v1"
        assert doc["meta"]["command"] == "transform"
        assert doc["metrics"]["counters"]["omp.columns_encoded"] == 128
        assert "exd.transform" in doc["spans"]
        assert "gram_cache" in doc and "clocks" in doc

    def test_distributed_transform_populates_mpi_sections(self, tmp_path):
        import json
        path = tmp_path / "report.json"
        assert main(["transform", "--dataset", "salina", "--n", "128",
                     "--size", "24", "--platform", "1x4",
                     "--distributed", "--metrics-json", str(path),
                     "--out", str(tmp_path / "t.npz")]) == 0
        doc = json.loads(path.read_text())
        assert doc["clocks"]["runs"] >= 1
        assert doc["clocks"]["simulated_time"] > 0
        assert doc["traffic"]  # per-op MPI words present
        assert doc["metrics"]["counters"]["mpi.collective.words"] > 0

    def test_distributed_requires_size(self, capsys):
        assert main(["transform", "--dataset", "salina", "--n", "128",
                     "--distributed"]) == 1
        assert "--distributed requires" in capsys.readouterr().err

    def test_profile_prints_report(self, capsys):
        assert main(["tune", "--dataset", "salina", "--n", "192",
                     "--platform", "1x4", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "== run report ==" in out
        assert "tuner.tune" in out

    def test_observability_off_without_flags(self, tmp_path):
        from repro import observability
        assert main(["transform", "--dataset", "salina", "--n", "96",
                     "--size", "16", "--out",
                     str(tmp_path / "t.npz")]) == 0
        assert not observability.enabled()


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

"""CLI tests (invoked in-process through repro.cli.main)."""

import numpy as np
import pytest

from repro.cli import main
from repro.core import load_transform


class TestInfo:
    def test_lists_platforms_and_datasets(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in ("1x1", "1x4", "2x8", "8x8"):
            assert name in out
        for name in ("salina", "cancer", "lightfield"):
            assert name in out


class TestTune:
    def test_prints_tuning_table(self, capsys):
        assert main(["tune", "--dataset", "salina", "--n", "256",
                     "--eps", "0.1", "--platform", "1x4"]) == 0
        out = capsys.readouterr().out
        assert "L*" in out
        assert "alpha(L)" in out

    def test_memory_objective(self, capsys):
        assert main(["tune", "--dataset", "lightfield", "--n", "256",
                     "--objective", "memory"]) == 0
        assert "memory cost" in capsys.readouterr().out


class TestTransform:
    def test_fixed_size_saves_file(self, tmp_path, capsys):
        out_path = tmp_path / "t.npz"
        assert main(["transform", "--dataset", "salina", "--n", "256",
                     "--size", "48", "--eps", "0.1",
                     "--out", str(out_path)]) == 0
        assert out_path.exists()
        t = load_transform(out_path)
        assert t.l == 48 and t.n == 256
        assert "saved transform" in capsys.readouterr().out

    def test_from_npy_input(self, tmp_path, rng, capsys):
        data = rng.standard_normal((20, 3)) @ rng.standard_normal((3, 60))
        npy = tmp_path / "data.npy"
        np.save(npy, data)
        out_path = tmp_path / "t.npz"
        assert main(["transform", "--input", str(npy), "--size", "20",
                     "--eps", "0.05", "--out", str(out_path)]) == 0
        t = load_transform(out_path)
        assert t.shape == (20, 60)

    def test_bad_input_shape(self, tmp_path, capsys):
        npy = tmp_path / "bad.npy"
        np.save(npy, np.ones(5))
        assert main(["transform", "--input", str(npy), "--size", "2",
                     "--out", str(tmp_path / "t.npz")]) == 1
        assert "error:" in capsys.readouterr().err


class TestPca:
    def test_serial(self, capsys):
        assert main(["pca", "--dataset", "salina", "--n", "192",
                     "--k", "3", "--eps", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Top-3 eigenvalues" in out
        assert "cumulative error" in out

    def test_distributed(self, capsys):
        assert main(["pca", "--dataset", "lightfield", "--n", "192",
                     "--k", "2", "--platform", "1x4"]) == 0
        assert "simulated runtime on 1x4" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_metrics_json_written(self, tmp_path, capsys):
        import json
        path = tmp_path / "report.json"
        assert main(["transform", "--dataset", "salina", "--n", "128",
                     "--size", "24", "--metrics-json", str(path),
                     "--out", str(tmp_path / "t.npz")]) == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.run_report/v1"
        assert doc["meta"]["command"] == "transform"
        assert doc["metrics"]["counters"]["omp.columns_encoded"] == 128
        assert "exd.transform" in doc["spans"]
        assert "gram_cache" in doc and "clocks" in doc

    def test_distributed_transform_populates_mpi_sections(self, tmp_path):
        import json
        path = tmp_path / "report.json"
        assert main(["transform", "--dataset", "salina", "--n", "128",
                     "--size", "24", "--platform", "1x4",
                     "--distributed", "--metrics-json", str(path),
                     "--out", str(tmp_path / "t.npz")]) == 0
        doc = json.loads(path.read_text())
        assert doc["clocks"]["runs"] >= 1
        assert doc["clocks"]["simulated_time"] > 0
        assert doc["traffic"]  # per-op MPI words present
        assert doc["metrics"]["counters"]["mpi.collective.words"] > 0

    def test_distributed_requires_size(self, capsys):
        assert main(["transform", "--dataset", "salina", "--n", "128",
                     "--distributed"]) == 1
        assert "--distributed requires" in capsys.readouterr().err

    def test_profile_prints_report(self, capsys):
        assert main(["tune", "--dataset", "salina", "--n", "192",
                     "--platform", "1x4", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "== run report ==" in out
        assert "tuner.tune" in out

    def test_observability_off_without_flags(self, tmp_path):
        from repro import observability
        assert main(["transform", "--dataset", "salina", "--n", "96",
                     "--size", "16", "--out",
                     str(tmp_path / "t.npz")]) == 0
        assert not observability.enabled()


class TestTransformKnobRegressions:
    """Satellite regressions: --block-width on the tuned path and
    falsy-vs-None handling of --memory-budget-mb."""

    def _store(self, tmp_path, n=300):
        assert main(["ingest", "--dataset", "salina", "--n", str(n),
                     "--store", str(tmp_path / "s.store"),
                     "--chunk-width", "128"]) == 0
        return str(tmp_path / "s.store")

    def test_block_width_reaches_tuned_path(self, tmp_path, monkeypatch):
        """--block-width without --size used to be parsed then silently
        dropped: ExtDict never saw it.  Capture the constructor kwargs
        and pin the plumbing."""
        import repro.cli as cli
        captured = {}
        real_extdict = cli.ExtDict

        class SpyExtDict(real_extdict):
            def __init__(self, **kwargs):
                captured.update(kwargs)
                super().__init__(**kwargs)

        monkeypatch.setattr(cli, "ExtDict", SpyExtDict)
        store = self._store(tmp_path)
        assert main(["transform", "--store", store,
                     "--block-width", "256", "--eps", "0.2",
                     "--out", str(tmp_path / "t.npz")]) == 0
        assert captured["block_width"] == 256

    def test_tuned_block_width_result_matches_default(self, tmp_path):
        """Plumbing the width through must not change the bits."""
        from repro.core import load_transform
        store = self._store(tmp_path)
        assert main(["transform", "--store", store, "--eps", "0.2",
                     "--out", str(tmp_path / "a.npz")]) == 0
        assert main(["transform", "--store", store, "--eps", "0.2",
                     "--block-width", "256",
                     "--out", str(tmp_path / "b.npz")]) == 0
        ta, tb = load_transform(tmp_path / "a.npz"), \
            load_transform(tmp_path / "b.npz")
        np.testing.assert_array_equal(ta.dictionary.atoms,
                                      tb.dictionary.atoms)
        np.testing.assert_array_equal(ta.coefficients.data,
                                      tb.coefficients.data)

    def test_zero_memory_budget_is_rejected(self, tmp_path, capsys):
        """--memory-budget-mb 0 used to be treated as *unset* (falsy)
        and silently ignored; it must be a hard error."""
        store = self._store(tmp_path)
        assert main(["transform", "--store", store, "--size", "24",
                     "--memory-budget-mb", "0",
                     "--out", str(tmp_path / "t.npz")]) == 1
        assert "must be positive" in capsys.readouterr().err

    def test_negative_memory_budget_is_rejected(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(["transform", "--store", store, "--size", "24",
                     "--memory-budget-mb", "-5",
                     "--out", str(tmp_path / "t.npz")]) == 1
        assert "must be positive" in capsys.readouterr().err

    def test_block_width_requires_store(self, capsys):
        assert main(["transform", "--dataset", "salina", "--n", "128",
                     "--block-width", "256"]) == 1
        assert "require --store" in capsys.readouterr().err


class TestServeCommand:
    def test_transform_spec_parsing(self):
        from repro.cli import _parse_transform_spec
        assert _parse_transform_spec("t.npz") == ("default", "t.npz")
        assert _parse_transform_spec("acme=t.npz") == ("acme", "t.npz")
        # '=' inside a path is not a tenant separator
        assert _parse_transform_spec("/tmp/a=b/t.npz") \
            == ("default", "/tmp/a=b/t.npz")

    def test_knob_validation(self, capsys):
        assert main(["serve", "--max-batch", "0"]) == 1
        assert "--max-batch" in capsys.readouterr().err
        assert main(["serve", "--max-queue", "0"]) == 1
        assert "--max-queue" in capsys.readouterr().err
        assert main(["serve", "--max-wait-ms", "-1"]) == 1
        assert "--max-wait-ms" in capsys.readouterr().err

    def test_missing_transform_file_is_an_error(self, tmp_path, capsys):
        assert main(["serve", "--transform",
                     str(tmp_path / "absent.npz")]) == 1
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestMpiBackendAndStoreDistributed:
    def _store(self, tmp_path, n=300):
        assert main(["ingest", "--dataset", "salina", "--n", str(n),
                     "--store", str(tmp_path / "s.store"),
                     "--chunk-width", "128"]) == 0
        return str(tmp_path / "s.store")

    def test_mpi_backend_flag_reported(self, tmp_path, capsys):
        assert main(["transform", "--dataset", "salina", "--n", "128",
                     "--size", "16", "--distributed",
                     "--platform", "1x4", "--mpi-backend", "threads",
                     "--out", str(tmp_path / "t.npz")]) == 0
        assert "mpi backend: threads" in capsys.readouterr().out

    def test_mpi_backend_default_cleared_after_run(self, tmp_path):
        from repro.mpi import default_mpi_backend_name
        assert main(["transform", "--dataset", "salina", "--n", "128",
                     "--size", "16", "--distributed",
                     "--platform", "1x4", "--mpi-backend", "threads",
                     "--out", str(tmp_path / "t.npz")]) == 0
        assert default_mpi_backend_name() == "auto"

    def test_store_distributed_matches_streamed(self, tmp_path):
        """--distributed now composes with --store: the rank-sharded
        encode must be bit-identical to the serial streamed one."""
        store = self._store(tmp_path)
        assert main(["transform", "--store", store, "--size", "24",
                     "--eps", "0.2", "--distributed",
                     "--platform", "1x4", "--mpi-backend", "threads",
                     "--out", str(tmp_path / "dist.npz")]) == 0
        assert main(["transform", "--store", store, "--size", "24",
                     "--eps", "0.2",
                     "--out", str(tmp_path / "serial.npz")]) == 0
        td = load_transform(tmp_path / "dist.npz")
        ts = load_transform(tmp_path / "serial.npz")
        np.testing.assert_array_equal(td.dictionary.atoms,
                                      ts.dictionary.atoms)
        np.testing.assert_array_equal(td.coefficients.data,
                                      ts.coefficients.data)
        np.testing.assert_array_equal(td.coefficients.indices,
                                      ts.coefficients.indices)
        np.testing.assert_array_equal(td.coefficients.indptr,
                                      ts.coefficients.indptr)

    def test_store_distributed_rejects_checkpoint(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(["transform", "--store", store, "--size", "24",
                     "--distributed", "--checkpoint",
                     str(tmp_path / "ckpt"),
                     "--out", str(tmp_path / "t.npz")]) == 1
        assert "cannot be combined" in capsys.readouterr().err

    def test_unknown_mpi_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["transform", "--dataset", "salina", "--size", "8",
                  "--mpi-backend", "fibers"])

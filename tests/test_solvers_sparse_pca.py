"""Sparse-PCA (truncated power method) tests."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.solvers.sparse_pca import (
    hard_truncate,
    sparse_principal_components,
    truncated_power_method,
)


@pytest.fixture(scope="module")
def sparse_spike_problem():
    """Covariance with a planted 4-sparse dominant direction."""
    rng = np.random.default_rng(7)
    n = 30
    spike = np.zeros(n)
    spike[[2, 9, 17, 25]] = [0.6, -0.5, 0.4, 0.48]
    spike /= np.linalg.norm(spike)
    gram = 25.0 * np.outer(spike, spike) + np.eye(n)
    noise = rng.standard_normal((n, n)) * 0.05
    gram += noise @ noise.T
    return gram, spike


class TestHardTruncate:
    def test_keeps_largest(self):
        x = np.array([3.0, -5.0, 1.0, 4.0])
        out = hard_truncate(x, 2)
        assert out.tolist() == [0.0, -5.0, 0.0, 4.0]

    def test_k_geq_n_is_copy(self):
        x = np.array([1.0, 2.0])
        out = hard_truncate(x, 5)
        assert np.array_equal(out, x)
        out[0] = 9.0
        assert x[0] == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            hard_truncate(np.ones(3), 0)


class TestTruncatedPowerMethod:
    def test_recovers_planted_support(self, sparse_spike_problem):
        gram, spike = sparse_spike_problem
        lam, vec, _ = truncated_power_method(lambda x: gram @ x, 30, 4,
                                             seed=0)
        assert set(np.nonzero(vec)[0]) == set(np.nonzero(spike)[0])
        assert abs(abs(float(vec @ spike)) - 1.0) < 0.02
        assert lam > 20.0

    def test_result_is_k_sparse_unit(self, sparse_spike_problem):
        gram, _ = sparse_spike_problem
        _, vec, _ = truncated_power_method(lambda x: gram @ x, 30, 4,
                                           seed=1)
        assert np.count_nonzero(vec) <= 4
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_k_equals_n_matches_dense_pca(self, sparse_spike_problem):
        gram, _ = sparse_spike_problem
        lam, _, _ = truncated_power_method(lambda x: gram @ x, 30, 30,
                                           seed=0, tol=1e-12,
                                           max_iter=2000)
        exact = float(np.linalg.eigvalsh(gram)[-1])
        assert lam == pytest.approx(exact, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValidationError):
            truncated_power_method(lambda x: x, 5, 6)

    def test_zero_operator(self):
        lam, _, _ = truncated_power_method(
            lambda x: np.zeros_like(x), 5, 2, seed=0)
        assert lam == 0.0


class TestSparseComponents:
    def test_multiple_components_decreasing(self, sparse_spike_problem):
        gram, _ = sparse_spike_problem
        values, comps = sparse_principal_components(
            lambda x: gram @ x, 30, 3, 4, seed=0)
        assert comps.shape == (30, 3)
        assert values[0] >= values[1] - 1e-6
        for j in range(3):
            assert np.count_nonzero(comps[:, j]) <= 4

    def test_on_exd_transform(self, union_data):
        """Sparse PCA through the transformed Gram operator."""
        from repro.core import TransformedGramOperator, exd_transform
        a, _ = union_data
        t, _ = exd_transform(a, 40, 0.02, seed=0)
        op = TransformedGramOperator(t)
        values, comps = sparse_principal_components(op, a.shape[1], 2,
                                                    10, seed=0)
        dense_top = float(np.linalg.eigvalsh(a.T @ a)[-1])
        # Sparse component explains a healthy share of the top variance.
        assert values[0] >= 0.3 * dense_top
        assert np.count_nonzero(comps[:, 0]) <= 10

    def test_validation(self):
        with pytest.raises(ValidationError):
            sparse_principal_components(lambda x: x, 5, 6, 2)

"""Integration tests: the paper's headline claims at miniature scale.

Each test exercises a full pipeline (data → transform → distributed
execution) and asserts the *relative* behaviour the paper reports —
who wins, and in which direction the trends point.
"""

import numpy as np
import pytest

from repro.baselines import (
    oasis_transform,
    rankmap_transform,
    rcss_transform,
    run_dense_distributed_gram,
)
from repro.core import (
    CostModel,
    ExtDict,
    exd_transform,
    run_distributed_gram,
    tune_dictionary_size,
)
from repro.data import load_dataset
from repro.platform import paper_platforms, platform_by_name


@pytest.fixture(scope="module")
def salina():
    return load_dataset("salina", n=768, seed=5).matrix


@pytest.fixture(scope="module")
def tuned_transform(salina):
    t, _ = exd_transform(salina, 96, 0.1, seed=0)
    return t


class TestTransformRuntimeClaims:
    """Fig. 7's qualitative content."""

    def test_extdict_beats_dense_on_one_core(self, salina,
                                             tuned_transform, rng):
        x = rng.standard_normal(salina.shape[1])
        cluster = platform_by_name("1x1")
        _, r_exd = run_distributed_gram(tuned_transform, x, cluster)
        _, r_dense = run_dense_distributed_gram(salina, x, cluster)
        assert r_exd.simulated_time < r_dense.simulated_time / 3

    def test_extdict_never_slower_than_dense(self, salina,
                                             tuned_transform, rng):
        x = rng.standard_normal(salina.shape[1])
        for cluster in paper_platforms():
            _, r_exd = run_distributed_gram(tuned_transform, x, cluster)
            _, r_dense = run_dense_distributed_gram(salina, x, cluster)
            assert r_exd.simulated_time <= r_dense.simulated_time * 1.3

    def test_sparse_beats_dense_coefficient_baselines(self):
        """ExD (sparse C) needs fewer FLOPs per update than RCSS/oASIS
        (dense C) at equal ε — Fig. 7's baseline ordering.  Needs
        N ≫ M·L for the N-proportional term to dominate, as in the
        paper's 54k-column datasets."""
        a = load_dataset("salina", n=3072, seed=5).matrix
        eps = 0.1
        t_exd, _ = exd_transform(a, 96, eps, seed=0)
        t_rcss = rcss_transform(a, eps, seed=0)
        t_oasis = oasis_transform(a, eps, seed=0)
        flops = lambda t: t.m * t.l + t.nnz
        assert flops(t_exd) < flops(t_rcss)
        assert flops(t_exd) < flops(t_oasis)


class TestMemoryClaims:
    """Table III's qualitative content."""

    def test_transform_shrinks_memory(self, salina, tuned_transform):
        dense_words = salina.size
        assert tuned_transform.memory_words < dense_words / 2

    def test_extdict_beats_dense_coefficient_baselines(self):
        a = load_dataset("salina", n=3072, seed=5).matrix
        eps = 0.1
        t_exd, _ = exd_transform(a, 96, eps, seed=0)
        t_rcss = rcss_transform(a, eps, seed=0)
        assert t_exd.memory_words < t_rcss.memory_words

    def test_platform_changes_extdict_memory(self, salina):
        """Only ExtDict adapts its footprint to P (Table III columns)."""
        results = {}
        for name in ("1x1", "8x8"):
            model = CostModel(platform_by_name(name))
            tuning = tune_dictionary_size(salina, 0.1, model,
                                          objective="memory", seed=0,
                                          candidates=[48, 96, 192])
            results[name] = tuning.best_size
        # Sizes may coincide on tiny data, but the machinery must
        # produce valid platform-specific choices.
        assert set(results.values()) <= {48, 96, 192}


class TestCostModelPrediction:
    """Fig. 8's content: the model predicts the simulated trend."""

    def test_predicted_and_simulated_runtime_correlate(self, salina, rng):
        x = rng.standard_normal(salina.shape[1])
        cluster = platform_by_name("1x4")
        model = CostModel(cluster)
        predicted, simulated = [], []
        for l in (48, 96, 192, 384):
            t, _ = exd_transform(salina, l, 0.1, seed=0)
            predicted.append(model.time_seconds(t.m, t.l, t.nnz))
            _, res = run_distributed_gram(t, x, cluster)
            simulated.append(res.simulated_time)
        corr = np.corrcoef(predicted, simulated)[0, 1]
        assert corr > 0.9


class TestEndToEndFramework:
    def test_fit_tune_execute_roundtrip(self, salina):
        cluster = platform_by_name("1x4")
        ext = ExtDict(eps=0.1, cluster=cluster, seed=0,
                      subset_fraction=0.2).fit(salina)
        # Learning on the transform reproduces the true spectrum.
        values, _, _ = ext.power_method(3, seed=0, tol=1e-9, max_iter=400)
        exact = np.linalg.svd(salina, compute_uv=False)[:3] ** 2
        rel = np.abs(values - exact) / exact
        assert np.all(rel < 0.15)

    def test_rankmap_matches_extdict_on_redundant_data(self):
        """Light-field-like data: tuned L* collapses to L_min, so
        ExtDict == RankMap there (the Fig. 7 tie)."""
        a = load_dataset("lightfield", n=512, seed=5).matrix
        model = CostModel(platform_by_name("2x8"))
        tuning = tune_dictionary_size(a, 0.1, model, seed=0,
                                      subset_fraction=0.4)
        t_rm = rankmap_transform(a, 0.1, seed=0, subset_fraction=0.4)
        assert tuning.best_size <= 2 * t_rm.l

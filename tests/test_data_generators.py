"""Tests for the dataset surrogates and registry."""

import numpy as np
import pytest

from repro.core import exd_transform
from repro.data import (
    DATASETS,
    cancer_cells_like,
    camera_subset_rows,
    lightfield_like,
    lightfield_patches,
    load_dataset,
    salina_like,
)
from repro.errors import ValidationError


class TestSalina:
    def test_shape_and_determinism(self):
        a1, _ = salina_like(n=128, seed=4)
        a2, _ = salina_like(n=128, seed=4)
        assert a1.shape == (203, 128)
        assert np.array_equal(a1, a2)

    def test_union_of_subspaces_compressible(self):
        a, _ = salina_like(n=256, seed=4)
        t, stats = exd_transform(a, 64, 0.1, seed=0)
        assert stats.all_converged
        assert t.alpha < 8  # far below M=203: dense data, sparse codes

    def test_validation(self):
        with pytest.raises(ValidationError):
            salina_like(m=2, n=10)


class TestCancer:
    def test_denser_geometry_than_salina(self):
        """The paper's Table II observation: Cancer Cells need more OMP
        work (denser codes) than the others at equal ε."""
        a_c, _ = cancer_cells_like(m=128, n=400, seed=4)
        a_s, _ = salina_like(m=128, n=400, seed=4)
        t_c, _ = exd_transform(a_c, 100, 0.1, seed=0)
        t_s, _ = exd_transform(a_s, 100, 0.1, seed=0)
        assert t_c.alpha > t_s.alpha

    def test_leakage_validation(self):
        with pytest.raises(ValidationError):
            cancer_cells_like(leakage=1.5)


class TestLightfield:
    def test_most_redundant(self):
        a_l, _ = lightfield_like(m=128, n=400, seed=4)
        a_s, _ = salina_like(m=128, n=400, seed=4)
        t_l, _ = exd_transform(a_l, 100, 0.1, seed=0)
        t_s, _ = exd_transform(a_s, 100, 0.1, seed=0)
        assert t_l.alpha <= t_s.alpha

    def test_patch_dataset_shape(self):
        a = lightfield_patches(cams=3, patch=4, image_size=16, n_images=2,
                               stride=4, seed=0)
        # 9 cameras x 16-pixel patches = 144 rows; 16 patches x 2 images.
        assert a.shape == (9 * 16, 32)

    def test_paper_dimensions(self):
        a = lightfield_patches(cams=5, patch=8, image_size=24, n_images=1,
                               stride=8, seed=0)
        assert a.shape[0] == 1600  # 25 cameras x 64 pixels

    def test_camera_subset_rows(self):
        rows = camera_subset_rows(cams_full=5, cams_sub=3, patch=8)
        assert rows.size == 576
        assert rows.min() >= 0 and rows.max() < 1600
        assert len(set(rows.tolist())) == 576

    def test_camera_subset_centre(self):
        rows = camera_subset_rows(cams_full=3, cams_sub=1, patch=2)
        # Central camera of a 3x3 grid is camera 4 -> rows 16..19.
        assert rows.tolist() == [16, 17, 18, 19]

    def test_subset_validation(self):
        with pytest.raises(ValidationError):
            camera_subset_rows(cams_full=3, cams_sub=5, patch=2)

    def test_views_are_correlated(self):
        """Different cameras see near-identical content (the redundancy
        super-resolution relies on)."""
        a = lightfield_patches(cams=3, patch=4, image_size=16, n_images=1,
                               stride=4, max_disparity=1, seed=0)
        ppatch = 16
        cam0 = a[:ppatch]
        cam4 = a[4 * ppatch:5 * ppatch]  # centre camera
        corr = np.corrcoef(cam0.ravel(), cam4.ravel())[0, 1]
        assert corr > 0.8


class TestRegistry:
    def test_all_names_load(self):
        for name in DATASETS:
            b = load_dataset(name, n=96, seed=1)
            assert b.matrix.shape[1] == 96
            assert b.paper_shape[1] > 10_000
            assert "model" in b.meta

    def test_scale_parameter(self):
        b = load_dataset("salina", scale=0.01, seed=1)
        expected = max(int(round(0.01 * 54_129)), 64)
        assert b.matrix.shape[1] == expected

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            load_dataset("imagenet")

    def test_invalid_scale(self):
        with pytest.raises(ValidationError):
            load_dataset("salina", scale=2.0)

    def test_deterministic(self):
        b1 = load_dataset("cancer", n=64, seed=9)
        b2 = load_dataset("cancer", n=64, seed=9)
        assert np.array_equal(b1.matrix, b2.matrix)

"""Rank-sharded ColumnStore streaming for the distributed transform.

``ColumnStore.shard_plan`` is the single source of truth for who reads
what: it must deterministically cover ``[0, N)`` with contiguous,
chunk-aligned, non-overlapping ranges for every rank count.  On top of
it, the store-backed ``exd_transform_distributed`` must return
*bit-identical* coefficients to the serial streaming encode — on either
SPMD backend — because every rank replays the streaming encoder's exact
panel-aligned pipeline on its own shard.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.exd import exd_transform, exd_transform_distributed
from repro.errors import ValidationError
from repro.platform.presets import platform_by_name
from repro.store import ColumnStore
from repro.store.streaming import sample_store_dictionary

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend requires the fork start method")


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    rng = np.random.default_rng(7)
    a = rng.standard_normal((24, 1500))
    path = tmp_path_factory.mktemp("shard") / "store"
    return ColumnStore.from_matrix(str(path), a, chunk_width=97)


class TestShardPlan:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 16])
    def test_covers_contiguously(self, store, p):
        plan = store.shard_plan(p)
        assert len(plan) == p
        n = store.shape[1]
        cursor = 0
        for lo, hi in plan:
            assert lo == cursor
            assert hi >= lo
            cursor = hi
        assert cursor == n

    @pytest.mark.parametrize("p", [2, 3, 5])
    def test_chunk_aligned(self, store, p):
        edges = {b[0] for b in store.chunk_bounds()} | {store.shape[1]}
        for lo, hi in store.shard_plan(p):
            assert lo in edges
            assert hi in edges

    def test_deterministic(self, store):
        assert store.shard_plan(4) == store.shard_plan(4)

    def test_more_ranks_than_chunks(self, store):
        chunks = len(store.chunk_bounds())
        plan = store.shard_plan(chunks + 5)
        nonempty = [s for s in plan if s[1] > s[0]]
        assert len(nonempty) == chunks
        assert sum(hi - lo for lo, hi in plan) == store.shape[1]

    def test_invalid_rank_count(self, store):
        with pytest.raises(ValidationError):
            store.shard_plan(0)


class TestSampleStoreDictionary:
    def test_matches_in_memory_sample(self, store):
        """The module-level sampler is the streaming encoder's replay:
        same seed, same panel-aligned normalisation, same atoms."""
        d1 = sample_store_dictionary(store, 30, seed=5)
        d2 = sample_store_dictionary(store, 30, seed=5)
        np.testing.assert_array_equal(d1.atoms, d2.atoms)
        np.testing.assert_array_equal(d1.indices, d2.indices)

    def test_unnormalized(self, store):
        d = sample_store_dictionary(store, 10, seed=1, normalize=False)
        raw = store.read_columns(d.indices)
        np.testing.assert_array_equal(d.atoms, raw)


class TestStoreDistributedTransform:
    def _assert_bit_identical(self, serial, candidate):
        t0, s0 = serial
        t1, s1 = candidate
        np.testing.assert_array_equal(t1.dictionary.atoms,
                                      t0.dictionary.atoms)
        np.testing.assert_array_equal(t1.coefficients.data,
                                      t0.coefficients.data)
        np.testing.assert_array_equal(t1.coefficients.indices,
                                      t0.coefficients.indices)
        np.testing.assert_array_equal(t1.coefficients.indptr,
                                      t0.coefficients.indptr)
        assert s1.columns == s0.columns
        assert s1.omp_iterations == s0.omp_iterations
        assert s1.flops == s0.flops

    def test_threads_matches_serial_streaming(self, store):
        serial = exd_transform(store, 40, 0.2, seed=11)
        t, s, res = exd_transform_distributed(
            store, 40, 0.2, platform_by_name("2x8"), seed=11,
            backend="threads")
        self._assert_bit_identical(serial, (t, s))
        assert res.backend == "threads"
        assert res.simulated_time > 0

    @needs_fork
    def test_processes_matches_threads_everywhere(self, store):
        cluster = platform_by_name("2x8")
        runs = {
            name: exd_transform_distributed(store, 40, 0.2, cluster,
                                            seed=11, backend=name)
            for name in ("threads", "processes")
        }
        tt, ts, tr = runs["threads"]
        pt, ps, pr = runs["processes"]
        self._assert_bit_identical((tt, ts), (pt, ps))
        assert (tr.traffic.snapshot() == pr.traffic.snapshot())
        assert tr.simulated_time == pr.simulated_time
        assert tr.simulated_energy == pr.simulated_energy
        assert tr.total_flops == pr.total_flops

    def test_block_width_does_not_change_bits(self, store):
        cluster = platform_by_name("1x4")
        t0, s0, _ = exd_transform_distributed(store, 40, 0.2, cluster,
                                              seed=11)
        t1, s1, _ = exd_transform_distributed(store, 40, 0.2, cluster,
                                              seed=11, block_width=256)
        self._assert_bit_identical((t0, s0), (t1, s1))

    def test_block_width_rejected_for_arrays(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((10, 40))
        with pytest.raises(ValidationError):
            exd_transform_distributed(a, 8, 0.3, platform_by_name("1x4"),
                                      seed=0, block_width=16)

    def test_oversized_dictionary_rejected(self, store):
        with pytest.raises(ValidationError):
            exd_transform_distributed(store, store.shape[1] + 1, 0.2,
                                      platform_by_name("1x4"))


@needs_fork
class TestStoreDistributedTuner:
    def test_backends_agree_on_store_input(self, store):
        """The distributed tuner reads each rank's candidate subsets
        straight from the store; its table must be backend-invariant."""
        from repro.core import CostModel
        from repro.core.tuner import tune_dictionary_size_distributed

        model = CostModel(platform_by_name("1x4"))
        results = {
            name: tune_dictionary_size_distributed(
                store, 0.25, model, candidates=(24, 48), seed=3,
                backend=name)
            for name in ("threads", "processes")
        }
        t_tab, t_res = results["threads"]
        p_tab, p_res = results["processes"]
        assert t_tab.best_size == p_tab.best_size
        assert t_tab.table == p_tab.table
        assert t_res.traffic.snapshot() == p_res.traffic.snapshot()
        assert t_res.simulated_time == p_res.simulated_time

"""Out-of-core column store + streaming encoder tests.

The load-bearing claim of ``repro.store`` is bit-identity: every
store-backed path (any block width, worker count, kill/resume point)
must reproduce the in-memory result exactly.  These tests pin that
down, plus the container's durability story (checksums, atomic
manifests, checkpoint refusal semantics) and the Eq. 4 memory budget.
"""

import json
import os
import tracemalloc

import numpy as np
import pytest

from repro.core import (
    ExtDict,
    exd_transform,
    measure_alpha,
    tune_dictionary_size,
)
from repro.core.cost_model import CostModel
from repro.data.subspaces import union_of_subspaces
from repro.errors import ValidationError
from repro.platform import platform_by_name
from repro.store import (
    CheckpointError,
    ColumnStore,
    StreamingEncoder,
    check_matrix_or_store,
    is_column_store,
    plan_block_width,
    take_columns,
)

M, N, L, EPS = 32, 2100, 40, 0.1


@pytest.fixture(scope="module")
def data():
    a, _ = union_of_subspaces(M, N, n_subspaces=4, dim=3,
                              noise=0.01, seed=5)
    return a


@pytest.fixture()
def store(data, tmp_path):
    s = ColumnStore.from_matrix(tmp_path / "a.store", data, chunk_width=256)
    assert s.n_chunks >= 8  # the acceptance criterion's chunking floor
    return s


class TestColumnStore:
    def test_round_trip(self, data, store):
        assert store.shape == data.shape
        assert store.dtype == np.float64
        np.testing.assert_array_equal(store.as_array(), data)

    def test_open_rereads_manifest(self, data, store, tmp_path):
        again = ColumnStore.open(tmp_path / "a.store")
        assert again.shape == data.shape
        assert again.fingerprint() == store.fingerprint()

    def test_read_columns_scattered(self, data, store):
        cols = np.array([0, 1, 255, 256, 1024, N - 1, 7])
        np.testing.assert_array_equal(store.read_columns(cols),
                                      data[:, cols])

    def test_read_range(self, data, store):
        np.testing.assert_array_equal(store.read_range(100, 700),
                                      data[:, 100:700])

    def test_iter_blocks_covers_matrix(self, data, store):
        seen = []
        for lo, hi, block in store.iter_blocks(512):
            assert lo % 512 == 0
            np.testing.assert_array_equal(block, data[:, lo:hi])
            seen.append((lo, hi))
        assert seen[0][0] == 0 and seen[-1][1] == N

    def test_append_tops_up_partial_chunk(self, data, tmp_path, rng):
        s = ColumnStore.from_matrix(tmp_path / "p.store", data[:, :300],
                                    chunk_width=256)
        extra = rng.standard_normal((M, 100))
        s.append_columns(extra)
        assert s.shape == (M, 400)
        # 300 = 256 + 44; the 100 new columns top the partial chunk up
        # to 256 and leave one new chunk of 144.
        assert s.n_chunks == 2
        np.testing.assert_array_equal(
            s.as_array(), np.concatenate([data[:, :300], extra], axis=1))

    def test_verify_detects_corruption(self, store, tmp_path):
        assert store.verify()
        chunk = sorted((tmp_path / "a.store" / "chunks").iterdir())[2]
        blob = bytearray(chunk.read_bytes())
        blob[-1] ^= 0xFF
        chunk.write_bytes(bytes(blob))
        with pytest.raises(ValidationError, match="checksum"):
            ColumnStore.open(tmp_path / "a.store").verify()

    def test_fingerprint_tracks_content(self, store, rng):
        before = store.fingerprint()
        store.append_columns(rng.standard_normal((M, 10)))
        assert store.fingerprint() != before

    def test_open_missing(self, tmp_path):
        with pytest.raises(ValidationError, match="no column store"):
            ColumnStore.open(tmp_path / "absent")

    def test_open_newer_format(self, store, tmp_path):
        manifest = tmp_path / "a.store" / "manifest.json"
        doc = json.loads(manifest.read_text())
        doc["format_version"] = 999
        manifest.write_text(json.dumps(doc))
        with pytest.raises(ValidationError, match="newer than"):
            ColumnStore.open(tmp_path / "a.store")

    def test_adapters(self, data, store):
        assert is_column_store(store) and not is_column_store(data)
        assert check_matrix_or_store(store, "A") is store
        cols = [5, 300, 2000]
        np.testing.assert_array_equal(take_columns(store, cols),
                                      data[:, cols])
        np.testing.assert_array_equal(take_columns(data, cols),
                                      data[:, cols])

    def test_generation_counts_appends_monotonically(self, store, rng):
        """The append generation counter lets pollers (the online
        maintainer) detect new data without touching a chunk."""
        g0 = store.generation
        store.append_columns(rng.standard_normal((M, 10)))
        assert store.generation == g0 + 1
        store.append_columns(rng.standard_normal((M, 5)))
        assert store.generation == g0 + 2

    def test_generation_survives_reopen(self, store, tmp_path, rng):
        store.append_columns(rng.standard_normal((M, 10)))
        expect = store.generation
        again = ColumnStore.open(tmp_path / "a.store")
        assert again.generation == expect
        assert again.last_append_at == store.last_append_at

    def test_last_append_timestamp(self, store, rng):
        assert store.last_append_at is None or \
            isinstance(store.last_append_at, float)
        store.append_columns(rng.standard_normal((M, 3)))
        assert isinstance(store.last_append_at, float)
        assert store.last_append_at > 0

    def test_describe_digest(self, data, store, rng):
        d = store.describe()
        assert d["rows"] == M and d["columns"] == N
        assert d["chunk_width"] == 256
        assert d["n_chunks"] == store.n_chunks
        assert d["generation"] == store.generation
        assert d["dtype"] == "float64"
        store.append_columns(rng.standard_normal((M, 10)))
        d2 = store.describe()
        assert d2["columns"] == N + 10
        assert d2["generation"] == d["generation"] + 1

    def test_generation_does_not_perturb_fingerprint_keys(self, store):
        """fingerprint() hashes content-bearing manifest keys only;
        the bookkeeping keys ride along without breaking resume."""
        before = store.fingerprint()
        again = ColumnStore.open(store.path)
        assert again.fingerprint() == before


class TestCrashSafeAppend:
    """Regression suite for the append-rewrites-live-chunk bug.

    ``append_columns`` used to top up the trailing partial chunk by
    rewriting its live file in place *before* the manifest replace: a
    writer killed in that window left a chunk wider than its manifest
    entry (or a torn file), corrupting the previous store.  The fix
    writes the widened chunk to a new *generation* file name that only
    the new manifest references, so a kill at any instant leaves the old
    store fully intact; the next append garbage-collects the orphan.
    """

    def _make(self, tmp_path, rng, n=300):
        a = rng.standard_normal((M, n))
        s = ColumnStore.from_matrix(tmp_path / "k.store", a,
                                    chunk_width=256)
        return a, s

    def test_kill_between_chunk_write_and_manifest_replace(
            self, tmp_path, rng, monkeypatch):
        """The acceptance scenario: die after the widened-chunk write,
        before the manifest lands; the store must reopen clean."""
        import repro.store.column_store as cs

        a, s = self._make(tmp_path, rng)
        fingerprint = s.fingerprint()
        extra = rng.standard_normal((M, 100))

        def killed_write_json(path, payload):
            raise KeyboardInterrupt("killed before manifest replace")

        monkeypatch.setattr(cs, "_atomic_write_json", killed_write_json)
        with pytest.raises(KeyboardInterrupt):
            s.append_columns(extra)
        monkeypatch.undo()

        # the new-generation chunk file is on disk but orphaned
        chunk_dir = tmp_path / "k.store" / "chunks"
        orphans = [p for p in chunk_dir.iterdir()
                   if ".g" in p.name and p.suffix == ".npy"]
        assert orphans, "expected an orphaned new-generation chunk"

        # the killed store reopens cleanly as the *previous* store
        again = ColumnStore.open(tmp_path / "k.store")
        assert again.shape == (M, 300)
        assert again.fingerprint() == fingerprint
        assert again.verify()
        np.testing.assert_array_equal(again.as_array(), a)

        # the next append reclaims the orphan and lands consistently
        # (the reclaimed generation name may be legitimately re-used by
        # this very append, so assert no *unreferenced* file survives)
        extra2 = rng.standard_normal((M, 50))
        again.append_columns(extra2)
        assert again.verify()
        np.testing.assert_array_equal(
            again.as_array(), np.concatenate([a, extra2], axis=1))
        # a superseded generation becomes the next orphan; an explicit
        # GC pass (what the next append runs first) clears the dir
        again.collect_orphans()
        manifest = json.loads(
            (tmp_path / "k.store" / "manifest.json").read_text())
        referenced = {c["file"].split("/")[-1] for c in manifest["chunks"]}
        on_disk = {p.name for p in chunk_dir.iterdir()}
        assert on_disk == referenced, "orphans were not garbage-collected"

    def test_kill_during_chunk_write_leaves_tmp_orphan(
            self, tmp_path, rng, monkeypatch):
        """Die mid chunk write: only a ``.npy.tmp`` temporary leaks."""
        a, s = self._make(tmp_path, rng)
        extra = rng.standard_normal((M, 100))
        real_replace = os.replace
        calls = {"n": 0}

        def kill_first_replace(src, dst):
            calls["n"] += 1
            raise OSError("killed during chunk finalise")

        monkeypatch.setattr("repro.store.column_store.os.replace",
                            kill_first_replace)
        with pytest.raises(OSError, match="killed"):
            s.append_columns(extra)
        monkeypatch.undo()
        assert calls["n"] == 1

        again = ColumnStore.open(tmp_path / "k.store")
        assert again.verify()
        np.testing.assert_array_equal(again.as_array(), a)
        again.append_columns(extra)
        tmps = list((tmp_path / "k.store" / "chunks").glob("*.npy.tmp"))
        assert not tmps
        np.testing.assert_array_equal(
            again.as_array(), np.concatenate([a, extra], axis=1))
        assert real_replace is os.replace  # monkeypatch fully unwound

    def test_generation_filenames_never_rewrite_live_chunks(
            self, tmp_path, rng):
        """Successive partial-chunk top-ups write fresh file names."""
        a, s = self._make(tmp_path, rng, n=100)
        seen = set()
        for step in range(3):
            trailing = json.loads(
                (tmp_path / "k.store" / "manifest.json").read_text()
            )["chunks"][-1]["file"]
            assert trailing not in seen
            seen.add(trailing)
            s.append_columns(rng.standard_normal((M, 10)))
        assert s.verify()
        # gen counter climbed: chunk-000000.g001, .g002, ...
        trailing = json.loads(
            (tmp_path / "k.store" / "manifest.json").read_text()
        )["chunks"][-1]["file"]
        assert ".g003." in trailing

    def test_full_chunks_stay_generation_zero(self, tmp_path, rng):
        a = rng.standard_normal((M, 512))  # two exactly-full chunks
        s = ColumnStore.from_matrix(tmp_path / "k.store", a,
                                    chunk_width=256)
        s.append_columns(rng.standard_normal((M, 256)))
        names = [c["file"] for c in json.loads(
            (tmp_path / "k.store" / "manifest.json").read_text())["chunks"]]
        assert all(".g" not in n for n in names)

    def test_collect_orphans_counts_and_keeps_live_files(
            self, tmp_path, rng):
        a, s = self._make(tmp_path, rng)
        chunk_dir = tmp_path / "k.store" / "chunks"
        (chunk_dir / "chunk-000099.npy").write_bytes(b"junk")
        (chunk_dir / "chunk-000001.npy.tmp").write_bytes(b"junk")
        (chunk_dir / "notes.txt").write_text("keep me")  # not chunk-like
        assert s.collect_orphans() == 2
        assert (chunk_dir / "notes.txt").exists()
        assert s.verify()
        np.testing.assert_array_equal(s.as_array(), a)


class TestStreamingBitIdentity:
    """Store-backed exd_transform == in-memory, bit for bit."""

    @pytest.fixture(scope="class")
    def reference(self, data):
        return exd_transform(data, L, EPS, seed=2)

    @pytest.mark.parametrize("block_width", [256, 1024])
    def test_block_widths(self, data, store, reference, block_width):
        ref_t, ref_stats = reference
        t, stats = exd_transform(store, L, EPS, seed=2,
                                 block_width=block_width)
        np.testing.assert_array_equal(t.dictionary.atoms,
                                      ref_t.dictionary.atoms)
        np.testing.assert_array_equal(t.dictionary.indices,
                                      ref_t.dictionary.indices)
        np.testing.assert_array_equal(t.coefficients.data,
                                      ref_t.coefficients.data)
        np.testing.assert_array_equal(t.coefficients.indices,
                                      ref_t.coefficients.indices)
        np.testing.assert_array_equal(t.coefficients.indptr,
                                      ref_t.coefficients.indptr)
        assert stats == ref_stats

    def test_workers_parity(self, store, reference):
        ref_t, ref_stats = reference
        t, stats = exd_transform(store, L, EPS, seed=2, workers=2,
                                 block_width=512)
        np.testing.assert_array_equal(t.coefficients.data,
                                      ref_t.coefficients.data)
        assert stats == ref_stats

    def test_transformation_error_blockwise(self, data, store, reference):
        ref_t, _ = reference
        assert ref_t.transformation_error(store) == pytest.approx(
            ref_t.transformation_error(data), abs=1e-12)

    def test_streaming_knobs_require_store(self, data, tmp_path):
        with pytest.raises(ValidationError, match="require a ColumnStore"):
            exd_transform(data, L, EPS, seed=2,
                          checkpoint_dir=tmp_path / "ck")

    def test_misaligned_block_width_rejected(self, store):
        with pytest.raises(ValidationError, match="multiple of 256"):
            exd_transform(store, L, EPS, seed=2, block_width=300)


class TestCheckpointResume:
    def _encoder(self, store, ck, **kwargs):
        return StreamingEncoder(store, L, EPS, seed=2, checkpoint_dir=ck,
                                block_width=kwargs.pop("block_width", 256),
                                **kwargs)

    def test_full_resume_reads_nothing(self, store, tmp_path):
        ck = tmp_path / "ck"
        t1, s1, r1 = self._encoder(store, ck).run()
        assert r1.blocks_encoded == r1.blocks_total and not r1.resumed
        t2, s2, r2 = self._encoder(store, ck).run(resume=True)
        assert r2.resumed and r2.blocks_reused == r1.blocks_total
        assert r2.chunks_read == 0 and r2.bytes_read == 0
        np.testing.assert_array_equal(t1.coefficients.data,
                                      t2.coefficients.data)
        assert s1 == s2

    def test_partial_resume_reencodes_only_missing(self, store, tmp_path):
        ck = tmp_path / "ck"
        t1, _, r1 = self._encoder(store, ck).run()
        spills = sorted((ck / "blocks").iterdir())
        for victim in (spills[0], spills[3]):
            victim.unlink()
        with pytest.warns(UserWarning, match="re-encod"):
            t2, _, r2 = self._encoder(store, ck).run(resume=True)
        assert r2.blocks_encoded == 2
        assert r2.blocks_reused == r1.blocks_total - 2
        np.testing.assert_array_equal(t1.coefficients.data,
                                      t2.coefficients.data)
        np.testing.assert_array_equal(t1.coefficients.indptr,
                                      t2.coefficients.indptr)

    def test_fresh_run_refuses_existing_checkpoint(self, store, tmp_path):
        ck = tmp_path / "ck"
        self._encoder(store, ck).run()
        with pytest.raises(CheckpointError, match="resume=True"):
            self._encoder(store, ck).run()

    def test_param_mismatch_refused(self, store, tmp_path):
        ck = tmp_path / "ck"
        self._encoder(store, ck).run()
        bad = StreamingEncoder(store, L, 0.2, seed=2, checkpoint_dir=ck,
                               block_width=256)
        with pytest.raises(CheckpointError, match="eps"):
            bad.run(resume=True)

    def test_store_change_refused(self, store, tmp_path, rng):
        ck = tmp_path / "ck"
        self._encoder(store, ck).run()
        store.append_columns(rng.standard_normal((M, 5)))
        with pytest.raises(CheckpointError, match="fingerprint"):
            self._encoder(store, ck).run(resume=True)

    def test_unpinned_resume_adopts_checkpoint_width(self, store, tmp_path):
        """Regression: `--resume` without repeating the budget flag must
        adopt the checkpoint's block width, not fail on a mismatch."""
        ck = tmp_path / "ck"
        t1, _, r1 = self._encoder(store, ck, block_width=512).run()
        enc = StreamingEncoder(store, L, EPS, seed=2, checkpoint_dir=ck)
        t2, _, r2 = enc.run(resume=True)
        assert r2.block_width == 512
        assert r2.blocks_reused == r1.blocks_total
        np.testing.assert_array_equal(t1.coefficients.data,
                                      t2.coefficients.data)

    def test_pinned_resume_still_strict(self, store, tmp_path):
        ck = tmp_path / "ck"
        self._encoder(store, ck, block_width=512).run()
        with pytest.raises(CheckpointError, match="block_width"):
            self._encoder(store, ck, block_width=256).run(resume=True)


class TestMemoryBudget:
    def test_plan_block_width_aligned(self):
        w = plan_block_width(M, L, 4 << 20, n=N)
        assert w % 256 == 0 and w > 0

    def test_tiny_budget_floors_with_warning(self):
        with pytest.warns(UserWarning, match="budget"):
            assert plan_block_width(M, L, 1024) == 256

    def test_peak_memory_tracks_budget(self, tmp_path):
        """Streaming keeps the working set near the planned budget
        instead of materialising A.  tracemalloc bounds are generous:
        allocator slack, the spill CSC triples and the final assembled
        C all ride on top of the planned block."""
        a, _ = union_of_subspaces(64, 4096, n_subspaces=4, dim=3,
                                  noise=0.01, seed=6)
        s = ColumnStore.from_matrix(tmp_path / "big.store", a,
                                    chunk_width=512)
        del a
        budget = 1 << 20
        enc = StreamingEncoder(s, 48, EPS, seed=0,
                               memory_budget_bytes=budget)
        tracemalloc.start()
        enc.run()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        full = 64 * 4096 * 8  # 2 MiB: what in-memory would materialise
        assert peak < 4 * budget + full // 2


class TestSubsetReaders:
    """α estimation and the tuner read from disk, same answers."""

    def test_measure_alpha_parity(self, data, store):
        ref = measure_alpha(data, L, EPS, trials=2, seed=4)
        est = measure_alpha(store, L, EPS, trials=2, seed=4)
        assert est.values == ref.values
        assert est.feasible == ref.feasible

    def test_tuner_parity(self, data, store):
        model = CostModel(platform_by_name("1x4"))
        ref = tune_dictionary_size(data, EPS, model, seed=4,
                                   candidates=[24, 48, 96])
        got = tune_dictionary_size(store, EPS, model, seed=4,
                                   candidates=[24, 48, 96])
        assert got.best_size == ref.best_size
        assert got.table == ref.table


class TestFrameworkStore:
    def test_from_store_matches_dense_fit(self, data, store, tmp_path):
        dense = ExtDict(EPS, size=L, seed=2).fit(data)
        backed = ExtDict.from_store(store.path, eps=EPS, size=L, seed=2)
        np.testing.assert_array_equal(
            backed.transform_.dictionary.atoms,
            dense.transform_.dictionary.atoms)
        np.testing.assert_array_equal(
            backed.transform_.coefficients.data,
            dense.transform_.coefficients.data)

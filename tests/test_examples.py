"""Examples stay runnable: compile all, execute the fast ones."""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Fast enough to execute inside the unit-test suite (< ~15 s each).
FAST_EXAMPLES = ("evolving_data.py", "subspace_clustering.py",
                 "execution_timeline.py", "out_of_core.py")


def test_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 9


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    proc = subprocess.run([sys.executable, str(EXAMPLES_DIR / name)],
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()

"""Hypothesis property tests for the paper's core invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    TransformedGramOperator,
    exd_transform,
    extend_transform,
    memory_cost_per_node,
    runtime_cost,
)
from repro.data.subspaces import union_of_subspaces


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.01, 0.5, allow_nan=False),
       st.integers(10, 30))
def test_transform_error_bound_always_holds(seed, eps, size):
    """Eq. 1: ‖A − DC‖_F ≤ ε‖A‖_F whenever every column converged."""
    a, _ = union_of_subspaces(16, 60, n_subspaces=2, dim=2, noise=0.02,
                              seed=seed)
    transform, stats = exd_transform(a, size, eps, seed=seed)
    if stats.all_converged:
        assert transform.transformation_error(a) <= eps + 1e-9


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_gram_operator_error_bounded_by_transform_error(seed):
    """‖Ĝx − Gx‖ is controlled by the transform error: for unit x,
    ‖ÂᵀÂ − AᵀA‖ ≤ (2ε + ε²)‖A‖² when ‖Â − A‖ ≤ ε‖A‖ (spectral ≤ F)."""
    rng = np.random.default_rng(seed)
    a, _ = union_of_subspaces(16, 50, n_subspaces=2, dim=2, noise=0.01,
                              seed=seed)
    eps = 0.1
    transform, stats = exd_transform(a, 25, eps, seed=seed)
    assume(stats.all_converged)
    op = TransformedGramOperator(transform)
    x = rng.standard_normal(50)
    x /= np.linalg.norm(x)
    diff = np.linalg.norm(op(x) - a.T @ (a @ x))
    a_f = np.linalg.norm(a)
    assert diff <= (2 * eps + eps * eps) * a_f * a_f + 1e-8


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 500), st.integers(1, 500), st.integers(0, 10_000),
       st.integers(1, 64), st.floats(0, 100, allow_nan=False))
def test_runtime_cost_monotone(m, l, nnz, p, rbf):
    """Eq. 2 is monotone in nnz and (weakly) decreasing in P."""
    base = runtime_cost(m, l, nnz, p, rbf)
    assert runtime_cost(m, l, nnz + 10, p, rbf) > base
    if p > 1:
        assert runtime_cost(m, l, nnz, p + 1, rbf) <= base + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 200), st.integers(1, 200), st.integers(0, 10_000),
       st.integers(1, 10_000), st.integers(1, 64))
def test_memory_cost_decomposition(m, l, nnz, n, p):
    """Eq. 4 equals dictionary words + distributed share exactly."""
    cost = memory_cost_per_node(m, l, nnz, n, p)
    assert cost == m * l + (nnz + n) / p
    assert cost >= m * l


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 10))
def test_evolve_append_preserves_error_bound(seed, n_new):
    """Updating with same-subspace columns keeps the global ε bound
    and never grows the dictionary."""
    rng = np.random.default_rng(seed)
    a, model = union_of_subspaces(16, 60, n_subspaces=2, dim=2,
                                  noise=0.0, seed=seed)
    transform, stats = exd_transform(a, 30, 0.05, seed=seed)
    assume(stats.all_converged)
    new_cols = np.stack(
        [model.bases[i % 2] @ rng.standard_normal(2)
         for i in range(n_new)], axis=1)
    res = extend_transform(transform, new_cols, seed=seed)
    combined = np.concatenate([a, new_cols], axis=1)
    assert res.transform.transformation_error(combined) <= 0.05 + 1e-6
    assert res.transform.n == 60 + n_new


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_distributed_gram_equals_serial(seed):
    """Algorithm 2 computes exactly the serial operator, any data."""
    from repro.core import run_distributed_gram
    from repro.platform import platform_by_name
    rng = np.random.default_rng(seed)
    a, _ = union_of_subspaces(12, 40, n_subspaces=2, dim=2, noise=0.02,
                              seed=seed)
    l = int(rng.integers(5, 30))
    transform, _ = exd_transform(a, l, 0.2, seed=seed)
    x = rng.standard_normal(40)
    serial = TransformedGramOperator(transform)(x)
    dist, _ = run_distributed_gram(transform, x, platform_by_name("1x4"))
    assert np.allclose(dist, serial, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.05, 0.4, allow_nan=False))
def test_alpha_at_most_ambient_dimension(seed, eps):
    """A code can never be denser than M (OMP residual hits zero by
    then) — and on subspace data it is far below."""
    a, model = union_of_subspaces(14, 50, n_subspaces=2, dim=3,
                                  noise=0.05, seed=seed)
    transform, _ = exd_transform(a, 28, eps, seed=seed)
    assert transform.alpha <= a.shape[0] + 1e-9

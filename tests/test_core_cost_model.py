"""Tests for the performance model (Eqs. 2–4)."""

import pytest

from repro.core import (
    CostModel,
    dense_memory_per_node,
    dense_runtime_cost,
    energy_cost,
    memory_cost_per_node,
    runtime_cost,
)
from repro.errors import PlatformError, ValidationError
from repro.platform import RbfRatios, platform_by_name


class TestClosedForms:
    def test_eq2_value(self):
        # (M·L + nnz)/P + min(M,L)·R
        assert runtime_cost(100, 50, 1000, 4, 2.0) == \
            pytest.approx((100 * 50 + 1000) / 4 + 50 * 2.0)

    def test_eq2_min_switches_at_m(self):
        small = runtime_cost(100, 50, 0, 2, 1.0)
        large = runtime_cost(100, 200, 0, 2, 1.0)
        assert small == pytest.approx(100 * 50 / 2 + 50)
        assert large == pytest.approx(100 * 200 / 2 + 100)

    def test_eq2_no_comm_single_processor(self):
        assert runtime_cost(100, 50, 1000, 1, 5.0) == \
            pytest.approx(100 * 50 + 1000)

    def test_eq3_same_form(self):
        assert energy_cost(10, 5, 7, 2, 3.0) == \
            pytest.approx(runtime_cost(10, 5, 7, 2, 3.0))

    def test_eq4_value(self):
        assert memory_cost_per_node(10, 5, 100, 200, 4) == \
            pytest.approx(50 + 300 / 4)

    def test_dense_baseline(self):
        assert dense_runtime_cost(100, 1000, 4, 2.0) == \
            pytest.approx(2 * 100 * 1000 / 4 + 200)
        assert dense_memory_per_node(100, 1000, 4) == \
            pytest.approx((100 * 1000 + 1000) / 4)

    def test_validation(self):
        with pytest.raises(ValidationError):
            runtime_cost(0, 5, 1, 1, 1.0)
        with pytest.raises(ValidationError):
            runtime_cost(5, 0, 1, 1, 1.0)
        with pytest.raises(ValidationError):
            memory_cost_per_node(5, 5, -1, 10, 1)


class TestCostModel:
    @pytest.fixture()
    def model(self):
        return CostModel(platform_by_name("2x8"))

    def test_default_rbf_from_spec(self, model):
        assert model.rbf.time > 0
        assert model.p == 16

    def test_explicit_rbf(self):
        model = CostModel(platform_by_name("1x4"),
                          rbf=RbfRatios(time=10.0, energy=5.0))
        assert model.time(10, 5, 0) == pytest.approx(
            50 / 4 + 5 * 10.0)
        assert model.energy(10, 5, 0) == pytest.approx(
            50 / 4 + 5 * 5.0)

    def test_seconds_conversion(self, model):
        flops = model.time(100, 50, 1000)
        assert model.time_seconds(100, 50, 1000) == pytest.approx(
            flops / model.cluster.machine.flop_rate)

    def test_energy_joules_conversion(self, model):
        fe = model.energy(100, 50, 1000)
        assert model.energy_joules(100, 50, 1000) == pytest.approx(
            fe * model.cluster.machine.energy_per_flop)

    def test_objective_dispatch(self, model):
        assert model.objective("time", 10, 5, 7, 100) == \
            model.time(10, 5, 7)
        assert model.objective("memory", 10, 5, 7, 100) == \
            model.memory(10, 5, 7, 100)
        with pytest.raises(PlatformError):
            model.objective("latency", 10, 5, 7, 100)

    def test_transform_beats_dense_when_sparse(self, model):
        # With nnz << M·N and L << N the transform must win Eq. 2.
        m, n, l, nnz = 100, 10_000, 50, 20_000
        assert model.time(m, l, nnz) < model.dense_time(m, n)

    def test_memory_monotone_in_nnz(self, model):
        lo = model.memory(100, 50, 1000, 500)
        hi = model.memory(100, 50, 2000, 500)
        assert hi > lo

"""Hypothesis property tests for OMP — the invariants ExD relies on."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.linalg import batch_omp_solve, omp_solve


def make_problem(seed, m, l, sparsity):
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((m, l))
    d /= np.linalg.norm(d, axis=0, keepdims=True)
    support = rng.choice(l, size=min(sparsity, l), replace=False)
    coef = rng.standard_normal(support.size)
    return d, d[:, support] @ coef


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.integers(6, 24), st.integers(2, 10),
       st.integers(1, 3))
def test_omp_residual_criterion_always_met_when_feasible(seed, m, l, k):
    """If the signal lies in span(D), ε=0 coding must succeed."""
    assume(k <= l <= m)
    d, a = make_problem(seed, m, l, k)
    res = batch_omp_solve(d, a, eps=0.0)
    assert res.converged
    recon = d[:, res.support] @ res.coefficients if res.support.size \
        else np.zeros(m)
    assert np.linalg.norm(a - recon) <= 1e-6 * max(np.linalg.norm(a), 1.0)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000),
       st.floats(0.01, 0.5, allow_nan=False))
def test_omp_residual_below_relative_tolerance(seed, eps):
    d, a = make_problem(seed, 16, 10, 3)
    res = batch_omp_solve(d, a, eps=eps)
    assert res.residual_norm <= eps * np.linalg.norm(a) + 1e-10


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_batch_equals_reference(seed):
    d, a = make_problem(seed, 14, 9, 3)
    norm = max(np.linalg.norm(a), 1.0)
    for eps in (0.0, 0.1):
        ref = omp_solve(d, a, eps)
        fast = batch_omp_solve(d, a, eps)
        assert fast.converged == ref.converged
        assert abs(fast.residual_norm - ref.residual_norm) <= 1e-6 * norm


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.0, 0.3, allow_nan=False))
def test_looser_eps_never_denser(seed, eps):
    """Monotonicity: a larger tolerance cannot need more atoms."""
    d, a = make_problem(seed, 16, 10, 4)
    tight = batch_omp_solve(d, a, eps=eps)
    loose = batch_omp_solve(d, a, eps=min(eps + 0.2, 0.9))
    assert loose.support.size <= tight.support.size


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_sparsity_bounded_by_subspace_dimension(seed):
    """Union-of-subspaces guarantee: a signal in a K-dim subspace whose
    spanning atoms are in D gets a ≤K-sparse code at ε=0."""
    rng = np.random.default_rng(seed)
    m, k = 20, 3
    basis = np.linalg.qr(rng.standard_normal((m, k)))[0]
    # Dictionary: k atoms spanning the subspace + distractors outside.
    atoms_in = basis @ rng.standard_normal((k, k)) + \
        np.eye(m)[:, :k] * 0  # keep in-subspace
    # Ensure the in-subspace atoms are independent AND well conditioned:
    # Batch-OMP solves through the Gram matrix, so the achievable
    # residual floor scales with cond(atoms)² · machine-eps, and a
    # nearly-singular random mix can stall above any fixed tolerance.
    assume(np.linalg.matrix_rank(atoms_in) == k)
    assume(np.linalg.cond(atoms_in) < 1e4)
    distract = rng.standard_normal((m, 5))
    distract -= basis @ (basis.T @ distract)  # orthogonal to subspace
    d = np.concatenate([atoms_in, distract], axis=1)
    d = d / np.maximum(np.linalg.norm(d, axis=0, keepdims=True), 1e-12)
    a = basis @ rng.standard_normal(k)
    # eps=1e-5 rather than 1e-8: the progressive-Cholesky residual
    # update loses ~half the working precision when the in-subspace
    # atoms are nearly collinear, so some seeds stall just above 1e-8
    # with the support already correct.
    res = batch_omp_solve(d, a, eps=1e-5)
    assert res.converged
    assert res.support.size <= k

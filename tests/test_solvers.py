"""Tests for the iterative solvers (Adagrad, LASSO, Ridge, ElasticNet)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.solvers import (
    AdagradState,
    elastic_net_gd,
    lasso_gd,
    ridge_gd,
    soft_threshold,
)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(71)
    a = rng.standard_normal((60, 40))
    x_true = np.zeros(40)
    x_true[[2, 11, 30]] = [1.5, -2.0, 0.8]
    y = a @ x_true
    gram = a.T @ a
    return a, y, x_true, gram


class TestAdagrad:
    def test_step_shrinks_with_history(self):
        state = AdagradState(3, lr=1.0)
        g = np.ones(3)
        s1 = state.step(g)
        s2 = state.step(g)
        assert np.all(s2 < s1)

    def test_rare_coordinates_get_larger_steps(self):
        state = AdagradState(2, lr=1.0)
        state.step(np.array([10.0, 0.1]))
        rates = state.effective_rates()
        assert rates[1] > rates[0]

    def test_shape_validation(self):
        state = AdagradState(3)
        with pytest.raises(ValidationError):
            state.step(np.ones(4))

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            AdagradState(0)
        with pytest.raises(ValidationError):
            AdagradState(3, lr=-1)


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        x = np.array([3.0, -2.0, 0.5])
        out = soft_threshold(x, 1.0)
        assert np.allclose(out, [2.0, -1.0, 0.0])

    def test_vector_thresholds(self):
        x = np.array([3.0, 3.0])
        out = soft_threshold(x, np.array([1.0, 2.5]))
        assert np.allclose(out, [2.0, 0.5])


class TestLassoGD:
    def test_recovers_sparse_signal(self, problem):
        a, y, x_true, gram = problem
        res = lasso_gd(lambda v: gram @ v, a.T @ y, 40, lam=1e-3, lr=0.3,
                       max_iter=800, tol=1e-9)
        assert np.linalg.norm(a @ res.x - y) / np.linalg.norm(y) < 0.05
        # Large true coefficients recovered; most others near zero.
        assert np.argmax(np.abs(res.x)) == 11

    def test_l1_produces_sparser_solutions(self, problem):
        a, y, _, gram = problem
        weak = lasso_gd(lambda v: gram @ v, a.T @ y, 40, lam=1e-4,
                        lr=0.3, max_iter=300)
        strong = lasso_gd(lambda v: gram @ v, a.T @ y, 40, lam=5.0,
                          lr=0.3, max_iter=300)
        nnz = lambda x: int(np.sum(np.abs(x) > 1e-6))
        assert nnz(strong.x) <= nnz(weak.x)

    def test_convergence_flag_and_history(self, problem):
        a, y, _, gram = problem
        res = lasso_gd(lambda v: gram @ v, a.T @ y, 40, lam=1e-3, lr=0.3,
                       max_iter=2000, tol=1e-7)
        assert res.converged
        assert len(res.history) == res.iterations
        assert res.history[-1] <= 1e-7

    def test_objective_tracking(self, problem):
        a, y, _, gram = problem
        res = lasso_gd(lambda v: gram @ v, a.T @ y, 40, lam=1e-2, lr=0.3,
                       max_iter=100, y_sq=float(y @ y))
        objs = res.objective_history
        assert len(objs) == res.iterations
        assert objs[-1] < objs[0]

    def test_callback_invoked(self, problem):
        a, y, _, gram = problem
        calls = []
        lasso_gd(lambda v: gram @ v, a.T @ y, 40, lam=1e-3,
                 max_iter=5, tol=0.0, callback=lambda it, x: calls.append(it))
        assert calls == [1, 2, 3, 4, 5]

    def test_warm_start(self, problem):
        a, y, x_true, gram = problem
        res = lasso_gd(lambda v: gram @ v, a.T @ y, 40, lam=1e-4, lr=0.1,
                       max_iter=50, x0=x_true)
        assert np.linalg.norm(a @ res.x - y) / np.linalg.norm(y) < 0.05

    def test_validation(self, problem):
        a, y, _, gram = problem
        with pytest.raises(ValidationError):
            lasso_gd(lambda v: gram @ v, a.T @ y, 40, lam=-1.0)
        with pytest.raises(ValidationError):
            lasso_gd(lambda v: gram @ v, np.ones(3), 40, lam=0.1)


class TestRidgeAndElasticNet:
    def test_ridge_matches_closed_form(self, problem):
        a, y, _, gram = problem
        lam = 0.5
        res = ridge_gd(lambda v: gram @ v, a.T @ y, 40, lam=lam, lr=0.5,
                       max_iter=5000, tol=1e-12)
        closed = np.linalg.solve(gram + lam * np.eye(40), a.T @ y)
        assert np.linalg.norm(res.x - closed) / np.linalg.norm(closed) < 0.05

    def test_elastic_net_between_lasso_and_ridge(self, problem):
        a, y, _, gram = problem
        res = elastic_net_gd(lambda v: gram @ v, a.T @ y, 40, lam1=1e-3,
                             lam2=0.1, lr=0.3, max_iter=500)
        assert np.linalg.norm(a @ res.x - y) / np.linalg.norm(y) < 0.1

    def test_elastic_net_validation(self, problem):
        a, y, _, gram = problem
        with pytest.raises(ValidationError):
            elastic_net_gd(lambda v: gram @ v, a.T @ y, 40, lam1=-1,
                           lam2=0.0)

    def test_ridge_validation(self, problem):
        a, y, _, gram = problem
        with pytest.raises(ValidationError):
            ridge_gd(lambda v: gram @ v, a.T @ y, 40, lam=-0.1)

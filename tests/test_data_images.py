"""Tests for image utilities."""

import numpy as np
import pytest

from repro.data import (
    add_noise_snr,
    image_to_patches,
    patches_to_image,
    psnr,
    synthetic_image,
)
from repro.errors import ValidationError


class TestSyntheticImage:
    def test_range_and_determinism(self):
        img = synthetic_image(32, seed=2)
        assert img.shape == (32, 32)
        assert img.min() >= 0.0 and img.max() <= 1.0
        assert np.array_equal(img, synthetic_image(32, seed=2))

    def test_size_validation(self):
        with pytest.raises(ValidationError):
            synthetic_image(4)


class TestPatching:
    def test_roundtrip_non_overlapping(self):
        img = synthetic_image(16, seed=0)
        patches = image_to_patches(img, 4)
        assert patches.shape == (16, 16)
        back = patches_to_image(patches, (16, 16), 4)
        assert np.allclose(back, img)

    def test_roundtrip_overlapping(self):
        img = synthetic_image(16, seed=0)
        patches = image_to_patches(img, 4, stride=2)
        back = patches_to_image(patches, (16, 16), 4, stride=2)
        assert np.allclose(back, img)

    def test_patch_count_with_stride(self):
        img = np.zeros((10, 10))
        patches = image_to_patches(img, 4, stride=3)
        assert patches.shape[1] == 9  # 3 positions per axis

    def test_validation(self):
        img = np.zeros((8, 8))
        with pytest.raises(ValidationError):
            image_to_patches(img, 9)
        with pytest.raises(ValidationError):
            image_to_patches(np.zeros(8), 2)
        with pytest.raises(ValidationError):
            patches_to_image(np.zeros((4, 4)), (8, 8), 3)


class TestNoiseAndPsnr:
    def test_snr_level(self):
        rng_signal = synthetic_image(64, seed=1)
        noisy = add_noise_snr(rng_signal, 20.0, seed=3)
        noise = noisy - rng_signal
        measured = 10 * np.log10(np.mean(rng_signal ** 2) /
                                 np.mean(noise ** 2))
        assert measured == pytest.approx(20.0, abs=1.0)

    def test_zero_signal(self):
        z = np.zeros((4, 4))
        assert np.array_equal(add_noise_snr(z, 10.0, seed=0), z)

    def test_psnr_identical_is_inf(self):
        img = synthetic_image(16, seed=0)
        assert psnr(img, img) == np.inf

    def test_psnr_decreases_with_noise(self):
        img = synthetic_image(32, seed=0)
        lightly = add_noise_snr(img, 30.0, seed=1)
        heavily = add_noise_snr(img, 5.0, seed=1)
        assert psnr(img, lightly) > psnr(img, heavily)

    def test_psnr_shape_mismatch(self):
        with pytest.raises(ValidationError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_psnr_known_value(self):
        ref = np.ones((10, 10))
        test = ref + 0.1
        assert psnr(ref, test) == pytest.approx(20.0, abs=1e-9)

"""Regression tests for the observability-PR correctness sweep.

Each class pins one historical bug:

* ``TestSubsetColumnsConsistency`` — the serial tuner reported
  ``2·max(feasible candidate)`` columns while the distributed tuner
  reported ``2·best_size``, so the same tuning run printed different
  "alpha estimated from N columns" numbers depending on the backend.
* ``TestPowerMethodSpectrumExhaustion`` — asking for more eigenpairs
  than the Gram matrix's rank used to append zero vectors and phantom
  ``0.0`` eigenvalues instead of truncating.
* ``TestTimerGuards`` — ``Timer.__exit__`` guarded misuse with
  ``assert``, which ``python -O`` strips.
* ``TestRelativeStoppingRule`` — the distributed solvers' stopping rule
  divided by ``max(‖x‖, 1.0)``, silently turning the relative test
  absolute whenever ``‖x‖ < 1`` and stopping far too early on
  small-scale solutions.
"""

import numpy as np
import pytest

from repro.baselines.dense import LocalDenseGramWorker
from repro.core import CostModel, tune_dictionary_size
from repro.core.tuner import tune_dictionary_size_distributed
from repro.platform import platform_by_name
from repro.solvers import distributed_lasso, distributed_power_method
from repro.solvers.lasso import lasso_gd
from repro.utils.timer import Timer


@pytest.fixture(scope="module")
def tuning_data():
    from repro.data.subspaces import union_of_subspaces
    a, _ = union_of_subspaces(40, 400, n_subspaces=4, dim=3, noise=0.01,
                              seed=21)
    return a


class TestSubsetColumnsConsistency:
    CANDIDATES = [40, 60, 90]

    def test_serial_and_distributed_agree(self, tuning_data):
        """Same data, seed and candidates => identical subset_columns."""
        model = CostModel(platform_by_name("1x4"))
        serial = tune_dictionary_size(tuning_data, 0.1, model,
                                      candidates=self.CANDIDATES, seed=3)
        dist, _ = tune_dictionary_size_distributed(
            tuning_data, 0.1, model, candidates=self.CANDIDATES, seed=3)
        assert serial.subset_columns == dist.subset_columns
        assert serial.best_size == dist.best_size

    def test_reports_columns_actually_read(self, tuning_data):
        """subset_columns is max over EVALUATED candidates, feasible or
        not — the columns the run actually touched."""
        n = tuning_data.shape[1]
        n_sub = max(min(n, int(round(0.25 * n))), 2)
        model = CostModel(platform_by_name("1x4"))
        result = tune_dictionary_size(tuning_data, 0.1, model,
                                      candidates=self.CANDIDATES, seed=3)
        expected = max(min(max(n_sub, 2 * l), n) for l in self.CANDIDATES)
        assert result.subset_columns == expected


class TestPowerMethodSpectrumExhaustion:
    def test_truncates_at_numerical_rank(self, small_cluster):
        """rank-1 Gram, k=3: exactly one eigenpair, no zero padding."""
        a = np.zeros((1, 3))
        a[0, 0] = 1.0  # Gram = diag(1, 0, 0): rank 1

        def factory(comm):
            return LocalDenseGramWorker(comm, a)

        res = distributed_power_method(small_cluster, factory, 3, seed=5)
        assert len(res.eigenvalues) == 1
        assert res.eigenvalues[0] == pytest.approx(1.0)
        assert res.eigenvectors.shape == (3, 1)
        assert abs(res.eigenvectors[0, 0]) == pytest.approx(1.0)
        assert len(res.iterations) == 1

    def test_zero_gram_yields_empty_spectrum(self, small_cluster):
        a = np.zeros((2, 5))

        def factory(comm):
            return LocalDenseGramWorker(comm, a)

        res = distributed_power_method(small_cluster, factory, 2, seed=0)
        assert len(res.eigenvalues) == 0
        assert res.eigenvectors.shape == (5, 0)

    def test_full_rank_still_returns_k(self, small_cluster):
        rng = np.random.default_rng(17)
        a = rng.standard_normal((8, 6))

        def factory(comm):
            return LocalDenseGramWorker(comm, a)

        res = distributed_power_method(small_cluster, factory, 3, seed=1)
        exact = np.sort(np.linalg.eigvalsh(a.T @ a))[::-1][:3]
        assert len(res.eigenvalues) == 3
        assert np.allclose(res.eigenvalues, exact, rtol=1e-4)


class TestTimerGuards:
    def test_exit_without_enter_raises(self):
        with pytest.raises(RuntimeError, match="without entering"):
            Timer().__exit__(None, None, None)

    def test_nested_entry_raises(self):
        t = Timer()
        with t:
            with pytest.raises(RuntimeError, match="already running"):
                t.__enter__()
        assert not t.running

    def test_sequential_reentry_accumulates(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= first
        assert not t.running


class TestRelativeStoppingRule:
    """Small learning rate keeps every iterate norm far below 1, the
    regime where the old ``max(‖x‖, 1.0)`` denominator silently turned
    the documented relative test into an absolute one."""

    @pytest.fixture()
    def small_scale_problem(self):
        from repro.data.subspaces import union_of_subspaces
        a, _ = union_of_subspaces(40, 200, n_subspaces=3, dim=3,
                                  noise=0.01, seed=81)
        x_true = np.zeros(200)
        x_true[[5, 60, 150]] = np.array([2.0, -1.0, 1.5]) * 1e-3
        return a, a @ x_true

    def test_first_change_is_exactly_relative(self, small_scale_problem,
                                              small_cluster):
        """From x₀=0, ‖x₁−x₀‖/‖x₁‖ = 1 whatever the scale.

        The old rule recorded ‖x₁‖/max(‖x₁‖, 1) = ‖x₁‖ ≈ 1e-3 here.
        """
        a, y = small_scale_problem

        def factory(comm):
            return LocalDenseGramWorker(comm, a)

        dist, _ = distributed_lasso(small_cluster, factory, y, 1e-8,
                                    lr=1e-4, max_iter=1, tol=0.0)
        assert dist.history[0] == pytest.approx(1.0)

    def test_does_not_stop_on_absolute_change(self, small_scale_problem,
                                              small_cluster):
        """tol=0.5: relative changes start at 1.0, so the solver must
        run several iterations; the old absolute rule saw
        ‖Δx‖ ≈ 1e-3 ≤ 0.5 and declared convergence after one."""
        a, y = small_scale_problem

        def factory(comm):
            return LocalDenseGramWorker(comm, a)

        dist, _ = distributed_lasso(small_cluster, factory, y, 1e-8,
                                    lr=1e-4, max_iter=50, tol=0.5)
        assert dist.converged
        assert dist.iterations > 2
        assert dist.history[-1] <= 0.5

    def test_matches_serial_at_small_scale(self, small_scale_problem,
                                           small_cluster):
        """Fixed iteration count: distributed == serial bit-for-bit at
        small scale (the rule change alters stopping, not updates)."""
        a, y = small_scale_problem

        def factory(comm):
            return LocalDenseGramWorker(comm, a)

        dist, _ = distributed_lasso(small_cluster, factory, y, 1e-8,
                                    lr=1e-4, max_iter=30, tol=0.0)
        serial = lasso_gd(lambda v: a.T @ (a @ v), a.T @ y, a.shape[1],
                          1e-8, lr=1e-4, max_iter=30, tol=0.0)
        assert np.allclose(dist.x, serial.x, atol=1e-12)


class TestDictionaryGramCached:
    """``Dictionary.gram()`` used to recompute ``DᵀD`` on every call.

    The method did a bare ``self.atoms.T @ self.atoms`` while every hot
    path (encode, serve, streaming) already kept the same product in the
    process-wide Gram LRU — so callers that innocently used the public
    accessor paid an O(M·L²) product per call.  It now routes through
    :func:`repro.linalg.parallel_omp.cached_gram`.
    """

    def test_gram_computed_once(self):
        from repro.core.dictionary import Dictionary
        from repro.linalg.parallel_omp import GRAM_CACHE

        rng = np.random.default_rng(0)
        d = Dictionary(rng.standard_normal((30, 12)),
                       np.arange(12, dtype=np.int64))
        GRAM_CACHE.clear()
        g1 = d.gram()
        g2 = d.gram()
        assert g1 is g2, "second call must return the cached array"
        assert GRAM_CACHE.misses == 1
        assert GRAM_CACHE.hits == 1
        np.testing.assert_allclose(g1, d.atoms.T @ d.atoms,
                                   rtol=1e-12, atol=1e-12)

    def test_encode_reuses_public_gram(self):
        """The encode path and the public accessor share one entry."""
        from repro.core.dictionary import Dictionary
        from repro.linalg.omp import batch_omp_matrix
        from repro.linalg.parallel_omp import GRAM_CACHE

        rng = np.random.default_rng(1)
        d = Dictionary(rng.standard_normal((30, 12)),
                       np.arange(12, dtype=np.int64))
        a = rng.standard_normal((30, 40))
        GRAM_CACHE.clear()
        d.gram()
        batch_omp_matrix(d, a, 0.5)
        assert GRAM_CACHE.misses == 1, \
            "encode recomputed a Gram the accessor already cached"

"""Unit tests for repro.sparse.csr."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sparse import CSRMatrix


@pytest.fixture()
def sample_dense():
    return np.array([
        [0.0, 2.0, 0.0],
        [1.0, 0.0, 0.0],
        [0.0, 3.0, 4.0],
        [0.0, 0.0, 0.0],
    ])


@pytest.fixture()
def sample_csr(sample_dense):
    return CSRMatrix.from_dense(sample_dense)


class TestConstruction:
    def test_roundtrip(self, sample_csr, sample_dense):
        assert np.array_equal(sample_csr.to_dense(), sample_dense)
        assert sample_csr.nnz == 4

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            CSRMatrix.from_dense([1.0, 2.0])

    def test_validation_col_out_of_range(self):
        with pytest.raises(ValidationError):
            CSRMatrix([1.0], [7], [0, 1], (1, 3))

    def test_validation_indptr_length(self):
        with pytest.raises(ValidationError):
            CSRMatrix([1.0], [0], [0, 1], (2, 3))


class TestOps:
    def test_row(self, sample_csr, sample_dense):
        for i in range(4):
            assert np.array_equal(sample_csr.row(i), sample_dense[i])

    def test_row_out_of_range(self, sample_csr):
        with pytest.raises(ValidationError):
            sample_csr.row(4)

    def test_slice_rows(self, sample_csr, sample_dense):
        sub = sample_csr.slice_rows(1, 3)
        assert np.array_equal(sub.to_dense(), sample_dense[1:3])

    def test_matvec(self, sample_csr, sample_dense, rng):
        x = rng.standard_normal(3)
        assert np.allclose(sample_csr.matvec(x), sample_dense @ x)

    def test_rmatvec(self, sample_csr, sample_dense, rng):
        y = rng.standard_normal(4)
        assert np.allclose(sample_csr.rmatvec(y), sample_dense.T @ y)

    def test_matmul_2d(self, sample_csr, sample_dense, rng):
        x = rng.standard_normal((3, 2))
        assert np.allclose(sample_csr @ x, sample_dense @ x)

    def test_transpose_csc_roundtrip(self, sample_csr, sample_dense):
        csc = sample_csr.transpose_csc()
        assert np.array_equal(csc.to_dense(), sample_dense.T)
        assert np.array_equal(csc.transpose_csr().to_dense(), sample_dense)

    def test_nbytes(self, sample_csr):
        assert sample_csr.nbytes > 0

"""The multiprocess SPMD backend: resolution, shm plane, and parity.

The process backend's contract is *accounting identity*: any rank
program produces the same returns, the same traffic-ledger word counts,
the same virtual-clock totals, and (for the store-backed distributed
transform) bit-identical coefficients, whichever backend executes it.
These tests pin that contract, plus the backend-resolution precedence,
the shared-memory payload codec, and the store's deterministic shard
plan.
"""

import glob
import multiprocessing
import os

import numpy as np
import pytest

from repro import observability as obs
from repro.errors import MPIEmulatorError
from repro.mpi import (
    MPI_BACKEND_ENV,
    default_mpi_backend_name,
    resolve_mpi_backend,
    run_spmd,
    set_default_mpi_backend,
)
from repro.mpi.shm import (
    SegmentRegistry,
    ShmPayload,
    decode_payload,
    encode_payload,
    export_array,
    map_array,
    shm_threshold_bytes,
    sweep_orphans,
)
from repro.platform.presets import platform_by_name

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend requires the fork start method")


@pytest.fixture(autouse=True)
def _clear_backend_default():
    yield
    set_default_mpi_backend(None)


# ----------------------------------------------------------------------
# Backend resolution precedence
# ----------------------------------------------------------------------
class TestBackendResolution:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(MPI_BACKEND_ENV, raising=False)
        assert default_mpi_backend_name() == "auto"

    def test_env_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(MPI_BACKEND_ENV, "threads")
        assert default_mpi_backend_name() == "threads"
        assert resolve_mpi_backend(None, size=4) == "threads"

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv(MPI_BACKEND_ENV, "threads")
        set_default_mpi_backend("processes")
        assert default_mpi_backend_name() == "processes"

    def test_argument_overrides_everything(self, monkeypatch):
        monkeypatch.setenv(MPI_BACKEND_ENV, "processes")
        set_default_mpi_backend("processes")
        assert resolve_mpi_backend("threads", size=4) == "threads"

    def test_unknown_names_rejected(self):
        with pytest.raises(MPIEmulatorError):
            resolve_mpi_backend("mpi4py", size=2)
        with pytest.raises(MPIEmulatorError):
            set_default_mpi_backend("fibers")

    def test_auto_degrades_to_threads_on_single_core(self, monkeypatch):
        monkeypatch.setattr("repro.mpi.runtime._visible_cores", lambda: 1)
        monkeypatch.delenv(MPI_BACKEND_ENV, raising=False)
        assert resolve_mpi_backend(None, size=4) == "threads"

    def test_auto_is_threads_for_single_rank(self):
        assert resolve_mpi_backend("auto", size=1) == "threads"

    def test_explicit_processes_without_fork_raises(self, monkeypatch):
        monkeypatch.setattr("repro.mpi.runtime._fork_capable",
                            lambda: False)
        with pytest.raises(MPIEmulatorError):
            resolve_mpi_backend("processes", size=2)
        # auto must degrade silently on the same host
        assert resolve_mpi_backend("auto", size=2) == "threads"

    def test_result_reports_backend(self):
        res = run_spmd(2, lambda comm: comm.allreduce(1),
                       backend="threads")
        assert res.backend == "threads"

    @needs_fork
    def test_result_reports_process_backend(self):
        res = run_spmd(2, lambda comm: comm.allreduce(1),
                       backend="processes")
        assert res.backend == "processes"


# ----------------------------------------------------------------------
# Shared-memory payload codec
# ----------------------------------------------------------------------
class TestShmCodec:
    def _namer(self, prefix="repro-test-shm"):
        seq = iter(range(1000))
        return lambda: f"{prefix}-{os.getpid()}-{next(seq)}"

    def test_export_map_roundtrip_copy(self):
        arr = np.arange(300.0).reshape(30, 10)
        payload = export_array(arr, f"repro-test-shm-{os.getpid()}-rt")
        assert isinstance(payload, ShmPayload)
        out = map_array(payload, copy=True)
        np.testing.assert_array_equal(out, arr)
        assert out.flags.writeable

    def test_export_map_roundtrip_pinned(self):
        arr = np.arange(64, dtype=np.int64)
        payload = export_array(arr, f"repro-test-shm-{os.getpid()}-pin")
        view, seg = map_array(payload, copy=False)
        try:
            np.testing.assert_array_equal(view, arr)
        finally:
            del view
            seg.close()

    def test_small_arrays_ride_the_pipe(self):
        small = np.ones(4)
        enc = encode_payload(small, self._namer())
        assert enc is small  # untouched, no segment created

    def test_large_arrays_use_shm(self):
        big = np.ones(shm_threshold_bytes() // 8 + 16)
        enc = encode_payload(big, self._namer())
        assert isinstance(enc, ShmPayload)
        np.testing.assert_array_equal(decode_payload(enc), big)

    def test_nested_containers(self):
        big = np.ones(shm_threshold_bytes() // 8 + 16)
        value = {"pair": (big, np.arange(3)), "tag": 7}
        enc = encode_payload(value, self._namer())
        assert isinstance(enc["pair"][0], ShmPayload)
        dec = decode_payload(enc)
        np.testing.assert_array_equal(dec["pair"][0], big)
        np.testing.assert_array_equal(dec["pair"][1], np.arange(3))
        assert dec["tag"] == 7

    def test_decode_reports_names(self):
        big = np.zeros(shm_threshold_bytes() // 8 + 16)
        enc = encode_payload([big, big + 1], self._namer())
        seen: list = []
        decode_payload(enc, on_name=seen.append)
        assert len(seen) == 2

    def test_decode_reinterns_dtype_singleton(self):
        import pickle
        arr = pickle.loads(pickle.dumps(np.arange(5, dtype=np.int64)))
        out = decode_payload(arr)
        assert out.dtype is np.dtype(np.int64)

    def test_registry_drain_and_sweep(self):
        prefix = f"repro-test-orph-{os.getpid()}"
        registry = SegmentRegistry()
        for i in range(3):
            export_array(np.ones(10), f"{prefix}-{i}")
            registry.add(f"{prefix}-{i}")
        assert registry.drain() == 3
        assert registry.drain() == 0
        export_array(np.ones(10), f"{prefix}-stray")
        if os.path.isdir("/dev/shm"):
            assert sweep_orphans(prefix) == 1
            assert not glob.glob(f"/dev/shm/{prefix}*")
        else:  # still reclaim it on exotic hosts
            from repro.mpi.shm import unlink_quiet
            unlink_quiet(f"{prefix}-stray")


# ----------------------------------------------------------------------
# Cross-backend accounting parity
# ----------------------------------------------------------------------
def _mixed_traffic_program(comm):
    """Exercises p2p, large-payload bcast, callable ops and subcomms."""
    rank, size = comm.Get_rank(), comm.Get_size()
    big = np.full(20_000, float(rank))  # above the shm threshold
    got = comm.bcast(big if rank == 0 else None, root=0)
    total = comm.allreduce(float(got[0]) + rank,
                           op=lambda a, b: a + b)
    if rank == 0:
        for dst in range(1, size):
            comm.send({"round": dst}, dest=dst, tag=3)
    else:
        total += comm.recv(source=0, tag=3)["round"]
    sub = comm.Split(color=rank % 2, key=rank)
    total += sub.allreduce(1)
    rows = comm.gather(np.arange(4) + rank, root=0)
    comm.charge_flops(1000 * (rank + 1))
    comm.barrier()
    if rank == 0:
        return total + float(np.sum(rows))
    return total


def _snapshot(res):
    return (
        res.returns,
        {op: (t.calls, t.payload_words, t.wire_words)
         for op, t in res.traffic.snapshot().items()},
        res.clocks,
        res.simulated_time,
        res.simulated_energy,
        res.total_flops,
    )


@needs_fork
class TestBackendParity:
    def test_mixed_traffic_identical(self):
        cluster = platform_by_name("1x4")
        runs = {
            name: run_spmd(0, _mixed_traffic_program, cluster=cluster,
                           backend=name)
            for name in ("threads", "processes")
        }
        assert _snapshot(runs["threads"]) == _snapshot(runs["processes"])

    @pytest.mark.parametrize("op", ["allreduce", "reduce", "gather",
                                    "allgather", "scatter", "alltoall",
                                    "reduce_scatter"])
    def test_each_collective_identical(self, op):
        def prog(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            if op == "allreduce":
                return comm.allreduce(np.arange(6) + rank)
            if op == "reduce":
                return comm.reduce(rank + 1.5, root=0)
            if op == "gather":
                return comm.gather((rank, "x" * rank), root=0)
            if op == "allgather":
                return comm.allgather(rank * 2)
            if op == "scatter":
                chunks = ([list(range(size))] if rank == 0 else None)
                return comm.scatter(chunks[0] if chunks else None,
                                    root=0)
            if op == "alltoall":
                return comm.alltoall([rank * 10 + j
                                      for j in range(size)])
            return comm.reduce_scatter([float(rank + j)
                                        for j in range(size)])

        cluster = platform_by_name("1x4")
        base = run_spmd(0, prog, cluster=cluster, backend="threads")
        cand = run_spmd(0, prog, cluster=cluster, backend="processes")
        b, c = _snapshot(base), _snapshot(cand)
        for x, y in zip(b[0], c[0]):
            if isinstance(x, np.ndarray):
                np.testing.assert_array_equal(x, y)
            else:
                assert x == y
        assert b[1:] == c[1:]

    def test_report_totals_identical(self):
        """Eq. 2/3 totals (simulated time/energy) and ledger word
        counts folded into the RunReport must match across backends."""
        cluster = platform_by_name("1x4")
        sections = {}
        for name in ("threads", "processes"):
            with obs.observed(fresh=True):
                run_spmd(0, _mixed_traffic_program, cluster=cluster,
                         backend=name)
                report = obs.collect_report().to_dict()
            clocks = dict(report["clocks"])
            clocks.pop("wall_time", None)
            sections[name] = (clocks, report["traffic"])
        assert sections["threads"] == sections["processes"]

    def test_no_shm_leak_after_runs(self):
        run_spmd(3, _mixed_traffic_program, backend="processes")
        if os.path.isdir("/dev/shm"):
            assert not glob.glob("/dev/shm/repro-mpi-*")

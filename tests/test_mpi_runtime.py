"""Runtime-level behaviour: failures, clocks, traffic, sizing."""

import numpy as np
import pytest

from repro.errors import MPIEmulatorError, RankFailedError
from repro.mpi import run_spmd, words_of
from repro.mpi.datatypes import words_for_bytes
from repro.platform import platform_by_name


class TestRunSpmd:
    def test_returns_per_rank(self):
        res = run_spmd(4, lambda comm: comm.Get_rank() * 2)
        assert res.returns == [0, 2, 4, 6]

    def test_args_kwargs_forwarded(self):
        def prog(comm, a, b=0):
            return a + b + comm.Get_rank()
        res = run_spmd(2, prog, 10, b=5)
        assert res.returns == [15, 16]

    def test_single_rank_fast_path(self):
        res = run_spmd(1, lambda comm: comm.allreduce(7))
        assert res.returns == [7]

    def test_invalid_size(self):
        with pytest.raises(MPIEmulatorError):
            run_spmd(0, lambda comm: None)

    def test_cluster_size_mismatch(self):
        with pytest.raises(MPIEmulatorError):
            run_spmd(3, lambda comm: None,
                     cluster=platform_by_name("1x4"))

    def test_cluster_size_inferred(self):
        res = run_spmd(0, lambda comm: comm.Get_size(),
                       cluster=platform_by_name("1x4"))
        assert res.returns == [4] * 4

    def test_rank_failure_collected(self):
        def prog(comm):
            if comm.Get_rank() == 2:
                raise ValueError("boom")
            comm.barrier()
        with pytest.raises(RankFailedError) as exc_info:
            run_spmd(4, prog)
        assert 2 in exc_info.value.failures
        assert isinstance(exc_info.value.failures[2], ValueError)

    def test_multiple_failures_collected(self):
        def prog(comm):
            raise RuntimeError(f"r{comm.Get_rank()}")
        with pytest.raises(RankFailedError) as exc_info:
            run_spmd(3, prog)
        assert len(exc_info.value.failures) >= 1


class TestClocks:
    def test_compute_charging(self):
        cluster = platform_by_name("1x4")

        def prog(comm):
            comm.charge_flops(1_000_000)
        res = run_spmd(0, prog, cluster=cluster)
        expected = 1_000_000 / cluster.machine.flop_rate
        assert res.simulated_time == pytest.approx(expected)
        assert res.total_flops == 4_000_000

    def test_negative_flops_rejected(self):
        def prog(comm):
            comm.charge_flops(-1)
        with pytest.raises(RankFailedError):
            run_spmd(2, prog)

    def test_flops_tallied_without_cluster(self):
        res = run_spmd(2, lambda comm: comm.charge_flops(50))
        assert res.total_flops == 100
        assert res.simulated_time == 0.0

    def test_collective_synchronises_clocks(self):
        cluster = platform_by_name("1x4")

        def prog(comm):
            # Unbalanced compute then a barrier-like collective.
            comm.charge_flops(1000 * (comm.Get_rank() + 1))
            comm.allreduce(1.0)
            return comm.clock.time
        res = run_spmd(0, prog, cluster=cluster)
        times = res.returns
        assert max(times) == pytest.approx(min(times))

    def test_makespan_is_max_clock(self):
        cluster = platform_by_name("1x4")

        def prog(comm):
            comm.charge_flops(10_000 if comm.Get_rank() == 3 else 10)
        res = run_spmd(0, prog, cluster=cluster)
        assert res.simulated_time == pytest.approx(
            10_000 / cluster.machine.flop_rate)

    def test_p2p_advances_receiver_clock(self):
        cluster = platform_by_name("2x8")

        def prog(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.zeros(1000), dest=15)
            elif comm.Get_rank() == 15:
                buf = np.empty(1000)
                comm.Recv(buf, source=0)
                return comm.clock.time
            return 0.0
        res = run_spmd(0, prog, cluster=cluster)
        m = cluster.machine
        expected = m.inter_latency + 1000 * (1.0 / m.inter_bw)
        assert res.returns[15] == pytest.approx(expected, rel=0.01)


class TestTraffic:
    def test_send_words_counted(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.zeros(100), dest=1)
            elif comm.Get_rank() == 1:
                buf = np.empty(100)
                comm.Recv(buf, source=0)
        res = run_spmd(2, prog)
        assert res.traffic.total_payload_words("send") == 100

    def test_reduce_payload_words(self):
        def prog(comm):
            comm.reduce(np.zeros(64), root=0)
        res = run_spmd(4, prog)
        tally = res.traffic.snapshot()["reduce"]
        assert tally.calls == 1
        assert tally.payload_words == 64
        assert tally.wire_words == 3 * 64

    def test_allreduce_counts_two_phases(self):
        def prog(comm):
            comm.allreduce(np.zeros(10))
        res = run_spmd(4, prog)
        tally = res.traffic.snapshot()["allreduce"]
        assert tally.payload_words == 20
        assert tally.wire_words == 2 * 3 * 10

    def test_bcast_wire_words(self):
        def prog(comm):
            comm.Bcast(np.zeros(32) if comm.Get_rank() == 0
                       else np.empty(32), root=0)
        res = run_spmd(4, prog)
        tally = res.traffic.snapshot()["bcast"]
        assert tally.payload_words == 32
        assert tally.wire_words == 3 * 32


class TestWordsOf:
    def test_array_words(self):
        assert words_of(np.zeros(10)) == 10
        assert words_of(np.zeros(10, dtype=np.float32)) == 5

    def test_scalar_words(self):
        assert words_of(3.14) == 1

    def test_object_words_positive(self):
        assert words_of({"key": "value"}) > 0

    def test_words_for_bytes(self):
        assert words_for_bytes(0) == 0
        assert words_for_bytes(1) == 1
        assert words_for_bytes(8) == 1
        assert words_for_bytes(9) == 2
        with pytest.raises(ValueError):
            words_for_bytes(-1)

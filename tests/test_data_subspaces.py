"""Tests for the union-of-subspaces generator."""

import numpy as np
import pytest

from repro.data import SubspaceModel, union_of_subspaces
from repro.errors import ValidationError


class TestUnionOfSubspaces:
    def test_shape_and_determinism(self):
        a1, m1 = union_of_subspaces(20, 50, seed=3)
        a2, m2 = union_of_subspaces(20, 50, seed=3)
        assert a1.shape == (20, 50)
        assert np.array_equal(a1, a2)
        assert np.array_equal(m1.labels, m2.labels)

    def test_columns_live_in_their_subspace(self):
        a, model = union_of_subspaces(20, 60, n_subspaces=3, dim=2,
                                      noise=0.0, seed=5)
        for i, basis in enumerate(model.bases):
            cols = a[:, model.labels == i]
            # Residual after projecting onto the subspace must vanish.
            resid = cols - basis @ (basis.T @ cols)
            assert np.linalg.norm(resid) < 1e-10

    def test_noise_breaks_exact_membership(self):
        a, model = union_of_subspaces(20, 60, n_subspaces=2, dim=2,
                                      noise=0.05, seed=5)
        basis = model.bases[0]
        cols = a[:, model.labels == 0]
        resid = cols - basis @ (basis.T @ cols)
        assert np.linalg.norm(resid) > 1e-6

    def test_per_subspace_dims(self):
        a, model = union_of_subspaces(20, 40, n_subspaces=3, dim=(1, 2, 3),
                                      seed=0)
        assert model.dims == (1, 2, 3)

    def test_bases_orthonormal(self):
        _, model = union_of_subspaces(20, 40, n_subspaces=2, dim=4, seed=0)
        for b in model.bases:
            assert np.allclose(b.T @ b, np.eye(4), atol=1e-10)

    def test_weights_respected(self):
        _, model = union_of_subspaces(10, 3000, n_subspaces=2, dim=2,
                                      weights=[9, 1], seed=0)
        frac = np.mean(model.labels == 0)
        assert 0.85 < frac < 0.95

    def test_nonnegative_option(self):
        a, _ = union_of_subspaces(10, 30, nonnegative=True, seed=0)
        assert np.all(a >= 0)

    def test_heavy_tail_has_larger_kurtosis(self):
        a_n, _ = union_of_subspaces(10, 4000, n_subspaces=1, dim=1,
                                    heavy_tail=False, seed=0)
        a_t, _ = union_of_subspaces(10, 4000, n_subspaces=1, dim=1,
                                    heavy_tail=True, seed=0)

        def kurt(x):
            x = x.ravel()
            return np.mean((x - x.mean()) ** 4) / np.var(x) ** 2
        assert kurt(a_t) > kurt(a_n)

    def test_density_upper_bound(self):
        _, model = union_of_subspaces(20, 100, n_subspaces=2, dim=3, seed=0)
        bound = model.density_upper_bound(100)
        assert 0 < bound <= 3.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            union_of_subspaces(0, 10)
        with pytest.raises(ValidationError):
            union_of_subspaces(10, 10, dim=11)
        with pytest.raises(ValidationError):
            union_of_subspaces(10, 10, dim=(1, 2))  # wrong count
        with pytest.raises(ValidationError):
            union_of_subspaces(10, 10, noise=-0.1)
        with pytest.raises(ValidationError):
            union_of_subspaces(10, 10, n_subspaces=2, weights=[1, -1])

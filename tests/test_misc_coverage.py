"""Coverage for smaller paths: subset discrepancy, tree collectives at
runtime, CLI error paths, timeline p2p glyphs."""

import numpy as np
import pytest

from repro.core.alpha import estimate_alpha_from_subsets
from repro.mpi import run_spmd
from repro.platform import platform_by_name


class TestSubsetDiscrepancy:
    def test_discrepancy_between_curves(self, noisy_union_data):
        a, _ = noisy_union_data
        res = estimate_alpha_from_subsets(
            a, [30], 0.1, subset_fractions=(0.3, 0.6), threshold=0.0,
            seed=0)
        n1, n2 = res.subset_sizes[:2]
        d = res.discrepancy(n1, n2)
        assert d >= 0.0
        # Consistent with the stored curves.
        expected = abs(res.curves[n1][30] - res.curves[n2][30]) / \
            res.curves[n2][30]
        assert d == pytest.approx(expected)

    def test_early_stop_with_loose_threshold(self, noisy_union_data):
        a, _ = noisy_union_data
        res = estimate_alpha_from_subsets(
            a, [30], 0.1, subset_fractions=(0.3, 0.5, 0.8, 1.0),
            threshold=10.0, seed=0)
        assert res.converged
        assert len(res.subset_sizes) == 2  # stopped after first compare


class TestTreeCollectivesRuntime:
    def test_tree_slower_than_flat_at_scale(self):
        cluster = platform_by_name("8x8")

        def prog(comm):
            for _ in range(4):
                comm.allreduce(np.ones(64))
        flat = run_spmd(0, prog, cluster=cluster,
                        collective_algorithm="flat")
        tree = run_spmd(0, prog, cluster=cluster,
                        collective_algorithm="tree")
        assert tree.simulated_time > flat.simulated_time

    def test_results_identical_between_algorithms(self):
        def prog(comm):
            return comm.allreduce(comm.Get_rank())
        flat = run_spmd(0, prog, cluster=platform_by_name("1x4"),
                        collective_algorithm="flat")
        tree = run_spmd(0, prog, cluster=platform_by_name("1x4"),
                        collective_algorithm="tree")
        assert flat.returns == tree.returns

    def test_unknown_algorithm_fails(self):
        from repro.errors import RankFailedError
        with pytest.raises(RankFailedError):
            run_spmd(0, lambda comm: comm.allreduce(1),
                     cluster=platform_by_name("1x4"),
                     collective_algorithm="wormhole")


class TestCliErrorPaths:
    def test_pca_k_too_large(self, capsys):
        from repro.cli import main
        assert main(["pca", "--dataset", "salina", "--n", "64",
                     "--k", "500"]) == 1
        assert "error:" in capsys.readouterr().err


class TestTimelineP2P:
    def test_send_glyph_on_sender_row(self):
        from repro.utils import render_timeline
        cluster = platform_by_name("2x8")

        def prog(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.zeros(5000), dest=15)
            elif comm.Get_rank() == 15:
                buf = np.empty(5000)
                comm.Recv(buf, source=0)
        res = run_spmd(0, prog, cluster=cluster, trace=True)
        art = render_timeline(res.trace, 16, width=50)
        sender_row = art.splitlines()[1]
        assert ">" in sender_row


class TestNoiseSigmaEdge:
    def test_constant_image(self):
        from repro.apps import estimate_noise_sigma
        assert estimate_noise_sigma(np.full((16, 16), 0.5)) == 0.0

"""K-SVD dictionary learning tests."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.linalg.ksvd import ksvd


@pytest.fixture(scope="module")
def sparse_synthesis_problem():
    """Data generated exactly as sparse combinations of a ground-truth
    dictionary — the setting K-SVD provably improves on."""
    rng = np.random.default_rng(17)
    m, n_atoms, n = 16, 24, 300
    d_true = rng.standard_normal((m, n_atoms))
    d_true /= np.linalg.norm(d_true, axis=0)
    coefs = np.zeros((n_atoms, n))
    for j in range(n):
        support = rng.choice(n_atoms, size=3, replace=False)
        coefs[support, j] = rng.standard_normal(3)
    return d_true @ coefs, d_true


class TestKSVD:
    def test_error_decreases_over_sweeps(self, sparse_synthesis_problem):
        a, _ = sparse_synthesis_problem
        res = ksvd(a, 24, sparsity=3, iterations=8, seed=0)
        assert res.iterations == 8
        assert res.errors[-1] < res.errors[0]

    def test_atoms_unit_norm(self, sparse_synthesis_problem):
        a, _ = sparse_synthesis_problem
        res = ksvd(a, 24, sparsity=3, iterations=3, seed=0)
        assert np.allclose(np.linalg.norm(res.dictionary, axis=0), 1.0,
                           atol=1e-8)

    def test_learned_beats_sampled_at_equal_size(self,
                                                 sparse_synthesis_problem):
        """At equal (small) dictionary size and sparsity budget, a few
        K-SVD sweeps fit better than the sweep-0 sampled dictionary —
        the quality edge ExD trades away for scalability."""
        a, _ = sparse_synthesis_problem
        res = ksvd(a, 20, sparsity=3, iterations=6, seed=0)
        sampled_error = res.errors[0]   # sweep 0 codes a sampled dict
        assert res.errors[-1] < 0.9 * sampled_error

    def test_codes_respect_sparsity(self, sparse_synthesis_problem):
        a, _ = sparse_synthesis_problem
        res = ksvd(a, 24, sparsity=2, iterations=3, seed=0)
        assert np.max(res.codes.column_nnz()) <= 2 + 1  # +1: rank-1 fill

    def test_error_constrained_mode(self, sparse_synthesis_problem):
        a, _ = sparse_synthesis_problem
        res = ksvd(a, 30, eps=0.1, iterations=3, seed=0)
        recon = res.dictionary @ res.codes.to_dense()
        rel = np.linalg.norm(a - recon) / np.linalg.norm(a)
        assert rel <= 0.2  # atom updates may move codes off-target a bit

    def test_more_atoms_than_columns(self, rng):
        a = rng.standard_normal((8, 10))
        res = ksvd(a, 16, sparsity=2, iterations=2, seed=0)
        assert res.dictionary.shape == (8, 16)

    def test_validation(self, sparse_synthesis_problem):
        a, _ = sparse_synthesis_problem
        with pytest.raises(ValidationError):
            ksvd(a, 0)
        with pytest.raises(ValidationError):
            ksvd(a, 10, iterations=0)
        with pytest.raises(ValidationError):
            ksvd(a, 10, sparsity=0)

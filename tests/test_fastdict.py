"""FastDict: sparse-factor fast-transform dictionaries.

Covers the DictOperator thread end to end:

* factor/operator algebra (apply, apply_t, gram, nnz accounting,
  serialisation);
* the **exact-factorisation bit-identity contract**: when the factor
  chain multiplies out to exactly the dense atoms (scaled permutations),
  every encode path — serial, parallel, streaming, serving micro-batch —
  returns atom sequences and coefficients bitwise equal to the dense
  dictionary's;
* the **approximate-fit error bound**: encoding against a fitted
  ``D̂ = S₁…S_J`` with residual ``ρ = ‖D−D̂‖_F/‖D‖_F`` reconstructs the
  original data to ``ε + ρ·‖D̂C‖_F/‖A‖_F`` (triangle inequality), which
  the suite checks in its documented form;
* factored Eq. 2–4 cost-model terms and the RC-aware tuner;
* evolve-path growth of a factored base into a block operator;
* persistence (io v2, streaming checkpoints) and the serve registry.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.cost_model import (
    CostModel,
    memory_cost_per_node,
    runtime_cost,
)
from repro.core.dictionary import DictOperator, Dictionary
from repro.core.exd import exd_transform
from repro.core.fastdict import (
    BlockDictOperator,
    FastDict,
    FastDictConfig,
    FastFactor,
    as_fast_dict_config,
    fit_fast_dict,
    operator_from_arrays,
    operator_to_arrays,
)
from repro.core.gram import TransformedGramOperator
from repro.core.tuner import (
    predicted_factor_nnz,
    tune_fast_dictionary,
)
from repro.errors import ValidationError
from repro.linalg.norms import relative_frobenius_error
from repro.linalg.omp import batch_omp_matrix, blocked_dta
from repro.linalg.parallel_omp import encode_columns
from repro.platform import platform_by_name


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def exact_fastdict(m: int, seed: int = 0):
    """A FastDict whose factor product is *exactly* a dense dictionary.

    Uses a scaled permutation (diagonal × permutation): both factors
    apply through scatter + a single multiply per entry, which is
    bitwise equal to the dense GEMM of the materialised matrix.
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(m)
    scales = 0.5 + rng.random(m)
    fd = FastDict((FastFactor.diagonal(scales),
                   FastFactor.permutation(perm)))
    dense = Dictionary(fd.atoms.copy(), np.arange(m, dtype=np.int64))
    return fd, dense


@pytest.fixture(scope="module")
def coherent_data():
    """Structured data whose sampled atoms factor well (M=48, N=700)."""
    rng = np.random.default_rng(5)
    base = rng.standard_normal((48, 10))
    a = base @ rng.standard_normal((10, 700))
    a += 0.02 * rng.standard_normal(a.shape)
    return a


# ----------------------------------------------------------------------
# factor / operator algebra
# ----------------------------------------------------------------------
class TestFastFactor:
    def test_permutation_and_diagonal_materialize(self):
        perm = np.array([2, 0, 3, 1])
        p = FastFactor.permutation(perm)
        mat = p.materialize()
        x = np.arange(4.0).reshape(4, 1)
        np.testing.assert_array_equal(p.apply(x), mat @ x)
        np.testing.assert_array_equal(p.apply_t(x), mat.T @ x)
        d = FastFactor.diagonal(np.array([2.0, 3.0, 4.0]))
        np.testing.assert_array_equal(d.materialize(),
                                      np.diag([2.0, 3.0, 4.0]))

    def test_apply_matches_materialized_matrix(self, rng):
        fd = fit_fast_dict(
            Dictionary(rng.standard_normal((24, 36)),
                       np.arange(36, dtype=np.int64)),
            rc=0.7, seed=0)
        for f in fd.factors:
            mat = f.materialize()
            x = rng.standard_normal((f.shape[1], 3))
            np.testing.assert_allclose(f.apply(x), mat @ x,
                                       rtol=1e-12, atol=1e-12)
            y = rng.standard_normal((f.shape[0], 3))
            np.testing.assert_allclose(f.apply_t(y), mat.T @ y,
                                       rtol=1e-12, atol=1e-12)

    def test_nnz_counts_live_entries_only(self):
        fd, _ = exact_fastdict(8)
        for f in fd.factors:
            assert f.nnz == np.count_nonzero(f.padding_mask())
            assert f.nnz == 8  # permutation/diagonal: one per column

    def test_pickle_roundtrip(self, rng):
        fd, _ = exact_fastdict(12, seed=3)
        f = fd.factors[0]
        f2 = pickle.loads(pickle.dumps(f))
        x = rng.standard_normal((12, 2))
        np.testing.assert_array_equal(f.apply(x), f2.apply(x))


class TestFastDictOperator:
    def test_satisfies_dict_operator_protocol(self):
        fd, dense = exact_fastdict(6)
        assert isinstance(fd, DictOperator)
        assert isinstance(dense, DictOperator)

    def test_atoms_is_factor_product(self, rng):
        fd = fit_fast_dict(
            Dictionary(rng.standard_normal((16, 24)),
                       np.arange(24, dtype=np.int64)),
            rc=0.8, seed=1)
        prod = np.eye(24)
        for f in reversed(fd.factors):
            prod = f.apply(prod)
        np.testing.assert_array_equal(fd.atoms, prod)

    def test_apply_routes_through_factors(self, rng):
        fd, dense = exact_fastdict(10, seed=2)
        x = rng.standard_normal((10, 4))
        np.testing.assert_array_equal(fd.apply(x), dense.atoms @ x)
        np.testing.assert_array_equal(fd.apply_t(x), dense.atoms.T @ x)
        v = rng.standard_normal(10)
        assert fd.apply(v).shape == (10,)
        assert fd.apply_t(v).shape == (10,)

    def test_gram_is_cached_and_correct(self):
        fd, dense = exact_fastdict(9)
        g = fd.gram()
        assert fd.gram() is g
        np.testing.assert_allclose(g, dense.atoms.T @ dense.atoms,
                                   rtol=1e-12, atol=1e-12)

    def test_transform_nnz_below_dense(self, coherent_data):
        t, _ = exd_transform(coherent_data, 64, 0.2, seed=3,
                             fast_dict=0.5)
        fd = t.dictionary
        assert isinstance(fd, FastDict)
        assert fd.transform_nnz < fd.m * fd.size
        assert fd.relative_complexity == fd.transform_nnz / (fd.m * fd.size)
        assert fd.memory_words == fd.transform_nnz

    def test_arrays_roundtrip(self, rng):
        fd = fit_fast_dict(
            Dictionary(rng.standard_normal((20, 30)),
                       np.arange(30, dtype=np.int64)),
            rc=0.5, levels=3, seed=4)
        kind, arrays = operator_to_arrays(fd)
        assert kind == "fastdict"
        fd2 = operator_from_arrays(kind, arrays)
        np.testing.assert_array_equal(fd.atoms, fd2.atoms)
        assert fd2.levels == fd.levels
        assert fd2.transform_nnz == fd.transform_nnz
        assert fd2.residual == fd.residual
        fd3 = pickle.loads(pickle.dumps(fd))
        np.testing.assert_array_equal(fd.atoms, fd3.atoms)

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            FastDictConfig(rc=0.0)
        with pytest.raises(ValidationError):
            FastDictConfig(rc=1.5)
        with pytest.raises(ValidationError):
            FastDictConfig(levels=1)
        with pytest.raises(ValidationError):
            FastDictConfig(iters=0)
        cfg = as_fast_dict_config(0.3)
        assert cfg.rc == 0.3 and cfg.levels == 2
        assert as_fast_dict_config(cfg) is cfg


# ----------------------------------------------------------------------
# exact factorisation => bit-identity on every encode path
# ----------------------------------------------------------------------
class TestExactBitIdentity:
    M = 48

    @pytest.fixture(scope="class")
    def payload(self):
        fd, dense = exact_fastdict(self.M, seed=9)
        rng = np.random.default_rng(10)
        a = fd.atoms @ rng.standard_normal((self.M, 700))
        a += 0.05 * rng.standard_normal(a.shape)
        return fd, dense, a

    def test_serial_encode_identical_to_dense(self, payload):
        fd, dense, a = payload
        c1, s1 = batch_omp_matrix(dense.atoms, a, 0.2)
        c2, s2 = batch_omp_matrix(fd, a, 0.2)
        np.testing.assert_array_equal(c1.indptr, c2.indptr)
        np.testing.assert_array_equal(c1.indices, c2.indices)
        np.testing.assert_array_equal(c1.data, c2.data)
        assert s1.total_iterations == s2.total_iterations
        # transform_nnz == M·L for a dense-equivalent op, but the exact
        # chain is sparser, so the factored FLOP ledger must be smaller.
        assert s2.flops < s1.flops

    def test_parallel_encode_identical(self, payload):
        fd, _, a = payload
        c1, s1 = batch_omp_matrix(fd, a, 0.2)
        c2, s2 = batch_omp_matrix(fd, a, 0.2, workers=2)
        np.testing.assert_array_equal(c1.indices, c2.indices)
        np.testing.assert_array_equal(c1.data, c2.data)
        assert s1.flops == s2.flops

    def test_streaming_encode_identical(self, payload, tmp_path):
        from repro.store import ColumnStore, StreamingEncoder

        fd, dense, a = payload
        store = ColumnStore.from_matrix(tmp_path / "store", a,
                                        chunk_width=96)
        t_mem, s_mem = exd_transform(a, fd.size, 0.2, seed=1,
                                     dictionary=fd)
        enc = StreamingEncoder(store, fd.size, 0.2, seed=1,
                               dictionary=fd)
        t_str, s_str, _ = enc.run()
        np.testing.assert_array_equal(t_mem.coefficients.indices,
                                      t_str.coefficients.indices)
        np.testing.assert_array_equal(t_mem.coefficients.data,
                                      t_str.coefficients.data)
        assert s_mem.flops == s_str.flops
        # ... and both match the dense-atom encode bit for bit.
        t_dense, _ = exd_transform(a, fd.size, 0.2, seed=1,
                                   dictionary=dense)
        np.testing.assert_array_equal(t_dense.coefficients.data,
                                      t_str.coefficients.data)

    def test_serving_micro_batch_identical(self, payload):
        fd, dense, a = payload
        cols = a[:, :7]
        res_fd, _ = encode_columns(fd, cols, 0.2)
        res_dense, _ = encode_columns(dense.atoms, cols, 0.2)
        for (s1, c1, k1), (s2, c2, k2) in zip(res_fd, res_dense):
            np.testing.assert_array_equal(s1, s2)
            np.testing.assert_array_equal(c1, c2)
            assert k1 == k2

    def test_blocked_dta_operator_matches_dense(self, payload):
        fd, dense, a = payload
        np.testing.assert_array_equal(blocked_dta(fd, a),
                                      blocked_dta(dense.atoms, a))


# ----------------------------------------------------------------------
# approximate fits: documented reconstruction-error bound
# ----------------------------------------------------------------------
class TestApproximateFit:
    def test_residual_definition(self, coherent_data):
        t, _ = exd_transform(coherent_data, 64, 0.2, seed=3,
                             fast_dict=0.6)
        fd = t.dictionary
        dense, _ = exd_transform(coherent_data, 64, 0.2, seed=3)
        rho = relative_frobenius_error(dense.dictionary.atoms, fd.atoms)
        assert fd.residual == pytest.approx(rho)
        assert t.meta["fastdict_residual"] == pytest.approx(rho)

    def test_reconstruction_error_bound(self, coherent_data):
        """``‖A − D̂C‖ ≤ ε·‖A‖`` per converged column (OMP contract
        against the factored dictionary itself) — the documented bound
        for encoding through an approximate fast transform.
        """
        eps = 0.2
        t, stats = exd_transform(coherent_data, 64, eps, seed=3,
                                 fast_dict=0.6)
        err = t.transformation_error(coherent_data)
        if stats.all_converged:
            assert err <= eps + 1e-9
        col_err = np.linalg.norm(
            coherent_data - t.reconstruct(), axis=0)
        col_norm = np.linalg.norm(coherent_data, axis=0)
        # per-column form on the converged columns
        c, st = batch_omp_matrix(t.dictionary, coherent_data /
                                 np.where(col_norm == 0, 1, col_norm),
                                 eps)
        ok = st.converged_mask
        assert np.all(col_err[ok] <= eps * col_norm[ok] * (1 + 1e-9))

    def test_residual_decreases_with_rc(self, coherent_data):
        dense, _ = exd_transform(coherent_data, 64, 0.2, seed=3)
        d = dense.dictionary
        residuals = [fit_fast_dict(d, rc=rc, seed=0).residual
                     for rc in (0.15, 0.4, 0.8)]
        # monotone up to small fit noise
        assert residuals[0] >= residuals[1] * 0.95
        assert residuals[1] >= residuals[2] * 0.95
        assert residuals[2] < 0.1  # generous budget factors tightly


class TestFitFastDict:
    def test_respects_budget(self, rng):
        m, l = 64, 96
        d = Dictionary(rng.standard_normal((m, l)),
                       np.arange(l, dtype=np.int64))
        fd = fit_fast_dict(d, rc=0.25, seed=0)
        assert fd.transform_nnz <= 0.35 * m * l
        fd2 = fit_fast_dict(d, rc=0.1, seed=0)
        assert fd2.transform_nnz < fd.transform_nnz

    def test_deterministic_given_seed(self, rng):
        d = Dictionary(rng.standard_normal((24, 30)),
                       np.arange(30, dtype=np.int64))
        fd1 = fit_fast_dict(d, rc=0.5, seed=7)
        fd2 = fit_fast_dict(d, rc=0.5, seed=7)
        np.testing.assert_array_equal(fd1.atoms, fd2.atoms)

    def test_multi_level_chain_dims(self, rng):
        m, l = 32, 48
        d = Dictionary(rng.standard_normal((m, l)),
                       np.arange(l, dtype=np.int64))
        fd = fit_fast_dict(d, rc=0.6, levels=3, seed=0)
        assert fd.levels == 3
        shapes = [f.shape for f in fd.factors]
        assert shapes[0][0] == m and shapes[-1][1] == l
        for left, right in zip(shapes, shapes[1:]):
            assert left[1] == right[0]
        assert np.isfinite(fd.residual)

    def test_rejects_bad_knobs(self, rng):
        d = Dictionary(rng.standard_normal((8, 12)),
                       np.arange(12, dtype=np.int64))
        with pytest.raises(ValidationError):
            fit_fast_dict(d, rc=0.0)
        with pytest.raises(ValidationError):
            fit_fast_dict(d, levels=1)


# ----------------------------------------------------------------------
# evolve-path growth: factored base + dense extension
# ----------------------------------------------------------------------
class TestBlockOperator:
    def test_concat_matches_dense_hstack(self, rng):
        fd, dense = exact_fastdict(16, seed=4)
        ext = Dictionary(rng.standard_normal((16, 5)),
                         np.full(5, -1, dtype=np.int64))
        block = fd.concat(ext)
        assert isinstance(block, BlockDictOperator)
        assert block.size == 21
        full = np.hstack([dense.atoms, ext.atoms])
        np.testing.assert_array_equal(block.atoms, full)
        x = rng.standard_normal(21)
        np.testing.assert_allclose(block.apply(x), full @ x,
                                   rtol=1e-12, atol=1e-12)
        y = rng.standard_normal(16)
        np.testing.assert_allclose(block.apply_t(y), full.T @ y,
                                   rtol=1e-12, atol=1e-12)
        # factored base keeps its sub-dense apply cost
        assert block.transform_nnz == fd.transform_nnz + 16 * 5

    def test_extend_transform_grows_factored_base(self, rng):
        base = rng.standard_normal((48, 8))
        a = base @ rng.standard_normal((8, 300))
        a += 0.01 * rng.standard_normal(a.shape)
        t, _ = exd_transform(a, 16, 0.2, seed=3, fast_dict=0.6)
        assert isinstance(t.dictionary, FastDict)
        from repro.core.evolve import extend_transform

        a_new = rng.standard_normal((48, 30))
        res = extend_transform(t, a_new, seed=5)
        assert res.dictionary_grew
        grown = res.transform.dictionary
        assert isinstance(grown, BlockDictOperator)
        assert grown.base is t.dictionary
        # a second growth extends the dense block, base stays factored
        res2 = extend_transform(res.transform,
                                rng.standard_normal((48, 10)), seed=6)
        if res2.dictionary_grew:
            assert isinstance(res2.transform.dictionary,
                              BlockDictOperator)
            assert res2.transform.dictionary.base is t.dictionary
        # the combined transform still reconstructs reasonably (the
        # approximate factorisation and L < M leave some unconverged
        # columns; structure, not tightness, is under test here)
        combined = np.hstack([a, a_new])
        err = res.transform.transformation_error(combined)
        assert np.isfinite(err) and err <= 0.5

    def test_block_arrays_roundtrip(self, rng):
        fd, _ = exact_fastdict(12, seed=8)
        ext = Dictionary(rng.standard_normal((12, 3)),
                         np.full(3, -1, dtype=np.int64))
        block = fd.concat(ext)
        kind, arrays = operator_to_arrays(block)
        assert kind == "block"
        block2 = operator_from_arrays(kind, arrays)
        np.testing.assert_array_equal(block.atoms, block2.atoms)
        assert block2.transform_nnz == block.transform_nnz


# ----------------------------------------------------------------------
# factored Eq. 2-4 terms and the RC-aware tuner
# ----------------------------------------------------------------------
class TestFactoredCostModel:
    def test_default_reproduces_dense(self):
        assert runtime_cost(100, 200, 5000, 4, 1.5) == \
            runtime_cost(100, 200, 5000, 4, 1.5, transform_nnz=100 * 200)
        assert memory_cost_per_node(100, 200, 5000, 1000, 4) == \
            memory_cost_per_node(100, 200, 5000, 1000, 4,
                                 transform_nnz=100 * 200)

    def test_factored_lowers_arithmetic_not_comm(self):
        m, l, nnz, p, rbf = 100, 200, 5000, 4, 1.5
        dense = runtime_cost(m, l, nnz, p, rbf)
        fast = runtime_cost(m, l, nnz, p, rbf, transform_nnz=m * l // 4)
        # the difference is exactly the arithmetic saving; the
        # min(M, L)·R_bf communication term is shape-bound and unchanged
        assert dense - fast == pytest.approx((m * l - m * l // 4) / p)

    def test_factored_memory(self):
        got = memory_cost_per_node(100, 200, 5000, 1000, 4,
                                   transform_nnz=3000)
        assert got == pytest.approx(3000 + (5000 + 1000) / 4)

    def test_validation(self):
        with pytest.raises(ValidationError):
            runtime_cost(10, 10, 0, 1, 1.0, transform_nnz=-1)

    def test_cost_model_threads_transform_nnz(self):
        cm = CostModel(platform_by_name("2x8"))
        assert cm.time(100, 200, 5000, transform_nnz=4000) < \
            cm.time(100, 200, 5000)
        assert cm.objective("memory", 100, 200, 5000, 1000,
                            transform_nnz=4000) < \
            cm.objective("memory", 100, 200, 5000, 1000)
        assert cm.time_seconds(100, 200, 5000, transform_nnz=4000) < \
            cm.time_seconds(100, 200, 5000)


class TestTuneFastDictionary:
    def test_grid_and_best(self, noisy_union_data):
        a, _ = noisy_union_data
        cm = CostModel(platform_by_name("1x1"))
        res = tune_fast_dictionary(a, 0.3, cm,
                                   rc_grid=(0.25, 0.5, 1.0), seed=3)
        assert res.best_rc in (0.25, 0.5, 1.0)
        rcs = {rc for (_, rc, *_rest) in res.table}
        assert rcs == {0.25, 0.5, 1.0}
        # on one processor the time objective is pure arithmetic, so
        # a smaller RC always wins at the same L
        best_l = res.best_size
        costs = {rc: res.cost_of(best_l, rc) for rc in (0.25, 0.5, 1.0)}
        assert costs[0.25] <= costs[0.5] <= costs[1.0]
        assert res.objective == "time"
        assert res.cost_of(res.best_size, res.best_rc) == pytest.approx(
            min(cost for (_, _, _, _, cost) in res.table))

    def test_predicted_factor_nnz_floor(self):
        assert predicted_factor_nnz(100, 200, 0.5) == 10000
        # never below one entry per row and column
        assert predicted_factor_nnz(100, 200, 1e-9) == 300

    def test_store_input(self, noisy_union_data, tmp_path):
        from repro.store import ColumnStore

        a, _ = noisy_union_data
        store = ColumnStore.from_matrix(tmp_path / "s", a)
        cm = CostModel(platform_by_name("1x1"))
        res = tune_fast_dictionary(store, 0.3, cm, rc_grid=(0.5, 1.0),
                                   seed=3)
        assert res.best_size >= 1


# ----------------------------------------------------------------------
# gram operator with a factored dictionary (case 2: L > M)
# ----------------------------------------------------------------------
class TestGramOperatorFactored:
    def test_case2_routes_through_operator(self, coherent_data):
        from repro.core.transform import TransformedData

        t, _ = exd_transform(coherent_data, 64, 0.2, seed=3,
                             fast_dict=0.5)
        assert t.l > t.m
        op = TransformedGramOperator(t, precompute_gram=False)
        x = np.random.default_rng(0).standard_normal(t.n)
        got = op(x)
        dense_atoms = t.dictionary.atoms
        want = t.coefficients.rmatvec(
            dense_atoms.T @ (dense_atoms @ t.coefficients.matvec(x)))
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)
        # same transform with the dictionary densified: identical math,
        # but the ledger bills M·L instead of the factor nnz
        t_dense = TransformedData(
            dictionary=Dictionary(dense_atoms, t.dictionary.indices),
            coefficients=t.coefficients, eps=t.eps, method=t.method)
        op_dense = TransformedGramOperator(t_dense,
                                           precompute_gram=False)
        op_dense(x)
        assert op.flops < op_dense.flops

    def test_projection_through_operator(self, coherent_data):
        t, _ = exd_transform(coherent_data, 64, 0.2, seed=3,
                             fast_dict=0.5)
        x = np.random.default_rng(1).standard_normal(t.n)
        want = t.dictionary.atoms @ t.coefficients.matvec(x)
        np.testing.assert_allclose(t.project_vector(x), want,
                                   rtol=1e-9, atol=1e-9)
        y = np.random.default_rng(2).standard_normal(t.m)
        want_adj = t.coefficients.rmatvec(t.dictionary.atoms.T @ y)
        np.testing.assert_allclose(t.project_adjoint(y), want_adj,
                                   rtol=1e-9, atol=1e-9)


# ----------------------------------------------------------------------
# persistence: io v2 and streaming checkpoints
# ----------------------------------------------------------------------
class TestPersistence:
    def test_save_load_fastdict_transform(self, coherent_data, tmp_path):
        from repro.core.io import load_transform, save_transform

        t, _ = exd_transform(coherent_data, 64, 0.2, seed=3,
                             fast_dict=0.6)
        path = save_transform(t, tmp_path / "fast")
        t2 = load_transform(path)
        assert isinstance(t2.dictionary, FastDict)
        np.testing.assert_array_equal(t.dictionary.atoms,
                                      t2.dictionary.atoms)
        np.testing.assert_array_equal(t.coefficients.data,
                                      t2.coefficients.data)
        assert t2.meta["fastdict_rc"] == t.meta["fastdict_rc"]
        assert t2.dictionary.transform_nnz == t.dictionary.transform_nnz

    def test_dense_transform_still_v1(self, coherent_data, tmp_path):
        import json

        from repro.core.io import save_transform

        t, _ = exd_transform(coherent_data, 64, 0.2, seed=3)
        path = save_transform(t, tmp_path / "dense")
        with np.load(path) as blob:
            header = json.loads(bytes(blob["header"]).decode("utf-8"))
        assert header["format_version"] == 1
        assert "dictionary_kind" not in header

    def test_streaming_matches_in_memory(self, coherent_data, tmp_path):
        from repro.store import ColumnStore, StreamingEncoder

        store = ColumnStore.from_matrix(tmp_path / "store",
                                        coherent_data, chunk_width=128)
        t_mem, s_mem = exd_transform(coherent_data, 64, 0.2, seed=7,
                                     fast_dict=0.6)
        t_str, s_str, _ = StreamingEncoder(store, 64, 0.2, seed=7,
                                           fast_dict=0.6).run()
        assert isinstance(t_str.dictionary, FastDict)
        np.testing.assert_array_equal(t_mem.coefficients.indices,
                                      t_str.coefficients.indices)
        np.testing.assert_array_equal(t_mem.coefficients.data,
                                      t_str.coefficients.data)
        assert s_mem.flops == s_str.flops
        assert t_mem.meta == t_str.meta

    def test_checkpoint_resume_identical(self, coherent_data, tmp_path):
        from repro.store import ColumnStore, StreamingEncoder

        store = ColumnStore.from_matrix(tmp_path / "store",
                                        coherent_data, chunk_width=128)
        ck = tmp_path / "ck"
        t1, _, _ = StreamingEncoder(store, 64, 0.2, seed=7,
                                    fast_dict=0.6,
                                    checkpoint_dir=ck).run()
        t2, _, rep = StreamingEncoder(store, 64, 0.2, seed=7,
                                      fast_dict=0.6,
                                      checkpoint_dir=ck).run(resume=True)
        assert rep.resumed and rep.blocks_encoded == 0
        assert isinstance(t2.dictionary, FastDict)
        np.testing.assert_array_equal(t1.dictionary.atoms,
                                      t2.dictionary.atoms)
        np.testing.assert_array_equal(t1.coefficients.data,
                                      t2.coefficients.data)

    def test_checkpoint_refuses_param_mismatch(self, coherent_data,
                                               tmp_path):
        from repro.errors import CheckpointError
        from repro.store import ColumnStore, StreamingEncoder

        store = ColumnStore.from_matrix(tmp_path / "store",
                                        coherent_data, chunk_width=128)
        ck = tmp_path / "ck"
        StreamingEncoder(store, 64, 0.2, seed=7, fast_dict=0.6,
                         checkpoint_dir=ck).run()
        with pytest.raises(CheckpointError, match="fast_dict"):
            StreamingEncoder(store, 64, 0.2, seed=7,
                             checkpoint_dir=ck).run(resume=True)


# ----------------------------------------------------------------------
# serve registry with a factored generation
# ----------------------------------------------------------------------
class TestServeFactored:
    def test_registry_hot_swap_dense_to_factored(self, coherent_data):
        from repro.serve.registry import DictionaryRegistry

        t_dense, _ = exd_transform(coherent_data, 64, 0.2, seed=3)
        t_fast, _ = exd_transform(coherent_data, 64, 0.2, seed=3,
                                  fast_dict=0.6)
        reg = DictionaryRegistry()
        g1 = reg.add_transform("acme", t_dense)
        d1 = g1.describe()
        assert d1["transform_nnz"] == t_dense.m * t_dense.l
        assert d1["relative_complexity"] == 1.0
        g2 = reg.add_transform("acme", t_fast)
        d2 = g2.describe()
        assert d2["transform_nnz"] < d1["transform_nnz"]
        assert d2["relative_complexity"] < 1.0
        # the default pointer swapped atomically to the factored gen
        assert reg.resolve("acme").number == g2.number
        # the factored generation's gram was warmed at load
        assert t_fast.dictionary.gram() is t_fast.dictionary.gram()

    def test_micro_batch_matches_bulk_encode(self, coherent_data):
        t, _ = exd_transform(coherent_data, 64, 0.2, seed=3,
                             fast_dict=0.6)
        cols = coherent_data[:, :5]
        results, _ = encode_columns(t.dictionary, cols, 0.2)
        c_full, _ = batch_omp_matrix(t.dictionary, cols, 0.2)
        dense_c = c_full.to_dense()
        for j, (support, coef, _ok) in enumerate(results):
            v = np.zeros(t.l)
            v[support] = coef
            np.testing.assert_array_equal(v, dense_c[:, j])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_transform_fast_dict_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core import load_transform

        out = tmp_path / "t.npz"
        assert main(["transform", "--dataset", "salina", "--n", "256",
                     "--size", "48", "--eps", "0.15",
                     "--fast-dict", "0.5", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "fast dictionary" in text
        t = load_transform(out)
        assert isinstance(t.dictionary, FastDict)
        assert t.dictionary.transform_nnz < t.m * t.l

    def test_fit_fast_subcommand(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core import load_transform

        dense = tmp_path / "dense.npz"
        assert main(["transform", "--dataset", "salina", "--n", "256",
                     "--size", "48", "--eps", "0.15",
                     "--out", str(dense)]) == 0
        fast = tmp_path / "fast.npz"
        assert main(["fit-fast", "--transform", str(dense),
                     "--rc", "0.5", "--out", str(fast)]) == 0
        text = capsys.readouterr().out
        assert "modeled apply speedup" in text
        t = load_transform(fast)
        assert isinstance(t.dictionary, FastDict)

    def test_fast_dict_rejects_distributed(self, capsys):
        from repro.cli import main

        assert main(["transform", "--dataset", "salina", "--n", "128",
                     "--size", "32", "--fast-dict", "0.5",
                     "--distributed"]) == 1
        assert "--distributed" in capsys.readouterr().err

"""Unit tests for repro.sparse.csc."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sparse import CSCMatrix


@pytest.fixture()
def sample_dense():
    return np.array([
        [1.0, 0.0, 0.0, 2.0],
        [0.0, 0.0, 3.0, 0.0],
        [4.0, 5.0, 0.0, 0.0],
    ])


@pytest.fixture()
def sample_csc(sample_dense):
    return CSCMatrix.from_dense(sample_dense)


class TestConstruction:
    def test_from_dense_roundtrip(self, sample_dense, sample_csc):
        assert np.array_equal(sample_csc.to_dense(), sample_dense)
        assert sample_csc.nnz == 5
        assert sample_csc.shape == (3, 4)

    def test_from_dense_tolerance(self):
        c = CSCMatrix.from_dense([[1e-8, 1.0]], tol=1e-6)
        assert c.nnz == 1

    def test_zeros(self):
        z = CSCMatrix.zeros((3, 5))
        assert z.nnz == 0
        assert np.array_equal(z.to_dense(), np.zeros((3, 5)))

    def test_identity(self):
        i = CSCMatrix.identity(4)
        assert np.array_equal(i.to_dense(), np.eye(4))

    def test_validation_bad_indptr(self):
        with pytest.raises(ValidationError):
            CSCMatrix([1.0], [0], [0, 2], (2, 1))

    def test_validation_decreasing_indptr(self):
        with pytest.raises(ValidationError):
            CSCMatrix([1.0, 2.0], [0, 1], [0, 2, 1, 2], (2, 3))

    def test_validation_row_out_of_range(self):
        with pytest.raises(ValidationError):
            CSCMatrix([1.0], [5], [0, 1], (2, 1))

    def test_validation_unsorted_rows(self):
        with pytest.raises(ValidationError):
            CSCMatrix([1.0, 2.0], [1, 0], [0, 2], (2, 1))


class TestAccessors:
    def test_column(self, sample_csc, sample_dense):
        for j in range(4):
            assert np.array_equal(sample_csc.column(j), sample_dense[:, j])

    def test_column_out_of_range(self, sample_csc):
        with pytest.raises(ValidationError):
            sample_csc.column(4)

    def test_column_nnz(self, sample_csc):
        assert sample_csc.column_nnz().tolist() == [2, 1, 1, 1]

    def test_nbytes_positive(self, sample_csc):
        assert sample_csc.nbytes > 0

    def test_frobenius(self, sample_csc, sample_dense):
        assert sample_csc.frobenius_norm() == pytest.approx(
            np.linalg.norm(sample_dense))


class TestStructuralOps:
    def test_slice_columns(self, sample_csc, sample_dense):
        sub = sample_csc.slice_columns(1, 3)
        assert np.array_equal(sub.to_dense(), sample_dense[:, 1:3])

    def test_slice_columns_empty(self, sample_csc):
        sub = sample_csc.slice_columns(2, 2)
        assert sub.shape == (3, 0)

    def test_slice_bad_range(self, sample_csc):
        with pytest.raises(ValidationError):
            sample_csc.slice_columns(3, 1)

    def test_select_columns(self, sample_csc, sample_dense):
        sub = sample_csc.select_columns([3, 0])
        assert np.array_equal(sub.to_dense(), sample_dense[:, [3, 0]])

    def test_select_columns_out_of_range(self, sample_csc):
        with pytest.raises(ValidationError):
            sample_csc.select_columns([9])

    def test_hstack(self, sample_csc, sample_dense):
        both = sample_csc.hstack(sample_csc)
        assert np.array_equal(both.to_dense(),
                              np.concatenate([sample_dense] * 2, axis=1))

    def test_hstack_row_mismatch(self, sample_csc):
        with pytest.raises(ValidationError):
            sample_csc.hstack(CSCMatrix.zeros((5, 2)))

    def test_pad_rows(self, sample_csc, sample_dense):
        padded = sample_csc.pad_rows(5)
        expected = np.zeros((5, 4))
        expected[:3] = sample_dense
        assert np.array_equal(padded.to_dense(), expected)

    def test_pad_rows_shrink_rejected(self, sample_csc):
        with pytest.raises(ValidationError):
            sample_csc.pad_rows(2)

    def test_shift_rows(self, sample_csc, sample_dense):
        shifted = sample_csc.shift_rows(2)
        expected = np.zeros((5, 4))
        expected[2:] = sample_dense
        assert np.array_equal(shifted.to_dense(), expected)


class TestArithmetic:
    def test_matvec(self, sample_csc, sample_dense, rng):
        x = rng.standard_normal(4)
        assert np.allclose(sample_csc.matvec(x), sample_dense @ x)

    def test_rmatvec(self, sample_csc, sample_dense, rng):
        y = rng.standard_normal(3)
        assert np.allclose(sample_csc.rmatvec(y), sample_dense.T @ y)

    def test_matmul_vector(self, sample_csc, sample_dense, rng):
        x = rng.standard_normal(4)
        assert np.allclose(sample_csc @ x, sample_dense @ x)

    def test_matmul_matrix(self, sample_csc, sample_dense, rng):
        x = rng.standard_normal((4, 3))
        assert np.allclose(sample_csc @ x, sample_dense @ x)

    def test_to_scipy_matches(self, sample_csc, sample_dense):
        sp = sample_csc.to_scipy()
        assert np.array_equal(sp.toarray(), sample_dense)

    def test_transpose_csr(self, sample_csc, sample_dense):
        csr = sample_csc.transpose_csr()
        assert np.array_equal(csr.to_dense(), sample_dense.T)

    def test_allclose(self, sample_csc):
        assert sample_csc.allclose(sample_csc)
        assert not sample_csc.allclose(CSCMatrix.zeros(sample_csc.shape))

"""LS-SVM classification tests."""

import numpy as np
import pytest

from repro.apps.classification import (
    make_classification_problem,
    train_ls_svm,
    train_ls_svm_transformed,
)
from repro.core import exd_transform
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def problem():
    return make_classification_problem(m=24, n=160, margin=1.0,
                                       noise=0.1, seed=5)


class TestProblemGenerator:
    def test_separable_by_construction(self, problem):
        a, labels, (w, b) = problem
        margins = labels * (w @ a + b)
        assert np.all(margins > 0.5)

    def test_deterministic(self):
        a1, l1, _ = make_classification_problem(seed=3)
        a2, l2, _ = make_classification_problem(seed=3)
        assert np.array_equal(a1, a2) and np.array_equal(l1, l2)

    def test_validation(self):
        with pytest.raises(ValidationError):
            make_classification_problem(m=1, n=10)


class TestLSSVM:
    def test_trains_to_high_accuracy(self, problem):
        a, labels, _ = problem
        model = train_ls_svm(a, labels, gamma=50.0)
        acc = float(np.mean(model.predict(a) == labels))
        assert acc > 0.97
        assert model.meta["cg_converged"]

    def test_generalises_to_fresh_samples(self, problem):
        a, labels, _ = problem
        model = train_ls_svm(a, labels, gamma=50.0)
        a_test, y_test, _ = make_classification_problem(
            m=24, n=80, margin=1.0, noise=0.1, seed=5)
        acc = float(np.mean(model.predict(a_test) == y_test))
        assert acc > 0.9

    def test_single_column_decision(self, problem):
        a, labels, _ = problem
        model = train_ls_svm(a, labels, gamma=50.0)
        score = model.decision(a[:, 0])
        assert np.isscalar(score) or np.ndim(score) == 0
        assert np.sign(score) == labels[0]

    def test_transformed_gram_matches_exact(self, problem):
        """Training through (DC)'DC at tight eps agrees with exact."""
        a, labels, _ = problem
        transform, stats = exd_transform(a, 80, 0.01, seed=0)
        assert stats.all_converged
        exact = train_ls_svm(a, labels, gamma=50.0)
        approx = train_ls_svm_transformed(transform, labels, gamma=50.0)
        agree = float(np.mean(exact.predict(a) == approx.predict(a)))
        assert agree > 0.97

    def test_label_validation(self, problem):
        a, labels, _ = problem
        with pytest.raises(ValidationError):
            train_ls_svm(a, np.zeros(a.shape[1]))
        with pytest.raises(ValidationError):
            train_ls_svm(a, labels[:-1])
        with pytest.raises(ValidationError):
            train_ls_svm(a, labels, gamma=0.0)

    def test_dimension_mismatch_on_predict(self, problem):
        a, labels, _ = problem
        model = train_ls_svm(a, labels, gamma=10.0)
        with pytest.raises(ValidationError):
            model.predict(np.ones((7, 3)))

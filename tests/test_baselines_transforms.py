"""Tests for the transformation baselines: RCSS, oASIS, RankMap, dense."""

import numpy as np
import pytest

from repro.baselines import (
    DenseGramOperator,
    oasis_transform,
    rankmap_transform,
    rcss_transform,
    run_dense_distributed_gram,
)
from repro.errors import DictionaryError, ValidationError


@pytest.fixture(scope="module")
def data():
    from repro.data.subspaces import union_of_subspaces
    a, model = union_of_subspaces(30, 240, n_subspaces=3, dim=3,
                                  noise=0.01, seed=51)
    return a, model


class TestRCSS:
    def test_meets_error_target(self, data):
        a, _ = data
        t = rcss_transform(a, 0.1, seed=0)
        assert t.method == "rcss"
        assert t.transformation_error(a) <= 0.1 + 1e-9

    def test_coefficients_are_dense(self, data):
        a, _ = data
        t = rcss_transform(a, 0.1, seed=0)
        # Least-squares coefficients: essentially every entry non-zero.
        assert t.alpha > 0.5 * t.l

    def test_fixed_size(self, data):
        a, _ = data
        t = rcss_transform(a, 0.5, size=20, seed=0)
        assert t.l == 20

    def test_infeasible_raises(self, rng):
        a = rng.standard_normal((30, 60))  # full-rank iid noise
        with pytest.raises(DictionaryError):
            rcss_transform(a, 0.01, max_size=5, seed=0)


class TestOASIS:
    def test_meets_error_target(self, data):
        a, _ = data
        t = oasis_transform(a, 0.1, seed=0)
        assert t.method == "oasis"
        assert t.transformation_error(a) <= 0.1 + 1e-9

    def test_adaptive_needs_fewer_columns_than_random(self, data):
        """oASIS picks informative columns: at equal ε its dictionary is
        no larger than RCSS's random one (the adaptivity claim)."""
        a, _ = data
        t_oasis = oasis_transform(a, 0.05, seed=0)
        t_rcss = rcss_transform(a, 0.05, seed=0)
        assert t_oasis.l <= t_rcss.l + 2

    def test_fixed_size_stop(self, data):
        a, _ = data
        t = oasis_transform(a, 0.5, size=7, seed=0)
        assert t.l <= 7

    def test_selected_are_data_columns(self, data):
        a, _ = data
        t = oasis_transform(a, 0.2, seed=0)
        for k, idx in enumerate(t.dictionary.indices):
            assert np.allclose(t.dictionary.atoms[:, k], a[:, idx])

    def test_infeasible_raises(self, rng):
        a = rng.standard_normal((30, 60))
        with pytest.raises(DictionaryError):
            oasis_transform(a, 0.001, max_size=3, seed=0)


class TestRankMap:
    def test_meets_error_target_with_sparse_c(self, data):
        a, _ = data
        t = rankmap_transform(a, 0.1, seed=0, subset_fraction=0.5)
        assert t.method == "rankmap"
        assert t.transformation_error(a) <= 0.1 + 1e-6
        # Sparse coefficients, unlike RCSS/oASIS.
        assert t.alpha < 0.5 * t.l

    def test_dictionary_is_error_minimal_not_tuned(self, data):
        """RankMap's L is near L_min; an ExD at 3·L_min is sparser."""
        from repro.core import exd_transform
        a, _ = data
        t_rm = rankmap_transform(a, 0.1, seed=0, subset_fraction=0.5)
        t_big, _ = exd_transform(a, min(3 * t_rm.l, a.shape[1]), 0.1,
                                 seed=0)
        assert t_big.alpha <= t_rm.alpha + 0.2


class TestDenseBaseline:
    def test_serial_operator(self, data, rng):
        a, _ = data
        op = DenseGramOperator(a)
        x = rng.standard_normal(a.shape[1])
        assert np.allclose(op(x), a.T @ (a @ x))
        assert op.flops > 0

    def test_distributed_matches_serial(self, data, rng, small_cluster):
        a, _ = data
        x = rng.standard_normal(a.shape[1])
        y, res = run_dense_distributed_gram(a, x, small_cluster)
        assert np.allclose(y, a.T @ (a @ x), atol=1e-8)
        assert res.simulated_time > 0

    def test_communication_is_2m_words(self, data, rng, small_cluster):
        a, _ = data
        x = rng.standard_normal(a.shape[1])
        _, res = run_dense_distributed_gram(a, x, small_cluster,
                                            iterations=2)
        words = res.traffic.total_payload_words("reduce", "bcast")
        assert words == 2 * 2 * a.shape[0]

    def test_normalized_power_step(self, data, rng, small_cluster):
        a, _ = data
        x = rng.standard_normal(a.shape[1])
        y, _ = run_dense_distributed_gram(a, x, small_cluster,
                                          iterations=4, normalize=True)
        assert np.linalg.norm(y) == pytest.approx(1.0, rel=1e-9)

    def test_shape_validation(self, data, small_cluster):
        a, _ = data
        with pytest.raises(ValidationError):
            run_dense_distributed_gram(a, np.ones(5), small_cluster)

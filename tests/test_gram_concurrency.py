"""Concurrency suite for the encode-service substrate (satellite of the
serving PR): ``GramCache`` and ``fork_map`` under a threaded workload.

The serve daemon answers requests from an event loop plus executor
threads while hot-swaps load new dictionary generations concurrently.
That workload leans on two process-wide singletons:

* :data:`~repro.linalg.parallel_omp.GRAM_CACHE` must never serve a
  stale ``DᵀD`` — not for a mutated array (fingerprint check), not for
  a recycled ``id`` (weakref guard), not under any thread interleaving;
* :func:`~repro.linalg.parallel_omp.fork_map` must never fork from the
  multi-threaded daemon (fork + foreign locks = child deadlock) and its
  in-process fallback must stay correct when called from many threads.

Every join below carries a timeout so a regression shows up as a test
failure, not a hung suite.
"""

import threading

import numpy as np
import pytest

from repro.linalg import parallel_omp
from repro.linalg.parallel_omp import (
    GRAM_CACHE,
    GramCache,
    cached_gram,
    fork_map,
)

JOIN_TIMEOUT = 30.0


def _join_all(threads):
    for t in threads:
        t.join(JOIN_TIMEOUT)
    alive = [t.name for t in threads if t.is_alive()]
    assert not alive, f"threads deadlocked: {alive}"


@pytest.fixture(autouse=True)
def clean_cache():
    GRAM_CACHE.clear()
    yield
    GRAM_CACHE.clear()


class TestGramCacheConcurrency:
    def test_hammer_with_interleaved_generation_swaps(self):
        """N reader threads on ``cached_gram`` while a writer keeps
        swapping in new dictionary generations: every returned Gram
        must equal ``d.T @ d`` of the exact array that was passed."""
        rng = np.random.default_rng(0)
        n_readers, rounds = 8, 40
        generations = [rng.standard_normal((24, 12)) for _ in range(6)]
        expected = [g.T @ g for g in generations]
        current = {"idx": 0}
        stop = threading.Event()
        failures = []
        barrier = threading.Barrier(n_readers + 1)

        def reader(name):
            barrier.wait(JOIN_TIMEOUT)
            while not stop.is_set():
                idx = current["idx"]
                d = generations[idx]
                gram = cached_gram(d)
                if not np.array_equal(gram, expected[idx]):
                    failures.append(name)
                    return

        def swapper():
            barrier.wait(JOIN_TIMEOUT)
            for i in range(rounds):
                current["idx"] = i % len(generations)
            stop.set()

        threads = [threading.Thread(target=reader, args=(i,),
                                    name=f"reader-{i}")
                   for i in range(n_readers)]
        threads.append(threading.Thread(target=swapper, name="swapper"))
        for t in threads:
            t.start()
        stop.set()  # belt and braces if the swapper died early
        _join_all(threads)
        assert not failures

    def test_no_stale_gram_after_concurrent_mutation(self):
        """K-SVD-style in-place atom rewrites between lookups must
        always invalidate, even when lookups race the mutation."""
        rng = np.random.default_rng(1)
        d = rng.standard_normal((20, 10))
        cache = GramCache()
        results = []
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait(JOIN_TIMEOUT)
            for _ in range(30):
                with lock:
                    # snapshot + lookup atomically relative to mutators
                    snapshot = d.copy()
                    gram = cache.get(d)
                results.append(np.array_equal(gram, snapshot.T @ snapshot))

        def mutator():
            barrier.wait(JOIN_TIMEOUT)
            for i in range(30):
                with lock:
                    d[:, i % d.shape[1]] += 0.5

        threads = [threading.Thread(target=worker) for _ in range(3)]
        threads.append(threading.Thread(target=mutator))
        for t in threads:
            t.start()
        _join_all(threads)
        assert all(results)

    def test_eviction_races_do_not_corrupt(self):
        """Churning more arrays than ``max_entries`` across threads
        exercises insert/evict/weakref-callback interleavings."""
        cache = GramCache(max_entries=4)
        rng = np.random.default_rng(2)
        errors = []

        def churn(seed):
            local = np.random.default_rng(seed)
            for _ in range(50):
                d = local.standard_normal((16, 8))
                gram = cache.get(d)
                if not np.array_equal(gram, d.T @ d):
                    errors.append(seed)
                    return
                # second lookup on the same object must hit and agree
                if cache.get(d) is not gram:
                    errors.append(seed)
                    return

        threads = [threading.Thread(target=churn, args=(int(s),))
                   for s in rng.integers(0, 2**31, size=6)]
        for t in threads:
            t.start()
        _join_all(threads)
        assert not errors
        assert len(cache) <= 4

    def test_hit_counters_consistent_under_threads(self):
        cache = GramCache()
        d = np.random.default_rng(3).standard_normal((16, 8))
        cache.get(d)  # prime: exactly one miss

        def hit():
            for _ in range(25):
                cache.get(d)

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for t in threads:
            t.start()
        _join_all(threads)
        assert cache.misses == 1
        assert cache.hits == 4 * 25


class TestForkMapUnderThreads:
    @staticmethod
    def _square(shared, payload):
        return shared * payload * payload

    def test_threaded_caller_falls_back_in_process(self):
        """From a multi-threaded process ``_can_fork`` must refuse, and
        the fallback must produce the same ordered results."""
        results = {}

        def call(tag):
            # this thread plus main() makes active_count() > 1
            assert parallel_omp._can_fork() is False
            results[tag] = fork_map(self._square, range(10), 3, workers=4)

        threads = [threading.Thread(target=call, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        _join_all(threads)
        expect = [3 * p * p for p in range(10)]
        assert all(results[i] == expect for i in range(4))

    def test_concurrent_fork_map_no_deadlock(self):
        """Many simultaneous fork_map calls must neither deadlock on
        ``_FORK_LOCK`` nor cross their ``shared`` payloads."""
        failures = []
        barrier = threading.Barrier(8)

        def call(tag):
            barrier.wait(JOIN_TIMEOUT)
            for _ in range(10):
                out = fork_map(self._square, range(6), tag, workers=2)
                if out != [tag * p * p for p in range(6)]:
                    failures.append(tag)
                    return

        threads = [threading.Thread(target=call, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        _join_all(threads)
        assert not failures

    def test_parallel_encode_from_daemon_thread(self):
        """The serving executor path: ``batch_omp_matrix(workers=-1)``
        called from a non-main thread must complete (in-process
        fallback) and stay bit-identical to the serial encode."""
        from repro.linalg.omp import batch_omp_matrix

        rng = np.random.default_rng(4)
        d = rng.standard_normal((24, 16))
        d /= np.linalg.norm(d, axis=0)
        a = rng.standard_normal((24, 40))
        c_serial, _ = batch_omp_matrix(d, a, 0.2)
        out = {}

        def encode():
            c, stats = batch_omp_matrix(d, a, 0.2, workers=-1)
            out["c"] = c

        t = threading.Thread(target=encode, name="serve-executor")
        t.start()
        _join_all([t])
        np.testing.assert_array_equal(out["c"].data, c_serial.data)
        np.testing.assert_array_equal(out["c"].indices, c_serial.indices)
        np.testing.assert_array_equal(out["c"].indptr, c_serial.indptr)

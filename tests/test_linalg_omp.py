"""Unit tests for OMP sparse coding (reference and Batch-OMP)."""

import numpy as np
import pytest

from repro.errors import DictionaryError, ValidationError
from repro.linalg import batch_omp_matrix, batch_omp_solve, omp_solve


@pytest.fixture(scope="module")
def dictionary_and_signals():
    rng = np.random.default_rng(5)
    d = rng.standard_normal((20, 12))
    d /= np.linalg.norm(d, axis=0, keepdims=True)
    coefs = np.zeros((12, 8))
    for j in range(8):
        support = rng.choice(12, size=3, replace=False)
        coefs[support, j] = rng.standard_normal(3)
    signals = d @ coefs
    return d, signals, coefs


class TestOmpSolve:
    def test_exact_recovery_at_zero_eps(self, dictionary_and_signals):
        d, signals, _ = dictionary_and_signals
        for j in range(signals.shape[1]):
            res = omp_solve(d, signals[:, j], eps=0.0)
            assert res.converged
            assert res.residual_norm <= 1e-9 * np.linalg.norm(signals[:, j])

    def test_residual_criterion(self, dictionary_and_signals):
        d, signals, _ = dictionary_and_signals
        res = omp_solve(d, signals[:, 0], eps=0.1)
        assert res.residual_norm <= 0.1 * np.linalg.norm(signals[:, 0]) + 1e-12

    def test_zero_signal(self, dictionary_and_signals):
        d, _, _ = dictionary_and_signals
        res = omp_solve(d, np.zeros(20), eps=0.1)
        assert res.converged and res.support.size == 0

    def test_sparsity_cap(self, dictionary_and_signals):
        d, signals, _ = dictionary_and_signals
        res = omp_solve(d, signals[:, 0], eps=0.0, max_atoms=1)
        assert res.support.size <= 1

    def test_strict_raises_when_infeasible(self, rng):
        # A 1-atom dictionary cannot represent a generic 2-D signal.
        d = np.array([[1.0], [0.0]])
        a = np.array([1.0, 1.0])
        with pytest.raises(DictionaryError):
            omp_solve(d, a, eps=0.01, strict=True)

    def test_non_strict_reports_unconverged(self):
        d = np.array([[1.0], [0.0]])
        res = omp_solve(d, np.array([1.0, 1.0]), eps=0.01)
        assert not res.converged

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            omp_solve(np.ones((3, 2)), np.ones(4), eps=0.1)

    def test_support_has_no_duplicates(self, dictionary_and_signals):
        d, signals, _ = dictionary_and_signals
        res = omp_solve(d, signals[:, 2], eps=0.0)
        assert len(set(res.support.tolist())) == res.support.size


class TestBatchOmpSolve:
    def test_agrees_with_reference(self, dictionary_and_signals):
        d, signals, _ = dictionary_and_signals
        for j in range(signals.shape[1]):
            norm = np.linalg.norm(signals[:, j])
            for eps in (0.0, 0.05, 0.2):
                ref = omp_solve(d, signals[:, j], eps)
                fast = batch_omp_solve(d, signals[:, j], eps)
                assert fast.converged == ref.converged
                # Batch-OMP's residual recurrence is accurate only to
                # ~√ε_machine·‖a‖; compare at that granularity.
                assert fast.residual_norm == pytest.approx(
                    ref.residual_norm, abs=1e-6 * max(norm, 1.0))
                if eps > 0:
                    assert set(fast.support.tolist()) == \
                        set(ref.support.tolist())

    def test_precomputed_gram_reused(self, dictionary_and_signals):
        d, signals, _ = dictionary_and_signals
        gram = d.T @ d
        res = batch_omp_solve(d, signals[:, 1], 0.05, gram=gram,
                              dta=d.T @ signals[:, 1])
        ref = batch_omp_solve(d, signals[:, 1], 0.05)
        assert np.allclose(np.sort(res.support), np.sort(ref.support))

    def test_strict_raises(self):
        d = np.array([[1.0], [0.0]])
        with pytest.raises(DictionaryError):
            batch_omp_solve(d, np.array([1.0, 1.0]), eps=0.01, strict=True)

    def test_zero_signal(self, dictionary_and_signals):
        d, _, _ = dictionary_and_signals
        res = batch_omp_solve(d, np.zeros(20), eps=0.1)
        assert res.converged and res.support.size == 0

    def test_duplicate_atom_banned_not_looped(self):
        # Dictionary with a duplicated atom: OMP must not loop forever.
        d = np.array([[1.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        res = batch_omp_solve(d, np.array([2.0, 3.0]), eps=0.0)
        assert res.converged
        assert res.support.size <= 2


class TestBatchOmpMatrix:
    def test_full_matrix_error_bound(self, dictionary_and_signals):
        d, signals, _ = dictionary_and_signals
        eps = 0.05
        c, stats = batch_omp_matrix(d, signals, eps)
        recon = d @ c.to_dense()
        col_errs = np.linalg.norm(signals - recon, axis=0)
        col_norms = np.linalg.norm(signals, axis=0)
        assert np.all(col_errs <= eps * col_norms + 1e-10)
        assert stats.converged_columns == signals.shape[1]
        assert stats.flops > 0

    def test_global_frobenius_bound(self, dictionary_and_signals):
        d, signals, _ = dictionary_and_signals
        eps = 0.1
        c, _ = batch_omp_matrix(d, signals, eps)
        err = np.linalg.norm(signals - d @ c.to_dense())
        assert err <= eps * np.linalg.norm(signals) + 1e-10

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            batch_omp_matrix(np.ones((3, 2)), np.ones((4, 5)), 0.1)

    def test_c_shape(self, dictionary_and_signals):
        d, signals, _ = dictionary_and_signals
        c, _ = batch_omp_matrix(d, signals, 0.1)
        assert c.shape == (d.shape[1], signals.shape[1])

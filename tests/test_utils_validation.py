"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_fraction,
    check_in,
    check_matrix,
    check_positive_int,
    check_vector,
)


class TestCheckMatrix:
    def test_accepts_lists(self):
        out = check_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2) and out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-D"):
            check_matrix([1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_matrix([[np.nan, 1.0]])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_matrix(np.empty((0, 3)))

    def test_allow_empty(self):
        out = check_matrix(np.empty((0, 3)), allow_empty=True)
        assert out.shape == (0, 3)

    def test_returns_contiguous(self):
        a = np.arange(12.0).reshape(3, 4).T  # non-contiguous view
        assert check_matrix(a).flags["C_CONTIGUOUS"]


class TestCheckVector:
    def test_size_enforced(self):
        with pytest.raises(ValidationError, match="length 3"):
            check_vector([1.0, 2.0], size=3)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_vector([[1.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_vector([np.inf])


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(5, "x") == 5

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "x")

    def test_minimum(self):
        assert check_positive_int(0, "x", minimum=0) == 0

    def test_rejects_fractional_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "x")

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            check_positive_int("many", "x")


class TestCheckFraction:
    def test_open_low_closed_high(self):
        assert check_fraction(1.0, "eps") == 1.0
        with pytest.raises(ValidationError):
            check_fraction(0.0, "eps")

    def test_inclusive_low(self):
        assert check_fraction(0.0, "eps", inclusive_low=True) == 0.0

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_fraction(1.5, "eps")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_fraction(float("nan"), "eps")


class TestCheckIn:
    def test_membership(self):
        assert check_in("a", "x", ("a", "b")) == "a"
        with pytest.raises(ValidationError):
            check_in("c", "x", ("a", "b"))

"""Tests for the unified observability layer (metrics, spans, reports).

Covers the acceptance surface of the observability PR: registry
thread-safety under the MPI emulator's rank threads, span nesting and
exception unwinding, the fork-pool worker stat merge in
``parallel_batch_omp_matrix``, and a golden-file check of the RunReport
JSON schema.
"""

import json
import os

import numpy as np
import pytest

from repro import observability as obs
from repro.linalg.omp import batch_omp_matrix
from repro.linalg.parallel_omp import GRAM_CACHE
from repro.mpi import run_spmd

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "run_report_schema.json")


@pytest.fixture(autouse=True)
def _clean_observability():
    """Every test starts and ends with a pristine, disabled layer."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestRegistry:
    def test_counters_gauges_histograms(self):
        r = obs.MetricsRegistry()
        r.inc("c")
        r.inc("c", 4)
        r.set_gauge("g", 2.5)
        r.set_gauge("g", 3.5)
        r.observe("h", 1.0)
        r.observe("h", 3.0)
        assert r.counter("c") == 5
        assert r.gauge("g") == 3.5
        assert r.histogram("h") == {"count": 2, "total": 4.0, "min": 1.0,
                                    "max": 3.0, "mean": 2.0}
        snap = r.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 3.5}
        r.reset()
        assert r.snapshot() == {"counters": {}, "gauges": {},
                                "histograms": {}}

    def test_merge_counters(self):
        r = obs.MetricsRegistry()
        r.inc("x", 2)
        r.merge_counters({"x": 3, "y": 7})
        assert r.counter("x") == 5
        assert r.counter("y") == 7

    def test_helpers_are_noops_when_disabled(self):
        obs.inc("dead.counter", 10)
        obs.set_gauge("dead.gauge", 1.0)
        obs.observe("dead.hist", 1.0)
        obs.merge_counters({"dead.merge": 1})
        snap = obs.REGISTRY.snapshot()
        assert "dead.counter" not in snap["counters"]
        assert "dead.gauge" not in snap["gauges"]
        assert "dead.hist" not in snap["histograms"]

    def test_thread_safety_under_rank_threads(self):
        """P emulated ranks hammering one counter lose no increments."""
        obs.enable()
        p, n = 8, 200

        def program(comm):
            for _ in range(n):
                obs.inc("stress.incs")
            return comm.Get_rank()

        run_spmd(p, program)
        assert obs.REGISTRY.counter("stress.incs") == p * n


class TestSpans:
    def test_nesting_builds_slash_paths(self):
        obs.enable()
        with obs.span("outer"):
            assert obs.current_span_path() == "outer"
            with obs.span("inner"):
                assert obs.current_span_path() == "outer/inner"
        snap = obs.SPANS.snapshot()
        assert set(snap) == {"outer", "outer/inner"}
        assert snap["outer"]["count"] == 1
        assert snap["outer"]["total_s"] >= snap["outer/inner"]["total_s"]

    def test_exception_unwinds_and_counts_error(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("outer"):
                with obs.span("boom"):
                    raise ValueError("x")
        # Both spans recorded, the stack fully unwound.
        snap = obs.SPANS.snapshot()
        assert snap["outer/boom"]["errors"] == 1
        assert snap["outer"]["errors"] == 1
        assert obs.current_span_path() == ""
        # A later span starts a fresh root path.
        with obs.span("after"):
            assert obs.current_span_path() == "after"

    def test_disabled_span_is_shared_noop(self):
        s1, s2 = obs.span("a"), obs.span("b")
        assert s1 is s2  # no allocation on the disabled path
        with s1:
            assert obs.current_span_path() == ""
        assert obs.SPANS.snapshot() == {}

    def test_rank_threads_get_independent_stacks(self):
        obs.enable()

        def program(comm):
            with obs.span("rank_work"):
                return obs.current_span_path()

        res = run_spmd(4, program)
        assert res.returns == ["rank_work"] * 4
        assert obs.SPANS.snapshot()["rank_work"]["count"] == 4


class TestWorkerStatMerge:
    def test_parallel_encode_merges_worker_counters(self, rng):
        """Fork-pool workers report per-chunk deltas; the parent total
        must equal the serial count: every column exactly once."""
        d = rng.standard_normal((16, 32))
        d /= np.linalg.norm(d, axis=0)
        a = rng.standard_normal((16, 60))
        obs.enable()
        batch_omp_matrix(d, a, 0.3, workers=2)
        merged = obs.REGISTRY.counter("omp.columns_encoded")
        assert merged == a.shape[1]
        assert obs.REGISTRY.counter("omp.iterations") > 0
        assert obs.REGISTRY.counter("pool.chunks") >= 2
        assert obs.REGISTRY.gauge("pool.workers") == 2

    def test_serial_and_parallel_counts_agree(self, rng):
        d = rng.standard_normal((12, 24))
        d /= np.linalg.norm(d, axis=0)
        a = rng.standard_normal((12, 40))
        with obs.observed():
            batch_omp_matrix(d, a, 0.3)
            serial = dict(obs.REGISTRY.snapshot()["counters"])
        with obs.observed():
            batch_omp_matrix(d, a, 0.3, workers=2)
            parallel = dict(obs.REGISTRY.snapshot()["counters"])
        for key in ("omp.columns_encoded", "omp.converged_columns",
                    "omp.iterations"):
            assert serial[key] == parallel[key], key


class TestGramCacheCounters:
    def test_hits_and_misses_counted(self, rng):
        d = rng.standard_normal((10, 20))
        d /= np.linalg.norm(d, axis=0)
        a = rng.standard_normal((10, 15))
        GRAM_CACHE.clear()
        obs.enable()
        batch_omp_matrix(d, a, 0.3)
        batch_omp_matrix(d, a, 0.3)
        assert obs.REGISTRY.counter("gram_cache.misses") == 1
        assert obs.REGISTRY.counter("gram_cache.hits") == 1


class TestSpmdTelemetry:
    def test_traffic_and_clocks_aggregate(self, small_cluster):
        obs.enable()

        def program(comm):
            return comm.allreduce(float(comm.Get_rank()))

        run_spmd(0, program, cluster=small_cluster)
        report = obs.collect_report()
        assert report.clocks["runs"] == 1
        assert report.clocks["ranks"] == small_cluster.size
        assert report.clocks["simulated_time"] > 0
        assert "allreduce" in report.traffic
        assert report.traffic["allreduce"]["payload_words"] > 0
        counters = report.metrics["counters"]
        assert counters["mpi.runs"] == 1
        assert counters["mpi.collective.words"] > 0
        assert counters["mpi.wire.words"] > 0

    def test_record_is_noop_when_disabled(self):
        def program(comm):
            return comm.allreduce(1)

        run_spmd(2, program)
        report = obs.collect_report()
        assert report.clocks["runs"] == 0
        assert report.traffic == {}


class TestObservedContext:
    def test_restores_prior_state(self):
        assert not obs.enabled()
        with obs.observed():
            assert obs.enabled()
        assert not obs.enabled()
        obs.enable()
        with obs.observed():
            pass
        assert obs.enabled()

    def test_fresh_resets_state(self):
        obs.enable()
        obs.inc("stale")
        with obs.observed(fresh=True):
            assert obs.REGISTRY.counter("stale") == 0


class TestRunReportSchema:
    @staticmethod
    def _shape(value):
        """Recursive type skeleton: dicts keep keys, leaves keep type."""
        if isinstance(value, dict):
            return {k: TestRunReportSchema._shape(v)
                    for k, v in sorted(value.items())}
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, (int, float)):
            return "number"
        if isinstance(value, str):
            return "string"
        if isinstance(value, list):
            return "array"
        return type(value).__name__

    def _reference_report(self):
        """A deterministic little run exercising every report section."""
        obs.enable()
        with obs.span("golden.root"):
            with obs.span("golden.child"):
                obs.inc("golden.counter", 2)
        obs.set_gauge("golden.gauge", 1.0)
        obs.observe("golden.hist", 0.5)

        def program(comm):
            return comm.allreduce(1.0)

        from repro.platform import platform_by_name
        run_spmd(0, program, cluster=platform_by_name("1x4"))
        return obs.collect_report(command="golden",
                                  argv=["golden", "--seed", "0"])

    def test_document_matches_golden_schema(self):
        doc = json.loads(self._reference_report().to_json())
        with open(GOLDEN, encoding="utf-8") as fh:
            golden = json.load(fh)
        # Span/metric/traffic *names* vary with instrumentation; the
        # golden file pins the document layout and per-entry shapes.
        assert self._shape(doc["clocks"]) == golden["clocks"]
        assert sorted(doc) == golden["top_level_keys"]
        assert doc["schema"] == golden["schema"]
        assert sorted(doc["metrics"]) == golden["metrics_keys"]
        for entry in doc["spans"].values():
            assert self._shape(entry) == golden["span_entry"]
        for entry in doc["metrics"]["histograms"].values():
            assert self._shape(entry) == golden["histogram_entry"]
        for entry in doc["traffic"].values():
            assert self._shape(entry) == golden["traffic_entry"]
        assert self._shape(doc["gram_cache"]) == golden["gram_cache"]

    def test_json_roundtrip_and_save(self, tmp_path):
        report = self._reference_report()
        path = report.save(tmp_path / "report.json")
        doc = json.loads(open(path, encoding="utf-8").read())
        assert doc == report.to_dict() or doc["schema"] == obs.SCHEMA
        assert doc["meta"]["command"] == "golden"
        assert doc["spans"]["golden.root/golden.child"]["count"] == 1

    def test_pretty_mentions_every_section(self):
        text = self._reference_report().pretty()
        for needle in ("run report", "spans", "counters", "gram cache",
                       "mpi traffic", "virtual clocks"):
            assert needle in text

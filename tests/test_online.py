"""Drift-aware online maintenance (``repro.online``): atom usage
statistics and their cross-path exactness, Gram-staleness regression
tests, the Mensch/Mairal surrogate updater, drift detection, sketched
tuning, and the end-to-end maintainer/serve loop."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro import observability as obs
from repro.core import CostModel, exd_transform, tune_dictionary_size
from repro.core.dictionary import Dictionary, sample_dictionary
from repro.data.subspaces import union_of_subspaces
from repro.errors import ValidationError
from repro.linalg.omp import batch_omp_matrix
from repro.linalg.parallel_omp import GRAM_CACHE, cached_gram
from repro.online import (
    AlphaCurve,
    AtomStats,
    DriftConfig,
    DriftMonitor,
    MaintenanceConfig,
    OnlineMaintainer,
    OnlineUpdateConfig,
    OnlineUpdater,
    SketchConfig,
    fit_alpha_curve,
    record_encode,
    sketch_store_columns,
    sparse_projection,
    tune_dictionary_size_sketched,
    unwatch_dictionary,
    watch_dictionary,
    watched_stats,
)
from repro.platform import platform_by_name
from repro.store import ColumnStore

M, N, L, EPS = 32, 220, 24, 0.2


@pytest.fixture(scope="module")
def data():
    a, _ = union_of_subspaces(M, N, n_subspaces=4, dim=3, noise=0.01,
                              seed=7)
    return a


@pytest.fixture(scope="module")
def dictionary(data):
    return sample_dictionary(data, L, seed=7)


@pytest.fixture(autouse=True)
def clean_gram_cache():
    GRAM_CACHE.clear()
    yield
    GRAM_CACHE.clear()


# ----------------------------------------------------------------------
# AtomStats: the accumulator itself
# ----------------------------------------------------------------------
class TestAtomStats:
    def test_record_matches_bincount(self, data, dictionary):
        c, _ = batch_omp_matrix(dictionary.atoms, data, EPS)
        stats = AtomStats(L)
        stats.record(c)
        expect_counts = np.bincount(c.indices, minlength=L)
        expect_abs = np.bincount(c.indices, weights=np.abs(c.data),
                                 minlength=L)
        np.testing.assert_array_equal(stats.counts, expect_counts)
        np.testing.assert_allclose(stats.abs_coef_sum, expect_abs)
        assert stats.columns == N
        assert stats.generation == 1
        used = np.unique(c.indices)
        assert (stats.last_used[used] == 1).all()

    def test_merge_equals_serial_replay(self, data, dictionary):
        """Merging per-shard stats must equal recording the shards
        sequentially into one accumulator — every field."""
        halves = [data[:, :N // 2], data[:, N // 2:]]
        codes = [batch_omp_matrix(dictionary.atoms, h, EPS)[0]
                 for h in halves]
        serial = AtomStats(L)
        for c in codes:
            serial.record(c)
        merged = AtomStats(L)
        for c in codes:
            part = AtomStats(L)
            part.record(c)
            merged.merge(part)
        for field in ("counts", "abs_coef_sum", "last_used"):
            np.testing.assert_array_equal(getattr(merged, field),
                                          getattr(serial, field))
        assert merged.columns == serial.columns == N
        assert merged.generation == serial.generation == 2

    def test_merge_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cannot merge"):
            AtomStats(4).merge(AtomStats(5))

    def test_pickle_roundtrip_drops_lock(self, data, dictionary):
        c, _ = batch_omp_matrix(dictionary.atoms, data, EPS)
        stats = AtomStats(L)
        stats.record(c)
        clone = pickle.loads(pickle.dumps(stats))
        np.testing.assert_array_equal(clone.counts, stats.counts)
        np.testing.assert_array_equal(clone.last_used, stats.last_used)
        assert clone.columns == stats.columns
        clone.record(c)  # the rebuilt lock works
        assert clone.generation == stats.generation + 1

    def test_dead_atoms_and_reset(self):
        stats = AtomStats(4)
        stats.counts[:] = [0, 3, 1, 0]
        np.testing.assert_array_equal(stats.dead_atoms(), [0, 3])
        np.testing.assert_array_equal(stats.dead_atoms(min_count=2),
                                      [0, 2, 3])
        stats.abs_coef_sum[1] = 2.5
        stats.last_used[1] = 7
        stats.reset_atom(1)
        assert stats.counts[1] == 0
        assert stats.abs_coef_sum[1] == 0.0
        assert stats.last_used[1] == -1

    def test_summary_digest(self, data, dictionary):
        c, _ = batch_omp_matrix(dictionary.atoms, data, EPS)
        stats = AtomStats(L)
        stats.record(c)
        s = stats.summary(top_k=3)
        assert s["atoms"] == L and s["columns"] == N
        assert s["selections"] == int(stats.counts.sum()) == c.nnz
        assert len(s["top_atoms"]) <= 3
        top = s["top_atoms"][0]
        assert top["count"] == int(stats.counts.max())


# ----------------------------------------------------------------------
# The watch registry + encode hooks: exactness across every path
# ----------------------------------------------------------------------
class TestEncodeHooks:
    def test_unwatched_encode_records_nothing(self, data, dictionary):
        batch_omp_matrix(dictionary.atoms, data, EPS)
        assert watched_stats(dictionary.atoms) is None

    def test_serial_hook_fires_once(self, data, dictionary):
        stats = watch_dictionary(dictionary)
        try:
            c, _ = batch_omp_matrix(dictionary, data, EPS)
            assert stats.generation == 1
            assert int(stats.counts.sum()) == c.nnz
        finally:
            unwatch_dictionary(dictionary)

    def test_dictionary_and_atoms_share_accumulator(self, data,
                                                    dictionary):
        """The Dictionary object and its bare atoms array route to one
        accumulator, whichever the encode path passes."""
        stats = watch_dictionary(dictionary)
        try:
            assert watched_stats(dictionary) is stats
            assert watched_stats(dictionary.atoms) is stats
            batch_omp_matrix(dictionary.atoms, data, EPS)  # bare array
            batch_omp_matrix(dictionary, data, EPS)        # operator
            assert stats.generation == 2
            assert stats.columns == 2 * N
        finally:
            unwatch_dictionary(dictionary)

    def test_parallel_counts_equal_serial(self, data, dictionary):
        """workers>1 goes through the fork-pool engine; the parent-side
        post-merge hook must record exactly the serial counts."""
        serial = watch_dictionary(dictionary.atoms)
        batch_omp_matrix(dictionary.atoms, data, EPS)
        unwatch_dictionary(dictionary.atoms)

        parallel = watch_dictionary(dictionary.atoms)
        try:
            batch_omp_matrix(dictionary.atoms, data, EPS, workers=2)
        finally:
            unwatch_dictionary(dictionary.atoms)
        np.testing.assert_array_equal(parallel.counts, serial.counts)
        np.testing.assert_allclose(parallel.abs_coef_sum,
                                   serial.abs_coef_sum)
        np.testing.assert_array_equal(parallel.last_used,
                                      serial.last_used)
        assert parallel.generation == serial.generation == 1

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_spmd_gathered_deltas_equal_serial(self, data, dictionary,
                                               backend):
        """Rank-sharded encodes gather their stats deltas to rank 0;
        the merged accumulator must equal one serial pass — the same
        contract the observability counters keep."""
        from repro.mpi import run_spmd

        serial = AtomStats(L)
        c, _ = batch_omp_matrix(dictionary.atoms, data, EPS)
        serial.record(c)

        res = run_spmd(2, _spmd_stats_program, dictionary.atoms, data,
                       EPS, backend=backend)
        deltas = next(r for r in res.returns if r is not None)
        merged = AtomStats.from_deltas(deltas)
        np.testing.assert_array_equal(merged.counts, serial.counts)
        np.testing.assert_allclose(merged.abs_coef_sum,
                                   serial.abs_coef_sum)
        assert merged.columns == serial.columns == N
        # shard boundaries split one batch into two generations; the
        # per-atom recency ordering is what must survive the merge
        assert merged.generation == 2
        np.testing.assert_array_equal(merged.last_used >= 0,
                                      serial.last_used >= 0)

    def test_watch_rejects_size_mismatch(self, dictionary):
        with pytest.raises(ValueError, match="tracks"):
            watch_dictionary(dictionary, stats=AtomStats(L + 1))

    def test_record_encode_ignores_unwatched(self, data, dictionary):
        c, _ = batch_omp_matrix(dictionary.atoms, data, EPS)
        record_encode(dictionary.atoms, c)  # no watch -> no-op

    def test_weakref_cleanup(self):
        arr = np.random.default_rng(0).standard_normal((8, 4))
        watch_dictionary(arr)
        assert watched_stats(arr) is not None
        key = id(arr)
        del arr
        from repro.online import stats as stats_mod
        assert key not in stats_mod._WATCHED


def _spmd_stats_program(comm, atoms, data, eps):
    """Rank program: encode my shard, gather stats deltas to rank 0."""
    from repro.linalg.omp import batch_omp_matrix
    from repro.online.stats import AtomStats

    rank, size = comm.Get_rank(), comm.Get_size()
    n = data.shape[1]
    lo = rank * n // size
    hi = (rank + 1) * n // size
    local = AtomStats(atoms.shape[1])
    c, _ = batch_omp_matrix(atoms, data[:, lo:hi], eps)
    local.record(c)
    gathered = comm.gather(local.to_deltas(), root=0)
    if rank != 0:
        return None
    merged = AtomStats.from_deltas(gathered[0])
    for deltas in gathered[1:]:
        merged.merge(AtomStats.from_deltas(deltas))
    return merged.to_deltas()


# ----------------------------------------------------------------------
# Gram staleness: every atom mutation must invalidate deterministically
# ----------------------------------------------------------------------
class TestGramInvalidation:
    def test_invalidate_by_array_and_by_carrier(self, dictionary):
        cached_gram(dictionary.atoms)
        assert GRAM_CACHE.invalidate(dictionary.atoms) is True
        assert GRAM_CACHE.invalidate(dictionary.atoms) is False
        cached_gram(dictionary.atoms)
        # a Dictionary carrier resolves to its atoms array
        assert GRAM_CACHE.invalidate(dictionary) is True

    def test_refresh_never_serves_stale_gram(self, data, dictionary):
        """Regression: an in-place block-coordinate refresh must evict
        the cached G = DᵀD at mutation time — the next lookup recomputes
        from the new atoms."""
        upd = OnlineUpdater(atoms=dictionary.atoms,
                            indices=dictionary.indices, seed=0)
        before = cached_gram(upd.atoms)
        np.testing.assert_allclose(before, upd.atoms.T @ upd.atoms)
        c, _ = batch_omp_matrix(upd.atoms, data, EPS)
        upd.observe(data, c)
        assert upd.refresh_atoms() > 0
        after = cached_gram(upd.atoms)
        np.testing.assert_allclose(after, upd.atoms.T @ upd.atoms)
        assert not np.array_equal(after, before)

    def test_evict_dead_never_serves_stale_gram(self, data, dictionary):
        upd = OnlineUpdater(atoms=dictionary.atoms,
                            indices=dictionary.indices, seed=0)
        cached_gram(upd.atoms)
        replaced = upd.evict_dead(np.array([0, 1]), data[:, :2],
                                  source_indices=np.array([0, 1]))
        assert replaced == [0, 1]
        np.testing.assert_allclose(cached_gram(upd.atoms),
                                   upd.atoms.T @ upd.atoms)

    def test_encode_after_refresh_uses_new_atoms(self, data, dictionary):
        """End to end: encodes bracketing a refresh must each match a
        cold encode against the atoms of that moment (no torn Gram)."""
        upd = OnlineUpdater(atoms=dictionary.atoms,
                            indices=dictionary.indices, seed=0)
        c0, _ = batch_omp_matrix(upd.atoms, data, EPS)
        upd.observe(data, c0)
        upd.refresh_atoms()
        c1, _ = batch_omp_matrix(upd.atoms, data, EPS)
        cold, _ = batch_omp_matrix(upd.atoms.copy(), data, EPS)
        np.testing.assert_array_equal(c1.data, cold.data)
        np.testing.assert_array_equal(c1.indices, cold.indices)


# ----------------------------------------------------------------------
# The surrogate updater
# ----------------------------------------------------------------------
class TestOnlineUpdater:
    def test_observe_accumulates_surrogates(self, data, dictionary):
        upd = OnlineUpdater(atoms=dictionary.atoms,
                            indices=dictionary.indices)
        c, _ = batch_omp_matrix(upd.atoms, data, EPS)
        dense = c.to_dense()
        upd.observe(data, c)
        np.testing.assert_allclose(upd.a_t, dense @ dense.T)
        np.testing.assert_allclose(upd.b_t, data @ dense.T)
        assert upd.minibatches == 1 and upd.columns_seen == N

    def test_forgetting_decays_history(self, data, dictionary):
        cfg = OnlineUpdateConfig(forgetting=0.5)
        upd = OnlineUpdater(atoms=dictionary.atoms,
                            indices=dictionary.indices, config=cfg)
        c, _ = batch_omp_matrix(upd.atoms, data, EPS)
        dense = c.to_dense()
        upd.observe(data, c)
        upd.observe(data, c)
        np.testing.assert_allclose(upd.a_t, 1.5 * dense @ dense.T)

    def test_refresh_improves_surrogate_fit(self, data, dictionary):
        """One block-coordinate sweep must not increase the surrogate
        objective 0.5·tr(DᵀD A) − tr(DᵀB) (it exactly minimises each
        coordinate block, up to the norm re-projection)."""
        upd = OnlineUpdater(atoms=dictionary.atoms,
                            indices=dictionary.indices)
        c, _ = batch_omp_matrix(upd.atoms, data, EPS)
        upd.observe(data, c)

        def surrogate(d):
            return (0.5 * np.trace(d.T @ d @ upd.a_t)
                    - np.trace(d.T @ upd.b_t))
        before = surrogate(upd.atoms)
        upd.refresh_atoms()
        assert surrogate(upd.atoms) <= before + 1e-9

    def test_refresh_preserves_atom_norms(self, data, dictionary):
        """ExD atoms are data columns, not unit vectors: the refresh
        projects onto the incumbent norm scale."""
        upd = OnlineUpdater(atoms=dictionary.atoms,
                            indices=dictionary.indices)
        norms_before = np.linalg.norm(upd.atoms, axis=0)
        c, _ = batch_omp_matrix(upd.atoms, data, EPS)
        upd.observe(data, c)
        upd.refresh_atoms()
        np.testing.assert_allclose(np.linalg.norm(upd.atoms, axis=0),
                                   norms_before, rtol=1e-10)

    def test_unselected_atoms_untouched(self, data, dictionary):
        upd = OnlineUpdater(atoms=dictionary.atoms,
                            indices=dictionary.indices)
        c, _ = batch_omp_matrix(upd.atoms, data, EPS)
        upd.observe(data, c)
        dead = np.flatnonzero(np.diag(upd.a_t) <= 1e-12)
        frozen = upd.atoms[:, dead].copy()
        upd.refresh_atoms()
        np.testing.assert_array_equal(upd.atoms[:, dead], frozen)

    def test_rank_reseed_candidates_worst_first(self, data, dictionary):
        upd = OnlineUpdater(atoms=dictionary.atoms,
                            indices=dictionary.indices)
        c, _ = batch_omp_matrix(upd.atoms, data, EPS)
        order = upd.rank_reseed_candidates(data, c, 5)
        err = np.linalg.norm(data - upd.atoms @ c.to_dense(), axis=0)
        assert len(order) == 5
        np.testing.assert_allclose(err[order],
                                   np.sort(err, kind="stable")[::-1][:5])

    def test_snapshot_is_independent(self, dictionary):
        upd = OnlineUpdater(atoms=dictionary.atoms,
                            indices=dictionary.indices)
        snap = upd.snapshot_dictionary()
        assert isinstance(snap, Dictionary)
        assert snap.atoms is not upd.atoms
        upd.atoms[:, 0] = 0.0
        assert np.linalg.norm(snap.atoms[:, 0]) > 0

    def test_source_input_not_mutated(self, dictionary):
        original = dictionary.atoms.copy()
        upd = OnlineUpdater(atoms=dictionary.atoms,
                            indices=dictionary.indices)
        upd.atoms[:] = 0.0
        np.testing.assert_array_equal(dictionary.atoms, original)

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            OnlineUpdateConfig(forgetting=0.0)
        with pytest.raises(ValidationError):
            OnlineUpdateConfig(forgetting=1.5)
        with pytest.raises(ValidationError):
            OnlineUpdateConfig(min_usage=-1)


# ----------------------------------------------------------------------
# Drift detection
# ----------------------------------------------------------------------
class TestDrift:
    def test_fit_alpha_curve_recovers_power_law(self):
        sizes = np.array([16, 32, 64, 128])
        alphas = 3.0 * sizes ** -0.5
        curve = fit_alpha_curve(list(zip(sizes, alphas)))
        assert curve.slope == pytest.approx(-0.5)
        for l, a in zip(sizes, alphas):
            assert curve.predict(int(l)) == pytest.approx(a)

    def test_fit_accepts_tuner_table_rows(self):
        table = [(16, 2.0, 440.0, 123.0), (64, 1.2, 264.0, 456.0)]
        curve = fit_alpha_curve(table)
        assert curve.sizes == (16, 64)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValidationError):
            fit_alpha_curve([(16, 2.0)])

    def test_predict_not_clamped_to_one(self):
        """α = nnz/N is mean atoms per column — legitimately > 1."""
        curve = fit_alpha_curve([(16, 3.0), (64, 2.0)])
        assert curve.predict(16) > 1.0

    def test_no_fire_on_matching_traffic(self):
        curve = fit_alpha_curve([(16, 2.0), (64, 1.0)])
        mon = DriftMonitor(curve, 16, eps=0.2)
        for _ in range(10):
            assert mon.observe(2.0, 0.1) is False
        assert mon.triggers == 0

    def test_fires_on_alpha_deviation(self):
        curve = fit_alpha_curve([(16, 2.0), (64, 1.0)])
        mon = DriftMonitor(curve, 16, eps=0.2,
                           config=DriftConfig(min_observations=3))
        fired = [mon.observe(3.0, 0.1) for _ in range(4)]
        assert fired[:2] == [False, False]  # min_observations gate
        assert fired[2] and fired[3]

    def test_fires_on_error_band(self):
        curve = fit_alpha_curve([(16, 2.0), (64, 1.0)])
        mon = DriftMonitor(curve, 16, eps=0.2,
                           config=DriftConfig(min_observations=1))
        assert mon.observe(2.0, 0.19) is False   # inside eps
        assert mon.observe(2.0, 0.9)             # way past eps·1.25

    def test_reset_and_rebase(self):
        curve = fit_alpha_curve([(16, 2.0), (64, 1.0)])
        mon = DriftMonitor(curve, 16, eps=0.2,
                           config=DriftConfig(min_observations=1))
        assert mon.observe(4.0, 0.1)
        mon.reset()
        assert mon.observations == 0 and not mon.fired
        new = fit_alpha_curve([(16, 4.0), (64, 2.0)])
        mon.rebase(new)
        assert mon.expected_alpha == pytest.approx(4.0)
        assert mon.observe(4.0, 0.1) is False

    def test_status_digest(self):
        curve = fit_alpha_curve([(16, 2.0), (64, 1.0)])
        mon = DriftMonitor(curve, 16, eps=0.2)
        mon.observe(2.2, 0.12)
        s = mon.status()
        assert s["l"] == 16 and s["observations"] == 1
        assert s["last"]["alpha"] == pytest.approx(2.2)
        assert s["error_band"] == pytest.approx(0.25)


# ----------------------------------------------------------------------
# Sketched tuning
# ----------------------------------------------------------------------
class TestSketch:
    def test_projection_deterministic_and_shaped(self):
        r1 = sparse_projection(16, 64, seed=5)
        r2 = sparse_projection(16, 64, seed=5)
        np.testing.assert_array_equal(r1, r2)
        assert r1.shape == (16, 64)
        scale = np.sqrt(np.sqrt(64) / 16)
        values = np.unique(r1)
        assert set(np.round(values, 12)) <= \
            {round(-scale, 12), 0.0, round(scale, 12)}

    def test_projection_near_isometry(self):
        """E[RᵀR] = I: averaged over draws, sketched norms are unbiased."""
        m, k = 48, 32
        x = np.random.default_rng(0).standard_normal(m)
        est = np.mean([
            np.sum((sparse_projection(k, m, seed=s) @ x) ** 2)
            for s in range(200)])
        assert est == pytest.approx(np.sum(x ** 2), rel=0.15)

    def test_store_sampling_chunk_aligned(self, data, tmp_path):
        store = ColumnStore.from_matrix(tmp_path / "s", data,
                                        chunk_width=32)
        cols, idx = sketch_store_columns(store, 64, seed=3)
        assert cols.shape == (M, 64)
        np.testing.assert_array_equal(cols, data[:, idx])
        # chunk-aligned: the index set is a union of chunk ranges minus
        # a random trim, so consecutive runs cover whole chunks
        cols2, idx2 = sketch_store_columns(store, 64, seed=3)
        np.testing.assert_array_equal(idx, idx2)

    def test_dense_sampling(self, data):
        cols, idx = sketch_store_columns(data, 50, seed=1)
        assert cols.shape == (M, 50)
        np.testing.assert_array_equal(cols, data[:, idx])

    def test_sketched_pick_near_exact(self):
        """The Eq. 2 cost of the sketched choice stays within 10% of
        the exact tuner's best on the same candidate grid."""
        a, _ = union_of_subspaces(48, 600, n_subspaces=4, dim=3,
                                  noise=0.01, seed=3)
        model = CostModel(platform_by_name("2x8"))
        cand = [24, 36, 54, 80]
        exact = tune_dictionary_size(a, 0.25, model, candidates=cand,
                                     seed=3)
        sk = tune_dictionary_size_sketched(
            a, 0.25, model, candidates=cand, seed=3,
            sketch=SketchConfig(dim=24, columns=400))
        exact_cost = {int(l): c for l, _, _, c in exact.table}
        best = min(exact_cost.values())
        assert sk.best_size in exact_cost
        assert exact_cost[sk.best_size] <= 1.10 * best
        assert sk.sketch_dim == 24

    def test_store_reads_fraction_of_exact(self, tmp_path):
        """Acceptance gate: the sketch reads ≤ 25% of the bytes the
        exact subset estimator touches on the same store."""
        a, _ = union_of_subspaces(48, 2000, n_subspaces=4, dim=3,
                                  noise=0.01, seed=3)
        store = ColumnStore.from_matrix(tmp_path / "s", a,
                                        chunk_width=128)
        model = CostModel(platform_by_name("2x8"))
        cand = [24, 36, 54, 80]
        with obs.observed():
            before = obs.REGISTRY.counter("store.bytes_read")
            tune_dictionary_size(store, 0.25, model, candidates=cand,
                                 seed=3)
            exact_bytes = obs.REGISTRY.counter("store.bytes_read") - before
            sk = tune_dictionary_size_sketched(
                store, 0.25, model, candidates=cand, seed=3,
                sketch=SketchConfig(dim=24, columns=400))
        assert exact_bytes > 0
        assert sk.bytes_read > 0
        assert sk.bytes_read <= 0.25 * exact_bytes
        assert sk.chunks_read < store.n_chunks

    def test_deterministic_in_seed(self, data):
        model = CostModel(platform_by_name("2x8"))
        kw = dict(candidates=[16, 24, 36], seed=11,
                  sketch=SketchConfig(dim=16, columns=120))
        r1 = tune_dictionary_size_sketched(data, 0.25, model, **kw)
        r2 = tune_dictionary_size_sketched(data, 0.25, model, **kw)
        assert r1.best_size == r2.best_size
        assert r1.table == r2.table


# ----------------------------------------------------------------------
# The maintainer: end to end
# ----------------------------------------------------------------------
def _fit(data, seed=7):
    transform, _ = exd_transform(data, L, EPS, seed=seed)
    return transform


class TestMaintainer:
    def test_stationary_traffic_never_fires(self, data):
        mnt = OnlineMaintainer(data, _fit(data), seed=0,
                               config=MaintenanceConfig(batch=64))
        try:
            reports = mnt.run(5)
        finally:
            mnt.close()
        assert not any(r["drift_fired"] for r in reports)
        assert all(r["error"] <= EPS * 1.25 for r in reports)

    def test_drifted_traffic_fires_and_adapts(self, data):
        transform = _fit(data)
        # α(L) curve fitted on the ORIGINAL data's tuner table (the
        # production configuration); traffic then comes from different
        # subspaces entirely
        model = CostModel(platform_by_name("2x8"))
        curve = tune_dictionary_size(data, EPS, model,
                                     candidates=[16, 24, 36], seed=7)
        drifted, _ = union_of_subspaces(M, N, n_subspaces=4, dim=3,
                                        noise=0.01, seed=99)
        mnt = OnlineMaintainer(drifted, transform, curve=curve, seed=0,
                               config=MaintenanceConfig(batch=64))
        try:
            reports = mnt.run(6)
        finally:
            mnt.close()
        assert any(r["drift_fired"] for r in reports)
        # the refresh adapts the atoms: error trends down
        assert reports[-1]["error"] < reports[0]["error"]

    def test_deterministic_under_seed(self, data):
        def run():
            mnt = OnlineMaintainer(data, _fit(data), seed=5,
                                   config=MaintenanceConfig(batch=64))
            try:
                reports = mnt.run(3)
                return reports, mnt.updater.atoms.copy()
            finally:
                mnt.close()
        r1, atoms1 = run()
        r2, atoms2 = run()
        assert r1 == r2
        np.testing.assert_array_equal(atoms1, atoms2)

    def test_dead_atom_reseeded(self, data):
        transform = _fit(data)
        # poison one atom: a zero column is never selected by OMP
        transform.dictionary.atoms[:, 3] = 0.0
        cfg = MaintenanceConfig(batch=64, warmup_columns=64,
                                dead_min_count=1, max_reseed=4)
        mnt = OnlineMaintainer(data, transform, seed=0, config=cfg)
        try:
            reseeded = [j for r in mnt.run(4)
                        for j in r["atoms_reseeded"]]
            assert 3 in reseeded
            assert np.linalg.norm(mnt.updater.atoms[:, 3]) > 0
            assert mnt.stats.counts[3] >= 0
        finally:
            mnt.close()

    def test_fresh_data_biasing_sees_appended_columns(self, data,
                                                      tmp_path):
        store = ColumnStore.from_matrix(tmp_path / "s", data,
                                        chunk_width=64)
        mnt = OnlineMaintainer(store, _fit(data), seed=0,
                               config=MaintenanceConfig(batch=32,
                                                        fresh_bias=1.0))
        try:
            first = mnt.step()
            assert first["new_data"] is False
            fresh = np.random.default_rng(1).standard_normal((M, 40))
            store.append_columns(fresh)
            second = mnt.step()
            assert second["new_data"] is True
        finally:
            mnt.close()

    def test_build_generation_fresh_identity(self, data):
        mnt = OnlineMaintainer(data, _fit(data), seed=0)
        try:
            mnt.run(2)
            gen = mnt.build_generation()
        finally:
            mnt.close()
        assert gen.dictionary.atoms is not mnt.updater.atoms
        np.testing.assert_array_equal(gen.dictionary.atoms,
                                      mnt.updater.atoms)
        assert gen.meta["maintained"] is True
        assert gen.meta["maintenance_steps"] == 2
        assert gen.meta["coefficients_stale"] is True

    def test_retune_rebases_monitor(self, data):
        mnt = OnlineMaintainer(data, _fit(data), seed=0)
        try:
            mnt.run(1)
            model = CostModel(platform_by_name("2x8"))
            result = mnt.retune(model, candidates=[16, 24, 36],
                                sketch=SketchConfig(dim=16, columns=120))
            assert result.best_size in (16, 24, 36)
            assert mnt.consecutive_fired == 0
        finally:
            mnt.close()

    def test_status_shape(self, data):
        mnt = OnlineMaintainer(data, _fit(data), seed=0)
        try:
            s_first = mnt.run(1) and mnt.status()
            # self-calibration defers the monitor past the first step
            assert s_first["drift"] is None
            mnt.run(1)
            s = mnt.status()
        finally:
            mnt.close()
        assert s["steps"] == 2
        assert s["drift"]["observations"] == 1
        assert s["atom_usage"]["atoms"] == L
        assert s["updater"]["minibatches"] == 2

    def test_close_detaches_stats(self, data):
        mnt = OnlineMaintainer(data, _fit(data), seed=0)
        mnt.close()
        assert watched_stats(mnt.updater.atoms) is None

    def test_curve_from_tuning_result(self, data):
        model = CostModel(platform_by_name("2x8"))
        tuning = tune_dictionary_size(data, EPS, model,
                                      candidates=[16, 24, 36], seed=7)
        mnt = OnlineMaintainer(data, _fit(data), curve=tuning, seed=0)
        try:
            assert mnt.monitor is not None
            assert mnt.monitor.expected_alpha > 0
        finally:
            mnt.close()


class TestExtDictMaintain:
    def test_framework_entry_point(self, data):
        from repro.core import ExtDict

        ext = ExtDict(eps=EPS, size=L, seed=7).fit(data)
        mnt = ext.maintain(data)
        try:
            report = mnt.step()
            assert report["step"] == 1
        finally:
            mnt.close()

    def test_requires_data(self, data):
        from repro.core import ExtDict

        ext = ExtDict(eps=EPS, size=L, seed=7).fit(data)
        with pytest.raises(ValidationError):
            ext.maintain(None)


class TestMaintenanceLoop:
    def test_run_once_publishes_on_change(self, data):
        from repro.online import MaintenanceLoop
        from repro.serve.registry import DictionaryRegistry

        registry = DictionaryRegistry()
        transform = _fit(data)
        registry.add_transform("t", transform, source="seed")
        mnt = OnlineMaintainer(data, transform, seed=0,
                               config=MaintenanceConfig(batch=64))
        loop = MaintenanceLoop(registry, "t", mnt, interval_s=0.01)
        try:
            report = loop.run_once()
            if report["atoms_refreshed"] or report["atoms_reseeded"]:
                assert report["published"] is True
                gen = registry.resolve("t")
                assert gen.transform.meta.get("maintained") is True
                np.testing.assert_array_equal(
                    gen.transform.dictionary.atoms, mnt.updater.atoms)
        finally:
            mnt.close()

    def test_thread_lifecycle(self, data):
        from repro.online import MaintenanceLoop
        from repro.serve.registry import DictionaryRegistry

        registry = DictionaryRegistry()
        transform = _fit(data)
        registry.add_transform("t", transform, source="seed")
        mnt = OnlineMaintainer(data, transform, seed=0,
                               config=MaintenanceConfig(batch=32))
        loop = MaintenanceLoop(registry, "t", mnt, interval_s=0.01)
        try:
            loop.start()
            assert loop.running is True
            deadline = 100
            while loop.status()["last_step"] is None and deadline:
                import time
                time.sleep(0.02)
                deadline -= 1
            assert loop.status()["last_step"] is not None
        finally:
            loop.stop()
            mnt.close()
        assert loop.running is False

"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    derive_seed,
    permutation_without,
    spawn_generators,
)


class TestAsGenerator:
    def test_from_int_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=5)
        b = as_generator(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, 1, 2) == derive_seed(5, 1, 2)

    def test_key_sensitivity(self):
        assert derive_seed(5, 1, 2) != derive_seed(5, 2, 1)

    def test_seed_sensitivity(self):
        assert derive_seed(5, 1) != derive_seed(6, 1)

    def test_none_seed_works(self):
        assert isinstance(derive_seed(None, 3), int)

    def test_from_generator_consumes_state(self):
        gen = np.random.default_rng(0)
        s1 = derive_seed(gen, 1)
        s2 = derive_seed(gen, 1)
        assert s1 != s2  # generator advanced


class TestSpawnGenerators:
    def test_count_and_independence(self):
        gens = spawn_generators(9, 3)
        assert len(gens) == 3
        draws = [g.integers(0, 2**30) for g in gens]
        assert len(set(draws)) == 3

    def test_deterministic(self):
        a = [g.integers(0, 2**30) for g in spawn_generators(9, 2)]
        b = [g.integers(0, 2**30) for g in spawn_generators(9, 2)]
        assert a == b

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestPermutationWithout:
    def test_excludes(self):
        rng = np.random.default_rng(0)
        out = permutation_without(rng, 10, 5, exclude=[0, 1, 2])
        assert len(out) == 5
        assert not set(out) & {0, 1, 2}
        assert len(set(out.tolist())) == 5

    def test_too_many_requested(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            permutation_without(rng, 4, 4, exclude=[0])

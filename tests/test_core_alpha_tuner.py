"""Tests for α(L) estimation (Sec. VII) and the automated tuner."""

import numpy as np
import pytest

from repro.core import (
    CostModel,
    alpha_curve,
    estimate_alpha_from_subsets,
    find_min_feasible_size,
    measure_alpha,
    tune_dictionary_size,
)
from repro.errors import TuningError, ValidationError
from repro.platform import RbfRatios, platform_by_name


@pytest.fixture(scope="module")
def data():
    from repro.data.subspaces import union_of_subspaces
    a, model = union_of_subspaces(40, 400, n_subspaces=4, dim=3,
                                  noise=0.01, seed=21)
    return a, model


class TestMeasureAlpha:
    def test_mean_std_over_trials(self, data):
        a, _ = data
        est = measure_alpha(a, 60, 0.1, trials=3, seed=0)
        assert len(est.values) == 3
        assert est.mean > 0
        assert est.std >= 0
        assert est.feasible

    def test_small_dictionary_infeasible(self, data):
        a, _ = data
        est = measure_alpha(a, 2, 0.01, seed=0)
        assert not est.feasible

    def test_alpha_bounded_by_model(self, data):
        a, model = data
        est = measure_alpha(a, 100, 0.05, seed=0)
        # Sec. VII: α ≤ Σ Kᵢnᵢ/N (+1 slack for noise).
        assert est.mean <= model.density_upper_bound(a.shape[1]) + 1.5

    def test_error_computed_on_request(self, data):
        a, _ = data
        est = measure_alpha(a, 60, 0.1, seed=0, compute_error=True)
        assert est.mean_error <= 0.1 + 1e-9


class TestAlphaCurve:
    def test_decreasing_beyond_lmin(self, data):
        a, _ = data
        curve = alpha_curve(a, [40, 80, 160], 0.05, trials=2, seed=0)
        means = [c.mean for c in curve]
        assert means[0] >= means[-1]

    def test_identity_limit(self, data):
        """At L = N the code is a_i = D e_i: α(N) = 1 (Sec. VII)."""
        a, _ = data
        sub = a[:, :80]
        est = measure_alpha(sub, 80, 0.05, seed=0)
        assert est.mean <= 2.5  # near the e_i limit (noise adds slack)


class TestSubsetEstimation:
    def test_converges_and_estimates(self, data):
        a, _ = data
        res = estimate_alpha_from_subsets(a, [40, 80], 0.1, seed=0,
                                          subset_fractions=(0.2, 0.4, 0.8),
                                          threshold=0.35)
        assert res.subset_sizes == sorted(res.subset_sizes)
        assert set(res.final_alpha) == {40, 80}
        assert all(v > 0 for v in res.final_alpha.values())

    def test_subset_estimate_close_to_full(self, data):
        a, _ = data
        full = measure_alpha(a, 80, 0.1, trials=2, seed=1).mean
        res = estimate_alpha_from_subsets(a, [80], 0.1, seed=0,
                                          subset_fractions=(0.3,))
        est = res.final_alpha[80]
        assert abs(est - full) / full < 0.35  # paper reports <14% at 10%

    def test_invalid_fractions(self, data):
        a, _ = data
        with pytest.raises(ValidationError):
            estimate_alpha_from_subsets(a, [40], 0.1,
                                        subset_fractions=(0.0,))
        with pytest.raises(ValidationError):
            estimate_alpha_from_subsets(a, [40], 0.1, subset_fractions=())

    def test_clamped_fractions_keep_two_subsets(self):
        """Regression: with N=40 and max L=16 the fractions
        (0.05, 0.1, 0.2) all clamp to 17 columns and the discrepancy
        test silently never ran; the planner must add a second,
        larger subset whenever N allows one."""
        from repro.data.subspaces import union_of_subspaces
        a, _ = union_of_subspaces(12, 40, n_subspaces=2, dim=2,
                                  noise=0.01, seed=9)
        res = estimate_alpha_from_subsets(
            a, [8, 16], 0.2, seed=0, subset_fractions=(0.05, 0.1, 0.2),
            threshold=0.0)  # impossible threshold -> exhaust the plan
        assert len(set(res.subset_sizes)) >= 2
        assert res.subset_sizes == sorted(set(res.subset_sizes))
        assert all(s > 16 for s in res.subset_sizes)

    def test_single_subset_plan_warns(self):
        """When N leaves room for only one subset above max(sizes),
        the estimator must warn instead of silently skipping the
        discrepancy cross-validation."""
        from repro.data.subspaces import union_of_subspaces
        a, _ = union_of_subspaces(12, 20, n_subspaces=2, dim=2,
                                  noise=0.01, seed=9)
        with pytest.warns(UserWarning, match="single-subset"):
            res = estimate_alpha_from_subsets(a, [19], 0.5, seed=0,
                                              subset_fractions=(0.5,))
        assert res.subset_sizes == [20]
        assert not res.converged

    def test_workers_match_serial(self, data):
        a, _ = data
        base = estimate_alpha_from_subsets(a, [40, 80], 0.1, seed=0,
                                           subset_fractions=(0.2, 0.4))
        par = estimate_alpha_from_subsets(a, [40, 80], 0.1, seed=0,
                                          subset_fractions=(0.2, 0.4),
                                          workers=2)
        assert base.subset_sizes == par.subset_sizes
        assert base.curves == par.curves
        assert base.final_alpha == par.final_alpha


class TestFindMinFeasible:
    def test_result_is_feasible_and_tight(self, data):
        a, _ = data
        l_min = find_min_feasible_size(a, 0.1, seed=0,
                                       subset_fraction=0.5, trials=2)
        # The subset estimate can undershoot the full-data requirement
        # slightly (the paper grows L when that happens); a 50% margin
        # must always be feasible, and L_min must not be trivially small.
        est = measure_alpha(a, int(np.ceil(1.5 * l_min)), 0.1, seed=3)
        assert est.feasible
        assert l_min >= 4  # 4 subspaces of dim 3 need >= ~12 atoms

    def test_impossible_tolerance_raises(self, rng):
        # Full-rank iid Gaussian data with a tiny max_size cannot meet
        # a tight tolerance.
        a = rng.standard_normal((30, 60))
        with pytest.raises(TuningError):
            find_min_feasible_size(a, 0.001, seed=0, max_size=4)


class TestTuner:
    def test_picks_feasible_minimum_cost(self, data):
        a, _ = data
        model = CostModel(platform_by_name("1x4"))
        res = tune_dictionary_size(a, 0.1, model, seed=0,
                                   candidates=[40, 80, 160])
        costs = {l: c for l, _, _, c in res.table}
        assert res.best_size in costs
        assert costs[res.best_size] == min(costs.values())

    def test_platform_awareness(self, data):
        """A compute-rich platform with free communication prefers larger
        (sparser) dictionaries than a communication-starved one."""
        a, _ = data
        cluster = platform_by_name("2x8")
        cheap_comm = CostModel(cluster, rbf=RbfRatios(time=0.0, energy=0.0))
        dear_comm = CostModel(cluster,
                              rbf=RbfRatios(time=1e4, energy=1e4))
        res_cheap = tune_dictionary_size(a, 0.1, cheap_comm, seed=0,
                                         candidates=[40, 80, 160])
        res_dear = tune_dictionary_size(a, 0.1, dear_comm, seed=0,
                                        candidates=[40, 80, 160])
        assert res_cheap.best_size >= res_dear.best_size

    def test_memory_objective(self, data):
        a, _ = data
        model = CostModel(platform_by_name("1x4"))
        res = tune_dictionary_size(a, 0.1, model, objective="memory",
                                   seed=0, candidates=[40, 80, 160])
        assert res.objective == "memory"
        assert res.best_size in (40, 80, 160)

    def test_default_candidates_generated(self, data):
        a, _ = data
        model = CostModel(platform_by_name("1x1"))
        res = tune_dictionary_size(a, 0.15, model, seed=0,
                                   subset_fraction=0.4)
        assert len(res.table) >= 2

    def test_no_feasible_candidates(self, rng):
        a = rng.standard_normal((30, 60))
        model = CostModel(platform_by_name("1x4"))
        with pytest.raises(TuningError):
            tune_dictionary_size(a, 0.001, model, candidates=[2, 3],
                                 seed=0)

    def test_cost_of_lookup(self, data):
        a, _ = data
        model = CostModel(platform_by_name("1x4"))
        res = tune_dictionary_size(a, 0.1, model, seed=0,
                                   candidates=[40, 80])
        assert res.cost_of(res.best_size) > 0
        with pytest.raises(KeyError):
            res.cost_of(999)

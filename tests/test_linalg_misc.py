"""Unit tests for pseudo-inverse, power iteration and norms."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.linalg import (
    frobenius_norm,
    least_squares_coefficients,
    power_iteration,
    pseudo_inverse,
    relative_frobenius_error,
    top_eigenpairs,
)


class TestPseudoInverse:
    def test_well_conditioned(self, rng):
        d = rng.standard_normal((10, 4))
        pinv = pseudo_inverse(d)
        assert np.allclose(pinv @ d, np.eye(4), atol=1e-8)

    def test_rank_deficient_falls_back(self):
        d = np.array([[1.0, 2.0], [2.0, 4.0], [3.0, 6.0]])  # rank 1
        pinv = pseudo_inverse(d)
        assert np.allclose(pinv, np.linalg.pinv(d), atol=1e-8)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            pseudo_inverse(np.ones(3))

    def test_least_squares_coefficients(self, rng):
        d = rng.standard_normal((12, 5))
        a = rng.standard_normal((12, 7))
        c = least_squares_coefficients(d, a)
        # Residual must be orthogonal to the dictionary span.
        assert np.allclose(d.T @ (a - d @ c), 0.0, atol=1e-8)

    def test_lstsq_shape_mismatch(self, rng):
        with pytest.raises(ValidationError):
            least_squares_coefficients(np.ones((3, 2)), np.ones((4, 2)))


class TestPowerIteration:
    @pytest.fixture()
    def gram(self, rng):
        a = rng.standard_normal((15, 10))
        return a.T @ a

    def test_leading_eigenvalue(self, gram):
        lam, vec, _ = power_iteration(lambda x: gram @ x, 10, seed=0)
        exact = np.linalg.eigvalsh(gram)[-1]
        assert lam == pytest.approx(exact, rel=1e-6)
        assert np.linalg.norm(gram @ vec - lam * vec) < 1e-4 * lam

    def test_top_k_spectrum(self, gram):
        values, vectors, _ = top_eigenpairs(lambda x: gram @ x, 10, 4,
                                            seed=0)
        exact = np.linalg.eigvalsh(gram)[::-1][:4]
        assert np.allclose(values, exact, rtol=1e-4)
        # Orthonormality of recovered vectors.
        assert np.allclose(vectors.T @ vectors, np.eye(4), atol=1e-5)

    def test_zero_operator(self):
        lam, _, _ = power_iteration(lambda x: np.zeros_like(x), 5, seed=0)
        assert lam == 0.0

    def test_raise_on_fail(self, gram):
        # Two equal dominant eigenvalues prevent eigenvalue convergence
        # only in adversarial cases; emulate by alternating operator.
        flip = {"s": 1.0}

        def op(x):
            flip["s"] *= 2.0
            return flip["s"] * x
        with pytest.raises(ConvergenceError):
            power_iteration(op, 4, max_iter=5, tol=0.0, seed=0,
                            raise_on_fail=True)

    def test_k_bounds(self, gram):
        with pytest.raises(ValidationError):
            top_eigenpairs(lambda x: gram @ x, 10, 11)
        with pytest.raises(ValidationError):
            top_eigenpairs(lambda x: gram @ x, 10, 0)

    def test_invalid_n(self):
        with pytest.raises(ValidationError):
            power_iteration(lambda x: x, 0)


class TestNorms:
    def test_frobenius(self, rng):
        a = rng.standard_normal((4, 5))
        assert frobenius_norm(a) == pytest.approx(np.linalg.norm(a))

    def test_relative_error_zero_for_equal(self, rng):
        a = rng.standard_normal((4, 5))
        assert relative_frobenius_error(a, a) == 0.0

    def test_relative_error_value(self):
        a = np.eye(3)
        approx = np.zeros((3, 3))
        assert relative_frobenius_error(a, approx) == pytest.approx(1.0)

    def test_relative_error_accepts_to_dense(self, rng):
        from repro.sparse import CSCMatrix
        a = rng.standard_normal((3, 4))
        assert relative_frobenius_error(a, CSCMatrix.from_dense(a)) == 0.0

    def test_zero_reference(self):
        z = np.zeros((2, 2))
        assert relative_frobenius_error(z, z) == 0.0
        assert relative_frobenius_error(z, np.ones((2, 2))) == np.inf

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            relative_frobenius_error(np.ones((2, 2)), np.ones((3, 3)))

"""Unit tests for the incremental Cholesky factorisation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.linalg import IncrementalCholesky


def spd_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((n, n))
    return b @ b.T + n * np.eye(n)


class TestIncrementalCholesky:
    def test_matches_numpy_cholesky(self):
        g = spd_matrix(6)
        chol = IncrementalCholesky()
        for k in range(6):
            assert chol.append(g[k, :k], g[k, k])
        assert np.allclose(chol.factor, np.linalg.cholesky(g))

    def test_solve_matches_direct(self):
        g = spd_matrix(5, seed=1)
        chol = IncrementalCholesky()
        for k in range(5):
            chol.append(g[k, :k], g[k, k])
        b = np.arange(5.0)
        assert np.allclose(chol.solve(b), np.linalg.solve(g, b))

    def test_progressive_solves_each_size(self):
        g = spd_matrix(5, seed=2)
        chol = IncrementalCholesky()
        for k in range(5):
            chol.append(g[k, :k], g[k, k])
            sub = g[:k + 1, :k + 1]
            b = np.ones(k + 1)
            assert np.allclose(chol.solve(b), np.linalg.solve(sub, b))

    def test_rejects_dependent_row(self):
        chol = IncrementalCholesky()
        assert chol.append(np.empty(0), 1.0)
        # Second row identical to first: cross=1, diag=1 -> pivot 0.
        assert not chol.append(np.array([1.0]), 1.0)
        assert chol.size == 1  # unchanged

    def test_rejects_nonpositive_first_pivot(self):
        chol = IncrementalCholesky()
        assert not chol.append(np.empty(0), 0.0)
        assert chol.size == 0

    def test_capacity_growth(self):
        g = spd_matrix(20, seed=3)
        chol = IncrementalCholesky(capacity=2)
        for k in range(20):
            assert chol.append(g[k, :k], g[k, k])
        assert np.allclose(chol.factor @ chol.factor.T, g)

    def test_cross_shape_validated(self):
        chol = IncrementalCholesky()
        chol.append(np.empty(0), 2.0)
        with pytest.raises(ValidationError):
            chol.append(np.array([1.0, 2.0]), 3.0)

    def test_solve_shape_validated(self):
        chol = IncrementalCholesky()
        chol.append(np.empty(0), 2.0)
        with pytest.raises(ValidationError):
            chol.solve(np.ones(3))

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            IncrementalCholesky(capacity=0)

"""FastDict apply speedup — measured vs. the extended Eq. 2 model.

The fast-transform claim (docs/fastdict.md) is that a sparse-factor
dictionary makes the hot ``DᵀA`` apply cost ``Σⱼ nnz(Sⱼ)`` instead of
``M·L``, with the relative-complexity knob ``RC = nnz/(M·L)`` modeling
an apply speedup of about ``1/RC``.  This bench fits FastDicts at
RC ∈ {0.1, 0.25, 0.5} on the Fig. 7 workload shape (salina: M=203,
L=812, N=6144), times the panel-streamed DᵀA precompute sweep
(:func:`iter_panel_dta` — exactly what ``batch_omp_matrix`` pays)
for each against the dense operator (min over reps — the host is
noisy), and checks the two acceptance gates:

* measured apply speedup ≥ 2× over dense at RC ≤ 0.25, and
* the extended Eq. 2 prediction and the measurement order the RC grid
  the same way (speedup monotone decreasing in RC).

The modeled column is Eq. 2's transform term alone (``nnz(C) = 0``,
P = 1 so communication vanishes) because the bench times only the
``DᵀA`` apply; the model overshoots the measurement — BLAS-3 dense
GEMM beats batched small-block products per FLOP — but predicts the
trend, which is what the tuner needs to trade L against RC.

One record per operator goes to ``BENCH_fastdict.json`` at the repo
root in the BENCH_spmd.json schema.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import CostModel, fit_fast_dict, sample_dictionary
from repro.data import union_of_subspaces
from repro.linalg.omp import iter_panel_dta
from repro.platform import platform_by_name
from repro.utils import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent

M, N, L = 203, 6144, 812
RC_GRID = (0.1, 0.25, 0.5)
REPS = 5


@pytest.fixture(scope="module")
def problem(bench_seed):
    a, _ = union_of_subspaces(M, N, n_subspaces=8, dim=6, noise=0.01,
                              seed=bench_seed)
    return a, sample_dictionary(a, L, seed=bench_seed)


def _min_time(fn, reps=REPS):
    fn()  # warm-up (allocations, cache state)
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _sweep(d, a):
    """The encode precompute: one padded apply per fixed-width panel,
    streamed exactly as ``batch_omp_matrix`` consumes it."""
    for _lo, _hi, _panel in iter_panel_dta(d, a):
        pass


def test_fastdict_apply_speedup(problem, bench_seed, report):
    a, dense = problem
    model = CostModel(platform_by_name("1x1"))

    t_dense = _min_time(lambda: _sweep(dense.atoms, a))
    v_dense = model.time_seconds(M, L, 0)
    records = [{
        "workload": "fastdict_apply_dense",
        "shape": [M, N, L],
        "backend": "dense",
        "wall_s": t_dense,
        "virtual_s": v_dense,
        "ratio": t_dense / v_dense if v_dense > 0 else float("inf"),
    }]
    rows = [["dense", "1.000", f"{M * L}", f"{t_dense * 1e3:.0f}",
             "1.00x", "1.00x"]]

    measured, modeled = [], []
    for rc in RC_GRID:
        fd = fit_fast_dict(dense, rc=rc, seed=bench_seed)
        t_fast = _min_time(lambda: _sweep(fd, a))
        v_fast = model.time_seconds(M, L, 0,
                                    transform_nnz=fd.transform_nnz)
        measured.append(t_dense / t_fast)
        modeled.append(v_dense / v_fast)
        records.append({
            "workload": f"fastdict_apply_rc{rc}",
            "shape": [M, N, L],
            "backend": f"fastdict_rc{rc}",
            "wall_s": t_fast,
            "virtual_s": v_fast,
            "ratio": t_fast / v_fast if v_fast > 0 else float("inf"),
        })
        rows.append([f"rc={rc}", f"{fd.relative_complexity:.3f}",
                     f"{fd.transform_nnz}", f"{t_fast * 1e3:.0f}",
                     f"{measured[-1]:.2f}x", f"{modeled[-1]:.2f}x"])

    (REPO_ROOT / "BENCH_fastdict.json").write_text(
        json.dumps(records, indent=2) + "\n")

    table = format_table(
        ["operator", "RC", "transform nnz", "apply (ms)",
         "measured speedup", "modeled (Eq. 2)"],
        rows, title=f"FastDict DᵀA apply vs. dense (M={M}, N={N}, "
                    f"L={L}, min of {REPS} reps)")
    report("fastdict apply", table + "\nwrote BENCH_fastdict.json")

    # acceptance gate: >= 2x measured at RC <= 0.25
    for rc, speedup in zip(RC_GRID, measured):
        if rc <= 0.25:
            assert speedup >= 2.0, (
                f"measured apply speedup {speedup:.2f}x at rc={rc} "
                f"is below the 2x gate")

    # the extended Eq. 2 must predict the measured trend: speedup
    # strictly decreasing as RC grows, in both columns
    assert all(np.diff(modeled) < 0), f"modeled not monotone: {modeled}"
    assert all(np.diff(measured) < 0), (
        f"measured not monotone: {measured}")

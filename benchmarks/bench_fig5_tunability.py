"""Fig. 5 — tunability of ExD: α(L) for three datasets × three ε.

Paper: both increasing the dictionary redundancy L and loosening the
error tolerance ε yield sparser coefficient matrices, with Light Field
the sparsest and Cancer Cells the densest at equal settings.
"""

import pytest

from repro.core import measure_alpha
from repro.data import load_dataset
from repro.utils import format_table

DATASETS = ("salina", "cancer", "lightfield")
EPSILONS = (0.01, 0.05, 0.1)
SIZES = (96, 192, 384)
N = 1024


@pytest.fixture(scope="module")
def matrices(bench_seed):
    return {name: load_dataset(name, n=N, seed=bench_seed).matrix
            for name in DATASETS}


@pytest.mark.parametrize("name", DATASETS)
def test_fig5_alpha_benchmark(benchmark, matrices, name, bench_seed):
    est = benchmark(measure_alpha, matrices[name], SIZES[1], 0.05,
                    seed=bench_seed)
    assert est.mean > 0


def test_fig5_report(benchmark, report, matrices, bench_seed):
    def build():
        lines = []
        final_alphas = {}
        for name in DATASETS:
            a = matrices[name]
            rows = []
            for l in SIZES:
                row = [l]
                for eps in EPSILONS:
                    est = measure_alpha(a, l, eps, seed=bench_seed)
                    row.append(f"{est.mean:.2f}"
                               + ("" if est.feasible else " (infeasible)"))
                    final_alphas[(name, l, eps)] = est.mean
                rows.append(row)
            lines.append(format_table(
                ["L"] + [f"alpha @ eps={e}" for e in EPSILONS], rows,
                title=f"Fig. 5 [{name}]  M={a.shape[0]}, N={a.shape[1]}"))
            lines.append("")
        return lines, final_alphas

    lines, final_alphas = benchmark.pedantic(build, rounds=1, iterations=1)
    # Paper's two "novel and critical properties":
    checks = []
    for name in DATASETS:
        grow_l = final_alphas[(name, SIZES[0], 0.05)] >= \
            final_alphas[(name, SIZES[-1], 0.05)]
        grow_eps = final_alphas[(name, SIZES[-1], 0.01)] >= \
            final_alphas[(name, SIZES[-1], 0.1)]
        checks.append(f"{name}: larger L => sparser: "
                      f"{'yes' if grow_l else 'NO'}; "
                      f"larger eps => sparser: "
                      f"{'yes' if grow_eps else 'NO'}")
    ordering = (final_alphas[("lightfield", SIZES[-1], 0.1)]
                <= final_alphas[("salina", SIZES[-1], 0.1)]
                <= final_alphas[("cancer", SIZES[-1], 0.1)] + 1e-9)
    checks.append(f"density ordering lightfield <= salina <= cancer: "
                  f"{'yes' if ordering else 'NO'} (paper: same ordering)")
    report("fig5_tunability", "\n".join(lines + checks))
    assert all("NO" not in c for c in checks[:-1])

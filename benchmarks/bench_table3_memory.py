"""Table III — memory footprint of each transformation.

Paper: words/bytes to store (D, C) per method at ε = 0.1.  RCSS/oASIS/
RankMap produce one platform-independent footprint; ExtDict re-tunes L
per processor count (P = 1, 4, 16, 64) and achieves the smallest
footprint through over-complete dictionaries with sparse coefficients.
"""

import pytest

from repro.baselines import oasis_transform, rankmap_transform, rcss_transform
from repro.core import CostModel, exd_transform, tune_dictionary_size
from repro.data import load_dataset
from repro.platform import paper_platforms
from repro.utils import format_table

DATASETS = ("salina", "cancer", "lightfield")
EPS = 0.1
N = 2048
WORD_MB = 8 / 1e6


@pytest.fixture(scope="module")
def matrices(bench_seed):
    return {name: load_dataset(name, n=N, seed=bench_seed).matrix
            for name in DATASETS}


def test_table3_transform_benchmark(benchmark, matrices, bench_seed):
    t = benchmark(rcss_transform, matrices["salina"], EPS,
                  seed=bench_seed)
    assert t.memory_words > 0


def test_table3_report(benchmark, report, matrices, bench_seed):
    platforms = paper_platforms()
    rows, ratios = benchmark.pedantic(
        _build, args=(matrices, platforms, bench_seed),
        rounds=1, iterations=1)
    table = format_table(
        ["dataset", "original (MB)", "RCSS", "oASIS", "RankMap",
         "ExtDict P=1", "P=4", "P=16", "P=64"],
        rows, title=f"Table III: transform memory (MB), eps={EPS}, N={N}")
    checks = []
    for name in DATASETS:
        r = ratios[name]
        checks.append(
            f"{name}: ExtDict improvement — {r['original']:.1f}x vs "
            f"original, {r['rcss']:.1f}x vs RCSS, {r['oasis']:.1f}x vs "
            f"oASIS, {r['rankmap']:.2f}x vs RankMap")
    report("table3_memory", table + "\n\n" + "\n".join(checks))
    for name in DATASETS:
        assert ratios[name]["original"] > 2.0
        assert ratios[name]["rcss"] >= 0.95


def _build(matrices, platforms, bench_seed):
    rows = []
    ratios = {}
    for name in DATASETS:
        a = matrices[name]
        original = a.size
        base_mem = {
            "rcss": rcss_transform(a, EPS, seed=bench_seed).memory_words,
            "oasis": oasis_transform(a, EPS, seed=bench_seed).memory_words,
            "rankmap": rankmap_transform(
                a, EPS, seed=bench_seed,
                subset_fraction=0.15).memory_words,
        }
        ext = {}
        for cluster in platforms:
            model = CostModel(cluster)
            tuning = tune_dictionary_size(a, EPS, model,
                                          objective="memory",
                                          seed=bench_seed,
                                          subset_fraction=0.1)
            t, _ = exd_transform(a, tuning.best_size, EPS, seed=bench_seed)
            ext[cluster.size] = t.memory_words
        best_ext = min(ext.values())
        ratios[name] = {k: v / best_ext for k, v in base_mem.items()}
        ratios[name]["original"] = original / best_ext
        rows.append(
            [name, f"{original * WORD_MB:.2f}"]
            + [f"{base_mem[k] * WORD_MB:.2f}"
               for k in ("rcss", "oasis", "rankmap")]
            + [f"{ext[p.size] * WORD_MB:.2f}" for p in platforms])
    return rows, ratios

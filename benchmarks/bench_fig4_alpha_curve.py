"""Fig. 4 — density α(L) and transformation error vs. dictionary size.

Paper: on the Salinas data (ε = 0.01), α(L) decreases for L > L_min and
the dispersion over 10 random dictionary draws is small (< 4%); the
transformation error falls below ε once L ≥ L_min.
"""

import numpy as np
import pytest

from repro.core import exd_transform, measure_alpha
from repro.data import load_dataset
from repro.utils import format_table

EPS = 0.01
SIZES = [24, 48, 96, 192, 320]
TRIALS = 10


@pytest.fixture(scope="module")
def salina(bench_seed):
    return load_dataset("salina", n=768, seed=bench_seed).matrix


def test_fig4_transform_benchmark(benchmark, salina, bench_seed):
    t, stats = benchmark.pedantic(
        exd_transform, args=(salina, 192, EPS), kwargs={"seed": bench_seed},
        rounds=1, iterations=1)
    assert stats.all_converged


def test_fig4_report(benchmark, report, salina, bench_seed):
    def build():
        rows = []
        dispersions = []
        for l in SIZES:
            est = measure_alpha(salina, l, EPS, trials=TRIALS,
                                seed=bench_seed)
            # One dense reconstruction per L suffices for the error
            # curve; repeating it per trial would dominate the run.
            err = measure_alpha(salina, l, EPS, trials=1, seed=bench_seed,
                                compute_error=True).mean_error
            dispersion = est.std / est.mean if est.mean > 0 else 0.0
            dispersions.append(dispersion)
            rows.append([l, f"{est.mean:.2f}", f"{est.std:.3f}",
                         f"{100 * dispersion:.1f}%",
                         f"{err:.4f}",
                         "yes" if est.feasible else "no"])
        return rows, dispersions

    rows, dispersions = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        ["L", "alpha(L)", "std (10 trials)", "dispersion",
         "measured error", "error <= eps"],
        rows,
        title=f"Fig. 4: alpha(L) and error vs L (salina, eps={EPS})")
    alphas = [float(r[1]) for r in rows]
    notes = [
        "",
        f"alpha decreasing beyond L_min: "
        f"{'yes' if alphas[0] >= alphas[-1] else 'NO'} "
        f"(paper: decreasing)",
        f"max dispersion over trials: {100 * max(dispersions):.1f}% "
        f"(paper: < 4%)",
    ]
    report("fig4_alpha_curve", table + "\n".join(notes))
    assert alphas[0] >= alphas[-1]

"""Table I — datasets used for the applications.

Regenerates the dataset inventory with both the paper's reported shapes
and the synthetic-surrogate shapes used here, and benchmarks surrogate
generation throughput.
"""

import pytest

from repro.data import DATASETS, load_dataset
from repro.utils import format_table

BENCH_N = 1024


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_table1_generate(benchmark, name, bench_seed):
    bundle = benchmark(load_dataset, name, n=BENCH_N, seed=bench_seed)
    assert bundle.matrix.shape[1] == BENCH_N


def test_table1_report(benchmark, report, bench_seed):
    def build():
        rows = []
        for name in sorted(DATASETS):
            entry = DATASETS[name]
            bundle = load_dataset(name, n=BENCH_N, seed=bench_seed)
            m, n = bundle.shape
            pm, pn = entry["paper_shape"]
            rows.append([name, entry["application"],
                         f"{pm} x {pn}", f"{m} x {n}",
                         f"{bundle.matrix.nbytes / 1e6:.1f} MB"])
        return format_table(
            ["dataset", "application (paper Table I)", "paper shape",
             "surrogate shape", "surrogate size"],
            rows, title="Table I: datasets (synthetic surrogates)")

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    report("table1_datasets", table)

"""Fig. 6 — estimating α(L) from nested subsets A₁ ⊂ A₂ ⊂ … ⊂ A.

Paper: α(L) measured on growing random subsets converges to the
full-data value; ~10% of the data estimates α within <14% for all
datasets at ε = 0.1.
"""

import pytest

from repro.core import estimate_alpha_from_subsets, measure_alpha
from repro.data import load_dataset
from repro.utils import format_table

DATASETS = ("salina", "cancer", "lightfield")
EPS = 0.1
# Subsets must stay well above the dictionary size (the paper's 10%
# subsets of 54k-111k columns are >> its L <= 1000): a subset of ~2L
# columns makes the dictionary nearly exhaustive and alpha trivially 1.
# L values sit above each dataset's L_min — at/below L_min the density
# varies wildly between dictionary draws and no estimator can help.
SIZES_BY_DATASET = {"salina": (48, 96), "cancer": (256, 384),
                    "lightfield": (48, 96)}
# Cancer's L_min (~100) forces larger L values, so it needs more columns
# for the 10% subset to stay >> L (in the paper N >= 54k makes this moot).
N_BY_DATASET = {"salina": 2048, "cancer": 4096, "lightfield": 2048}
FRACTIONS = (0.1, 0.2, 0.4, 1.0)
TRIALS = 2


@pytest.fixture(scope="module")
def matrices(bench_seed):
    return {name: load_dataset(name, n=N_BY_DATASET[name],
                               seed=bench_seed).matrix
            for name in DATASETS}


def test_fig6_estimation_benchmark(benchmark, matrices, bench_seed):
    size = SIZES_BY_DATASET["salina"][0]
    res = benchmark(estimate_alpha_from_subsets, matrices["salina"],
                    [size], EPS, subset_fractions=(0.1, 0.2),
                    threshold=1.0, seed=bench_seed)
    assert res.final_alpha[size] > 0


def test_fig6_report(benchmark, report, matrices, bench_seed):
    def build():
        return _build(matrices, bench_seed)

    lines = benchmark.pedantic(build, rounds=1, iterations=1)
    report("fig6_subset_estimation", "\n".join(lines))


def _build(matrices, bench_seed):
    lines = []
    ten_pct_errors = []
    for name in DATASETS:
        a = matrices[name]
        sizes = SIZES_BY_DATASET[name]
        res = estimate_alpha_from_subsets(
            a, list(sizes), EPS, subset_fractions=FRACTIONS,
            threshold=0.0,  # never stop early: show the full Fig. 6 curve
            seed=bench_seed, trials=TRIALS)
        full = {l: measure_alpha(a, l, EPS, trials=TRIALS,
                                 seed=bench_seed).mean
                for l in sizes}
        rows = []
        proper = [n_s for n_s in res.subset_sizes if n_s < a.shape[1]]
        estimator_subset = max(proper) if proper else max(res.subset_sizes)
        for n_s in res.subset_sizes:
            row = [f"|A_s| = {n_s}"]
            for l in sizes:
                est = res.curves[n_s][l]
                rel = abs(est - full[l]) / max(full[l], 1e-12)
                row.append(f"{est:.2f} ({100 * rel:.0f}% off)")
                if n_s == estimator_subset:
                    ten_pct_errors.append(
                        (rel, estimator_subset / a.shape[1]))
            rows.append(row)
        rows.append(["full data"] + [f"{full[l]:.2f}" for l in sizes])
        lines.append(format_table(
            ["subset"] + [f"alpha(L={l})" for l in sizes], rows,
            title=f"Fig. 6 [{name}]  eps={EPS}"))
        lines.append("")
    worst, frac = max(ten_pct_errors) if ten_pct_errors \
        else (float("nan"), float("nan"))
    lines.append(f"worst alpha estimation error from the largest proper "
                 f"subset (~{100 * frac:.0f}% of data): {100 * worst:.1f}% "
                 f"(paper: < 14% using 10% of data; curves converge as "
                 f"subsets grow)")
    return lines

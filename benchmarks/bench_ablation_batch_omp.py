"""Ablation — Batch-OMP (progressive Cholesky) vs. the naive OMP loop.

The paper's implementation choice (Sec. V-D): Batch-OMP amortises
``DᵀD`` and ``DᵀA`` across columns and replaces the per-iteration
least-squares solve with O(k²) Cholesky updates.  This bench quantifies
the speedup of that choice on this substrate.
"""

import time

import numpy as np
import pytest

from repro.data import union_of_subspaces
from repro.linalg import batch_omp_matrix, omp_solve
from repro.utils import format_table

# Sized so columns need ~20 OMP iterations (eps at the noise level):
# with trivially sparse codes both variants are Python-overhead bound
# and the Cholesky amortisation cannot show.
M, N, L = 384, 512, 448
EPS = 0.02


@pytest.fixture(scope="module")
def problem(bench_seed):
    a, _ = union_of_subspaces(M, N, n_subspaces=6, dim=8, noise=0.02,
                              seed=bench_seed)
    a = a / np.linalg.norm(a, axis=0, keepdims=True)
    rng = np.random.default_rng(bench_seed)
    d = a[:, np.sort(rng.choice(N, size=L, replace=False))]
    return a, d


def _naive_all_columns(d, a):
    return [omp_solve(d, a[:, j], EPS) for j in range(a.shape[1])]


def test_batch_omp_benchmark(benchmark, problem):
    a, d = problem
    c, stats = benchmark.pedantic(batch_omp_matrix, args=(d, a, EPS),
                                  rounds=1, iterations=1)
    assert stats.converged_columns == a.shape[1]


def test_naive_omp_benchmark(benchmark, problem):
    a, d = problem
    results = benchmark.pedantic(_naive_all_columns, args=(d, a),
                                 rounds=1, iterations=1)
    assert all(r.converged for r in results)


def test_batch_vs_naive_report(benchmark, report, problem):
    a, d = problem

    def build():
        t0 = time.perf_counter()
        c, _stats = batch_omp_matrix(d, a, EPS)
        t_batch = time.perf_counter() - t0
        t0 = time.perf_counter()
        naive = _naive_all_columns(d, a)
        t_naive = time.perf_counter() - t0
        return c, naive, t_batch, t_naive

    c, naive, t_batch, t_naive = benchmark.pedantic(build, rounds=1,
                                                    iterations=1)
    naive_nnz = sum(r.support.size for r in naive)
    rows = [
        ["Batch-OMP (Cholesky updates)", f"{t_batch * 1e3:.1f}",
         c.nnz, "yes"],
        ["naive OMP (re-solve lstsq)", f"{t_naive * 1e3:.1f}",
         naive_nnz, "yes"],
    ]
    table = format_table(
        ["variant", "wall time (ms)", "nnz(C)", "meets eps"],
        rows, title=f"Ablation: Batch-OMP vs naive OMP "
                    f"(M={M}, N={N}, L={L}, eps={EPS})")
    note = (f"\nspeedup from the paper's Batch-OMP choice: "
            f"{t_naive / max(t_batch, 1e-9):.1f}x")
    report("ablation_batch_omp", table + note)
    assert t_batch < t_naive

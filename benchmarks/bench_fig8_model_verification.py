"""Fig. 8 — verification of the performance model (Eq. 2).

Paper: the predicted cost (FLOP-equivalents of Eq. 2) tracks the
measured per-update runtime across dictionary sizes and platforms —
top row predicted, bottom row measured.  Here "measured" is the
α-β-simulated runtime of Algorithm 2 on the emulated platform, which
includes effects the model ignores (latency, load imbalance), exactly
the relationship the paper's figure demonstrates.
"""

import numpy as np
import pytest

from repro.core import CostModel, exd_transform, run_distributed_gram
from repro.data import load_dataset
from repro.platform import paper_platforms
from repro.utils import format_table

DATASETS = ("salina", "cancer", "lightfield")
EPS = 0.1
N = 2048
SIZES = (96, 192, 384, 768)
ITERS = 2


@pytest.fixture(scope="module")
def transforms(bench_seed):
    out = {}
    for name in DATASETS:
        a = load_dataset(name, n=N, seed=bench_seed).matrix
        out[name] = (a, {l: exd_transform(a, l, EPS, seed=bench_seed)[0]
                         for l in SIZES})
    return out


def test_fig8_simulation_benchmark(benchmark, transforms, bench_seed):
    a, by_l = transforms["salina"]
    x = np.random.default_rng(bench_seed).standard_normal(a.shape[1])
    cluster = paper_platforms()[2]
    benchmark(run_distributed_gram, by_l[SIZES[0]], x, cluster)


def test_fig8_report(benchmark, report, transforms, bench_seed):
    lines, correlations = benchmark.pedantic(
        _build, args=(transforms, bench_seed), rounds=1, iterations=1)
    lines.append(f"minimum prediction-simulation correlation across "
                 f"datasets x platforms: {min(correlations):.3f} "
                 f"(paper: trends closely follow)")
    report("fig8_model_verification", "\n".join(lines))
    assert min(correlations) > 0.8


def _build(transforms, bench_seed):
    lines = []
    correlations = []
    for name in DATASETS:
        a, by_l = transforms[name]
        x = np.random.default_rng(bench_seed).standard_normal(a.shape[1])
        rows = []
        for cluster in paper_platforms():
            model = CostModel(cluster)
            predicted, simulated = [], []
            for l in SIZES:
                t = by_l[l]
                predicted.append(model.time(t.m, t.l, t.nnz))
                _, res = run_distributed_gram(t, x, cluster,
                                              iterations=ITERS)
                simulated.append(res.simulated_time / ITERS)
            corr = float(np.corrcoef(predicted, simulated)[0, 1])
            correlations.append(corr)
            rows.append([cluster.name]
                        + [f"{p:.2e} / {s * 1e6:.1f}us"
                           for p, s in zip(predicted, simulated)]
                        + [f"{corr:.3f}"])
        lines.append(format_table(
            ["platform"] + [f"L={l} (pred / sim)" for l in SIZES]
            + ["corr"],
            rows, title=f"Fig. 8 [{name}]  predicted Eq. 2 "
                        f"(flop-equiv) vs simulated runtime"))
        lines.append("")
    return lines, correlations

"""Benchmark-harness plumbing.

Each benchmark regenerates one paper table/figure as a plain-text table.
Because pytest captures stdout, tables are routed through the ``report``
fixture: they are written to ``benchmarks/results/<name>.txt`` and
echoed in the terminal summary after the run, so
``pytest benchmarks/ --benchmark-only`` shows both pytest-benchmark's
timing table and the reproduced paper artefacts.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_collected: list[tuple[str, str]] = []


@pytest.fixture(scope="session")
def report():
    """Session-wide sink: ``report(name, text)`` records one artefact."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        _collected.append((name, text))
        safe = name.replace("/", "_").replace(" ", "_").lower()
        (RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected:
        return
    terminalreporter.section("reproduced paper tables/figures")
    for name, text in _collected:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def bench_seed():
    """One seed for the whole benchmark session (reproducible tables)."""
    return int(os.environ.get("REPRO_BENCH_SEED", "7"))

"""Fig. 11 — learning error vs. transformation error ε (regressions).

Paper: loosening ε buys runtime/memory but barely moves the final
reconstruction error of denoising and super-resolution; output PSNR
stays at useful levels (denoising ≈ 29.4 dB from a 20 dB input,
super-resolution ≈ 24.7 dB in the paper's setting).
"""

import numpy as np
import pytest

from repro.apps import (
    make_denoising_setup,
    make_super_resolution_setup,
    run_denoising,
    run_super_resolution,
)
from repro.data import psnr
from repro.utils import format_table

EPSILONS = (0.01, 0.05, 0.1, 0.2, 0.4)
MAX_ITER = 600


@pytest.fixture(scope="module")
def denoise_setup(bench_seed):
    return make_denoising_setup(image_size=24, n_atoms=384, n_bases=12,
                                snr_db=20.0, seed=bench_seed)


@pytest.fixture(scope="module")
def sr_setup(bench_seed):
    return make_super_resolution_setup(cams=5, cams_sub=3, patch=8,
                                       image_size=40, n_images=3,
                                       stride=4, seed=bench_seed)


def test_fig11_denoise_benchmark(benchmark, denoise_setup, bench_seed):
    res = benchmark.pedantic(
        run_denoising, args=(denoise_setup,),
        kwargs=dict(method="extdict", eps=0.1, max_iter=100,
                    seed=bench_seed),
        rounds=1, iterations=1)
    assert np.isfinite(res.psnr_db)


def test_fig11_report(benchmark, report, denoise_setup, sr_setup,
                      bench_seed):
    input_psnr = psnr(denoise_setup.y_clean, denoise_setup.y_noisy)
    rows_d, rows_s, errs_d = benchmark.pedantic(
        _build, args=(denoise_setup, sr_setup, bench_seed),
        rounds=1, iterations=1)
    t1 = format_table(
        ["transformation eps", "reconstruction error", "PSNR (dB)"],
        rows_d, title=f"Fig. 11a: denoising (input {input_psnr:.1f} dB "
                      f"at SNR 20 dB)")
    t2 = format_table(
        ["transformation eps", "reconstruction error", "PSNR (dB)"],
        rows_s, title="Fig. 11b: super-resolution (scored on unseen "
                      "camera views)")
    spread_d = max(errs_d[:-1]) - min(errs_d[:-1])
    note = (f"\nmoderate eps barely moves the learning error "
            f"(error spread over eps<=0.2: {spread_d:.4f}) — "
            f"paper: 'may not drastically affect the reconstruction "
            f"error'")
    report("fig11_app_error", t1 + "\n\n" + t2 + note)
    # Denoised output must beat the noisy input at every moderate eps.
    assert all(float(r[2]) > input_psnr for r in rows_d[:3])


def _build(denoise_setup, sr_setup, bench_seed):
    rows_d, rows_s = [], []
    errs_d = []
    for eps in EPSILONS:
        rd = run_denoising(denoise_setup, method="extdict", eps=eps,
                           lam=1e-3, lr=0.5, max_iter=MAX_ITER,
                           tol=1e-7, seed=bench_seed)
        rows_d.append([eps, f"{rd.reconstruction_error:.4f}",
                       f"{rd.psnr_db:.2f}"])
        errs_d.append(rd.reconstruction_error)
        rs = run_super_resolution(sr_setup, method="extdict", eps=eps,
                                  lam=1e-3, lr=0.5, max_iter=MAX_ITER,
                                  tol=1e-7, seed=bench_seed)
        rows_s.append([eps, f"{rs.reconstruction_error:.4f}",
                       f"{rs.psnr_db:.2f}"])
    return rows_d, rows_s, errs_d

"""Drift-aware online maintenance — the two ISSUE acceptance gates.

**Maintenance holds the band.**  A single-subspace stream rotates
smoothly from basis ``U0`` to ``U1`` (``U(τ) = orth((1−τ)·U0 + τ·U1)``)
over ``T`` waves appended to a ``ColumnStore``.  A dictionary fitted on
the τ=0 data is maintained by one :class:`~repro.online.OnlineMaintainer`
step per wave (fresh-biased minibatch, surrogate refresh, dead-atom
re-seeding); a frozen copy of the same dictionary encodes the same
waves untouched.  Gates:

* the maintained dictionary's relative error on every fresh wave stays
  inside the fixed band ``eps · 1.25`` (the drift monitor's own band);
* the frozen dictionary's error trajectory is monotone non-decreasing
  and ends well outside the band — drift really does accumulate.

**Sketched tuning is cheap and right.**  On the same store, the
sketched α(L) tuner must read ≤ 25% of the bytes the exact subset
estimator touches AND pick an L whose cost *on the exact tuner's own
table* is within 10% of the exact choice (same candidate grid, Eq. 2
time objective).

``REPRO_BENCH_SMOKE=1`` shrinks the stream for CI; the gates still
arm.  One record per configuration goes to ``BENCH_online.json`` at
the repo root in the BENCH_spmd.json schema, and tables land in
``benchmarks/results/online_*.txt``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import observability as obs
from repro.core import CostModel, exd_transform, tune_dictionary_size
from repro.data import union_of_subspaces
from repro.linalg.omp import batch_omp_matrix
from repro.online import (
    MaintenanceConfig,
    OnlineMaintainer,
    SketchConfig,
    tune_dictionary_size_sketched,
)
from repro.platform import platform_by_name
from repro.store import ColumnStore
from repro.utils import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

M, R, L = 64, 8, 48
EPS = 0.12
BAND = EPS * 1.25
WAVES = 5 if SMOKE else 8
WAVE_COLS = 192 if SMOKE else 256
INIT_COLS = 384 if SMOKE else 512

_records: list[dict] = []


def _basis(u0, u1, tau):
    u, _ = np.linalg.qr((1.0 - tau) * u0 + tau * u1)
    return u


def _wave(u, n, seed):
    rng = np.random.default_rng(seed)
    x = u @ rng.standard_normal((u.shape[1], n))
    x += 0.01 * rng.standard_normal((x.shape[0], n))
    return x / np.linalg.norm(x, axis=0, keepdims=True)


def _relative_error(atoms, x):
    c, _ = batch_omp_matrix(atoms, x, EPS)
    resid = x - atoms @ c.to_dense()
    return float(np.linalg.norm(resid) / np.linalg.norm(x)), c.nnz


def test_maintenance_holds_error_band(bench_seed, report, tmp_path):
    rng = np.random.default_rng(bench_seed)
    u0, _ = np.linalg.qr(rng.standard_normal((M, R)))
    u1, _ = np.linalg.qr(rng.standard_normal((M, R)))

    init = _wave(u0, INIT_COLS, bench_seed + 100)
    transform, _ = exd_transform(init, L, EPS, seed=bench_seed)
    frozen = transform.dictionary.atoms.copy()

    store = ColumnStore.from_matrix(tmp_path / "stream", init,
                                    chunk_width=128)
    config = MaintenanceConfig(batch=WAVE_COLS, fresh_bias=0.8,
                               refresh_every=1,
                               warmup_columns=INIT_COLS // 2,
                               dead_min_count=1, max_reseed=8)
    maintainer = OnlineMaintainer(store, transform, seed=bench_seed,
                                  config=config)

    frozen_err, maintained_err, rows = [], [], []
    nnz_on = nnz_off = 0
    wall_on = wall_off = 0.0
    drift_fires = 0
    try:
        for t in range(1, WAVES + 1):
            tau = t / WAVES
            fresh = _wave(_basis(u0, u1, tau), WAVE_COLS,
                          bench_seed + 200 + t)
            store.append_columns(fresh)

            t0 = time.perf_counter()
            step = maintainer.step()
            e_on, k_on = _relative_error(maintainer.updater.atoms, fresh)
            wall_on += time.perf_counter() - t0

            t0 = time.perf_counter()
            e_off, k_off = _relative_error(frozen, fresh)
            wall_off += time.perf_counter() - t0

            drift_fires += int(step["drift_fired"])
            nnz_on += k_on
            nnz_off += k_off
            maintained_err.append(e_on)
            frozen_err.append(e_off)
            rows.append([f"{tau:.2f}", f"{e_on:.4f}", f"{e_off:.4f}",
                         "fired" if step["drift_fired"] else "",
                         str(step["atoms_refreshed"]),
                         str(len(step["atoms_reseeded"]))])
    finally:
        maintainer.close()

    model = CostModel(platform_by_name("1x1"))
    n_total = WAVES * WAVE_COLS
    for workload, wall, nnz in (
            ("online_maintained", wall_on, nnz_on),
            ("online_frozen", wall_off, nnz_off)):
        virtual = model.time_seconds(M, L, nnz)
        _records.append({
            "workload": workload,
            "shape": [M, n_total, L],
            "backend": workload.split("_", 1)[1],
            "wall_s": wall,
            "virtual_s": virtual,
            "ratio": wall / virtual if virtual > 0 else float("inf"),
        })

    table = format_table(
        ["tau", "maintained err", "frozen err", "drift", "refreshed",
         "re-seeded"],
        rows, title=f"Rotating-subspace stream (M={M}, r={R}, L={L}, "
                    f"eps={EPS}, {WAVES} waves x {WAVE_COLS} cols, "
                    f"band={BAND:.3f})")
    report("online maintenance", table)

    # Gate 1a: maintenance holds every wave inside the fixed band.
    assert max(maintained_err) <= BAND, (
        f"maintained error {max(maintained_err):.4f} left the "
        f"{BAND:.3f} band")
    # Gate 1b: without maintenance the error degrades monotonically
    # (1% tolerance — the trajectory saturates once the stream has
    # fully rotated away) and ends outside the band.
    drops = np.diff(frozen_err)
    assert np.all(drops > -1e-2), (
        f"frozen trajectory not monotone: {frozen_err}")
    assert frozen_err[-1] > BAND, (
        f"frozen error {frozen_err[-1]:.4f} never left the band — "
        f"the workload is too easy to demonstrate drift")
    assert frozen_err[-1] > maintained_err[-1]


def test_sketched_tuning_bytes_and_cost(bench_seed, report, tmp_path):
    n = 2048 if SMOKE else 4096
    a, _ = union_of_subspaces(48, n, n_subspaces=4, dim=3, noise=0.01,
                              seed=bench_seed)
    store = ColumnStore.from_matrix(tmp_path / "tune", a,
                                    chunk_width=128)
    model = CostModel(platform_by_name("2x8"))
    candidates = [24, 36, 54, 80]

    with obs.observed():
        before = obs.REGISTRY.counter("store.bytes_read")
        t0 = time.perf_counter()
        exact = tune_dictionary_size(store, 0.25, model,
                                     candidates=candidates,
                                     seed=bench_seed)
        wall_exact = time.perf_counter() - t0
        exact_bytes = obs.REGISTRY.counter("store.bytes_read") - before

        t0 = time.perf_counter()
        sketched = tune_dictionary_size_sketched(
            store, 0.25, model, candidates=candidates, seed=bench_seed,
            sketch=SketchConfig(dim=24, columns=400))
        wall_sketch = time.perf_counter() - t0

    exact_cost = {int(l): cost for l, _, _, cost in exact.table}
    best_cost = min(exact_cost.values())
    sketched_cost = exact_cost.get(sketched.best_size, float("inf"))

    for workload, wall, result, nbytes in (
            ("online_tune_exact", wall_exact, exact, exact_bytes),
            ("online_tune_sketched", wall_sketch, sketched,
             sketched.bytes_read)):
        cost = exact_cost.get(result.best_size, float("inf"))
        _records.append({
            "workload": workload,
            "shape": [48, n, result.best_size],
            "backend": workload.rsplit("_", 1)[1],
            "wall_s": wall,
            # flop-equivalent Eq. 2 cost of the pick, on the exact table
            "virtual_s": cost,
            "ratio": wall / cost if cost > 0 else float("inf"),
        })

    rows = [
        ["exact", str(exact.best_size), f"{best_cost:.4g}",
         f"{exact_bytes}", "1.000"],
        ["sketched", str(sketched.best_size), f"{sketched_cost:.4g}",
         f"{sketched.bytes_read}",
         f"{sketched.bytes_read / exact_bytes:.3f}"],
    ]
    table = format_table(
        ["estimator", "L*", "Eq. 2 cost (exact table)", "store bytes",
         "byte fraction"],
        rows, title=f"Sketched vs exact alpha(L) tuning "
                    f"(M=48, N={n}, k={sketched.sketch_dim}, "
                    f"{sketched.sketch_columns} sampled cols)")
    report("online sketched tuning", table)

    # Gate 2a: the sketch reads <= 25% of the exact estimator's bytes.
    assert exact_bytes > 0 and sketched.bytes_read > 0
    fraction = sketched.bytes_read / exact_bytes
    assert fraction <= 0.25, (
        f"sketch read {fraction:.1%} of the exact estimator's bytes")
    # Gate 2b: the sketched pick costs within 10% of the exact best,
    # measured on the exact tuner's own table.
    assert sketched_cost <= 1.10 * best_cost, (
        f"sketched pick L={sketched.best_size} costs "
        f"{sketched_cost / best_cost:.3f}x the exact best")


@pytest.fixture(scope="module", autouse=True)
def _write_records(report):
    yield
    if _records:
        (REPO_ROOT / "BENCH_online.json").write_text(
            json.dumps(_records, indent=2) + "\n")
        report("online json", f"wrote BENCH_online.json "
                              f"({len(_records)} records)")

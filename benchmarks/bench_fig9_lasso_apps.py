"""Fig. 9 — denoising and super-resolution total time: ExtDict vs. SGD.

Paper: ExtDict's gradient descent on the transformed Gram matrix
converges to the solution faster than distributed minibatch SGD (batch
64) — up to 3.7× for denoising and 1.9× for super-resolution — because
SGD needs many more iterations (and may never reach the exact solution)
even though its per-iteration communication is lower.

Convergence here is *sustained* target quality (see
``repro.apps.convergence``); an SGD run that never stabilises below the
target is charged its full iteration budget and flagged.
"""

import numpy as np
import pytest

from repro.apps import (
    make_denoising_setup,
    make_super_resolution_setup,
    regression_time_to_target,
)
from repro.platform import paper_platforms
from repro.utils import format_table

MAX_ITER = 2500
L_DICT = 64


@pytest.fixture(scope="module")
def denoise_problem(bench_seed):
    setup = make_denoising_setup(image_size=40, n_atoms=512, n_bases=12,
                                 snr_db=15.0, seed=bench_seed)
    ref = lambda x: float(
        np.linalg.norm(setup.y_clean - setup.a @ x)
        / np.linalg.norm(setup.y_clean))
    return setup.a, setup.y_noisy, ref, 0.05


@pytest.fixture(scope="module")
def sr_problem(bench_seed):
    # Large dictionary (N ≈ 2900 light-field columns): here ExtDict's
    # advantage over SGD comes from per-iteration cost — the sparse Gram
    # update costs far fewer FLOPs than even a 64-row batch product —
    # rather than from iteration count (the denoising mechanism).
    setup = make_super_resolution_setup(cams=5, cams_sub=3, patch=8,
                                        image_size=40, n_images=36,
                                        stride=4, noise=0.02,
                                        target_sparsity=6,
                                        seed=bench_seed)
    ref = lambda x: float(
        np.linalg.norm(setup.y_full - setup.a_full @ x)
        / np.linalg.norm(setup.y_full))
    return setup.a_low, setup.y_low, ref, 0.02


def test_fig9_denoise_benchmark(benchmark, denoise_problem, bench_seed):
    a, y, ref, target = denoise_problem
    cluster = paper_platforms()[1]
    res = benchmark.pedantic(
        regression_time_to_target, args=(a, y, ref, target),
        kwargs=dict(method="extdict", cluster=cluster, lr=0.5,
                    dictionary_size=L_DICT, max_iter=300,
                    seed=bench_seed),
        rounds=1, iterations=1)
    assert res.per_iteration_seconds > 0


def _run_app(report, problem, title, key, bench_seed):
    a, y, ref, target = problem
    rows = []
    factors = []
    for cluster in paper_platforms():
        times = {}
        for method in ("extdict", "sgd"):
            r = regression_time_to_target(
                a, y, ref, target, method=method, cluster=cluster,
                lr=0.5, dictionary_size=L_DICT, max_iter=MAX_ITER,
                probe_iters=20, seed=bench_seed)
            times[method] = r
        ext, sgd = times["extdict"], times["sgd"]
        factor = sgd.total_seconds / max(ext.total_seconds, 1e-12)
        factors.append(factor)
        rows.append([
            cluster.name,
            f"{ext.iterations}", f"{ext.total_seconds * 1e3:.2f}",
            f"{sgd.iterations}" + ("" if sgd.reached else " (never)"),
            f"{sgd.total_seconds * 1e3:.2f}"
            + ("" if sgd.reached else "+"),
            f"{factor:.2f}x",
        ])
    table = format_table(
        ["platform", "ExtDict iters", "ExtDict (ms)", "SGD iters",
         "SGD (ms)", "improvement"],
        rows, title=f"{title}  target rel. error = {target}, "
                    f"M={a.shape[0]}, N={a.shape[1]}")
    note = (f"\nbest improvement over SGD: {max(factors):.1f}x")
    report(key, table + note)
    return factors


def test_fig9a_denoising_report(benchmark, report, denoise_problem,
                                bench_seed):
    factors = benchmark.pedantic(
        _run_app, args=(report, denoise_problem,
                        "Fig. 9a: image denoising vs SGD",
                        "fig9a_denoising", bench_seed),
        rounds=1, iterations=1)
    assert max(factors) > 1.5  # paper: up to 3.7x


def test_fig9b_super_resolution_report(benchmark, report, sr_problem,
                                       bench_seed):
    factors = benchmark.pedantic(
        _run_app, args=(report, sr_problem,
                        "Fig. 9b: super-resolution vs SGD",
                        "fig9b_super_resolution", bench_seed),
        rounds=1, iterations=1)
    assert max(factors) > 1.2  # paper: up to 1.9x

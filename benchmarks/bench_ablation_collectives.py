"""Ablation — flat vs. tree collective algorithms.

The paper's Sec. VI-B communication accounting assumes overlapping
(pipelined) transfers — the "flat" model, one latency + the payload on
the bottleneck link.  A binomial tree pays ``ceil(log2 P)`` latencies
instead.  This ablation quantifies how the choice shifts Algorithm 2's
simulated runtime across platforms: bandwidth-bound updates barely move,
latency-bound ones (high P, small payloads) pay the log factor.
"""

import numpy as np
import pytest

from repro.core import exd_transform
from repro.core.gram import gram_update_program
from repro.data import union_of_subspaces
from repro.mpi.runtime import run_spmd
from repro.platform import paper_platforms
from repro.utils import format_table

M, N = 128, 2048


@pytest.fixture(scope="module")
def transform(bench_seed):
    a, _ = union_of_subspaces(M, N, n_subspaces=4, dim=3, noise=0.01,
                              seed=bench_seed)
    t, _ = exd_transform(a, 64, 0.1, seed=bench_seed)
    return t


def _simulate(transform, x, cluster, algorithm):
    res = run_spmd(0, gram_update_program, transform.dictionary.atoms,
                   transform.coefficients, x, 2, cluster=cluster,
                   collective_algorithm=algorithm)
    return res.simulated_time / 2


def test_collectives_benchmark(benchmark, transform, bench_seed):
    x = np.random.default_rng(bench_seed).standard_normal(N)
    cluster = paper_platforms()[2]
    benchmark(_simulate, transform, x, cluster, "tree")


def test_collectives_report(benchmark, report, transform, bench_seed):
    def build():
        x = np.random.default_rng(bench_seed).standard_normal(N)
        rows = []
        for cluster in paper_platforms():
            t_flat = _simulate(transform, x, cluster, "flat")
            t_tree = _simulate(transform, x, cluster, "tree")
            rows.append([cluster.name, f"{t_flat * 1e6:.2f}",
                         f"{t_tree * 1e6:.2f}",
                         f"{t_tree / max(t_flat, 1e-12):.2f}x"])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        ["platform", "flat (us/update)", "tree (us/update)",
         "tree/flat"],
        rows, title=f"Ablation: collective algorithm for Alg. 2 "
                    f"(M={M}, N={N}, L=64)")
    note = ("\nthe paper's flat (pipelined) model is the optimistic "
            "bound; a binomial tree multiplies the latency term by "
            "ceil(log2 P), visible at high rank counts")
    report("ablation_collectives", table + note)
    # Tree must never be faster than flat, and must cost more at P=64.
    ratios = [float(r[3][:-1]) for r in rows]
    assert all(r >= 0.99 for r in ratios)
    assert ratios[-1] > 1.2
"""Ablation — sampled (ExD) vs learned (K-SVD) dictionaries.

Sec. V's design choice: ExD builds its dictionary by *sampling* columns
(one pass, linear time) instead of *learning* one (K-SVD: a full
sparse-coding pass plus L rank-1 SVDs per sweep).  This ablation
quantifies the trade on union-of-subspaces data: the learned dictionary
codes somewhat sparser at equal size, but costs orders of magnitude
more preprocessing — and the gap closes as the sampled dictionary gets
the redundancy headroom ExtDict tunes for.
"""

import time

import numpy as np
import pytest

from repro.core import exd_transform
from repro.data import union_of_subspaces
from repro.linalg.ksvd import ksvd
from repro.linalg.omp import batch_omp_matrix
from repro.utils import format_table

M, N = 48, 768
EPS = 0.05
SWEEPS = 6


@pytest.fixture(scope="module")
def data(bench_seed):
    a, _ = union_of_subspaces(M, N, n_subspaces=4, dim=3, noise=0.01,
                              seed=bench_seed)
    return a


def test_ksvd_benchmark(benchmark, data, bench_seed):
    res = benchmark.pedantic(
        ksvd, args=(data, 64),
        kwargs=dict(eps=EPS, iterations=2, seed=bench_seed),
        rounds=1, iterations=1)
    assert res.iterations == 2


def test_dictionary_learning_report(benchmark, report, data, bench_seed):
    def build():
        rows = []
        for l in (48, 96, 192):
            t0 = time.perf_counter()
            sampled, _ = exd_transform(data, l, EPS, seed=bench_seed)
            t_sample = time.perf_counter() - t0
            t0 = time.perf_counter()
            learned = ksvd(data, l, eps=EPS, iterations=SWEEPS,
                           seed=bench_seed)
            t_learn = time.perf_counter() - t0
            # Code the data against the learned dictionary at equal eps
            # for an apples-to-apples density comparison.
            c_learned, _ = batch_omp_matrix(learned.dictionary, data, EPS)
            rows.append([
                l,
                f"{sampled.alpha:.2f}", f"{t_sample * 1e3:.0f}",
                f"{c_learned.nnz / N:.2f}", f"{t_learn * 1e3:.0f}",
                f"{t_learn / max(t_sample, 1e-9):.0f}x",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        ["L", "alpha sampled (ExD)", "ExD time (ms)",
         "alpha learned (K-SVD)", f"K-SVD time (ms, {SWEEPS} sweeps)",
         "preprocessing ratio"],
        rows, title=f"Ablation: sampled vs learned dictionary "
                    f"(M={M}, N={N}, eps={EPS})")
    note = ("\nExD gives up a little density for a preprocessing cost "
            "that is one coding pass instead of many — the scalability "
            "choice Sec. V argues for (and redundancy tuning recovers "
            "most of the density gap)")
    report("ablation_dictionary_learning", table + note)
    # The sampled transform must be dramatically cheaper to build.
    ratios = [float(r[5][:-1]) for r in rows]
    assert min(ratios) >= 3
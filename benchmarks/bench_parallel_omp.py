"""Parallel Batch-OMP encode — worker-count scaling on one host.

The ExD encode is embarrassingly parallel over columns (Alg. 1 step 3);
the engine in ``repro.linalg.parallel_omp`` shares the precomputed
``DᵀD`` / ``DᵀA`` with fork-inherited workers and merges chunks in
column order, so the speedup comes without any change in output bits.
This bench measures wall time vs. worker count at the issue's reference
shape (M=256, N=4096, L=512) and verifies the bit-identity claim on the
timed runs themselves.

On a single-core host (CI containers included) the worker pool cannot
beat serial — the table then simply records the overhead; the honest
numbers are the point.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import union_of_subspaces
from repro.linalg import batch_omp_matrix
from repro.linalg.parallel_omp import parallel_batch_omp_matrix
from repro.utils import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent
M, N, L = 256, 4096, 512
EPS = 0.05
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def problem(bench_seed):
    a, _ = union_of_subspaces(M, N, n_subspaces=8, dim=6, noise=0.02,
                              seed=bench_seed)
    a = a / np.linalg.norm(a, axis=0, keepdims=True)
    rng = np.random.default_rng(bench_seed)
    d = a[:, np.sort(rng.choice(N, size=L, replace=False))]
    return a, d


def test_serial_encode_benchmark(benchmark, problem):
    a, d = problem
    _c, stats = benchmark.pedantic(batch_omp_matrix, args=(d, a, EPS),
                                   rounds=1, iterations=1)
    assert stats.columns == N


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_encode_benchmark(benchmark, problem, workers):
    a, d = problem
    _c, stats = benchmark.pedantic(
        parallel_batch_omp_matrix, args=(d, a, EPS),
        kwargs={"workers": workers}, rounds=1, iterations=1)
    assert stats.columns == N


def test_worker_scaling_report(benchmark, report, problem):
    a, d = problem

    def sweep():
        times = {}
        outputs = {}
        t0 = time.perf_counter()
        c0, s0 = batch_omp_matrix(d, a, EPS)
        times["serial"] = time.perf_counter() - t0
        for w in WORKER_COUNTS:
            t0 = time.perf_counter()
            c, s = parallel_batch_omp_matrix(d, a, EPS, workers=w)
            times[w] = time.perf_counter() - t0
            outputs[w] = (c, s)
        return (c0, s0), outputs, times

    (c0, s0), outputs, times = benchmark.pedantic(sweep, rounds=1,
                                                  iterations=1)
    # The engine's contract, checked on the timed runs themselves.
    for c, s in outputs.values():
        np.testing.assert_array_equal(c.data, c0.data)
        np.testing.assert_array_equal(c.indices, c0.indices)
        np.testing.assert_array_equal(c.indptr, c0.indptr)
        assert s.total_iterations == s0.total_iterations

    t_serial = times["serial"]
    rows = [["serial loop", "-", f"{t_serial * 1e3:.0f}", "1.00x"]]
    for w in WORKER_COUNTS:
        rows.append(["parallel engine", w, f"{times[w] * 1e3:.0f}",
                     f"{t_serial / max(times[w], 1e-9):.2f}x"])

    # Machine-readable record (same schema as BENCH_spmd.json; this
    # workload has no virtual clock, so virtual_s is the serial wall
    # time and ratio the speedup against it).
    records = [{"workload": "parallel_omp_encode", "shape": [M, N, L],
                "backend": "serial", "wall_s": t_serial,
                "virtual_s": t_serial, "ratio": 1.0}]
    for w in WORKER_COUNTS:
        records.append({"workload": "parallel_omp_encode",
                        "shape": [M, N, L], "backend": f"workers={w}",
                        "wall_s": times[w], "virtual_s": t_serial,
                        "ratio": t_serial / max(times[w], 1e-9)})
    (REPO_ROOT / "BENCH_parallel_omp.json").write_text(
        json.dumps(records, indent=2) + "\n")
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cores = os.cpu_count() or 1
    table = format_table(
        ["variant", "workers", "wall time (ms)", "speedup"],
        rows, title=f"Parallel Batch-OMP encode (M={M}, N={N}, L={L}, "
                    f"eps={EPS}, host cores={cores})")
    note = ("\noutput verified bit-identical to serial for every worker "
            "count")
    if cores < max(WORKER_COUNTS):
        note += (f"\nhost exposes only {cores} core(s): speedups above "
                 f"{cores}x workers measure pool overhead, not scaling")
    report("parallel_omp_scaling", table + note)


def test_kernel_backend_report(benchmark, report, problem):
    """Dense-regime kernel comparison at workers=1 (ROADMAP item 2).

    Every *available* backend encodes the same panel serially; compiled
    backends must reproduce the numpy reference's supports exactly and
    its coefficients within the documented tolerance, measured on the
    timed runs themselves.  The acceptance bar — numba >= 5x over numpy
    at workers=1 — is recorded in the speedup column when numba is
    importable; unavailable backends are listed with the reason so a
    numpy-only run is self-explanatory.
    """
    from repro.linalg.kernels import (
        COEF_ATOL,
        COEF_RTOL,
        get_backend,
        registered_backend_names,
    )
    from repro.linalg.kernels import _REGISTRY

    a, d = problem

    def run(name):
        return batch_omp_matrix(d, a, EPS, backend=name)

    def sweep():
        times, outputs, skipped = {}, {}, []
        for name in registered_backend_names():
            cls = _REGISTRY[name]
            if not cls.available():
                skipped.append((name, cls.unavailable_reason()
                                or "dependency not importable"))
                continue
            # pay JIT compilation outside the timed region
            get_backend(name).warmup()
            run(name)
            t0 = time.perf_counter()
            outputs[name] = run(name)
            times[name] = time.perf_counter() - t0
        return times, outputs, skipped

    times, outputs, skipped = benchmark.pedantic(sweep, rounds=1,
                                                 iterations=1)
    c_ref, s_ref = outputs["numpy"]
    for name, (c, s) in outputs.items():
        np.testing.assert_array_equal(c.indptr, c_ref.indptr)
        np.testing.assert_array_equal(c.indices, c_ref.indices)
        np.testing.assert_allclose(c.data, c_ref.data,
                                   rtol=COEF_RTOL, atol=COEF_ATOL)
        assert s.total_iterations == s_ref.total_iterations

    t_ref = times["numpy"]
    rows = []
    for name in sorted(times):
        rows.append([name, f"{times[name] * 1e3:.0f}",
                     f"{t_ref / max(times[name], 1e-9):.2f}x"])
    table = format_table(
        ["backend", "wall time (ms)", "speedup vs numpy"],
        rows, title=f"OMP kernel backends, serial encode (M={M}, N={N}, "
                    f"L={L}, eps={EPS}, workers=1)")
    note = ("\nsupports identical and coefficients within "
            f"rtol={COEF_RTOL}/atol={COEF_ATOL} of the numpy reference "
            "on the timed runs")
    for name, reason in skipped:
        note += f"\nskipped backend {name!r}: {reason}"
    report("omp_kernel_backends", table + note)
    if "numba" in times:
        assert t_ref / times["numba"] >= 5.0, (
            f"numba speedup {t_ref / times['numba']:.2f}x below the "
            f"5x acceptance bar")

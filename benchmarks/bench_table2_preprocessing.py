"""Table II — preprocessing overhead (ExD tuning + execution).

Paper: one-time tuning + transformation overhead on 64 cores (8×8),
with Cancer Cells costlier than the (larger) Light Field because its
denser geometry needs more OMP iterations per column.
"""

import pytest

from repro.core import CostModel, exd_transform_distributed, tune_dictionary_size
from repro.data import load_dataset
from repro.platform import platform_by_name
from repro.utils import Timer, format_table

DATASETS = ("salina", "cancer", "lightfield")
EPS = 0.1
N = 1024


@pytest.fixture(scope="module")
def cluster():
    return platform_by_name("8x8")


@pytest.fixture(scope="module")
def matrices(bench_seed):
    return {name: load_dataset(name, n=N, seed=bench_seed).matrix
            for name in DATASETS}


def test_table2_tuning_benchmark(benchmark, matrices, cluster, bench_seed):
    model = CostModel(cluster)
    res = benchmark(tune_dictionary_size, matrices["salina"], EPS, model,
                    seed=bench_seed, subset_fraction=0.1,
                    candidates=[64, 128, 256])
    assert res.best_size in (64, 128, 256)


def test_table2_report(benchmark, report, matrices, cluster, bench_seed):
    rows, omp_iters = benchmark.pedantic(
        _build, args=(matrices, cluster, bench_seed),
        rounds=1, iterations=1)
    table = format_table(
        ["dataset", "tuned L*", "tuning (ms, host)",
         "transform (ms, host)", "overall (ms, host)",
         "transform (ms, simulated 8x8)", "OMP iters/column"],
        rows, title=f"Table II: preprocessing overhead (eps={EPS}, "
                    f"{cluster.describe()})")
    note = ("\ncancer needs more OMP iterations/column than lightfield: "
            + ("yes" if omp_iters["cancer"] > omp_iters["lightfield"]
               else "NO") + " (paper: yes — denser geometry)")
    report("table2_preprocessing", table + note)
    assert omp_iters["cancer"] > omp_iters["lightfield"]


def _build(matrices, cluster, bench_seed):
    model = CostModel(cluster)
    rows = []
    omp_iters = {}
    for name in DATASETS:
        a = matrices[name]
        t_tune = Timer()
        with t_tune:
            tuning = tune_dictionary_size(a, EPS, model, seed=bench_seed,
                                          subset_fraction=0.15)
        t_xform = Timer()
        with t_xform:
            transform, stats, spmd = exd_transform_distributed(
                a, tuning.best_size, EPS, cluster, seed=bench_seed)
        omp_iters[name] = stats.omp_iterations / a.shape[1]
        rows.append([
            name, tuning.best_size,
            f"{t_tune.elapsed * 1e3:.0f}",
            f"{t_xform.elapsed * 1e3:.0f}",
            f"{(t_tune.elapsed + t_xform.elapsed) * 1e3:.0f}",
            f"{spmd.simulated_time * 1e3:.2f}",
            f"{omp_iters[name]:.2f}",
        ])
    return rows, omp_iters

"""Fig. 12 — PCA learning error vs. transformation error ε.

Paper: the normalised cumulative error of the first 10 eigenvalues
found through ``(DC)ᵀDC`` stays negligible (1e-3–1e-2 scale) across ε,
while the runtime improvements of Fig. 10 are realised.
"""

import pytest

from repro.apps import eigenvalue_error, exact_gram_eigenvalues, run_pca
from repro.data import load_dataset
from repro.utils import format_table

DATASETS = ("salina", "cancer", "lightfield")
EPSILONS = (0.01, 0.05, 0.1, 0.2, 0.4)
N = 1024
K = 10


@pytest.fixture(scope="module")
def problems(bench_seed):
    out = {}
    for name in DATASETS:
        a = load_dataset(name, n=N, seed=bench_seed).matrix
        out[name] = (a, exact_gram_eigenvalues(a, K))
    return out


def test_fig12_pca_benchmark(benchmark, problems, bench_seed):
    a, _ = problems["salina"]
    res = benchmark.pedantic(
        run_pca, args=(a, 3),
        kwargs=dict(method="extdict", eps=0.1, seed=bench_seed,
                    max_iter=150),
        rounds=1, iterations=1)
    assert res.eigenvalues.size == 3


def test_fig12_report(benchmark, report, problems, bench_seed):
    rows, errors = benchmark.pedantic(_build, args=(problems, bench_seed),
                                      rounds=1, iterations=1)
    table = format_table(
        ["dataset"] + [f"eps={e}" for e in EPSILONS], rows,
        title=f"Fig. 12: normalised cumulative error of the first {K} "
              f"eigenvalues, N={N}")
    note = ("\nerror remains small across eps (paper: 'negligible "
            "learning error while drastically improving the runtime')")
    report("fig12_pca_error", table + note)
    for name in DATASETS:
        assert errors[(name, 0.01)] < 0.05
        assert errors[(name, 0.1)] < 0.15


def _build(problems, bench_seed):
    rows = []
    errors = {}
    for name in DATASETS:
        a, exact = problems[name]
        row = [name]
        for eps in EPSILONS:
            res = run_pca(a, K, method="extdict", eps=eps,
                          seed=bench_seed, tol=1e-9, max_iter=300)
            err = eigenvalue_error(res.eigenvalues, exact)
            errors[(name, eps)] = err
            row.append(f"{err:.2e}")
        rows.append(row)
    return rows, errors

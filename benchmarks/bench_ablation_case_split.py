"""Ablation — Algorithm 2's case split and the min(M, L) comm bound.

Sweeps L across the M boundary and verifies that the per-iteration
critical-path traffic is exactly ``2·min(M, L)`` words: it grows with L
in Case 1 (root-held D) and saturates at ``2·M`` in Case 2 (replicated
D) — the communication-optimality argument of Sec. VI-B.
"""

import numpy as np
import pytest

from repro.core import exd_transform, run_distributed_gram, select_case
from repro.data import union_of_subspaces
from repro.platform import platform_by_name
from repro.utils import format_table

M = 64
N = 1024


@pytest.fixture(scope="module")
def data(bench_seed):
    a, _ = union_of_subspaces(M, N, n_subspaces=4, dim=3, noise=0.01,
                              seed=bench_seed)
    return a


def test_case_split_benchmark(benchmark, data, bench_seed):
    t, _ = exd_transform(data, M // 2, 0.1, seed=bench_seed)
    x = np.random.default_rng(bench_seed).standard_normal(N)
    cluster = platform_by_name("1x4")
    benchmark(run_distributed_gram, t, x, cluster)


def test_case_split_report(benchmark, report, data, bench_seed):
    def build():
        cluster = platform_by_name("2x8")
        x = np.random.default_rng(bench_seed).standard_normal(N)
        rows = []
        for l in (16, 32, 64, 128, 256):
            t, _ = exd_transform(data, l, 0.1, seed=bench_seed)
            _, res = run_distributed_gram(t, x, cluster, iterations=1)
            words = res.traffic.total_payload_words("reduce", "bcast")
            expected = 2 * min(M, l)
            rows.append([l, select_case(M, l), words, expected,
                         f"{res.simulated_time * 1e6:.2f}",
                         "ok" if words == expected else "MISMATCH"])
            assert words == expected
        return rows, cluster

    rows, cluster = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        ["L", "case", "words/update", "2*min(M,L)", "simulated us",
         "check"],
        rows, title=f"Ablation: Alg. 2 case split (M={M}, N={N}, "
                    f"{cluster.name})")
    note = ("\ntraffic saturates at 2*M once L > M: replicating D makes "
            "dictionary redundancy free on the wire")
    report("ablation_case_split", table + note)

"""Fig. 10 — PCA (Power method, 10 eigenvalues): ExtDict vs. raw AᵀA.

Paper: running the Power method through ``(DC)ᵀDC`` instead of ``AᵀA``
(ε = 0.1) yields large runtime improvements — up to 8.68× (Salinas),
5.9× (Cancer Cells) and 71× (Light Field) across the four platforms.
The biggest wins come where the data is most redundant relative to its
ambient dimension.
"""

import pytest

from repro.apps import run_pca
from repro.core import CostModel, tune_dictionary_size
from repro.data import load_dataset
from repro.platform import paper_platforms
from repro.utils import format_table

DATASETS = ("salina", "cancer", "lightfield")
EPS = 0.1
N = 4096
K = 10


@pytest.fixture(scope="module")
def matrices(bench_seed):
    return {name: load_dataset(name, n=N, seed=bench_seed).matrix
            for name in DATASETS}


@pytest.fixture(scope="module")
def tuned_sizes(matrices, bench_seed):
    out = {}
    for name, a in matrices.items():
        for cluster in paper_platforms():
            tuning = tune_dictionary_size(a, EPS, CostModel(cluster),
                                          seed=bench_seed,
                                          subset_fraction=0.1)
            out[(name, cluster.name)] = tuning.best_size
    return out


def test_fig10_pca_benchmark(benchmark, matrices, bench_seed):
    cluster = paper_platforms()[1]
    res = benchmark.pedantic(
        run_pca, args=(matrices["salina"], 3),
        kwargs=dict(method="extdict", eps=EPS, cluster=cluster,
                    dictionary_size=128, seed=bench_seed, max_iter=100),
        rounds=1, iterations=1)
    assert res.simulated_time > 0


def test_fig10_report(benchmark, report, matrices, tuned_sizes,
                      bench_seed):
    lines, best = benchmark.pedantic(
        _build, args=(matrices, tuned_sizes, bench_seed),
        rounds=1, iterations=1)
    lines.append("best improvement per dataset: "
                 + ", ".join(f"{n}: {best[n]:.1f}x" for n in DATASETS)
                 + "  (paper: salina 8.7x, cancer 5.9x, lightfield 71x)")
    report("fig10_pca_runtime", "\n".join(lines))
    for name in DATASETS:
        assert best[name] > 1.5


def _build(matrices, tuned_sizes, bench_seed):
    lines = []
    best = {}
    for name in DATASETS:
        a = matrices[name]
        rows = []
        for cluster in paper_platforms():
            l_star = tuned_sizes[(name, cluster.name)]
            dense = run_pca(a, K, method="dense", cluster=cluster,
                            seed=bench_seed, tol=1e-7, max_iter=150)
            ext = run_pca(a, K, method="extdict", eps=EPS,
                          dictionary_size=l_star, cluster=cluster,
                          seed=bench_seed, tol=1e-7, max_iter=150)
            factor = dense.simulated_time / max(ext.simulated_time, 1e-12)
            best[name] = max(best.get(name, 0.0), factor)
            rows.append([cluster.name, l_star,
                         f"{dense.simulated_time * 1e3:.2f}",
                         f"{ext.simulated_time * 1e3:.2f}",
                         f"{factor:.2f}x"])
        lines.append(format_table(
            ["platform", "tuned L*", "AtA power method (ms)",
             "ExtDict power method (ms)", "improvement"],
            rows, title=f"Fig. 10 [{name}]  top-{K} eigenvalues, "
                        f"eps={EPS}, N={N}"))
        lines.append("")
    return lines, best

"""SPMD execution backends — threads vs forked processes, wall vs model.

The emulator's two backends run the identical rank programs with
identical model accounting (traffic words, Eq. 2/3 virtual totals); the
only thing allowed to differ is host wall time.  This bench times the
distributed ExD encode on the paper platforms (1x1, 1x4, 2x8) under
both backends, verifies bit-identity and accounting parity on the timed
runs themselves, and records the measured-vs-virtual ratio — how far
the host is from the modeled machine.

Results land in ``benchmarks/results/spmd_backends.txt`` (table) and
``BENCH_spmd.json`` at the repo root, one record per (workload,
backend): ``{workload, shape, backend, wall_s, virtual_s, ratio}``.

On a single-core host the process backend cannot beat threads — the
table records the honest overhead; the speedup assertion only arms on
multi-core hosts.
"""

import json
import multiprocessing
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import exd_transform_distributed
from repro.data import union_of_subspaces
from repro.platform import platform_by_name
from repro.utils import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent
M, N, L = 128, 3072, 192
EPS = 0.1
PLATFORMS = ("1x1", "1x4", "2x8")


def _host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _backends() -> tuple[str, ...]:
    if "fork" in multiprocessing.get_all_start_methods():
        return ("threads", "processes")
    return ("threads",)


@pytest.fixture(scope="module")
def problem(bench_seed):
    a, _ = union_of_subspaces(M, N, n_subspaces=8, dim=6, noise=0.02,
                              seed=bench_seed)
    return a / np.linalg.norm(a, axis=0, keepdims=True)


@pytest.mark.parametrize("backend", _backends())
def test_spmd_encode_benchmark(benchmark, problem, backend, bench_seed):
    cluster = platform_by_name("1x4")
    _t, _s, res = benchmark.pedantic(
        exd_transform_distributed, args=(problem, L, EPS, cluster),
        kwargs={"seed": bench_seed, "backend": backend},
        rounds=1, iterations=1)
    # Size-1 worlds run inline; everywhere else the requested backend
    # must actually be the one that executed.
    assert res.backend == backend


def test_backend_matrix_report(benchmark, report, problem, bench_seed):
    def sweep():
        runs = {}
        for platform in PLATFORMS:
            cluster = platform_by_name(platform)
            # A size-1 world always runs inline, so benching a second
            # backend there would just duplicate the row.
            backends = _backends() if cluster.size > 1 else ("threads",)
            for backend in backends:
                runs[(platform, backend)] = exd_transform_distributed(
                    problem, L, EPS, cluster, seed=bench_seed,
                    backend=backend)
        return runs

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Accounting parity + bit-identity across backends, per platform,
    # checked on the timed runs themselves.
    for platform in PLATFORMS:
        base = runs[(platform, "threads")]
        for backend in _backends()[1:]:
            if (platform, backend) not in runs:
                continue
            cand = runs[(platform, backend)]
            np.testing.assert_array_equal(
                cand[0].coefficients.data, base[0].coefficients.data)
            np.testing.assert_array_equal(
                cand[0].coefficients.indices,
                base[0].coefficients.indices)
            assert (cand[2].traffic.snapshot()
                    == base[2].traffic.snapshot())
            assert cand[2].simulated_time == base[2].simulated_time
            assert cand[2].simulated_energy == base[2].simulated_energy

    records = []
    rows = []
    for (platform, backend), (_t, _s, res) in sorted(runs.items()):
        ratio = (res.wall_time / res.simulated_time
                 if res.simulated_time > 0 else float("inf"))
        records.append({
            "workload": f"exd_encode_{platform}",
            "shape": [M, N, L],
            "backend": res.backend,
            "wall_s": res.wall_time,
            "virtual_s": res.simulated_time,
            "ratio": ratio,
        })
        rows.append([platform, res.backend,
                     f"{res.wall_time * 1e3:.0f}",
                     f"{res.simulated_time * 1e3:.3f}",
                     f"{ratio:.1f}x"])

    (REPO_ROOT / "BENCH_spmd.json").write_text(
        json.dumps(records, indent=2) + "\n")

    cores = _host_cores()
    table = format_table(
        ["platform", "backend", "wall (ms)", "virtual (ms)",
         "measured/modeled"],
        rows, title=f"SPMD backends, distributed ExD encode (M={M}, "
                    f"N={N}, L={L}, eps={EPS}, host cores={cores})")
    note = ("\naccounting (traffic words, Eq. 2/3 totals) and output "
            "bits verified identical across backends on the timed runs"
            "\nwrote BENCH_spmd.json")
    if cores < 2:
        note += ("\nsingle-core host: the process backend measures "
                 "fork/IPC overhead here, not parallel speedup")
    report("spmd_backends", table + note)

    if cores > 1 and ("1x4", "processes") in runs:
        wall_t = runs[("1x4", "threads")][2].wall_time
        wall_p = runs[("1x4", "processes")][2].wall_time
        assert wall_p < wall_t, (
            f"processes ({wall_p:.2f}s) did not beat threads "
            f"({wall_t:.2f}s) on the 1x4 encode with {cores} cores")

"""Observability overhead: disabled instrumentation must be ~free.

The layer's contract is one flag check per instrumented call site while
disabled, with no allocation and no clock read (the disabled ``span``
returns a shared singleton).  This bench times ``exd_transform`` with
the layer off and on and reports the relative overheads; the acceptance
bar for the disabled path is < 2%.

Timing noise on shared CI hosts easily exceeds 2%, so the asserted
bound is looser (10%) while the recorded table carries the honest
numbers; run locally with repeated rounds for a tight measurement.
"""

import time

import numpy as np
import pytest

from repro import observability as obs
from repro.core import exd_transform
from repro.data import union_of_subspaces
from repro.utils import format_table

M, N, L = 128, 2048, 256
EPS = 0.05
ROUNDS = 5


@pytest.fixture(scope="module")
def problem(bench_seed):
    a, _ = union_of_subspaces(M, N, n_subspaces=6, dim=5, noise=0.02,
                              seed=bench_seed)
    return a


def _time_transform(a, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        exd_transform(a, L, EPS, seed=0)
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_overhead(problem, report):
    obs.disable()
    obs.reset()
    baseline = _time_transform(problem, ROUNDS)
    disabled = _time_transform(problem, ROUNDS)
    obs.enable()
    try:
        enabled = _time_transform(problem, ROUNDS)
    finally:
        obs.disable()
        obs.reset()

    def pct(x: float) -> float:
        return 100.0 * (x / baseline - 1.0)

    rows = [
        ["layer absent (baseline)", f"{baseline * 1e3:.2f}", "--"],
        ["disabled (flag checks)", f"{disabled * 1e3:.2f}",
         f"{pct(disabled):+.2f}%"],
        ["enabled (full recording)", f"{enabled * 1e3:.2f}",
         f"{pct(enabled):+.2f}%"],
    ]
    report("observability overhead",
           format_table(["configuration", "best of "
                         f"{ROUNDS} (ms)", "vs baseline"], rows,
                        title=f"exd_transform M={M} N={N} L={L} "
                              f"eps={EPS}"))
    # Generous CI bound; the design target (and typical local
    # measurement) for the disabled path is < 2%.
    assert disabled <= baseline * 1.10

"""Ablation — evolving-data update vs. full re-transform (Sec. V-E).

The paper's motivation for the zero-padded update: "enables us to update
the transformation while avoiding the cost of re-applying ExD on the
entire dataset."  This bench quantifies that saving — appending batches
of new columns via :func:`extend_transform` vs. re-running Algorithm 1
on the grown matrix — and verifies both keep the ε bound.
"""

import time

import numpy as np
import pytest

from repro.core import exd_transform, extend_transform
from repro.data import union_of_subspaces
from repro.utils import format_table

M, N0, BATCH = 64, 1536, 128
EPS = 0.05
L = 128


@pytest.fixture(scope="module")
def stream(bench_seed):
    a, model = union_of_subspaces(M, N0 + 4 * BATCH, n_subspaces=4,
                                  dim=3, noise=0.01, seed=bench_seed)
    return a, model


def test_evolve_update_benchmark(benchmark, stream, bench_seed):
    a, _ = stream
    base, _ = exd_transform(a[:, :N0], L, EPS, seed=bench_seed)
    batch = a[:, N0:N0 + BATCH]
    res = benchmark(extend_transform, base, batch, seed=bench_seed)
    assert res.transform.n == N0 + BATCH


def test_evolve_report(benchmark, report, stream, bench_seed):
    def build():
        a, _ = stream
        transform, _ = exd_transform(a[:, :N0], L, EPS, seed=bench_seed)
        rows = []
        n = N0
        for step in range(4):
            batch = a[:, n:n + BATCH]
            t0 = time.perf_counter()
            res = extend_transform(transform, batch, seed=bench_seed)
            t_update = time.perf_counter() - t0
            transform = res.transform
            n += BATCH
            t0 = time.perf_counter()
            full, _ = exd_transform(a[:, :n], L, EPS, seed=bench_seed)
            t_full = time.perf_counter() - t0
            err_update = transform.transformation_error(a[:, :n])
            err_full = full.transformation_error(a[:, :n])
            rows.append([
                f"+{BATCH} -> N={n}",
                f"{t_update * 1e3:.1f}",
                f"{t_full * 1e3:.1f}",
                f"{t_full / max(t_update, 1e-9):.1f}x",
                f"{err_update:.4f}",
                f"{err_full:.4f}",
            ])
            assert err_update <= EPS + 1e-6
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        ["batch", "update (ms)", "re-transform (ms)", "saving",
         "error (update)", "error (full)"],
        rows, title=f"Ablation: evolving update vs full re-transform "
                    f"(M={M}, L={L}, eps={EPS})")
    note = ("\nthe incremental update only codes the new columns, so its "
            "cost is O(batch) while the re-transform is O(N) — the "
            "saving grows as the dataset does (Sec. V-E)")
    report("ablation_evolve", table + note)
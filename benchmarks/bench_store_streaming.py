"""Streaming overhead — store-backed ExD vs. the in-memory transform.

The out-of-core path reads `A` chunk-by-chunk from disk, encodes in
fixed-width blocks, and (optionally) spills checkpoints.  This bench
quantifies what that costs relative to the all-in-RAM transform the
paper assumes, across block widths and with checkpointing on/off — the
answer should be "a few percent", since the encode itself dominates and
is bit-identical in both paths.
"""

import time

import numpy as np
import pytest

from repro.core import exd_transform
from repro.data import union_of_subspaces
from repro.store import ColumnStore, StreamingEncoder
from repro.utils import format_table

M, N, L = 128, 4096, 96
EPS = 0.05


@pytest.fixture(scope="module")
def problem(bench_seed, tmp_path_factory):
    a, _ = union_of_subspaces(M, N, n_subspaces=6, dim=5, noise=0.02,
                              seed=bench_seed)
    root = tmp_path_factory.mktemp("store_bench")
    store = ColumnStore.from_matrix(root / "a.store", a, chunk_width=256)
    return a, store, root


def test_in_memory_benchmark(benchmark, problem, bench_seed):
    a, _, _ = problem
    t, stats = benchmark.pedantic(exd_transform, args=(a, L, EPS),
                                  kwargs={"seed": bench_seed},
                                  rounds=1, iterations=1)
    assert stats.all_converged


@pytest.mark.parametrize("block_width", [256, 1024, 4096])
def test_streamed_benchmark(benchmark, problem, bench_seed, block_width):
    _, store, _ = problem
    t, stats = benchmark.pedantic(
        exd_transform, args=(store, L, EPS),
        kwargs={"seed": bench_seed, "block_width": block_width},
        rounds=1, iterations=1)
    assert stats.all_converged


def test_checkpointed_benchmark(benchmark, problem, bench_seed):
    _, store, root = problem

    def run():
        enc = StreamingEncoder(store, L, EPS, seed=bench_seed,
                               block_width=1024,
                               checkpoint_dir=root / "ck-bench")
        out = enc.run(resume=True)  # empty dir -> fresh run
        return out

    t, stats, rep = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.all_converged


def test_streaming_overhead_table(problem, bench_seed, report):
    """One-shot comparison table (wall-clock, not pytest-benchmark)."""
    a, store, root = problem

    def timed(fn):
        t0 = time.perf_counter()
        out = fn()
        return time.perf_counter() - t0, out

    base_s, (ref, _) = timed(lambda: exd_transform(a, L, EPS,
                                                   seed=bench_seed))
    rows = [("in-memory", f"{base_s:.3f}", "1.00x", "-")]
    for width in (256, 1024, 4096):
        s, (t, _) = timed(lambda: exd_transform(store, L, EPS,
                                                seed=bench_seed,
                                                block_width=width))
        identical = np.array_equal(t.coefficients.data,
                                   ref.coefficients.data)
        rows.append((f"streamed w={width}", f"{s:.3f}",
                     f"{s / base_s:.2f}x", str(identical)))
    s, (t, _, rep) = timed(lambda: StreamingEncoder(
        store, L, EPS, seed=bench_seed, block_width=1024,
        checkpoint_dir=root / "ck-table").run())
    rows.append((f"checkpointed ({rep.checkpoints_written} ckpts)",
                 f"{s:.3f}", f"{s / base_s:.2f}x",
                 str(np.array_equal(t.coefficients.data,
                                    ref.coefficients.data))))
    table = format_table(
        ["variant", "seconds", "vs in-memory", "bit-identical"], rows)
    report("store streaming overhead", table)
    assert all(r[3] in ("-", "True") for r in rows)

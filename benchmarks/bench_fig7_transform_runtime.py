"""Fig. 7 — per-update runtime improvement of ExtDict over baselines.

Paper: one Gram update ``(DC)ᵀDC x`` on the transformed data vs. the
original ``AᵀA x`` and the RCSS / oASIS / RankMap transforms, at equal
ε = 0.1, on the 1×1, 1×4, 2×8 and 8×8 platforms.  ExtDict is tuned per
platform and is better than or equal to every alternative, with the
largest factors over the dense-coefficient transforms and a tie with
RankMap on the highly-redundant Light Field data.
"""

import numpy as np
import pytest

from repro.baselines import (
    oasis_transform,
    rankmap_transform,
    rcss_transform,
    run_dense_distributed_gram,
)
from repro.core import (
    CostModel,
    exd_transform,
    run_distributed_gram,
    tune_dictionary_size,
)
from repro.data import load_dataset
from repro.platform import paper_platforms
from repro.utils import format_table

DATASETS = ("salina", "cancer", "lightfield")
EPS = 0.1
# N large enough that per-rank compute dominates message latency even at
# P=64, as in the paper's 54k-112k-column datasets; smaller N makes every
# alternative latency-bound and the comparison meaningless.
N = 6144
ITERS = 2


@pytest.fixture(scope="module")
def matrices(bench_seed):
    return {name: load_dataset(name, n=N, seed=bench_seed).matrix
            for name in DATASETS}


@pytest.fixture(scope="module")
def baseline_transforms(matrices, bench_seed):
    out = {}
    for name, a in matrices.items():
        out[name] = {
            "rcss": rcss_transform(a, EPS, seed=bench_seed),
            "oasis": oasis_transform(a, EPS, seed=bench_seed),
            "rankmap": rankmap_transform(a, EPS, seed=bench_seed,
                                         subset_fraction=0.15),
        }
    return out


def _update_time(transform, x, cluster):
    _, res = run_distributed_gram(transform, x, cluster, iterations=ITERS)
    return res.simulated_time / ITERS


def test_fig7_gram_update_benchmark(benchmark, matrices, bench_seed):
    a = matrices["salina"]
    t, _ = exd_transform(a, 128, EPS, seed=bench_seed)
    x = np.random.default_rng(bench_seed).standard_normal(a.shape[1])
    cluster = paper_platforms()[1]
    benchmark(run_distributed_gram, t, x, cluster)


def test_fig7_report(benchmark, report, matrices, baseline_transforms,
                     bench_seed):
    lines, improvements = benchmark.pedantic(
        _build, args=(matrices, baseline_transforms, bench_seed),
        rounds=1, iterations=1)
    checks = []
    for name in DATASETS:
        best_over_dense = max(improvements[(name, "AtA")])
        checks.append(f"{name}: best improvement over AtA "
                      f"{best_over_dense:.1f}x")
    worst_vs_rankmap = min(min(v) for (n, k), v in improvements.items()
                           if k == "rankmap")
    checks.append(f"ExtDict vs RankMap never worse than "
                  f"{worst_vs_rankmap:.2f}x (paper: better or equal, "
                  f"tie on lightfield)")
    report("fig7_transform_runtime", "\n".join(lines + checks))
    # ExtDict must never lose by more than simulator noise.
    assert worst_vs_rankmap > 0.85
    for name in DATASETS:
        assert max(improvements[(name, "AtA")]) > 2.0


def _build(matrices, baseline_transforms, bench_seed):
    lines = []
    improvements = {}
    for name in DATASETS:
        a = matrices[name]
        x = np.random.default_rng(bench_seed).standard_normal(a.shape[1])
        rows = []
        exd_cache = {}
        for cluster in paper_platforms():
            model = CostModel(cluster)
            tuning = tune_dictionary_size(a, EPS, model, seed=bench_seed,
                                          subset_fraction=0.1)
            l_star = tuning.best_size
            if l_star not in exd_cache:
                exd_cache[l_star] = exd_transform(a, l_star, EPS,
                                                  seed=bench_seed)[0]
            t_exd = _update_time(exd_cache[l_star], x, cluster)
            _, r_dense = run_dense_distributed_gram(a, x, cluster,
                                                    iterations=ITERS)
            t_dense = r_dense.simulated_time / ITERS
            times = {"AtA": t_dense}
            for base, transform in baseline_transforms[name].items():
                times[base] = _update_time(transform, x, cluster)
            row = [cluster.name, l_star, f"{t_exd * 1e6:.1f}"]
            for key in ("AtA", "rcss", "oasis", "rankmap"):
                factor = times[key] / t_exd
                improvements.setdefault((name, key), []).append(factor)
                row.append(f"{factor:.2f}x")
            rows.append(row)
        lines.append(format_table(
            ["platform", "tuned L*", "ExtDict (us/update)",
             "vs AtA", "vs RCSS", "vs oASIS", "vs RankMap"],
            rows, title=f"Fig. 7 [{name}]  eps={EPS}, N={N}"))
        lines.append("")
    return lines, improvements

"""Serving latency — micro-batched vs. unbatched request-path encode.

The encode service's claim (ROADMAP item 1) is that coalescing
concurrent single-column requests into one shared-``G`` Batch-OMP call
recovers the amortisation the paper gets from offline batch encodes —
visible as lower per-request latency once concurrency covers the
batching window.  This bench drives the real ``ServeApp`` over HTTP
with both configurations (``max_batch=64`` vs. ``max_batch=1``) at
several client concurrencies and tables client-side p50/p99.

The headline row is concurrency ≥ 16: batched p50 must beat unbatched
p50 there, because every unbatched request pays a full fixed-width
panel encode alone *and* queues serially behind its neighbours, while
the batched path shares one panel across the whole burst.
"""

import asyncio
import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.core import CostModel, exd_transform
from repro.data import union_of_subspaces
from repro.platform import platform_by_name
from repro.serve import ServeApp
from repro.utils import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent

M, N, L, EPS = 64, 400, 48, 0.1
CONCURRENCIES = (1, 4, 16, 32)
REQUESTS_PER_LEVEL = 96


@pytest.fixture(scope="module")
def problem(bench_seed):
    a, _ = union_of_subspaces(M, N, n_subspaces=6, dim=4, noise=0.01,
                              seed=bench_seed)
    t, _ = exd_transform(a, size=L, eps=EPS, seed=bench_seed)
    return a, t


class _Daemon:
    """ServeApp on a dedicated event-loop thread."""

    def __init__(self, transform, **knobs):
        self.app = ServeApp(observe=False, **knobs)
        self.app.registry.add_transform("default", transform)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.addr = self.loop.run_until_complete(self.app.start())
        self._ready.set()
        self.loop.run_forever()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10)
        return self

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(
            self.app.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()


def _drive(daemon, data, concurrency, n_requests):
    """Fire ``n_requests`` encodes from ``concurrency`` client threads;
    returns per-request latencies in milliseconds."""
    host, port = daemon.addr
    latencies = []
    lock = threading.Lock()

    def one(j):
        body = json.dumps(
            {"column": [float(v) for v in data[:, j % data.shape[1]]]})
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            t0 = time.perf_counter()
            conn.request("POST", "/v1/encode", body=body)
            resp = conn.getresponse()
            payload = resp.read()
            dt = (time.perf_counter() - t0) * 1e3
            assert resp.status == 200, payload
        finally:
            conn.close()
        with lock:
            latencies.append(dt)

    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        list(pool.map(one, range(n_requests)))
    return np.asarray(latencies)


def _percentiles(lat):
    return (float(np.percentile(lat, 50)), float(np.percentile(lat, 99)))


def test_batched_vs_unbatched_latency(problem, report):
    a, transform = problem
    rows = []
    summary = {}
    for label, knobs in (
        ("batched", dict(max_batch=64, max_wait_ms=2.0)),
        ("unbatched", dict(max_batch=1, max_wait_ms=0.0)),
    ):
        with _Daemon(transform, max_queue=4096, timeout_ms=60000.0,
                     **knobs) as daemon:
            for conc in CONCURRENCIES:
                _drive(daemon, a, conc, 2 * conc)  # warm-up
                lat = _drive(daemon, a, conc, REQUESTS_PER_LEVEL)
                p50, p99 = _percentiles(lat)
                summary[(label, conc)] = p50
                rows.append([label, conc, f"{p50:.2f}", f"{p99:.2f}",
                             daemon.app.batcher.coalesced_batches])

    # Machine-readable record (same schema as BENCH_spmd.json): one row
    # per (config, concurrency).  wall_s is the measured client-side p50
    # per request; virtual_s is the Eq. 2 prediction for one-column
    # encode work on the serial 1x1 platform, so ratio folds in queueing
    # and HTTP overhead on top of the modeled arithmetic.
    model = CostModel(platform_by_name("1x1"))
    nnz_per_col = transform.nnz / transform.n
    virtual_s = model.time_seconds(M, L, max(int(round(nnz_per_col)), 1))
    records = [
        {
            "workload": f"serve_encode_c{conc}",
            "shape": [M, N, L],
            "backend": label,
            "wall_s": p50 / 1e3,
            "virtual_s": virtual_s,
            "ratio": (p50 / 1e3) / virtual_s if virtual_s > 0
            else float("inf"),
        }
        for (label, conc), p50 in sorted(summary.items())
    ]
    (REPO_ROOT / "BENCH_serve.json").write_text(
        json.dumps(records, indent=2) + "\n")

    table = format_table(
        ["config", "clients", "p50 ms", "p99 ms", "coalesced"], rows,
        title=f"encode service latency (M={M}, L={L}, "
              f"{REQUESTS_PER_LEVEL} requests/level)")
    report("serve latency", table + "\nwrote BENCH_serve.json")

    # the acceptance criterion: batching wins at concurrency >= 16
    for conc in (16, 32):
        assert summary[("batched", conc)] < summary[("unbatched", conc)], (
            f"batched p50 {summary[('batched', conc)]:.2f} ms is not "
            f"below unbatched {summary[('unbatched', conc)]:.2f} ms "
            f"at concurrency {conc}")

"""PCA by the Power method: raw AᵀA vs. the ExD transform (Fig. 10/12).

Finds the top-5 eigenvalues of each dataset surrogate's Gram matrix
with the distributed Power method, once on the raw data and once on the
platform-tuned ``(DC)ᵀDC``, reporting simulated runtime and learning
error against the exact spectrum.

Run:  python examples/pca_power_method.py
"""

from repro.apps import eigenvalue_error, exact_gram_eigenvalues, run_pca
from repro.data import load_dataset
from repro.platform import platform_by_name
from repro.utils import format_table


def main() -> None:
    cluster = platform_by_name("2x8")
    k = 5
    rows = []
    for name in ("salina", "cancer", "lightfield"):
        a = load_dataset(name, n=768, seed=3).matrix
        exact = exact_gram_eigenvalues(a, k)
        dense = run_pca(a, k, method="dense", cluster=cluster, seed=0,
                        tol=1e-9, max_iter=300)
        ext = run_pca(a, k, method="extdict", eps=0.1, cluster=cluster,
                      seed=0, tol=1e-9, max_iter=300)
        speedup = dense.simulated_time / max(ext.simulated_time, 1e-12)
        rows.append([
            name,
            f"{dense.simulated_time * 1e3:.2f} ms",
            f"{ext.simulated_time * 1e3:.2f} ms",
            f"{speedup:.1f}x",
            f"{eigenvalue_error(ext.eigenvalues, exact):.2e}",
        ])
    print(format_table(
        ["dataset", "AtA power method", "ExtDict power method",
         "speedup", "eigenvalue error"], rows,
        title=f"Top-{k} PCA on {cluster.name} (paper Fig. 10/12 setting)"))
    print("\nThe eigenvalue error stays small at eps=0.1 while the "
          "transformed updates avoid the dense M*N product entirely.")


if __name__ == "__main__":
    main()

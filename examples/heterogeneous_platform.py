"""Platform-aware tuning on a heterogeneous cluster.

The paper positions ExtDict for "distributed or heterogeneous"
architectures (Sec. I).  This example builds a 2-node cluster where the
second node is 4x slower with half the interconnect bandwidth, shows how
the simulator's makespan tracks the straggler, and how the calibrated
R_bf (and hence the tuned dictionary) responds.

Run:  python examples/heterogeneous_platform.py
"""

import numpy as np

from repro.core import CostModel, exd_transform, run_distributed_gram, tune_dictionary_size
from repro.data import load_dataset
from repro.platform import ClusterConfig, MachineSpec, calibrate_from_spec, xeon_x5660_like
from repro.utils import format_table


def slow_node() -> MachineSpec:
    fast = xeon_x5660_like()
    return MachineSpec(
        name="xeon-slow", flop_rate=fast.flop_rate / 4,
        intra_bw=fast.intra_bw / 2, inter_bw=fast.inter_bw / 2,
        intra_latency=fast.intra_latency * 2,
        inter_latency=fast.inter_latency * 2,
        energy_per_flop=fast.energy_per_flop * 2,
        energy_per_word_intra=fast.energy_per_word_intra,
        energy_per_word_inter=fast.energy_per_word_inter)


def main() -> None:
    fast = xeon_x5660_like()
    homogeneous = ClusterConfig(machine=fast, nodes=2, cores_per_node=4)
    heterogeneous = ClusterConfig(machine=fast, nodes=2, cores_per_node=4,
                                  node_machines=(fast, slow_node()))

    a = load_dataset("salina", n=2048, seed=3).matrix
    transform, _ = exd_transform(a, 64, 0.1, seed=0)
    x = np.random.default_rng(0).standard_normal(a.shape[1])

    rows = []
    for cluster in (homogeneous, heterogeneous):
        rbf = calibrate_from_spec(cluster)
        _, res = run_distributed_gram(transform, x, cluster, iterations=4)
        tuning = tune_dictionary_size(a, 0.1, CostModel(cluster), seed=0,
                                      subset_fraction=0.15)
        rows.append([cluster.name, f"{rbf.time:.1f}",
                     f"{res.simulated_time / 4 * 1e6:.1f} us",
                     tuning.best_size])
    print(format_table(
        ["cluster", "R_bf (flops/word)", "per Gram update",
         "tuned L*"],
        rows, title="Same data, same eps - heterogeneous straggler "
                    "changes the platform profile"))
    print("\nThe slow node bounds the makespan (everyone waits at the "
          "reduce), and the\ncalibration sees a slower bottleneck link, "
          "shifting the cost balance that\npicks L*.")


if __name__ == "__main__":
    main()

"""Platform-aware tuning of the extensible dictionary (Sec. VII).

The same dataset and the same error budget yield *different* optimal
dictionary sizes on different platforms — the core claim that
distinguishes ExtDict from error-only methods like RankMap.  This
script sweeps L, shows the α(L) trade-off, and reports each paper
platform's tuned choice with its predicted Eq. 2 cost.

Run:  python examples/platform_tuning.py
"""

from repro.core import CostModel, alpha_curve, tune_dictionary_size
from repro.data import load_dataset
from repro.platform import paper_platforms
from repro.utils import format_table


def main() -> None:
    a = load_dataset("salina", n=2048, seed=3).matrix
    eps = 0.1
    sizes = [32, 64, 128, 256, 512]

    print("alpha(L): average non-zeros per coefficient column "
          f"(eps={eps})")
    curve = alpha_curve(a, sizes, eps, trials=2, seed=0)
    rows = [[est.size, f"{est.mean:.2f}", f"{est.std:.3f}",
             "yes" if est.feasible else "no"] for est in curve]
    print(format_table(["L", "alpha", "std over trials", "feasible"],
                       rows, title="Dictionary redundancy vs. sparsity"))

    print("\nPer-platform tuning (objective = runtime, Eq. 2):")
    rows = []
    for cluster in paper_platforms():
        model = CostModel(cluster)
        tuning = tune_dictionary_size(a, eps, model, seed=0,
                                      candidates=sizes,
                                      subset_fraction=0.2)
        rows.append([cluster.name, cluster.size, tuning.best_size,
                     f"{tuning.cost_of(tuning.best_size):.3e}",
                     f"{model.rbf.time:.1f}"])
    print(format_table(
        ["platform", "P", "tuned L*", "predicted cost (flop-equiv)",
         "R_bf (flops/word)"], rows))
    print("\nSingle-core platforms tolerate large dictionaries (no "
          "communication term);\nmulti-node platforms pay R_bf per word "
          "until L reaches M, pushing L* down.")


if __name__ == "__main__":
    main()

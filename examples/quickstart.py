"""Quickstart: transform a dense dataset with ExD and run learning on it.

Walks the whole ExtDict flow of paper Fig. 1 on a synthetic
union-of-subspaces dataset:

1. generate dense data whose columns live on a union of subspaces;
2. pick a target platform and calibrate its cost model;
3. let the framework tune the dictionary size L and build ``A ≈ DC``;
4. run the Power method on the transformed Gram matrix, distributed
   over the emulated cluster, and compare with the exact spectrum.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ExtDict
from repro.data import union_of_subspaces
from repro.platform import platform_by_name
from repro.utils import format_table


def main() -> None:
    # 1. Dense data, hidden low-dimensional structure.
    a, model = union_of_subspaces(m=96, n=1200, n_subspaces=4, dim=3,
                                  noise=0.01, seed=7)
    print(f"data: {a.shape[0]}x{a.shape[1]}, "
          f"{model.n_subspaces} subspaces of dims {model.dims}")

    # 2. Target platform: 2 nodes x 8 cores of a Xeon-class machine.
    cluster = platform_by_name("2x8")
    print(f"platform: {cluster.describe()}")

    # 3. Fit: tunes L against Eq. 2 on this platform, then transforms.
    ext = ExtDict(eps=0.05, cluster=cluster, seed=0,
                  subset_fraction=0.25).fit(a)
    t = ext.transform_
    report = ext.preprocessing_report()
    print(f"tuned dictionary size L* = {t.l}")
    print(f"coefficient density alpha = {t.alpha:.2f} nnz/column "
          f"(data had {a.shape[0]} nnz/column)")
    print(f"transformation error = {t.transformation_error(a):.4f} "
          f"(budget eps = {t.eps})")
    print(f"preprocessing: tuning {report.tuning_seconds:.2f}s + "
          f"transform {report.transform_seconds:.2f}s")

    # 4. Learning: top-3 PCA through the transformed Gram matrix,
    #    executed on the emulated 16-rank cluster.
    x = np.random.default_rng(0).standard_normal(a.shape[1])
    y, spmd = ext.gram_apply_distributed(x)
    print(f"\none distributed Gram update: simulated "
          f"{spmd.simulated_time * 1e6:.1f} us on {cluster.name}, "
          f"{spmd.traffic.total_payload_words('reduce', 'bcast')} words "
          f"on the wire")

    values, _, _ = ext.power_method(3, seed=0)
    exact = np.linalg.svd(a, compute_uv=False)[:3] ** 2
    rows = [[i + 1, exact[i], values[i], abs(values[i] - exact[i]) / exact[i]]
            for i in range(3)]
    print()
    print(format_table(["#", "exact eigenvalue", "ExtDict estimate",
                        "rel. error"], rows,
                       title="Power method on (DC)'DC"))


if __name__ == "__main__":
    main()

"""Out-of-core ExD: column store + streaming encoder + resume.

The matrix lives on disk in a chunked column store; the transform
streams over it in fixed-width blocks under a memory budget (Eq. 4),
checkpointing each block so a killed run resumes bit-identically.
The results match the in-memory path bit for bit.

Run:  python examples/out_of_core.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import exd_transform
from repro.data import synthesize_to_store
from repro.store import ColumnStore, StreamingEncoder, plan_block_width


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # 1. Ingest a dataset surrogate straight into a store.
        store = synthesize_to_store("salina", root / "a.store",
                                    n=1280, seed=3, chunk_width=128)
        m, n = store.shape
        print(f"store: {m}x{n} in {store.n_chunks} chunks "
              f"({store.nbytes / 2**20:.1f} MiB on disk), "
              f"attrs={store.attrs['dataset']!r}")

        # 2. Plan a block width from a byte budget (Eq. 4 shapes).
        budget = 4 << 20
        width = plan_block_width(m, 48, budget, n=n)
        print(f"4 MiB budget -> blocks of {width} columns")

        # 3. Stream the transform with checkpoints.
        enc = StreamingEncoder(store, 48, 0.1, seed=1,
                               memory_budget_bytes=budget,
                               checkpoint_dir=root / "ck")
        t, stats, report = enc.run()
        print(f"fresh run: encoded {report.blocks_encoded} blocks, "
              f"read {report.bytes_read / 2**20:.1f} MiB, "
              f"wrote {report.checkpoints_written} checkpoints")
        print(f"D {t.dictionary.atoms.shape}, nnz(C)={t.coefficients.nnz}, "
              f"alpha={t.alpha:.2f}, converged={stats.all_converged}")

        # 4. Simulate a crash: throw away one encoded block, resume.
        spills = sorted((root / "ck" / "blocks").iterdir())
        spills[1].unlink()
        enc2 = StreamingEncoder(store, 48, 0.1, seed=1,
                                checkpoint_dir=root / "ck")
        t2, _, report2 = enc2.run(resume=True)
        print(f"resume: reused {report2.blocks_reused} blocks, "
              f"re-encoded {report2.blocks_encoded}, "
              f"read {report2.bytes_read / 2**20:.1f} MiB")

        # 5. Bit-identity: streamed == resumed == fully in-memory.
        t_mem, _ = exd_transform(store.as_array(), 48, 0.1, seed=1)
        same = (np.array_equal(t.dictionary.atoms, t_mem.dictionary.atoms)
                and np.array_equal(t.coefficients.data,
                                   t_mem.coefficients.data)
                and np.array_equal(t.coefficients.data,
                                   t2.coefficients.data))
        print(f"streamed / resumed / in-memory bit-identical: {same}")

        # 6. Evolving data: append columns to the store on disk.
        rng = np.random.default_rng(9)
        extra = store.read_columns(rng.integers(0, n, 64))
        store.append_columns(extra + 0.01 * rng.standard_normal(extra.shape))
        print(f"after append: store is {store.shape[0]}x{store.shape[1]} "
              f"in {store.n_chunks} chunks")


if __name__ == "__main__":
    main()

"""Image denoising with LASSO: ExtDict gradient descent vs. SGD.

Reproduces the paper's first application (Sec. VIII-A) end to end: a
noisy image is reconstructed as a sparse combination of a clean-atom
corpus by solving ``min_x ||Ax - y||^2 + lambda*||x||_1``, with the
Gram updates running on an emulated multi-node platform.

Run:  python examples/image_denoising.py
"""

from repro.apps import make_denoising_setup, run_denoising
from repro.data import psnr
from repro.platform import platform_by_name
from repro.utils import format_table


def main() -> None:
    setup = make_denoising_setup(image_size=24, n_atoms=384, n_bases=12,
                                 snr_db=20.0, seed=0)
    base_psnr = psnr(setup.y_clean, setup.y_noisy)
    print(f"corpus: {setup.a.shape[0]} pixels x {setup.a.shape[1]} atoms")
    print(f"noisy input PSNR: {base_psnr:.2f} dB (SNR 20 dB)")

    cluster = platform_by_name("1x4")
    rows = []
    for method in ("extdict", "dense", "sgd"):
        res = run_denoising(setup, method=method, eps=0.01,
                            cluster=cluster, lam=1e-3, lr=0.2,
                            max_iter=250, tol=1e-6, seed=0)
        rows.append([method, f"{res.psnr_db:.2f} dB", res.iterations,
                     f"{res.simulated_time * 1e3:.3f} ms",
                     "yes" if res.converged else "no"])
    print()
    print(format_table(
        ["method", "output PSNR", "iterations", "simulated time",
         "converged"], rows,
        title=f"Denoising on {cluster.name} (paper Fig. 9a setting)"))
    print("\nExtDict runs provably-converging gradient descent on the "
          "transformed Gram matrix;\nSGD touches only a 64-row batch per "
          "step, so each iteration is cheap but many more are needed.")


if __name__ == "__main__":
    main()

"""Subspace clustering from ExD codes (the Sec. V-B signal, closed-loop).

The sparsity guarantee behind ExtDict comes from sparse subspace
clustering: a column's OMP code over a union-of-subspaces dictionary
picks atoms from the column's own subspace.  This example turns that
around — the code matrix C, produced as a by-product of the transform,
clusters the data:

1. generate columns from 3 hidden subspaces;
2. ExD-transform;
3. affinity |C|'|C|  ->  spectral embedding (Power method)  ->  k-means;
4. score against the generator's ground-truth labels.

Run:  python examples/subspace_clustering.py
"""

import numpy as np

from repro.apps import clustering_accuracy, code_affinity, subspace_cluster
from repro.data import union_of_subspaces
from repro.utils import format_table


def main() -> None:
    a, model = union_of_subspaces(m=48, n=300, n_subspaces=3, dim=3,
                                  noise=0.02, seed=5)
    print(f"data: {a.shape[0]}x{a.shape[1]}, 3 hidden subspaces "
          f"(dims {model.dims}), 2% noise")

    result = subspace_cluster(a, 3, eps=0.05, seed=0)
    acc = clustering_accuracy(result.labels, model.labels)
    t = result.transform
    print(f"ExD transform: L={t.l}, alpha={t.alpha:.2f} nnz/column")
    print(f"clustering accuracy vs ground truth: {acc:.3f}")

    # Show the affinity structure the codes expose.
    w = code_affinity(t)
    same = model.labels[:, None] == model.labels[None, :]
    np.fill_diagonal(same, False)
    other = ~same & ~np.eye(a.shape[1], dtype=bool)
    rows = [
        ["same subspace", f"{w[same].mean():.4f}"],
        ["different subspace", f"{w[other].mean():.4f}"],
    ]
    print()
    print(format_table(["column pair", "mean code affinity"], rows,
                       title="Why it works: codes share atoms only "
                             "within a subspace"))


if __name__ == "__main__":
    main()

"""Light-field super-resolution (paper Sec. VIII-A).

A 5x5 camera array dataset is built from synthetic scenes; the
observation comes from the central 3x3 cameras only (576 of 1600 rows).
LASSO over the row-restricted dataset finds a sparse code whose
full-row reconstruction recovers all 25 views.

Run:  python examples/super_resolution.py
"""

from repro.apps import make_super_resolution_setup, run_super_resolution
from repro.platform import platform_by_name
from repro.utils import format_table


def main() -> None:
    setup = make_super_resolution_setup(cams=5, cams_sub=3, patch=8,
                                        image_size=40, n_images=3,
                                        stride=4, seed=0)
    print(f"light-field dataset: {setup.a_full.shape[0]} rows "
          f"(5x5 cameras x 8x8 patches) x {setup.a_full.shape[1]} columns")
    print(f"observed rows: {setup.rows.size} (central 3x3 cameras)")

    cluster = platform_by_name("1x4")
    rows = []
    for method in ("extdict", "sgd"):
        res = run_super_resolution(setup, method=method, eps=0.01,
                                   cluster=cluster, lam=1e-3, lr=0.2,
                                   max_iter=300, tol=1e-6, seed=0)
        rows.append([method, f"{res.psnr_db:.2f} dB",
                     f"{res.reconstruction_error:.4f}", res.iterations,
                     f"{res.simulated_time * 1e3:.3f} ms"])
    print()
    print(format_table(
        ["method", "full-stack PSNR", "rel. error", "iterations",
         "simulated time"], rows,
        title=f"Super-resolution on {cluster.name} (paper Fig. 9b setting)"))
    print("\nPSNR is scored on the full 1600-row stack, i.e. on the 16 "
          "camera views the solver never observed.")


if __name__ == "__main__":
    main()

"""Visualising Algorithm 2 on the simulated platform.

Runs a few distributed Gram updates with tracing enabled and renders
the per-rank timeline: compute bars, the reduce/broadcast
synchronisation points, and how the balance flips between a
single-node and a multi-node platform.

Run:  python examples/execution_timeline.py
"""

import numpy as np

from repro.core import exd_transform
from repro.core.gram import gram_update_program
from repro.data import load_dataset
from repro.mpi.runtime import run_spmd
from repro.platform import platform_by_name
from repro.utils import render_timeline, trace_summary


def main() -> None:
    a = load_dataset("salina", n=2048, seed=3).matrix
    transform, _ = exd_transform(a, 128, 0.1, seed=0)
    x = np.random.default_rng(0).standard_normal(a.shape[1])

    for name in ("1x4", "2x8"):
        cluster = platform_by_name(name)
        res = run_spmd(0, gram_update_program, transform.dictionary.atoms,
                       transform.coefficients, x, 2, cluster=cluster,
                       trace=True)
        print(f"=== {cluster.describe()} — 2 Gram updates, "
              f"{res.simulated_time * 1e6:.1f} us simulated ===")
        print(render_timeline(res.trace, cluster.size, width=68))
        totals = trace_summary(res.trace)
        busy = ", ".join(f"{op}: {t * 1e6:.1f}us"
                         for op, t in sorted(totals.items()))
        print(f"time by op: {busy}")
        print()
    print("On one node the bars are mostly compute (#); across nodes the "
          "reduce/broadcast\nglyphs widen — the communication share the "
          "cost model's min(M, L)*R_bf term prices.")


if __name__ == "__main__":
    main()

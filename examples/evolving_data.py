"""Evolving datasets (paper Sec. V-E, Fig. 3).

Shows both update paths: new columns representable by the existing
dictionary are appended with a plain OMP solve; drastically different
content triggers dictionary growth with the zero-padded block update —
without ever re-transforming the original data.

Run:  python examples/evolving_data.py
"""

import numpy as np

from repro.core import exd_transform, extend_transform
from repro.data import union_of_subspaces


def main() -> None:
    rng = np.random.default_rng(0)
    a, model = union_of_subspaces(m=48, n=400, n_subspaces=3, dim=3,
                                  noise=0.0, seed=1)
    transform, _ = exd_transform(a, 80, 0.05, seed=0)
    print(f"initial transform: L={transform.l}, N={transform.n}, "
          f"alpha={transform.alpha:.2f}")

    # Case 1: more data from the SAME subspaces — D already covers it.
    familiar = np.stack(
        [model.bases[i % 3] @ rng.standard_normal(3) for i in range(60)],
        axis=1)
    res = extend_transform(transform, familiar, seed=1)
    print(f"\nappended 60 familiar columns: dictionary grew: "
          f"{res.dictionary_grew} (L still {res.transform.l})")
    combined = np.concatenate([a, familiar], axis=1)
    print(f"error on combined data: "
          f"{res.transform.transformation_error(combined):.4f} <= 0.05")

    # Case 2: drastically different images expand the signal space.
    novel, _ = union_of_subspaces(m=48, n=40, n_subspaces=1, dim=4,
                                  noise=0.0, seed=99)
    res2 = extend_transform(res.transform, novel, seed=2)
    print(f"\nappended 40 novel columns: dictionary grew: "
          f"{res2.dictionary_grew} "
          f"(L {res.transform.l} -> {res2.transform.l})")
    everything = np.concatenate([combined, novel], axis=1)
    print(f"error on full evolved data: "
          f"{res2.transform.transformation_error(everything):.4f} <= 0.05")
    c = res2.transform.coefficients.to_dense()
    old_block = c[res.transform.l:, :combined.shape[1]]
    print(f"zero-padding check: old columns use new atoms "
          f"{int(np.count_nonzero(old_block))} times (expected 0)")


if __name__ == "__main__":
    main()

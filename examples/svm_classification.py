"""LS-SVM classification through the transformed Gram matrix.

The paper lists SVM solvers among the Gram-iterative algorithms ExtDict
serves (Sec. II-A).  The least-squares SVM trains by solving
``(AᵀA + I/γ) β = y`` with conjugate gradients — one Gram update per
iteration — so swapping in ``(DC)ᵀDC`` accelerates training the same
way it accelerates LASSO and PCA.

Run:  python examples/svm_classification.py
"""

import numpy as np

from repro.apps import train_ls_svm, train_ls_svm_transformed
from repro.core import exd_transform
from repro.data import union_of_subspaces
from repro.utils import Timer, format_table


def subspace_labelled_data(n, seed):
    """Dense columns from two hidden *affine* subspaces; the label is
    the subspace.  The offsets make the classes linearly separable
    (linear subspaces through the origin are sign-symmetric and are
    not), while the low-dimensional structure ExD exploits remains."""
    a, model = union_of_subspaces(m=48, n=n, n_subspaces=2, dim=3,
                                  noise=0.02, seed=seed)
    labels = np.where(model.labels == 0, 1.0, -1.0)
    mu = np.random.default_rng(12345).standard_normal(48)
    mu /= np.linalg.norm(mu)
    a = a + 2.0 * np.outer(mu, labels)
    return a, labels


def main() -> None:
    a, labels = subspace_labelled_data(600, seed=2)
    a_test, y_test = subspace_labelled_data(300, seed=2)
    print(f"training: {a.shape[0]} features x {a.shape[1]} samples "
          f"(columns), labels = hidden subspace membership")

    t_exact = Timer()
    with t_exact:
        exact = train_ls_svm(a, labels, gamma=50.0)

    transform, _ = exd_transform(a, 96, 0.05, seed=0)
    t_approx = Timer()
    with t_approx:
        approx = train_ls_svm_transformed(transform, labels, gamma=50.0)

    rows = []
    for name, model, timer in (("exact AtA", exact, t_exact),
                               ("ExtDict (DC)'DC", approx, t_approx)):
        train_acc = float(np.mean(model.predict(a) == labels))
        test_acc = float(np.mean(model.predict(a_test) == y_test))
        rows.append([name, f"{train_acc:.3f}", f"{test_acc:.3f}",
                     model.meta["cg_iterations"],
                     f"{timer.elapsed * 1e3:.1f} ms"])
    print()
    print(format_table(
        ["Gram backend", "train acc", "test acc", "CG iterations",
         "train wall time"],
        rows, title="LS-SVM via conjugate gradients on the Gram matrix"))
    print(f"\ntransform: L={transform.l}, alpha={transform.alpha:.2f} — "
          f"each CG iteration costs nnz(C)+M*L multiplies instead of "
          f"2*M*N.")


if __name__ == "__main__":
    main()

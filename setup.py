"""Setuptools shim.

Kept so that ``pip install -e .`` works on hosts without the ``wheel``
package (pip falls back to the legacy ``setup.py develop`` path).  All
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

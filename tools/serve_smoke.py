"""End-to-end smoke test for the encode service (CI job ``serve-smoke``).

Run as ``PYTHONPATH=src python tools/serve_smoke.py``.  The script

1. fits an ExD transform on a dataset surrogate and saves it,
2. starts the real HTTP daemon (``ServeApp`` on a background event
   loop) with the transform loaded,
3. fires 64 concurrent single-column encode requests and checks every
   answer bit-for-bit against one serial ``batch_omp_matrix`` call,
4. checks the run report at ``GET /v1/metrics`` proves at least one
   coalesced batch of size > 1 actually happened,
5. loads a second dictionary generation and hot-swaps the default
   while encode traffic is in flight, then verifies post-swap answers
   come from the new generation — again bit-identical to serial.

Exits non-zero on the first failed check.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

M, N, L, EPS = 48, 256, 32, 0.15
CONCURRENCY = 64


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"serve smoke FAILED: {message}")


class Daemon:
    def __init__(self, app):
        self.app = app
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.addr = self.loop.run_until_complete(self.app.start())
        self._ready.set()
        self.loop.run_forever()

    def start(self):
        self._thread.start()
        check(self._ready.wait(15), "daemon did not start in 15 s")
        return self.addr

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.app.stop(), self.loop).result(15)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(15)
        self.loop.close()


def request(addr, method, path, body=None, timeout=60):
    conn = http.client.HTTPConnection(*addr, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def reference_codes(d, a, eps):
    """Per-column ``(support, coefficients)`` from one serial call."""
    from repro.linalg.omp import batch_omp_matrix

    c, _ = batch_omp_matrix(d, a, eps)
    out = []
    for j in range(a.shape[1]):
        lo, hi = int(c.indptr[j]), int(c.indptr[j + 1])
        out.append(([int(i) for i in c.indices[lo:hi]],
                    np.asarray(c.data[lo:hi])))
    return out


def check_bit_identity(addr, a, refs, *, generation=None, label=""):
    def encode(j):
        body = {"column": [float(v) for v in a[:, j]]}
        if generation is not None:
            body["generation"] = generation
        status, payload = request(addr, "POST", "/v1/encode", body)
        check(status == 200, f"{label} encode {j} -> HTTP {status}: "
                             f"{payload}")
        return j, payload

    with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
        results = list(pool.map(encode, range(a.shape[1])))

    max_batch = 0
    for j, payload in results:
        support, coef = refs[j]
        check(payload["support"] == support,
              f"{label} column {j}: support differs from serial encode")
        check(np.array_equal(np.asarray(payload["coefficients"]), coef),
              f"{label} column {j}: coefficients differ from serial "
              f"encode (not bit-identical)")
        max_batch = max(max_batch, payload["batch_size"])
    return max_batch


def main() -> int:
    from repro.core import exd_transform, save_transform
    from repro.data import union_of_subspaces
    from repro.serve import ServeApp

    a, _ = union_of_subspaces(M, N, n_subspaces=4, dim=4, noise=0.01,
                              seed=17)
    t1, _ = exd_transform(a, size=L, eps=EPS, seed=1)
    t2, _ = exd_transform(a, size=L + 8, eps=EPS, seed=2)

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        gen2_path = Path(tmp) / "gen2.npz"
        save_transform(t2, gen2_path)

        app = ServeApp(max_batch=CONCURRENCY, max_wait_ms=25.0,
                       max_queue=1024, timeout_ms=60000.0)
        app.registry.add_transform("default", t1)
        daemon = Daemon(app)
        addr = daemon.start()
        try:
            status, body = request(addr, "GET", "/healthz")
            check(status == 200 and body["status"] == "ok",
                  f"healthz answered {status}: {body}")

            cols = a[:, :CONCURRENCY]
            refs1 = reference_codes(t1.dictionary.atoms, cols, EPS)
            max_batch = check_bit_identity(addr, cols, refs1,
                                           label="gen1")
            check(max_batch > 1,
                  f"no coalescing: largest batch was {max_batch}")
            print(f"64 concurrent encodes bit-identical to serial "
                  f"(largest coalesced batch: {max_batch})")

            status, report = request(addr, "GET", "/v1/metrics")
            check(status == 200, f"metrics answered {status}")
            counters = report["metrics"]["counters"]
            check(counters.get("serve.coalesced_batches", 0) >= 1,
                  "run report shows no coalesced batch")
            hist = report["metrics"]["histograms"].get("serve.batch_size")
            check(hist is not None and hist["max"] > 1,
                  "run report batch-size histogram shows no batch > 1")
            print(f"run report: {counters['serve.batches']:.0f} batches, "
                  f"{counters['serve.coalesced_batches']:.0f} coalesced, "
                  f"largest {hist['max']:.0f}")

            # hot-swap mid-traffic
            stop = threading.Event()
            failures: list = []

            def hammer():
                j = 0
                while not stop.is_set():
                    status, payload = request(
                        addr, "POST", "/v1/encode",
                        {"column": [float(v) for v in a[:, j % N]]})
                    if status != 200:
                        failures.append((status, payload))
                        return
                    j += 1

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for th in threads:
                th.start()
            try:
                time.sleep(0.2)
                status, body = request(
                    addr, "POST", "/v1/dictionaries",
                    {"path": str(gen2_path), "set_default": False})
                check(status == 200 and body["generation"] == 2,
                      f"loading generation 2 failed: {status} {body}")
                status, body = request(
                    addr, "POST", "/v1/dictionaries/default",
                    {"generation": 2})
                check(status == 200, f"hot-swap failed: {status} {body}")
                time.sleep(0.2)
            finally:
                stop.set()
                for th in threads:
                    th.join(15)
            check(not failures,
                  f"requests failed during hot-swap: {failures[:3]}")

            refs2 = reference_codes(t2.dictionary.atoms, cols, EPS)
            check_bit_identity(addr, cols, refs2, label="gen2")
            status, payload = request(
                addr, "POST", "/v1/encode",
                {"column": [float(v) for v in a[:, 0]]})
            check(payload["generation"] == 2,
                  "post-swap traffic still answers from generation 1")
            print("hot-swap mid-traffic OK; post-swap encodes "
                  "bit-identical to serial against generation 2")
        finally:
            daemon.stop()

    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

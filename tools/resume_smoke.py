"""Kill-and-resume smoke test for the streaming encoder.

Run as ``PYTHONPATH=src python tools/resume_smoke.py``.  The script

1. ingests a dataset surrogate into a column store,
2. launches a child process that streams the transform with
   checkpoints (the child slows each block down so the kill window is
   wide),
3. SIGKILLs the child once some — but not all — blocks are
   checkpointed,
4. resumes in this process and checks the result is bit-identical to
   an uninterrupted in-memory run.

Uses explicit ``if``/``raise`` checks so it also works under
``python -O``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SIZE = 48
EPS = 0.1
SEED = 1
N_COLS = 2048
BLOCK_WIDTH = 256  # -> 8 blocks


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"resume smoke FAILED: {message}")


def child(store_dir: str, ck_dir: str) -> int:
    """Stream with checkpoints, ~0.25 s per block so the parent can
    catch us mid-run."""
    import repro.store.streaming as streaming
    from repro.store import ColumnStore, StreamingEncoder

    real = streaming.batch_omp_matrix

    def slow(*args, **kwargs):
        time.sleep(0.25)
        return real(*args, **kwargs)

    streaming.batch_omp_matrix = slow
    store = ColumnStore.open(store_dir)
    enc = StreamingEncoder(store, SIZE, EPS, seed=SEED,
                           block_width=BLOCK_WIDTH, checkpoint_dir=ck_dir)
    enc.run()
    return 0


def completed_blocks(ck_dir: Path) -> int:
    path = ck_dir / "checkpoint.json"
    if not path.exists():
        return 0
    try:
        return len(json.loads(path.read_text()).get("blocks", []))
    except (json.JSONDecodeError, OSError):
        return 0  # mid-replace; try again


def main() -> int:
    import numpy as np

    from repro.core import exd_transform
    from repro.data import synthesize_to_store
    from repro.store import ColumnStore, StreamingEncoder

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        store_dir, ck_dir = root / "a.store", root / "ck"
        store = synthesize_to_store("salina", store_dir, n=N_COLS, seed=3,
                                    chunk_width=256)
        n_blocks = -(-N_COLS // BLOCK_WIDTH)

        proc = subprocess.Popen(
            [sys.executable, os.path.abspath(__file__), "--child",
             str(store_dir), str(ck_dir)],
            env={**os.environ,
                 "PYTHONPATH": str(Path(__file__).parent.parent / "src")})
        try:
            deadline = time.monotonic() + 120
            while True:
                check(time.monotonic() < deadline,
                      "child never reached 2 completed blocks")
                check(proc.poll() is None,
                      f"child exited early (rc={proc.returncode}) before "
                      f"we could kill it")
                done = completed_blocks(ck_dir)
                if 2 <= done < n_blocks:
                    break
                time.sleep(0.02)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()

        killed_at = completed_blocks(ck_dir)
        check(0 < killed_at < n_blocks,
              f"kill landed outside the encode ({killed_at}/{n_blocks} "
              f"blocks done)")
        print(f"killed child after {killed_at}/{n_blocks} blocks")

        enc = StreamingEncoder(ColumnStore.open(store_dir), SIZE, EPS,
                               seed=SEED, block_width=BLOCK_WIDTH,
                               checkpoint_dir=ck_dir)
        t, stats, report = enc.run(resume=True)
        check(report.resumed, "resume did not pick up the checkpoint")
        check(report.blocks_reused >= killed_at,
              f"resume reused {report.blocks_reused} blocks, expected "
              f">= {killed_at}")
        print(f"resumed: reused {report.blocks_reused}, "
              f"re-encoded {report.blocks_encoded}")

        ref, ref_stats = exd_transform(store.as_array(), SIZE, EPS,
                                       seed=SEED)
        for name, got, want in [
            ("atoms", t.dictionary.atoms, ref.dictionary.atoms),
            ("atom indices", t.dictionary.indices, ref.dictionary.indices),
            ("C data", t.coefficients.data, ref.coefficients.data),
            ("C indices", t.coefficients.indices, ref.coefficients.indices),
            ("C indptr", t.coefficients.indptr, ref.coefficients.indptr),
        ]:
            check(np.array_equal(got, want),
                  f"{name} differ between resumed and in-memory runs")
        check(stats.flops == ref_stats.flops,
              f"flops differ: {stats.flops} != {ref_stats.flops}")
        print("resumed run is bit-identical to the in-memory transform")
    print("resume smoke OK")
    return 0


if __name__ == "__main__":
    if len(sys.argv) == 4 and sys.argv[1] == "--child":
        sys.exit(child(sys.argv[2], sys.argv[3]))
    sys.exit(main())

"""Smoke test for ``python -O`` (assert statements stripped).

Run as ``PYTHONPATH=src python -O tools/optimized_smoke.py``.  The
pytest suite is useless under ``-O`` — its assertions vanish — so this
script uses explicit ``if``/``raise`` checks only.  It exists because
of a real bug: ``Timer.__exit__`` once guarded misuse with ``assert``,
which silently disappeared in optimised mode.
"""

from __future__ import annotations

import sys


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"optimized smoke FAILED: {message}")


def main() -> int:
    check(not __debug__,
          "run this script with python -O (asserts must be stripped)")

    # Timer misuse must raise real exceptions, not asserts.
    from repro.utils.timer import Timer
    t = Timer()
    try:
        t.__exit__(None, None, None)
    except RuntimeError:
        pass
    else:
        check(False, "Timer.__exit__ without __enter__ did not raise")
    with t:
        try:
            t.__enter__()
        except RuntimeError:
            pass
        else:
            check(False, "nested Timer.__enter__ did not raise")
    check(not t.running, "timer still running after with-block")

    # A tiny end-to-end transform plus an observability report.
    import numpy as np

    from repro import observability as obs
    from repro.core import exd_transform

    rng = np.random.default_rng(0)
    a = rng.standard_normal((16, 64))
    with obs.observed():
        transform, stats = exd_transform(a, 12, 0.3, seed=0)
        report = obs.collect_report(command="optimized-smoke")
    check(transform.shape == (16, 64), "bad transform shape")
    check(stats.columns == 64, "bad encoded column count")
    counters = report.metrics["counters"]
    check(counters.get("omp.columns_encoded") == 64,
          "omp.columns_encoded counter missing or wrong")
    check("exd.transform" in report.spans, "exd.transform span missing")
    check(report.to_dict()["schema"] == obs.SCHEMA, "bad report schema")

    print("optimized smoke OK (python -O, asserts stripped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Smoke test: ``REPRO_OMP_BACKEND=auto`` without numba installed.

Run as ``REPRO_OMP_BACKEND=auto PYTHONPATH=src python -W error
tools/kernel_auto_smoke.py`` in an environment with **only**
numpy/scipy.  The contract under test (``docs/kernels.md``): ``auto``
must resolve to the numpy reference when no compiled backend is
importable — silently.  ``-W error`` turns any stray warning on the
fallback path into a failure, which is why this script must stay
importable and runnable without pytest.
"""

from __future__ import annotations

import os
import sys


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"kernel auto smoke FAILED: {message}")


def main() -> int:
    import numpy as np

    from repro.linalg import batch_omp_matrix, resolve_backend
    from repro.linalg.kernels import available_backends

    if "numba" in available_backends():
        print("kernel auto smoke SKIPPED: numba is installed, the "
              "fallback path cannot be exercised here")
        return 0

    check(os.environ.get("REPRO_OMP_BACKEND", "auto") == "auto",
          "run with REPRO_OMP_BACKEND=auto (or unset)")

    resolved = resolve_backend("auto")
    check(resolved.name == "numpy",
          f"auto resolved to {resolved.name!r}, expected 'numpy'")
    check(resolve_backend().name == "numpy"
          if os.environ.get("REPRO_OMP_BACKEND") == "auto" else True,
          "default resolution under REPRO_OMP_BACKEND=auto was not numpy")

    # A small encode through the degraded default must be bit-identical
    # to an explicit backend="numpy" call.
    rng = np.random.default_rng(0)
    d = rng.standard_normal((24, 16))
    d /= np.linalg.norm(d, axis=0, keepdims=True)
    c = np.zeros((16, 32))
    for j in range(32):
        support = rng.choice(16, size=3, replace=False)
        c[support, j] = rng.standard_normal(3)
    a = d @ c

    c_auto, s_auto = batch_omp_matrix(d, a, eps=0.05, backend="auto")
    c_ref, s_ref = batch_omp_matrix(d, a, eps=0.05, backend="numpy")
    check(np.array_equal(c_auto.indptr, c_ref.indptr)
          and np.array_equal(c_auto.indices, c_ref.indices)
          and np.array_equal(c_auto.data, c_ref.data),
          "auto-fallback encode is not bit-identical to backend='numpy'")
    check(s_auto.total_iterations == s_ref.total_iterations,
          "iteration counts diverged between auto and numpy")
    check(s_ref.converged_columns == s_ref.columns,
          "reference encode did not converge on exact sparse data")

    print("kernel auto smoke OK: auto -> numpy, encode bit-identical "
          f"({s_ref.columns} columns, nnz={c_ref.nnz})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

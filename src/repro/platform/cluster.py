"""Cluster topology: ``nodes × cores_per_node`` over one machine spec.

Ranks are laid out node-major (rank ``r`` lives on node ``r // cores``),
matching how ``mpiexec`` fills nodes and how the paper's 2×8 / 8×8
configurations are described.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlatformError
from repro.platform.machine import MachineSpec


@dataclass(frozen=True)
class ClusterConfig:
    """A cluster of ``nodes`` nodes × ``cores_per_node`` cores.

    Homogeneous by default (every node runs ``machine``); pass
    ``node_machines`` — one :class:`MachineSpec` per node — for the
    heterogeneous platforms the paper targets alongside distributed
    ones.  Per-rank compute rates come from the rank's own node; link
    parameters between two ranks are bottlenecked by the slower
    endpoint.
    """

    machine: MachineSpec
    nodes: int
    cores_per_node: int
    name: str = field(default="")
    node_machines: tuple = field(default=())

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.cores_per_node < 1:
            raise PlatformError(
                f"nodes and cores_per_node must be >= 1, got "
                f"{self.nodes}x{self.cores_per_node}")
        if self.node_machines:
            machines = tuple(self.node_machines)
            if len(machines) != self.nodes:
                raise PlatformError(
                    f"node_machines must have one entry per node "
                    f"({self.nodes}), got {len(machines)}")
            if not all(isinstance(m, MachineSpec) for m in machines):
                raise PlatformError(
                    "node_machines entries must be MachineSpec instances")
            object.__setattr__(self, "node_machines", machines)
        if not self.name:
            suffix = "-het" if self.node_machines else ""
            object.__setattr__(
                self, "name",
                f"{self.nodes}x{self.cores_per_node}{suffix}")

    @property
    def heterogeneous(self) -> bool:
        """Whether per-node machine specs were supplied."""
        return bool(self.node_machines)

    def machine_of(self, rank: int) -> MachineSpec:
        """The machine spec of the node hosting ``rank``."""
        node = self.node_of(rank)
        if self.node_machines:
            return self.node_machines[node]
        return self.machine

    def slowest_machine(self) -> MachineSpec:
        """The lowest-FLOP-rate machine in the cluster (for calibration)."""
        if not self.node_machines:
            return self.machine
        return min(self.node_machines, key=lambda m: m.flop_rate)

    @property
    def size(self) -> int:
        """Total processor (rank) count P."""
        return self.nodes * self.cores_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        if not 0 <= rank < self.size:
            raise PlatformError(f"rank {rank} out of range [0, {self.size})")
        return rank // self.cores_per_node

    def is_inter_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether a message between the two ranks crosses the interconnect."""
        return self.node_of(rank_a) != self.node_of(rank_b)

    def worst_link_inter(self) -> bool:
        """Whether the bottleneck link for whole-world collectives is
        inter-node (True whenever more than one node participates)."""
        return self.nodes > 1

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.name}: {self.nodes} node(s) x {self.cores_per_node} "
                f"core(s) of {self.machine.name} (P={self.size})")

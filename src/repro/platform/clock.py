"""Per-rank virtual clock accumulating simulated time and energy.

The MPI emulator executes algorithms with real message-passing
semantics; the *performance* of a run is tracked on these clocks rather
than the host's wall clock, so a 64-rank platform can be simulated
faithfully on a single host core.
"""

from __future__ import annotations

from repro.errors import PlatformError


class VirtualClock:
    """Simulated time (seconds) and energy (joules) of one rank."""

    __slots__ = ("time", "energy", "flops", "words_sent", "messages_sent")

    def __init__(self) -> None:
        self.time: float = 0.0
        self.energy: float = 0.0
        self.flops: int = 0
        self.words_sent: int = 0
        self.messages_sent: int = 0

    def advance(self, seconds: float, joules: float = 0.0) -> None:
        """Move the clock forward; time must not run backwards."""
        if seconds < 0 or joules < 0:
            raise PlatformError(
                f"cannot advance by negative amounts ({seconds}s, {joules}J)")
        self.time += seconds
        self.energy += joules

    def synchronize_to(self, t: float) -> None:
        """Wait (idle) until simulated time ``t`` if it is in the future.

        Used at communication events: all participants of a collective
        leave it at the same simulated instant.  Idling consumes time but
        no modelled energy (the model attributes energy to flops/words).
        """
        if t > self.time:
            self.time = t

    def charge_compute(self, flops: float, machine) -> None:
        """Account for local arithmetic on the given machine."""
        if flops < 0:
            raise PlatformError(f"flops must be >= 0, got {flops}")
        self.flops += int(flops)
        self.advance(machine.compute_time(flops), machine.compute_energy(flops))

    def record_traffic(self, words: int, messages: int = 1) -> None:
        """Tally outbound traffic (volume accounting only)."""
        self.words_sent += int(words)
        self.messages_sent += int(messages)

    def snapshot(self) -> dict:
        """Plain-dict view for reports."""
        return {
            "time": self.time,
            "energy": self.energy,
            "flops": self.flops,
            "words_sent": self.words_sent,
            "messages_sent": self.messages_sent,
        }

    def __repr__(self) -> str:
        return (f"VirtualClock(time={self.time:.3e}s, "
                f"energy={self.energy:.3e}J, flops={self.flops})")

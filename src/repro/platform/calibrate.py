"""Calibration of the word-per-FLOP ratios ``R_bf``.

The paper "experimentally measures the platform-specific relative cost
of arithmetic vs. communication (R_bf^time)" (Sec. VIII).  Here the
ratio can be obtained two ways:

* :func:`calibrate_from_spec` — analytically from a
  :class:`~repro.platform.cluster.ClusterConfig` (used by the simulator,
  exactly consistent with its clock advance rules);
* :func:`calibrate_measured` — a genuine micro-benchmark on the host
  (BLAS dot-product rate vs. memory-copy rate), mirroring what the
  authors did on the iDataPlex.  Useful when running the library on real
  shared-memory hardware.

``R_bf`` converts a word of communication into its FLOP-equivalent cost,
so Eq. 2's objective ``(M·L + nnz(C))/P + min(M, L)·R_bf`` is expressed
in a single unit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import PlatformError
from repro.platform.cluster import ClusterConfig
from repro.platform.machine import BYTES_PER_WORD


@dataclass(frozen=True)
class RbfRatios:
    """FLOP-equivalents of one communicated word, for time and energy."""

    time: float
    energy: float

    def __post_init__(self) -> None:
        if self.time < 0 or self.energy < 0:
            raise PlatformError(
                f"R_bf ratios must be >= 0, got {self.time}, {self.energy}")


def calibrate_from_spec(cluster: ClusterConfig) -> RbfRatios:
    """Derive ``R_bf`` from the cluster's machine spec.

    Uses the bottleneck link of the configuration: inter-node when the
    cluster spans several nodes, intra-node otherwise — because
    Algorithm 2's reduce/broadcast traverses the slowest link on its
    critical path.  Heterogeneous clusters calibrate against their
    slowest machine for the same reason.
    """
    m = cluster.slowest_machine()
    inter = cluster.worst_link_inter()
    word_seconds = m.word_time(inter_node=inter)
    rbf_time = word_seconds * m.flop_rate  # flops executable per word-time
    word_joules = m.word_energy(inter_node=inter)
    if m.energy_per_flop > 0:
        rbf_energy = word_joules / m.energy_per_flop
    else:
        rbf_energy = 0.0
    return RbfRatios(time=rbf_time, energy=rbf_energy)


def calibrate_measured(*, size: int = 1 << 20, repeats: int = 3,
                       seed: int = 0) -> RbfRatios:
    """Micro-benchmark the host: dot-product FLOP rate vs copy bandwidth.

    Returns the host's own ``R_bf^time`` (energy is not measurable without
    counters, so the time ratio is reused — on modern hardware the two
    track each other closely, which is also the paper's assumption when
    it says runtime analysis "directly translates" to energy).
    """
    if size < 1024:
        raise PlatformError(f"size too small to time reliably: {size}")
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(size)
    b = rng.standard_normal(size)
    out = np.empty_like(a)

    def best_time(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return max(best, 1e-9)

    dot_seconds = best_time(lambda: float(a @ b))
    copy_seconds = best_time(lambda: np.copyto(out, a))

    flop_rate = (2 * size) / dot_seconds            # mult+add per element
    copy_bw_words = (size * BYTES_PER_WORD) / copy_seconds / BYTES_PER_WORD
    rbf = flop_rate / copy_bw_words
    return RbfRatios(time=rbf, energy=rbf)

"""Platform presets matching the paper's evaluation setups.

The paper emulates four node×core shapes on an IBM iDataPlex with
Intel Xeon X5660 @ 2.8 GHz nodes: 1×1, 1×4, 2×8 and 8×8 (Sec. VIII).
The spec below uses public figures for that generation of hardware:

* ~11 GFLOP/s sustained per core (2.8 GHz × 4 DP FLOPs/cycle);
* shared-memory transfers at ~4 GB/s per core pair, ~1 µs latency;
* QDR InfiniBand between nodes at ~3 GB/s, ~2 µs latency;
* energy: ~0.1 nJ/FLOP core power, DRAM/network word energies from the
  "communication costs more than computation" literature the paper cites.

Absolute values only set the overall scale; every reproduced result is a
*ratio* (improvement factors, crossovers), which depends on the relative
magnitudes — compute cheap, communication expensive — that these numbers
preserve.
"""

from __future__ import annotations

from repro.platform.cluster import ClusterConfig
from repro.platform.machine import BYTES_PER_WORD, MachineSpec

PAPER_PLATFORM_NAMES = ("1x1", "1x4", "2x8", "8x8")


def xeon_x5660_like() -> MachineSpec:
    """Machine spec approximating one Xeon X5660 core and its links."""
    return MachineSpec(
        name="xeon-x5660-like",
        flop_rate=11.2e9,
        intra_bw=4.0e9 / BYTES_PER_WORD,     # 4 GB/s -> words/s
        inter_bw=3.0e9 / BYTES_PER_WORD,     # QDR IB -> words/s
        intra_latency=1.0e-6,
        inter_latency=2.0e-6,
        energy_per_flop=0.1e-9,
        energy_per_word_intra=2.0e-9,
        energy_per_word_inter=8.0e-9,
    )


def paper_platforms(machine: MachineSpec | None = None) -> list[ClusterConfig]:
    """The four node×core configurations of the paper's evaluation."""
    m = machine or xeon_x5660_like()
    shapes = [(1, 1), (1, 4), (2, 8), (8, 8)]
    return [ClusterConfig(machine=m, nodes=n, cores_per_node=c)
            for n, c in shapes]


def platform_by_name(name: str,
                     machine: MachineSpec | None = None) -> ClusterConfig:
    """Look up one of the paper's platforms by its ``NxC`` name."""
    for cluster in paper_platforms(machine):
        if cluster.name == name:
            return cluster
    raise KeyError(
        f"unknown platform {name!r}; choose from {PAPER_PLATFORM_NAMES}")

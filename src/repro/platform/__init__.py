"""Simulated distributed platform.

The paper evaluates on an IBM iDataPlex cluster (Intel Xeon X5660) in
1×1, 1×4, 2×8 and 8×8 node×core configurations and characterises each
platform by its word-per-FLOP ratios ``R_bf`` (Sec. VI-B).  This package
provides the synthetic equivalent:

* :class:`MachineSpec` — per-core compute rate, link latencies/bandwidths,
  and energy coefficients;
* :class:`ClusterConfig` — a ``nodes × cores_per_node`` topology over a
  machine spec, with intra- vs inter-node link selection;
* :class:`VirtualClock` — per-rank simulated time and energy;
* cost helpers for point-to-point and collective operations;
* calibration of ``R_bf^time`` / ``R_bf^energy`` from a spec or from
  host micro-benchmarks;
* presets matching the paper's four platform shapes.
"""

from repro.platform.machine import MachineSpec
from repro.platform.cluster import ClusterConfig
from repro.platform.clock import VirtualClock
from repro.platform.cost import (
    p2p_time,
    p2p_energy,
    collective_time,
    collective_energy,
    COLLECTIVE_ALGORITHMS,
)
from repro.platform.calibrate import (
    calibrate_from_spec,
    calibrate_measured,
    RbfRatios,
)
from repro.platform.presets import (
    xeon_x5660_like,
    paper_platforms,
    platform_by_name,
    PAPER_PLATFORM_NAMES,
)

__all__ = [
    "MachineSpec",
    "ClusterConfig",
    "VirtualClock",
    "p2p_time",
    "p2p_energy",
    "collective_time",
    "collective_energy",
    "COLLECTIVE_ALGORITHMS",
    "calibrate_from_spec",
    "calibrate_measured",
    "RbfRatios",
    "xeon_x5660_like",
    "paper_platforms",
    "platform_by_name",
    "PAPER_PLATFORM_NAMES",
]

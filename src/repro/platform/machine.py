"""Machine description for the performance simulator.

All communication volumes are measured in *words* (one float64 = 8
bytes), matching the paper's counting.  Rates are per core; bandwidths
are per link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError

BYTES_PER_WORD = 8


@dataclass(frozen=True)
class MachineSpec:
    """Compute, communication and energy parameters of one machine type.

    Parameters
    ----------
    name:
        Human-readable identifier.
    flop_rate:
        Sustained floating-point operations per second per core.
    intra_bw / inter_bw:
        Link bandwidth in words/second inside a node (shared memory) and
        between nodes (interconnect).
    intra_latency / inter_latency:
        Per-message latency in seconds (the α of the α-β model).
    energy_per_flop:
        Joules per floating-point operation.
    energy_per_word_intra / energy_per_word_inter:
        Joules per word moved over the respective link.
    """

    name: str
    flop_rate: float
    intra_bw: float
    inter_bw: float
    intra_latency: float
    inter_latency: float
    energy_per_flop: float
    energy_per_word_intra: float
    energy_per_word_inter: float

    def __post_init__(self) -> None:
        positive = {
            "flop_rate": self.flop_rate,
            "intra_bw": self.intra_bw,
            "inter_bw": self.inter_bw,
        }
        for key, value in positive.items():
            if not value > 0:
                raise PlatformError(f"{key} must be positive, got {value}")
        non_negative = {
            "intra_latency": self.intra_latency,
            "inter_latency": self.inter_latency,
            "energy_per_flop": self.energy_per_flop,
            "energy_per_word_intra": self.energy_per_word_intra,
            "energy_per_word_inter": self.energy_per_word_inter,
        }
        for key, value in non_negative.items():
            if value < 0:
                raise PlatformError(f"{key} must be >= 0, got {value}")

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` operations on one core."""
        return flops / self.flop_rate

    def compute_energy(self, flops: float) -> float:
        """Joules to execute ``flops`` operations."""
        return flops * self.energy_per_flop

    def word_time(self, *, inter_node: bool) -> float:
        """Seconds per word on the selected link (the β of α-β)."""
        return 1.0 / (self.inter_bw if inter_node else self.intra_bw)

    def latency(self, *, inter_node: bool) -> float:
        """Per-message latency on the selected link."""
        return self.inter_latency if inter_node else self.intra_latency

    def word_energy(self, *, inter_node: bool) -> float:
        """Joules per word on the selected link."""
        return (self.energy_per_word_inter if inter_node
                else self.energy_per_word_intra)

"""Communication cost models (α-β) for point-to-point and collectives.

Two collective algorithms are modelled:

``flat``
    Root exchanges one message with every other participant, and the
    per-link transfers overlap (each processor's port moves ``words``
    words simultaneously).  This is the model used by the paper's
    Sec. VI-B analysis, where a reduce/broadcast of an ``M``-vector costs
    ``M`` simultaneously-communicated words per processor.
``tree``
    Binomial tree: ``ceil(log2 P)`` sequential stages of one message
    each.  Provided for ablation; latency-dominated workloads prefer it.

All functions are pure: they map (cluster, participants, words) to a
scalar time or energy, so they can be unit-tested against closed forms.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import PlatformError
from repro.platform.cluster import ClusterConfig

COLLECTIVE_ALGORITHMS = ("flat", "tree")


def _link_params(cluster: ClusterConfig, a: int, b: int):
    """(latency, word_time, word_energy) of the a↔b link.

    Heterogeneous clusters: the slower endpoint bottlenecks the link.
    """
    inter = cluster.is_inter_node(a, b)
    ma, mb = cluster.machine_of(a), cluster.machine_of(b)
    return (max(ma.latency(inter_node=inter), mb.latency(inter_node=inter)),
            max(ma.word_time(inter_node=inter),
                mb.word_time(inter_node=inter)),
            max(ma.word_energy(inter_node=inter),
                mb.word_energy(inter_node=inter)))


def p2p_time(cluster: ClusterConfig, src: int, dst: int, words: int) -> float:
    """Seconds to move ``words`` words from ``src`` to ``dst``."""
    if words < 0:
        raise PlatformError(f"words must be >= 0, got {words}")
    if src == dst:
        return 0.0
    alpha, beta, _ = _link_params(cluster, src, dst)
    return alpha + words * beta


def p2p_energy(cluster: ClusterConfig, src: int, dst: int, words: int) -> float:
    """Joules to move ``words`` words from ``src`` to ``dst``."""
    if words < 0:
        raise PlatformError(f"words must be >= 0, got {words}")
    if src == dst:
        return 0.0
    return words * _link_params(cluster, src, dst)[2]


def _worst_pair_params(cluster: ClusterConfig, root: int,
                       participants: Sequence[int]):
    """(latency, word_time, word_energy) of the slowest root↔rank link."""
    worst = (0.0, 0.0, 0.0)
    found = False
    for r in participants:
        if r == root:
            continue
        params = _link_params(cluster, root, r)
        worst = tuple(max(w, p) for w, p in zip(worst, params))
        found = True
    if not found:
        m = cluster.machine_of(root)
        return (m.latency(inter_node=False), m.word_time(inter_node=False),
                m.word_energy(inter_node=False))
    return worst


def collective_time(cluster: ClusterConfig, root: int,
                    participants: Sequence[int], words: int,
                    *, algorithm: str = "flat") -> float:
    """Seconds for a rooted collective (bcast/reduce/gather-shaped).

    ``words`` is the per-participant message size in words.  For an
    *all*-flavoured collective (allreduce, allgather) model it as a
    reduce followed by a bcast — i.e. call this twice.
    """
    if algorithm not in COLLECTIVE_ALGORITHMS:
        raise PlatformError(
            f"unknown collective algorithm {algorithm!r}; "
            f"choose from {COLLECTIVE_ALGORITHMS}")
    if words < 0:
        raise PlatformError(f"words must be >= 0, got {words}")
    p = len(participants)
    if p <= 1 or words == 0:
        # A zero-word collective is still a synchronisation point, but the
        # model charges latency only when data moves between distinct ranks.
        return 0.0 if p <= 1 else _worst_pair_params(
            cluster, root, participants)[0]
    alpha, beta, _ = _worst_pair_params(cluster, root, participants)
    if algorithm == "flat":
        # Overlapping per-link transfers: one latency, `words` words on
        # the (bottleneck) link — matching the paper's
        # "min(M, L) words communicated simultaneously" accounting.
        return alpha + words * beta
    stages = math.ceil(math.log2(p))
    return stages * (alpha + words * beta)


def collective_energy(cluster: ClusterConfig, root: int,
                      participants: Sequence[int], words: int,
                      *, algorithm: str = "flat") -> float:
    """Joules for a rooted collective.

    Energy counts *total* words moved (it is additive, unlike time which
    benefits from overlap): ``(P-1) * words`` link traversals for both
    algorithms (a binomial tree also moves each payload P-1 times).
    """
    if algorithm not in COLLECTIVE_ALGORITHMS:
        raise PlatformError(
            f"unknown collective algorithm {algorithm!r}; "
            f"choose from {COLLECTIVE_ALGORITHMS}")
    if words < 0:
        raise PlatformError(f"words must be >= 0, got {words}")
    p = len(participants)
    if p <= 1 or words == 0:
        return 0.0
    total = 0.0
    for r in participants:
        if r == root:
            continue
        total += words * _link_params(cluster, root, r)[2]
    return total

"""Non-blocking communication requests (``isend``/``irecv``)."""

from __future__ import annotations


class Request:
    """Handle for an outstanding non-blocking operation.

    ``wait()`` blocks until completion and returns the received object
    for receive requests (``None`` for sends), mirroring mpi4py.
    ``test()`` polls: returns ``(done, value_or_None)``.
    """

    def __init__(self, *, kind: str, complete_fn, poll_fn) -> None:
        if kind not in ("send", "recv"):
            raise ValueError(f"kind must be 'send' or 'recv', got {kind!r}")
        self.kind = kind
        self._complete_fn = complete_fn
        self._poll_fn = poll_fn
        self._done = False
        self._value = None

    def wait(self):
        """Block until the operation completes; return recv payload."""
        if not self._done:
            self._value = self._complete_fn()
            self._done = True
        return self._value

    def test(self):
        """Poll for completion without blocking."""
        if self._done:
            return True, self._value
        ready, value = self._poll_fn()
        if ready:
            self._done = True
            self._value = value
        return self._done, self._value

    @property
    def completed(self) -> bool:
        """Whether the request has already completed via wait/test."""
        return self._done

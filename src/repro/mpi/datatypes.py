"""Message sizing: everything is measured in 8-byte words.

The paper counts communication in words of the working precision
(double); pickled Python objects are charged by their serialised size
rounded up to whole words.
"""

from __future__ import annotations

import math
import pickle

import numpy as np

from repro.platform.machine import BYTES_PER_WORD

#: Wildcard source for ``recv`` — matches any sending rank.
ANY_SOURCE = -1
#: Wildcard tag for ``recv`` — matches any message tag.
ANY_TAG = -1


def words_for_bytes(nbytes: int) -> int:
    """Whole words needed to carry ``nbytes`` bytes."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    return math.ceil(nbytes / BYTES_PER_WORD)


def words_of(obj) -> int:
    """Word count of an arbitrary payload.

    numpy arrays are charged their buffer size; everything else is
    charged its pickle size.  This is what the traffic ledger records
    and what the virtual clock bills.
    """
    if isinstance(obj, np.ndarray):
        return words_for_bytes(obj.nbytes)
    if np.isscalar(obj):
        return 1
    return words_for_bytes(len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)))


def serialize(obj) -> bytes:
    """Pickle a payload for lowercase (object) communication."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def deserialize(blob: bytes):
    """Inverse of :func:`serialize`."""
    return pickle.loads(blob)

"""SPMD launcher: run a rank program on every rank of an emulated world.

Equivalent of ``mpiexec -n P python script.py`` for this library:

>>> from repro.mpi import run_spmd
>>> def program(comm):
...     return comm.allreduce(comm.Get_rank())
>>> run_spmd(4, program).returns
[6, 6, 6, 6]
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import DeadlockError, MPIEmulatorError, RankFailedError
from repro.mpi.communicator import Communicator
from repro.mpi.counters import TrafficLedger
from repro.mpi.world import World
from repro.observability.report import record_spmd_run


@dataclass
class SPMDResult:
    """Outcome of one SPMD run.

    Attributes
    ----------
    returns:
        Per-rank return values of the rank program.
    traffic:
        The world's traffic ledger.
    clocks:
        Per-rank virtual clock snapshots (dicts).
    simulated_time:
        Simulated makespan: max over ranks of final clock time (seconds).
        Zero when no cluster was supplied.
    simulated_energy:
        Total simulated energy over all ranks (joules).
    total_flops:
        Sum of FLOPs charged across ranks.
    wall_time:
        Host wall-clock seconds the emulation took.
    trace:
        Event list (op, ranks, start, end, words in simulated time)
        when the run was launched with ``trace=True``; ``None``
        otherwise.  Render with
        :func:`repro.utils.timeline.render_timeline`.
    """

    returns: list
    traffic: TrafficLedger
    clocks: list = field(default_factory=list)
    simulated_time: float = 0.0
    simulated_energy: float = 0.0
    total_flops: int = 0
    wall_time: float = 0.0
    trace: list | None = None


def run_spmd(size: int, fn, *args, cluster=None, timeout: float = 120.0,
             collective_algorithm: str = "flat", trace: bool = False,
             **kwargs) -> SPMDResult:
    """Execute ``fn(comm, *args, **kwargs)`` on ``size`` emulated ranks.

    Parameters
    ----------
    size:
        Number of ranks.  When ``cluster`` is given, pass ``size=0`` (or
        the matching value) to take the cluster's processor count.
    fn:
        The rank program.  Receives a :class:`Communicator` first.
    cluster:
        Optional :class:`~repro.platform.cluster.ClusterConfig`; enables
        virtual-clock performance simulation.
    timeout:
        Host-seconds a blocked rank may wait before the run is declared
        deadlocked.
    collective_algorithm:
        ``"flat"`` (paper's model, default) or ``"tree"``.

    Raises
    ------
    RankFailedError
        If any rank program raised; carries per-rank exceptions.
    DeadlockError
        If every live rank blocked with no deliverable message.
    """
    if cluster is not None:
        if size in (0, None):
            size = cluster.size
        elif size != cluster.size:
            raise MPIEmulatorError(
                f"size {size} does not match cluster P={cluster.size}")
    if not isinstance(size, int) or size < 1:
        raise MPIEmulatorError(f"size must be a positive int, got {size!r}")

    world = World(size, cluster=cluster, timeout=timeout,
                  collective_algorithm=collective_algorithm, trace=trace)
    returns: list = [None] * size
    deadlock: list = []

    def runner(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            returns[rank] = fn(comm, *args, **kwargs)
        except DeadlockError as exc:
            deadlock.append(exc)
        except MPIEmulatorError as exc:
            # The world-abort exception itself (identity check) is a
            # propagated/origin protocol failure surfaced after the
            # join; any other emulator error is this rank's own bug.
            if exc is not world.abort_exc:
                world.rank_failed(rank, exc)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            world.rank_failed(rank, exc)
        finally:
            world.rank_finished()

    t0 = time.perf_counter()
    if size == 1:
        # Fast path: no threads needed for a single rank.
        runner(0)
    else:
        threads = [threading.Thread(target=runner, args=(r,),
                                    name=f"repro-mpi-rank-{r}", daemon=True)
                   for r in range(size)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    wall = time.perf_counter() - t0

    if world.failures:
        raise RankFailedError(world.failures)
    if deadlock:
        raise deadlock[0]
    if world.abort_exc is not None:
        # Abort without a recorded rank exception: a protocol violation
        # (e.g. mismatched collectives) detected inside the emulator.
        raise world.abort_exc

    result = SPMDResult(
        returns=returns,
        traffic=world.traffic,
        clocks=[c.snapshot() for c in world.clocks],
        simulated_time=max(c.time for c in world.clocks),
        simulated_energy=sum(c.energy for c in world.clocks),
        total_flops=sum(c.flops for c in world.clocks),
        wall_time=wall,
        trace=(sorted(world.trace, key=lambda e: (e["start"], e["end"]))
               if world.trace is not None else None),
    )
    # Fold traffic + virtual-clock totals into the observability layer
    # (no-op unless enabled), so RunReports see every emulated run.
    record_spmd_run(result)
    return result

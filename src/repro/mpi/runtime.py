"""SPMD launcher: run a rank program on every rank of an emulated world.

Equivalent of ``mpiexec -n P python script.py`` for this library:

>>> from repro.mpi import run_spmd
>>> def program(comm):
...     return comm.allreduce(comm.Get_rank())
>>> run_spmd(4, program).returns
[6, 6, 6, 6]

Two interchangeable execution backends sit behind the same API (see
``docs/mpi_backends.md``):

* ``"threads"`` — every rank is a thread of this process.  Zero setup
  cost, but all rank *Python* code shares one GIL, so wall-time never
  beats serial for compute-bound programs.
* ``"processes"`` — every rank is a forked worker process with its own
  GIL; large ndarray payloads cross via shared memory.  The accounting
  (traffic ledger, virtual clocks, RunReport totals) stays in the
  parent and is bit-identical to the thread backend.

``"auto"`` (the default) picks ``"processes"`` only where it can work
and plausibly win: ``fork`` available, a non-daemonic single-threaded
parent, more than one visible core, and ``size > 1``.  Resolution
precedence: explicit ``backend=`` argument > process-wide default (the
CLI's ``--mpi-backend`` sets it) > ``REPRO_MPI_BACKEND`` env var >
``"auto"``.  A single-rank world always runs inline on the calling
thread, whatever the backend says.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field

from repro.errors import DeadlockError, MPIEmulatorError, RankFailedError
from repro.mpi.communicator import Communicator
from repro.mpi.counters import TrafficLedger
from repro.mpi.world import ABORT_GRACE_CAP, World
from repro.observability.report import record_spmd_run

#: Environment override for the default SPMD execution backend.
MPI_BACKEND_ENV = "REPRO_MPI_BACKEND"

#: Concrete backend names (``"auto"`` resolves to one of these).
MPI_BACKENDS = ("threads", "processes")

_DEFAULT_MPI_BACKEND: str | None = None


def set_default_mpi_backend(name: str | None) -> None:
    """Set the process-wide default backend (``None`` clears it).

    Sits between the explicit ``run_spmd(..., backend=...)`` argument
    and the :data:`MPI_BACKEND_ENV` environment variable in precedence;
    the CLI's ``--mpi-backend`` flag lands here.
    """
    global _DEFAULT_MPI_BACKEND
    if name is not None:
        name = str(name).strip().lower()
        if name not in MPI_BACKENDS + ("auto",):
            raise MPIEmulatorError(
                f"unknown MPI backend {name!r}; choose from "
                f"{MPI_BACKENDS + ('auto',)}")
    _DEFAULT_MPI_BACKEND = name


def default_mpi_backend_name() -> str:
    """The backend used when ``run_spmd`` gets no ``backend=``."""
    if _DEFAULT_MPI_BACKEND:
        return _DEFAULT_MPI_BACKEND
    env = os.environ.get(MPI_BACKEND_ENV, "").strip().lower()
    return env or "auto"


def _fork_capable() -> bool:
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    # Daemonic processes may not fork children of their own.
    return not multiprocessing.current_process().daemon


def _visible_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _auto_backend(size: int) -> str:
    """Pick processes only where fork is safe and parallelism can pay."""
    if size < 2 or not _fork_capable():
        return "threads"
    if threading.active_count() > 1:
        # Forking a multi-threaded parent can inherit locks held by
        # other threads mid-operation; stay on the safe backend.
        return "threads"
    if _visible_cores() < 2:
        return "threads"
    return "processes"


def resolve_mpi_backend(backend: str | None = None, *,
                        size: int = 2) -> str:
    """Resolve a backend request to a concrete backend name.

    Precedence: ``backend`` argument > :func:`set_default_mpi_backend`
    > :data:`MPI_BACKEND_ENV` > ``"auto"``.  Requesting
    ``"processes"`` explicitly on a host that cannot fork raises;
    ``"auto"`` silently degrades to ``"threads"``.
    """
    name = backend if backend is not None else default_mpi_backend_name()
    name = str(name).strip().lower()
    if name == "auto":
        return _auto_backend(size)
    if name not in MPI_BACKENDS:
        raise MPIEmulatorError(
            f"unknown MPI backend {name!r}; choose from "
            f"{MPI_BACKENDS + ('auto',)}")
    if name == "processes" and not _fork_capable():
        raise MPIEmulatorError(
            "MPI backend 'processes' requires a fork-capable, "
            "non-daemonic host process; use backend='threads' or 'auto'")
    return name


@dataclass
class SPMDResult:
    """Outcome of one SPMD run.

    Attributes
    ----------
    returns:
        Per-rank return values of the rank program.
    traffic:
        The world's traffic ledger.
    clocks:
        Per-rank virtual clock snapshots (dicts).
    simulated_time:
        Simulated makespan: max over ranks of final clock time (seconds).
        Zero when no cluster was supplied.
    simulated_energy:
        Total simulated energy over all ranks (joules).
    total_flops:
        Sum of FLOPs charged across ranks.
    wall_time:
        Host wall-clock seconds the emulation took.
    backend:
        The concrete execution backend the run used (``"threads"`` or
        ``"processes"``).
    trace:
        Event list (op, ranks, start, end, words in simulated time)
        when the run was launched with ``trace=True``; ``None``
        otherwise.  Render with
        :func:`repro.utils.timeline.render_timeline`.
    """

    returns: list
    traffic: TrafficLedger
    clocks: list = field(default_factory=list)
    simulated_time: float = 0.0
    simulated_energy: float = 0.0
    total_flops: int = 0
    wall_time: float = 0.0
    backend: str = "threads"
    trace: list | None = None


def _join_with_abort_grace(world: World, threads: list) -> None:
    """Join rank threads, but never indefinitely once the run failed.

    A healthy world is joined without limit (legitimate long compute
    must finish).  Once the world aborts, stragglers get a bounded
    grace window — min of the world timeout and
    :data:`~repro.mpi.world.ABORT_GRACE_CAP` — after which the world is
    invalidated and the (daemon) threads are abandoned: their next
    communication attempt raises instead of touching stale state.
    """
    grace = min(max(world.timeout, 0.1), ABORT_GRACE_CAP)
    abort_mark: float | None = None
    while True:
        alive = [t for t in threads if t.is_alive()]
        if not alive:
            return
        alive[0].join(timeout=0.05)
        with world.cond:
            aborted = world.abort_exc is not None
        if not aborted:
            abort_mark = None
            continue
        now = time.monotonic()
        if abort_mark is None:
            abort_mark = now
        elif now - abort_mark > grace:
            world.invalidate(
                "run abandoned with rank threads still alive after the "
                "abort grace period")
            return


def run_spmd(size: int, fn, *args, cluster=None, timeout: float = 120.0,
             collective_algorithm: str = "flat", trace: bool = False,
             backend: str | None = None, **kwargs) -> SPMDResult:
    """Execute ``fn(comm, *args, **kwargs)`` on ``size`` emulated ranks.

    Parameters
    ----------
    size:
        Number of ranks.  When ``cluster`` is given, pass ``size=0`` (or
        the matching value) to take the cluster's processor count.
    fn:
        The rank program.  Receives a :class:`Communicator` first.
    cluster:
        Optional :class:`~repro.platform.cluster.ClusterConfig`; enables
        virtual-clock performance simulation.
    timeout:
        Host-seconds a blocked rank may wait before the run is declared
        deadlocked.
    collective_algorithm:
        ``"flat"`` (paper's model, default) or ``"tree"``.
    backend:
        ``"threads"``, ``"processes"`` or ``"auto"``; ``None`` defers
        to :func:`set_default_mpi_backend`, then
        :data:`MPI_BACKEND_ENV`, then ``"auto"``.  Model accounting is
        identical across backends; only wall-time differs.

    Raises
    ------
    RankFailedError
        If any rank program raised; carries per-rank exceptions.
    DeadlockError
        If every live rank blocked with no deliverable message.
    """
    if cluster is not None:
        if size in (0, None):
            size = cluster.size
        elif size != cluster.size:
            raise MPIEmulatorError(
                f"size {size} does not match cluster P={cluster.size}")
    if not isinstance(size, int) or size < 1:
        raise MPIEmulatorError(f"size must be a positive int, got {size!r}")

    world = World(size, cluster=cluster, timeout=timeout,
                  collective_algorithm=collective_algorithm, trace=trace)
    returns: list = [None] * size
    deadlock: list = []

    def runner(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            returns[rank] = fn(comm, *args, **kwargs)
        except DeadlockError as exc:
            deadlock.append(exc)
        except MPIEmulatorError as exc:
            # The world-abort exception itself (identity check) is a
            # propagated/origin protocol failure surfaced after the
            # join; any other emulator error is this rank's own bug.
            if exc is not world.abort_exc:
                world.rank_failed(rank, exc)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            world.rank_failed(rank, exc)
        finally:
            world.rank_finished()

    backend_name = "threads"
    t0 = time.perf_counter()
    if size == 1:
        # Fast path: a single rank needs no concurrency at all.
        runner(0)
    else:
        backend_name = resolve_mpi_backend(backend, size=size)
        if backend_name == "processes":
            from repro.mpi.process_world import run_process_ranks
            run_process_ranks(world, fn, args, kwargs, returns, deadlock)
        else:
            threads = [threading.Thread(target=runner, args=(r,),
                                        name=f"repro-mpi-rank-{r}",
                                        daemon=True)
                       for r in range(size)]
            for t in threads:
                t.start()
            _join_with_abort_grace(world, threads)
    wall = time.perf_counter() - t0

    if world.failures:
        raise RankFailedError(world.failures)
    if deadlock:
        raise deadlock[0]
    if world.abort_exc is not None:
        # Abort without a recorded rank exception: a protocol violation
        # (e.g. mismatched collectives) detected inside the emulator.
        raise world.abort_exc

    result = SPMDResult(
        returns=returns,
        traffic=world.traffic,
        clocks=[c.snapshot() for c in world.clocks],
        simulated_time=max(c.time for c in world.clocks),
        simulated_energy=sum(c.energy for c in world.clocks),
        total_flops=sum(c.flops for c in world.clocks),
        wall_time=wall,
        backend=backend_name,
        trace=(sorted(world.trace, key=lambda e: (e["start"], e["end"]))
               if world.trace is not None else None),
    )
    # Fold traffic + virtual-clock totals into the observability layer
    # (no-op unless enabled), so RunReports see every emulated run.
    record_spmd_run(result)
    return result

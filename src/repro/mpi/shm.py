"""Shared-memory data plane of the multiprocess SPMD backend.

The process backend moves control messages (method names, scalars,
pickled small objects) over pipes and *large ndarray payloads* through
named POSIX shared-memory segments: the sender copies the array into a
fresh segment once, ships a tiny :class:`ShmPayload` descriptor over the
pipe, and the receiver maps the segment directly into its address space
— no pickle round-trip, no second copy on the wire.

Lifecycle rules (leak-proofing is the whole point):

* every segment name carries the run's unique prefix, so a teardown
  sweep can reclaim segments whose creator was killed before the
  descriptor ever reached the other side;
* the *receiver* unlinks a segment the moment it maps it (POSIX keeps
  the mapping alive after unlink), so a segment's name lives only for
  the duration of one transfer;
* the parent keeps a :class:`SegmentRegistry` of every segment it
  created whose receiver might never arrive (a worker can die first)
  and drains it when the run ends.

CPython registers every ``SharedMemory`` construction — create *and*
attach — with the process-local ``resource_tracker``, and ``unlink()``
unregisters again.  A creator that never unlinks (the receiver does)
would therefore be flagged as leaking at exit; :func:`untrack` opts the
creator's registration out — ownership is explicit here, not
tracker-inferred.  Attach-side registrations are left alone: the
receiver always unlinks, which balances them.
"""

from __future__ import annotations

import glob
import os
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "DEFAULT_SHM_THRESHOLD_BYTES",
    "SHM_THRESHOLD_ENV",
    "SegmentRegistry",
    "ShmPayload",
    "decode_payload",
    "encode_payload",
    "export_array",
    "map_array",
    "shm_threshold_bytes",
    "sweep_orphans",
    "unlink_quiet",
]

#: Environment override for the shm/pipe payload cutover (bytes).
SHM_THRESHOLD_ENV = "REPRO_SHM_THRESHOLD"

#: Arrays at or above this many bytes travel via shared memory; smaller
#: ones ride the pipe inside the pickled control message.  64 KiB sits
#: above the pipe's atomic-write sweet spot and below any panel the
#: encode paths exchange.
DEFAULT_SHM_THRESHOLD_BYTES = 1 << 16

#: Containers the payload codec recurses into (descriptors can appear
#: anywhere inside one bcast/gather value, e.g. ``(atoms, idx)``).
_MAX_ENCODE_DEPTH = 4


def shm_threshold_bytes() -> int:
    """The active shm cutover, honouring :data:`SHM_THRESHOLD_ENV`."""
    raw = os.environ.get(SHM_THRESHOLD_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            return DEFAULT_SHM_THRESHOLD_BYTES
        if value >= 0:
            return value
    return DEFAULT_SHM_THRESHOLD_BYTES


@dataclass(frozen=True)
class ShmPayload:
    """Pipe-sized descriptor of one ndarray parked in shared memory."""

    name: str
    shape: tuple
    dtype: str


def untrack(name: str) -> None:
    """Remove a segment from this process's resource tracker.

    Best-effort: tracker registration formats changed across CPython
    versions and the segment may simply not be registered here.
    """
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # noqa: BLE001 - tracker APIs are private
        pass


def export_array(arr: np.ndarray, name: str) -> ShmPayload:
    """Copy ``arr`` into a fresh named segment; return its descriptor."""
    arr = np.ascontiguousarray(arr)
    seg = shared_memory.SharedMemory(name=name, create=True,
                                     size=max(arr.nbytes, 1))
    untrack(seg.name)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
    view[...] = arr
    seg.close()
    return ShmPayload(name=seg.name, shape=tuple(arr.shape),
                      dtype=str(arr.dtype))


def map_array(payload: ShmPayload, *, copy: bool = True):
    """Materialise a descriptor back into an ndarray.

    With ``copy=True`` (the default) the segment is closed and unlinked
    before returning — the caller owns a private array and the name is
    gone.  With ``copy=False`` the array is a zero-copy view; the
    segment is unlinked immediately (the mapping outlives the name) and
    the backing ``SharedMemory`` is returned alongside so the caller
    can pin it for the view's lifetime: returns ``(array, segment)``.
    """
    seg = shared_memory.SharedMemory(name=payload.name)
    view = np.ndarray(payload.shape, dtype=np.dtype(payload.dtype),
                      buffer=seg.buf)
    if copy:
        arr = view.copy()
        seg.close()
        unlink_quiet(payload.name, segment=seg)
        return arr
    unlink_quiet(payload.name, segment=seg)
    return view, seg


def unlink_quiet(name: str, *, segment=None) -> bool:
    """Unlink a segment by name, tolerating its prior disappearance.

    ``unlink()`` both removes the name and unregisters it from the
    resource tracker; when the name is already gone the registration
    (from create or attach) survives the exception, so it is dropped
    explicitly to keep the tracker balanced.
    """
    if segment is not None:
        try:
            segment.unlink()
            return True
        except FileNotFoundError:
            untrack(name)
            return False
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:
        untrack(name)
        return False
    return True


class SegmentRegistry:
    """Thread-safe set of segment names the parent may need to reclaim."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._names: set[str] = set()

    def add(self, name: str) -> None:
        with self._lock:
            self._names.add(name)

    def discard(self, name: str) -> None:
        with self._lock:
            self._names.discard(name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._names)

    def drain(self) -> int:
        """Unlink every registered segment; returns how many existed."""
        with self._lock:
            names, self._names = self._names, set()
        return sum(1 for n in names if unlink_quiet(n))


def sweep_orphans(prefix: str) -> int:
    """Unlink every ``/dev/shm`` segment carrying ``prefix``.

    The belt-and-braces pass for segments whose creating worker was
    killed between ``shm_open`` and shipping the descriptor — no
    registry ever heard of them.  No-op on hosts without a visible
    ``/dev/shm`` (shared memory still works there; orphan reclamation
    is simply left to the OS).
    """
    removed = 0
    if not os.path.isdir("/dev/shm"):
        return 0
    for path in glob.glob(f"/dev/shm/{prefix}*"):
        if unlink_quiet(os.path.basename(path)):
            removed += 1
    return removed


# ----------------------------------------------------------------------
# The payload codec used by both ends of the RPC pipe
# ----------------------------------------------------------------------
def encode_payload(value, namer, threshold: int | None = None,
                   _depth: int = 0):
    """Replace large ndarrays inside ``value`` with shm descriptors.

    ``namer()`` must return a fresh globally-unique segment name per
    call.  Containers (tuple/list/dict) are walked up to a small fixed
    depth — deeper or exotic structures simply ride the pipe pickled,
    which is always correct, just slower.
    """
    if threshold is None:
        threshold = shm_threshold_bytes()
    if isinstance(value, np.ndarray) and value.dtype != object \
            and value.nbytes >= threshold:
        return export_array(value, namer())
    if _depth >= _MAX_ENCODE_DEPTH:
        return value
    if isinstance(value, tuple):
        return tuple(encode_payload(v, namer, threshold, _depth + 1)
                     for v in value)
    if isinstance(value, list):
        return [encode_payload(v, namer, threshold, _depth + 1)
                for v in value]
    if isinstance(value, dict):
        return {k: encode_payload(v, namer, threshold, _depth + 1)
                for k, v in value.items()}
    return value


def _canonical_dtype(arr: np.ndarray) -> np.ndarray:
    """Swap a pipe-unpickled dtype instance for the interned singleton.

    Unpickling an ndarray rebuilds its dtype as a *fresh* instance, not
    numpy's cached singleton.  That is invisible to computation but not
    to re-pickling: the traffic ledger charges lowercase messages by
    pickle size, and pickle memoises dtypes by identity — a payload
    whose arrays stopped sharing one ``int64`` instance pickles a few
    bytes larger than the same payload on the thread backend.  Restoring
    the singleton keeps word counts backend-independent.
    """
    try:
        canon = np.dtype(arr.dtype.str)
        if canon is not arr.dtype and canon == arr.dtype:
            arr.dtype = canon
    except (TypeError, ValueError):
        pass  # exotic/structured dtypes: equality-sharing not guaranteed
    return arr


def decode_payload(value, *, on_name=None, pin=None):
    """Inverse of :func:`encode_payload`.

    ``on_name`` (when given) is called with each segment name seen,
    letting the parent registry drop entries as they are consumed.
    With ``pin`` (a list) the arrays are zero-copy views and their
    backing segments are appended to ``pin``, which the caller must
    keep alive for the views' lifetime and close eventually; without
    it every segment is copy-mapped and released immediately.
    Plain ndarrays (the under-threshold ones that rode the pipe) pass
    through with their dtype re-interned (see :func:`_canonical_dtype`).
    """
    if isinstance(value, np.ndarray):
        return _canonical_dtype(value)
    if isinstance(value, ShmPayload):
        if on_name is not None:
            on_name(value.name)
        if pin is None:
            return map_array(value, copy=True)
        arr, seg = map_array(value, copy=False)
        pin.append(seg)
        return arr
    if isinstance(value, tuple):
        return tuple(decode_payload(v, on_name=on_name, pin=pin)
                     for v in value)
    if isinstance(value, list):
        return [decode_payload(v, on_name=on_name, pin=pin)
                for v in value]
    if isinstance(value, dict):
        return {k: decode_payload(v, on_name=on_name, pin=pin)
                for k, v in value.items()}
    return value

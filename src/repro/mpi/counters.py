"""Traffic accounting for the emulator.

Two word measures are kept per operation class, because the paper uses
both:

``payload_words``
    Size of one logical message (e.g. reducing an M-vector records M).
    The "number of words communicated simultaneously" of Sec. VI-B is a
    sum of payload words over the collectives on the critical path.
``wire_words``
    Total words that traversed links (a reduce over P ranks moves
    ``(P-1) * payload`` words).  Governs energy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class OpTally:
    """Aggregated counts for one operation kind."""

    calls: int = 0
    payload_words: int = 0
    wire_words: int = 0


@dataclass
class TrafficLedger:
    """Thread-safe per-operation traffic tallies for one SPMD run."""

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    ops: dict = field(default_factory=dict)

    def record(self, op: str, payload_words: int, wire_words: int) -> None:
        """Tally one completed operation of kind ``op``."""
        if payload_words < 0 or wire_words < 0:
            raise ValueError("word counts must be >= 0")
        with self._lock:
            tally = self.ops.setdefault(op, OpTally())
            tally.calls += 1
            tally.payload_words += int(payload_words)
            tally.wire_words += int(wire_words)

    def total_payload_words(self, *ops: str) -> int:
        """Sum of payload words over the named ops (all ops when empty)."""
        with self._lock:
            keys = ops or tuple(self.ops)
            return sum(self.ops[k].payload_words for k in keys if k in self.ops)

    def total_wire_words(self, *ops: str) -> int:
        """Sum of wire words over the named ops (all ops when empty)."""
        with self._lock:
            keys = ops or tuple(self.ops)
            return sum(self.ops[k].wire_words for k in keys if k in self.ops)

    def calls(self, op: str) -> int:
        """Number of completed operations of kind ``op``."""
        with self._lock:
            return self.ops[op].calls if op in self.ops else 0

    def snapshot(self) -> dict:
        """Plain-dict copy for reports."""
        with self._lock:
            return {op: OpTally(t.calls, t.payload_words, t.wire_words)
                    for op, t in self.ops.items()}

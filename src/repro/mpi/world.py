"""Shared state of one SPMD run: mailboxes, collective slots, clocks.

A single condition variable guards all shared state.  Coarse locking is
deliberate: the CPython GIL serialises bookkeeping anyway, rank programs
spend their time in BLAS (which releases the GIL), and one lock makes
the deadlock detector trivial to reason about.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import DeadlockError, MPIEmulatorError
from repro.mpi.counters import TrafficLedger
from repro.platform.clock import VirtualClock

#: Seconds a straggler rank gets after the world aborts before the
#: runtime invalidates the world and abandons (threads) or terminates
#: (processes) it.  The per-op ``timeout`` still bounds every *blocked*
#: rank; this cap only limits how long a rank wedged in pure user code
#: can delay teardown of an already-failed run.
ABORT_GRACE_CAP = 5.0


class Message:
    """One in-flight point-to-point message."""

    __slots__ = ("payload", "words", "arrival_time", "is_buffer")

    def __init__(self, payload, words: int, arrival_time: float,
                 is_buffer: bool) -> None:
        self.payload = payload
        self.words = words
        self.arrival_time = arrival_time
        self.is_buffer = is_buffer


class CollectiveSlot:
    """Rendezvous for the N-th collective call of every rank.

    SPMD programs must issue collectives in the same order on every
    rank; the slot validates that the op name and root agree and holds
    each rank's contribution until all have arrived.
    """

    __slots__ = ("op", "root", "contributions", "arrived", "result",
                 "completed", "departed")

    def __init__(self, op: str, root: int) -> None:
        self.op = op
        self.root = root
        self.contributions: dict[int, object] = {}
        self.arrived = 0
        self.result = None
        self.completed = False
        self.departed = 0


class World:
    """All shared state of one emulated MPI world."""

    def __init__(self, size: int, *, cluster=None, timeout: float = 120.0,
                 collective_algorithm: str = "flat",
                 trace: bool = False) -> None:
        if size < 1:
            raise MPIEmulatorError(f"world size must be >= 1, got {size}")
        self.size = size
        self.cluster = cluster
        self.timeout = timeout
        self.collective_algorithm = collective_algorithm
        #: optional event trace: dicts with op/ranks/start/end (sim time)
        self.trace: list | None = [] if trace else None
        self.cond = threading.Condition()
        # key: (src_world_rank, dst_world_rank, comm_id, tag)
        self.mailboxes: dict[tuple[int, int, int, int], deque] = {}
        # key: (comm_id, sequence)
        self.collectives: dict[tuple[int, int], CollectiveSlot] = {}
        self.next_comm_id = 1  # 0 is the world communicator
        self.clocks = [VirtualClock() for _ in range(size)]
        self.traffic = TrafficLedger()
        self.alive = size
        self.blocked = 0
        self.progress = 0
        self.abort_exc: BaseException | None = None
        self.failures: dict[int, BaseException] = {}
        #: set by :meth:`invalidate` when the runtime abandons the run;
        #: every later communication attempt raises via ``check_abort``.
        self.invalidated = False

    # ------------------------------------------------------------------
    # abort / deadlock machinery (call with self.cond held)
    # ------------------------------------------------------------------
    def _abort(self, exc: BaseException) -> None:
        if self.abort_exc is None:
            self.abort_exc = exc
        self.cond.notify_all()

    def rank_failed(self, rank: int, exc: BaseException) -> None:
        """Record a rank program exception and wake everyone up."""
        with self.cond:
            self.failures[rank] = exc
            self._abort(MPIEmulatorError(
                f"world aborted: rank {rank} raised {exc!r}"))

    def rank_finished(self) -> None:
        """A rank program returned normally."""
        with self.cond:
            self.alive -= 1
            self.progress += 1
            self.cond.notify_all()

    def invalidate(self, reason: str) -> None:
        """Permanently poison the world after the runtime gives up on it.

        A timed-out or aborted run can leave rank programs wedged in
        user code; once the launcher stops waiting for them the world is
        stale, and any late send/recv/collective from a straggler must
        fail fast instead of depositing into dead mailboxes.  Safe to
        call multiple times; takes the condition itself.
        """
        with self.cond:
            self.invalidated = True
            self._abort(MPIEmulatorError(f"world invalidated: {reason}"))

    def check_abort(self) -> None:
        """Raise if the world has been aborted (call with lock held)."""
        if self.abort_exc is not None:
            raise self.abort_exc

    def blocking_wait(self, predicate, *, rank: int, what: str):
        """Wait (holding the condition) until ``predicate()`` is truthy.

        Detects two failure modes while waiting:
        * every live rank blocked and no progress for a stagnation window
          → deadlock (progress-based, because a rank waking from a just-
          completed collective is still counted as blocked until the OS
          schedules it);
        * the world was aborted by another rank's exception.
        Returns ``predicate()``'s truthy value.
        """
        import time
        deadline = time.monotonic() + self.timeout
        stagnant_since: float | None = None
        progress_mark = self.progress
        self.blocked += 1
        try:
            while True:
                self.check_abort()
                value = predicate()
                if value:
                    self.progress += 1
                    return value
                now = time.monotonic()
                if self.progress != progress_mark:
                    progress_mark = self.progress
                    stagnant_since = None
                elif self.blocked >= self.alive:
                    if stagnant_since is None:
                        stagnant_since = now
                    elif now - stagnant_since > 1.0:
                        exc = DeadlockError(
                            f"all {self.alive} live rank(s) blocked with no "
                            f"progress; rank {rank} waiting on {what}")
                        self._abort(exc)
                        raise exc
                if now > deadline:
                    exc = DeadlockError(
                        f"rank {rank} timed out after {self.timeout}s "
                        f"waiting on {what}")
                    self._abort(exc)
                    raise exc
                self.cond.wait(timeout=0.05)
        finally:
            self.blocked -= 1

    # ------------------------------------------------------------------
    # mailboxes (call with self.cond held)
    # ------------------------------------------------------------------
    def post_message(self, src: int, dst: int, comm_id: int, tag: int,
                     msg: Message) -> None:
        """Deposit a message; wakes any waiting receiver."""
        self.mailboxes.setdefault((src, dst, comm_id, tag),
                                  deque()).append(msg)
        self.progress += 1
        self.cond.notify_all()

    def find_message(self, dst: int, source: int, comm_id: int, tag: int):
        """Locate (without removing) the first matching mailbox entry.

        ``source``/``tag`` may be wildcards (< 0); messages only ever
        match within their own communicator.  Wildcards are resolved
        deterministically: lowest source first, then lowest tag, then
        FIFO within the queue.
        """
        candidates = []
        for (s, d, cid, t), queue in self.mailboxes.items():
            if d != dst or cid != comm_id or not queue:
                continue
            if source >= 0 and s != source:
                continue
            if tag >= 0 and t != tag:
                continue
            candidates.append((s, t))
        if not candidates:
            return None
        s, t = min(candidates)
        return (s, dst, comm_id, t)

    def pop_message(self, key) -> Message:
        """Remove and return the head message of a mailbox key."""
        queue = self.mailboxes[key]
        msg = queue.popleft()
        if not queue:
            del self.mailboxes[key]
        return msg

    def record_event(self, op: str, ranks, start: float, end: float,
                     words: int = 0) -> None:
        """Append a trace event (no-op unless tracing; lock held)."""
        if self.trace is not None:
            self.trace.append({"op": op, "ranks": tuple(ranks),
                               "start": start, "end": end,
                               "words": int(words)})

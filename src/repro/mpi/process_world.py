"""Multiprocess SPMD backend: real parallelism behind the same API.

Architecture — *control plane in the parent, data plane in shared
memory*:

* each rank's program runs in a forked **worker process** (its own GIL,
  its own BLAS threads);
* the authoritative :class:`~repro.mpi.world.World` — mailboxes,
  collective slots, traffic ledger, virtual clocks, deadlock detector —
  lives in the **parent**, exactly as on the thread backend.  A per-rank
  **proxy thread** in the parent owns a real
  :class:`~repro.mpi.communicator.Communicator` and replays the worker's
  communication calls against it, so word counts, α-β clock charges and
  failure semantics are *by construction* identical across backends;
* workers talk to their proxies over duplex pipes; ndarray payloads at
  or above the :func:`~repro.mpi.shm.shm_threshold_bytes` cutover ride
  named shared-memory segments instead of the pipe (see
  :mod:`repro.mpi.shm`).

The proxies decode shared-memory descriptors back into real arrays
*before* invoking the communicator, and re-encode results on the way
out — the accounting layer only ever sees genuine payloads.

User-supplied reduction callables cannot cross the pipe by pickle
(closures), so they stay in the worker and the proxy invokes them
through a callback round-trip on the same pipe: the worker is always
parked in its reply loop while a call is in flight, so it can service
the callback before the reply arrives.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import DeadlockError, MPIEmulatorError
from repro.mpi.communicator import Communicator
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, deserialize
from repro.mpi.request import Request
from repro.mpi.shm import (
    SegmentRegistry,
    decode_payload,
    encode_payload,
    sweep_orphans,
)
from repro.mpi.world import ABORT_GRACE_CAP, World

__all__ = ["ProcessCommunicator", "run_process_ranks"]

#: Monotone run counter, making segment-name prefixes unique per run
#: even within one parent process.
_RUN_IDS = itertools.count()


def _portable_exc(exc: BaseException) -> BaseException:
    """Return ``exc`` if it pickles, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickling failure
        return RuntimeError(f"[{type(exc).__name__}] {exc}")


@dataclass(frozen=True)
class _CommHandle:
    """Wire representation of a communicator created parent-side."""

    handle: int
    rank: int
    size: int


@dataclass(frozen=True)
class _CallableRef:
    """Wire marker for a worker-side callable (custom reduction op)."""

    cid: int


class _RemoteOp:
    """Parent-side stand-in invoking a worker callable via callback."""

    def __init__(self, link, cid: int) -> None:
        self._link = link
        self._cid = cid

    def __call__(self, a, b):
        return self._link.callback(self._cid, (a, b))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerLink:
    """The worker's end of the RPC pipe (plus shm bookkeeping)."""

    def __init__(self, conn, prefix: str, rank: int) -> None:
        self.conn = conn
        self._prefix = prefix
        self._rank = rank
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self.pins: list = []          # segments backing zero-copy views
        self.callables: dict[int, object] = {}
        self._next_cid = itertools.count()

    def _namer(self) -> str:
        return f"{self._prefix}w{self._rank}n{next(self._seq)}"

    def encode(self, value):
        return encode_payload(value, self._namer)

    def register_callable(self, fn) -> _CallableRef:
        cid = next(self._next_cid)
        self.callables[cid] = fn
        return _CallableRef(cid)

    def call(self, handle: int, method: str, args: tuple,
             kwargs: dict | None = None):
        """One synchronous RPC, servicing callbacks while waiting."""
        with self._lock:
            self.conn.send(("call", handle, method, self.encode(args),
                            self.encode(kwargs or {})))
            while True:
                reply = self.conn.recv()
                if reply[0] != "cb":
                    break
                _, cid, blob = reply
                try:
                    value = self.callables[cid](*decode_payload(blob))
                    self.conn.send(("cbr", self.encode(value)))
                except BaseException as exc:  # noqa: BLE001 - shipped back
                    self.conn.send(("cbe", _portable_exc(exc)))
        if reply[0] == "ok":
            # Zero-copy map: results are views pinned until worker exit.
            return decode_payload(reply[1], pin=self.pins)
        _, kind, exc = reply
        if kind == "abort":
            try:
                exc._repro_remote = "abort"
            except Exception:  # noqa: BLE001 - exotic exception type
                pass
        raise exc

    def send_terminal(self, message) -> None:
        with self._lock:
            self.conn.send(message)

    def close(self) -> None:
        for seg in self.pins:
            try:
                seg.close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        self.pins.clear()
        try:
            self.conn.close()
        except OSError:
            pass


class _RemoteClock:
    """Read-only view of this rank's parent-side virtual clock."""

    def __init__(self, comm: "ProcessCommunicator") -> None:
        object.__setattr__(self, "_comm", comm)

    def __getattr__(self, name: str):
        return self._comm._call("_clock_attr", name)


class _RemoteTraffic:
    """Method-forwarding view of the parent-side traffic ledger."""

    def __init__(self, comm: "ProcessCommunicator") -> None:
        self._comm = comm

    def snapshot(self):
        return self._comm._call("_traffic_call", "snapshot")

    def total_payload_words(self, *ops):
        return self._comm._call("_traffic_call", "total_payload_words", *ops)

    def total_wire_words(self, *ops):
        return self._comm._call("_traffic_call", "total_wire_words", *ops)

    def calls(self, op):
        return self._comm._call("_traffic_call", "calls", op)


class ProcessCommunicator:
    """Worker-side endpoint mirroring :class:`Communicator`'s API.

    Every communication/accounting call is replayed by this rank's
    parent proxy on a real communicator; buffer-filling convenience
    methods (``Recv``/``Bcast``/``Reduce``/...) are composed locally
    from the object-returning calls, exactly as the thread backend's
    implementations compose them.
    """

    def __init__(self, link: _WorkerLink, handle: int, rank: int,
                 size: int) -> None:
        self._link = link
        self._handle = handle
        self.rank = rank
        self.size = size

    def _call(self, method: str, *args, **kwargs):
        return self._link.call(self._handle, method, args, kwargs)

    def _wrap(self, result):
        if isinstance(result, _CommHandle):
            return ProcessCommunicator(self._link, result.handle,
                                       result.rank, result.size)
        return result

    # accessors --------------------------------------------------------
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    @property
    def clock(self):
        return _RemoteClock(self)

    @property
    def traffic(self):
        return _RemoteTraffic(self)

    def charge_flops(self, flops) -> None:
        self._call("charge_flops", flops)

    # point-to-point ---------------------------------------------------
    def send(self, obj, dest: int, tag: int = 0) -> None:
        self._call("send", obj, dest, tag)

    def Send(self, buf, dest: int, tag: int = 0) -> None:
        self._call("Send", np.ascontiguousarray(buf), dest, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        return self._call("recv", source, tag)

    def Recv(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> None:
        out = np.asarray(buf)
        payload = np.asarray(self._call("_recv_payload", source, tag))
        if payload.size > out.size:
            raise MPIEmulatorError(
                f"receive buffer too small: {out.size} < {payload.size}")
        flat = out.reshape(-1)
        flat[:payload.size] = payload.reshape(-1)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        return self._call("probe", source, tag)

    Iprobe = probe

    def isend(self, obj, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request(kind="send", complete_fn=lambda: None,
                       poll_fn=lambda: (True, None))

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return Request(kind="recv",
                       complete_fn=lambda: self.recv(source, tag),
                       poll_fn=lambda: self._call("_poll_recv", source, tag))

    def sendrecv(self, obj, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG):
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    # collectives ------------------------------------------------------
    def barrier(self) -> None:
        self._call("barrier")

    Barrier = barrier

    def bcast(self, obj, root: int = 0):
        return self._call("bcast", obj, root)

    def Bcast(self, buf, root: int = 0) -> None:
        arr = np.asarray(buf)
        payload = np.ascontiguousarray(arr).copy() \
            if self.rank == root else None
        data = self._call("_bcast_value", payload, root)
        if self.rank != root:
            src = np.asarray(data)
            if src.size != arr.size:
                raise MPIEmulatorError(
                    f"Bcast buffer mismatch: {arr.size} != {src.size}")
            arr.reshape(-1)[:] = src.reshape(-1)

    def _op_arg(self, op):
        return self._link.register_callable(op) if callable(op) else op

    def reduce(self, value, op="sum", root: int = 0):
        return self._call("reduce", value, self._op_arg(op), root)

    def allreduce(self, value, op="sum"):
        return self._call("allreduce", value, self._op_arg(op))

    def reduce_scatter(self, values, op="sum"):
        return self._call("reduce_scatter", list(values), self._op_arg(op))

    def Reduce(self, sendbuf, recvbuf, op="sum", root: int = 0) -> None:
        result = self.reduce(np.asarray(sendbuf), op=op, root=root)
        if self.rank == root:
            out = np.asarray(recvbuf)
            out.reshape(-1)[:] = np.asarray(result).reshape(-1)

    def Allreduce(self, sendbuf, recvbuf, op="sum") -> None:
        result = self.allreduce(np.asarray(sendbuf), op=op)
        out = np.asarray(recvbuf)
        out.reshape(-1)[:] = np.asarray(result).reshape(-1)

    def gather(self, value, root: int = 0):
        return self._call("gather", value, root)

    def allgather(self, value):
        return self._call("allgather", value)

    def Gather(self, sendbuf, recvbuf, root: int = 0) -> None:
        parts = self.gather(np.ascontiguousarray(sendbuf), root=root)
        if self.rank == root:
            out = np.asarray(recvbuf)
            stacked = np.stack([np.asarray(p) for p in parts])
            out.reshape(stacked.shape)[:] = stacked

    def Allgather(self, sendbuf, recvbuf) -> None:
        parts = self.allgather(np.ascontiguousarray(sendbuf))
        out = np.asarray(recvbuf)
        stacked = np.stack([np.asarray(p) for p in parts])
        out.reshape(stacked.shape)[:] = stacked

    def scatter(self, values, root: int = 0):
        values = None if values is None else list(values)
        return self._call("scatter", values, root)

    def Scatter(self, sendbuf, recvbuf, root: int = 0) -> None:
        values = None
        if self.rank == root:
            arr = np.asarray(sendbuf)
            values = [np.ascontiguousarray(arr[r]) for r in range(self.size)]
        part = self.scatter(values, root=root)
        out = np.asarray(recvbuf)
        out.reshape(-1)[:] = np.asarray(part).reshape(-1)

    def alltoall(self, values):
        return self._call("alltoall", list(values))

    # communicator management ------------------------------------------
    def Split(self, color: int, key: int = 0):
        return self._wrap(self._call("Split", int(color), int(key)))

    def Dup(self) -> "ProcessCommunicator":
        return self._wrap(self._call("Dup"))


def _counter_deltas(baseline: dict | None) -> dict:
    """Worker-side observability counters accrued since the fork."""
    from repro.observability._state import STATE
    from repro.observability.metrics import REGISTRY

    if baseline is None or not STATE.enabled:
        return {}
    counters = REGISTRY.snapshot()["counters"]
    return {k: v - baseline.get(k, 0) for k, v in counters.items()
            if v != baseline.get(k, 0)}


def _worker_main(conn, prefix: str, rank: int, size: int, fn, args,
                 kwargs, baseline) -> None:
    """Entry point of one forked rank process."""
    link = _WorkerLink(conn, prefix, rank)
    comm = ProcessCommunicator(link, 0, rank, size)
    try:
        try:
            ret = fn(comm, *args, **kwargs)
        except DeadlockError as exc:
            link.send_terminal(("deadlock", _portable_exc(exc)))
        except MPIEmulatorError as exc:
            if getattr(exc, "_repro_remote", None) == "abort":
                link.send_terminal(("aborted",))
            else:
                link.send_terminal(("failed", _portable_exc(exc)))
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            link.send_terminal(("failed", _portable_exc(exc)))
        else:
            try:
                payload = link.encode(ret)
            except Exception as exc:  # noqa: BLE001 - unpicklable return
                link.send_terminal(("failed", RuntimeError(
                    f"rank {rank} return value could not be "
                    f"transferred: {exc}")))
            else:
                link.send_terminal(("finished", payload,
                                    _counter_deltas(baseline)))
    except (BrokenPipeError, OSError):
        pass  # parent is gone; nothing left to report to
    finally:
        link.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _ParentLink:
    """One rank's proxy-side pipe end plus shm bookkeeping."""

    def __init__(self, conn, prefix: str, rank: int,
                 registry: SegmentRegistry) -> None:
        self.conn = conn
        self.rank = rank
        self.registry = registry
        self._prefix = prefix
        self._seq = itertools.count()

    def _namer(self) -> str:
        name = f"{self._prefix}p{self.rank}n{next(self._seq)}"
        self.registry.add(name)
        return name

    def encode(self, value):
        return encode_payload(value, self._namer)

    def decode(self, value):
        return decode_payload(value, on_name=self.registry.discard)

    def callback(self, cid: int, cb_args: tuple):
        """Invoke a worker-side callable (the worker is in its reply
        loop while its call is in flight, so it can service this)."""
        self.conn.send(("cb", cid, self.encode(cb_args)))
        reply = self.conn.recv()
        if reply[0] == "cbr":
            return self.decode(reply[1])
        raise reply[1]


def _dispatch(world: World, comms: dict, link: _ParentLink, handle: int,
              method: str, args: tuple, kwargs: dict, handle_seq):
    """Execute one worker RPC against the real communicator."""
    comm = comms.get(handle)
    if comm is None:
        raise MPIEmulatorError(f"unknown communicator handle {handle}")
    if method == "_recv_payload":
        msg = comm._do_recv(*args)
        return msg.payload if msg.is_buffer else deserialize(msg.payload)
    if method == "_poll_recv":
        source, tag = args
        wsource = comm._source_filter(source)
        with world.cond:
            world.check_abort()
            key = world.find_message(comm.world_rank, wsource,
                                     comm.comm_id, tag)
            if key is None:
                return (False, None)
            msg = world.pop_message(key)
            comm.clock.synchronize_to(msg.arrival_time)
            value = msg.payload if msg.is_buffer \
                else deserialize(msg.payload)
            return (True, value)
    if method == "_bcast_value":
        payload, root = args
        # Same rendezvous/accounting as bcast; the worker fills its own
        # buffer from the returned value.
        return comm.bcast(payload, root=root)
    if method == "_clock_attr":
        value = getattr(world.clocks[comm.world_rank], args[0])
        if callable(value):
            raise MPIEmulatorError(
                f"clock method {args[0]!r} is not available through the "
                f"process backend; read plain attributes instead")
        return value
    if method == "_traffic_call":
        return getattr(world.traffic, args[0])(*args[1:])
    if method not in _ALLOWED_METHODS:
        raise MPIEmulatorError(
            f"method {method!r} is not part of the process-backend "
            f"communicator protocol")
    args = tuple(_RemoteOp(link, a.cid) if isinstance(a, _CallableRef)
                 else a for a in args)
    kwargs = {k: _RemoteOp(link, v.cid) if isinstance(v, _CallableRef)
              else v for k, v in kwargs.items()}
    result = getattr(comm, method)(*args, **kwargs)
    if isinstance(result, Communicator):
        new = next(handle_seq)
        comms[new] = result
        return _CommHandle(new, result.rank, result.size)
    return result


_ALLOWED_METHODS = frozenset({
    "send", "Send", "recv", "probe", "barrier", "bcast", "reduce",
    "allreduce", "reduce_scatter", "gather", "allgather", "scatter",
    "alltoall", "Split", "Dup", "charge_flops",
})


@dataclass
class _RankChannel:
    rank: int
    proc: multiprocessing.Process
    link: _ParentLink
    done: bool = False


def _proxy_loop(world: World, chan: _RankChannel, returns: list,
                deadlock: list) -> None:
    """Parent thread replaying one worker's calls on a real comm."""
    from repro.observability import merge_counters

    rank, conn, link = chan.rank, chan.link.conn, chan.link
    comms: dict[int, Communicator] = {0: Communicator(world, rank)}
    handle_seq = itertools.count(1)

    def worker_died() -> None:
        # Terminal-message-free disappearance.  After an abort this is
        # expected teardown (the runtime reaps stragglers); before one
        # it is a genuine failure that must wake every blocked rank.
        with world.cond:
            aborted = world.abort_exc is not None
        if not aborted:
            code = chan.proc.exitcode
            world.rank_failed(rank, MPIEmulatorError(
                f"rank {rank} worker process died unexpectedly "
                f"(exit code {code})"))
        world.rank_finished()

    try:
        while True:
            try:
                if not conn.poll(0.05):
                    if chan.proc.is_alive():
                        continue
                    if conn.poll(0):  # close the died-after-send race
                        continue
                    worker_died()
                    return
                msg = conn.recv()
            except (EOFError, OSError):
                worker_died()
                return
            kind = msg[0]
            if kind == "call":
                _, handle, method, eargs, ekwargs = msg
                try:
                    result = _dispatch(world, comms, link, handle, method,
                                       link.decode(eargs),
                                       link.decode(ekwargs), handle_seq)
                    reply = ("ok", link.encode(result))
                except DeadlockError as exc:
                    reply = ("err", "deadlock", _portable_exc(exc))
                except MPIEmulatorError as exc:
                    tag = "abort" if exc is world.abort_exc else "error"
                    reply = ("err", tag, _portable_exc(exc))
                except BaseException as exc:  # noqa: BLE001 - shipped back
                    reply = ("err", "error", _portable_exc(exc))
                try:
                    conn.send(reply)
                except (OSError, ValueError):
                    worker_died()
                    return
            elif kind == "finished":
                _, payload, deltas = msg
                try:
                    returns[rank] = link.decode(payload)
                except Exception as exc:  # noqa: BLE001 - corrupt segment
                    world.rank_failed(rank, exc)
                if deltas:
                    merge_counters(deltas)
                world.rank_finished()
                return
            elif kind == "deadlock":
                deadlock.append(msg[1])
                world.rank_finished()
                return
            elif kind == "failed":
                world.rank_failed(rank, msg[1])
                world.rank_finished()
                return
            elif kind == "aborted":
                world.rank_finished()
                return
    finally:
        chan.done = True


def run_process_ranks(world: World, fn, args, kwargs, returns: list,
                      deadlock: list) -> None:
    """Run ``fn`` on forked rank processes against the parent world.

    Populates ``returns``/``deadlock`` exactly as the thread runner
    does; failure and deadlock state lands in ``world``.  Guarantees
    teardown: once the world aborts, stragglers get a bounded grace
    period (min of the world timeout and :data:`ABORT_GRACE_CAP`) and
    are then terminated and reaped; every shared-memory segment the run
    created is unlinked before returning.
    """
    from repro.observability._state import STATE
    from repro.observability.metrics import REGISTRY

    size = world.size
    ctx = multiprocessing.get_context("fork")
    prefix = f"repro-mpi-{os.getpid()}-{next(_RUN_IDS)}-"
    registry = SegmentRegistry()
    baseline = REGISTRY.snapshot()["counters"] if STATE.enabled else None

    channels: list[_RankChannel] = []
    try:
        for rank in range(size):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, prefix, rank, size, fn, args, kwargs,
                      baseline),
                name=f"repro-mpi-rank-{rank}", daemon=True)
            proc.start()
            child_conn.close()
            channels.append(_RankChannel(
                rank=rank, proc=proc,
                link=_ParentLink(parent_conn, prefix, rank, registry)))

        proxies = [threading.Thread(target=_proxy_loop,
                                    args=(world, chan, returns, deadlock),
                                    name=f"repro-mpi-proxy-{chan.rank}",
                                    daemon=True)
                   for chan in channels]
        for t in proxies:
            t.start()

        # Join with an abort watchdog: normal runs finish on their own;
        # an aborted world gets a bounded grace before stragglers are
        # terminated (a worker wedged in user code never re-enters the
        # protocol, so waiting longer cannot help).
        grace = min(max(world.timeout, 0.1), ABORT_GRACE_CAP)
        abort_mark = None
        while True:
            alive = [t for t in proxies if t.is_alive()]
            if not alive:
                break
            alive[0].join(timeout=0.05)
            with world.cond:
                aborted = world.abort_exc is not None
            if not aborted:
                abort_mark = None
                continue
            now = time.monotonic()
            if abort_mark is None:
                abort_mark = now
            elif now - abort_mark > grace:
                world.invalidate("aborted world still had live rank "
                                 "processes after the grace period")
                break
    finally:
        stragglers = [c for c in channels if c.proc.is_alive()]
        for chan in stragglers:
            chan.proc.terminate()
        deadline = time.monotonic() + 5.0
        for chan in channels:
            chan.proc.join(timeout=max(deadline - time.monotonic(), 0.1))
            if chan.proc.is_alive():
                chan.proc.kill()
                chan.proc.join(timeout=5.0)
        # Terminated workers leave their proxies to observe the dead
        # processes and finish; bound the wait so teardown cannot hang.
        settle = time.monotonic() + 5.0
        while any(not c.done for c in channels) \
                and time.monotonic() < settle:
            time.sleep(0.02)
        for chan in channels:
            try:
                chan.link.conn.close()
            except OSError:
                pass
            try:
                chan.proc.close()
            except ValueError:
                pass  # still alive despite kill; leave it to the OS
        registry.drain()
        sweep_orphans(prefix)

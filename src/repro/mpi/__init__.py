"""MPI emulator with an mpi4py-style API and pluggable backends.

The paper's reference implementation is C++/MPI; this package provides a
faithful message-passing runtime that executes the same SPMD algorithms
on one host:

* each rank runs the user's rank program in its own thread (default) or
  its own forked process (``backend="processes"``, real parallelism
  with shared-memory payload transfer — see ``docs/mpi_backends.md``);
* lowercase methods (``send``/``recv``/``bcast``/...) communicate pickled
  Python objects, uppercase methods (``Send``/``Recv``/``Bcast``/...)
  communicate numpy buffers — mirroring mpi4py's convention;
* every transfer is tallied in words (float64 units) by a traffic
  ledger, and, when a :class:`~repro.platform.cluster.ClusterConfig` is
  supplied, advances per-rank virtual clocks through the α-β cost model
  so that runtime/energy of 64-rank platforms can be simulated
  deterministically on a single core.  Accounting is identical on both
  backends — only wall-clock time differs.

Entry point: :func:`repro.mpi.runtime.run_spmd`.
"""

from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, words_of
from repro.mpi.counters import TrafficLedger
from repro.mpi.request import Request
from repro.mpi.communicator import Communicator, REDUCE_OPS
from repro.mpi.runtime import (
    MPI_BACKEND_ENV,
    MPI_BACKENDS,
    SPMDResult,
    default_mpi_backend_name,
    resolve_mpi_backend,
    run_spmd,
    set_default_mpi_backend,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "words_of",
    "TrafficLedger",
    "Request",
    "Communicator",
    "REDUCE_OPS",
    "run_spmd",
    "SPMDResult",
    "MPI_BACKEND_ENV",
    "MPI_BACKENDS",
    "default_mpi_backend_name",
    "resolve_mpi_backend",
    "set_default_mpi_backend",
]

"""The emulated communicator (mpi4py-style API).

Lowercase methods move pickled Python objects; uppercase methods move
numpy buffers (the "fast way" of the mpi4py tutorial).  Every operation
tallies traffic and — when the world was created with a cluster — plays
the α-β cost model forward on per-rank virtual clocks.

Sub-communicators are supported through :meth:`Communicator.Split`
(colour/key semantics as in MPI); a communicator addresses peers by
*local* rank, while traffic, clocks and the cost model always see the
underlying world ranks.

Performance-model conventions (see :mod:`repro.platform.cost`):

==============  ==================================  =========================
operation       critical-path payload words         wire words
==============  ==================================  =========================
send/recv       w                                   w
bcast           w                                   (P-1)·w
reduce          w                                   (P-1)·w
allreduce       2·w  (reduce + bcast)               2·(P-1)·w
gather          (P-1)·w  (root port bound)          (P-1)·w
scatter         (P-1)·w                             (P-1)·w
allgather       (P-1)·w                             P·(P-1)·w
alltoall        (P-1)·w                             P·(P-1)·w
reduce_scatter  2·w  (reduce + scatter of chunks)   2·(P-1)·w
barrier         0                                   0
==============  ==================================  =========================
"""

from __future__ import annotations

import numpy as np

from repro.errors import MPIEmulatorError, ValidationError
from repro.mpi.datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    deserialize,
    serialize,
    words_of,
)
from repro.mpi.request import Request
from repro.mpi.world import CollectiveSlot, Message, World
from repro.platform.cost import collective_energy, collective_time, p2p_energy, p2p_time

#: Supported named reduction operators.
REDUCE_OPS = ("sum", "prod", "max", "min")

_OP_FUNCS = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": lambda a, b: np.maximum(a, b),
    "min": lambda a, b: np.minimum(a, b),
}


def _resolve_op(op):
    if callable(op):
        return op
    if op in _OP_FUNCS:
        return _OP_FUNCS[op]
    raise ValidationError(
        f"unknown reduction op {op!r}; choose from {REDUCE_OPS} or a callable")


class Communicator:
    """One rank's endpoint into an emulated MPI world (or a sub-group)."""

    def __init__(self, world: World, rank: int, *, group=None,
                 comm_id: int = 0) -> None:
        self.world = world
        self.group = tuple(group) if group is not None \
            else tuple(range(world.size))
        if not 0 <= rank < len(self.group):
            raise MPIEmulatorError(
                f"rank {rank} out of range [0, {len(self.group)})")
        self.rank = rank
        self.size = len(self.group)
        self.comm_id = comm_id
        self.world_rank = self.group[rank]
        self._coll_seq = 0

    # mpi4py-style accessors ------------------------------------------------
    def Get_rank(self) -> int:
        """This process's rank within this communicator."""
        return self.rank

    def Get_size(self) -> int:
        """Number of ranks in this communicator."""
        return self.size

    @property
    def clock(self):
        """This rank's virtual clock."""
        return self.world.clocks[self.world_rank]

    @property
    def traffic(self):
        """The world-wide traffic ledger."""
        return self.world.traffic

    def _world_dest(self, local: int, what: str) -> int:
        if not 0 <= local < self.size:
            raise ValidationError(
                f"{what} {local} out of range [0, {self.size})")
        return self.group[local]

    # ------------------------------------------------------------------
    # compute accounting
    # ------------------------------------------------------------------
    def charge_flops(self, flops) -> None:
        """Bill local arithmetic to this rank's virtual clock.

        Accepts an int/float or a :class:`repro.sparse.ops.FlopCount`.
        Without a cluster the flops are tallied but no time advances.
        """
        total = getattr(flops, "total", flops)
        if total < 0:
            raise ValidationError(f"flops must be >= 0, got {total}")
        with self.world.cond:
            if self.world.cluster is not None:
                start = self.clock.time
                self.clock.charge_compute(
                    total, self.world.cluster.machine_of(self.world_rank))
                self.world.record_event("compute", (self.world_rank,),
                                        start, self.clock.time)
            else:
                self.clock.flops += int(total)

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def _do_send(self, payload, words: int, dest: int, tag: int,
                 is_buffer: bool) -> None:
        if tag < 0:
            raise ValidationError(f"tag must be >= 0, got {tag}")
        wdest = self._world_dest(dest, "dest")
        world = self.world
        with world.cond:
            world.check_abort()
            clock = self.clock
            arrival = clock.time
            if world.cluster is not None and wdest != self.world_rank:
                transfer = p2p_time(world.cluster, self.world_rank, wdest,
                                    words)
                joules = p2p_energy(world.cluster, self.world_rank, wdest,
                                    words)
                arrival = clock.time + transfer
                # Buffered send: the sender pays the injection latency and
                # the energy; the payload lands at `arrival`.
                clock.advance(world.cluster.machine.latency(
                    inter_node=world.cluster.is_inter_node(
                        self.world_rank, wdest)), joules)
            clock.record_traffic(words)
            world.traffic.record("send", words, words)
            world.record_event("send", (self.world_rank, wdest),
                               clock.time, arrival, words=words)
            world.post_message(self.world_rank, wdest, self.comm_id, tag,
                               Message(payload, words, arrival, is_buffer))

    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Blocking (buffered) send of a pickled Python object."""
        blob = serialize(obj)
        self._do_send(blob, words_of(obj), dest, tag, is_buffer=False)

    def Send(self, buf, dest: int, tag: int = 0) -> None:
        """Blocking (buffered) send of a numpy array."""
        arr = np.ascontiguousarray(buf)
        self._do_send(arr.copy(), words_of(arr), dest, tag, is_buffer=True)

    def _source_filter(self, source: int) -> int:
        if source < 0:
            return ANY_SOURCE
        return self._world_dest(source, "source")

    def _do_recv(self, source: int, tag: int):
        wsource = self._source_filter(source)
        world = self.world
        with world.cond:
            def ready():
                return world.find_message(self.world_rank, wsource,
                                          self.comm_id, tag)
            key = ready() or world.blocking_wait(
                ready, rank=self.world_rank,
                what=f"recv(source={source}, tag={tag})")
            msg = world.pop_message(key)
            self.clock.synchronize_to(msg.arrival_time)
            return msg

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive of a pickled Python object."""
        msg = self._do_recv(source, tag)
        if msg.is_buffer:
            return msg.payload  # already a private copy
        return deserialize(msg.payload)

    def Recv(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> None:
        """Blocking receive into a pre-allocated numpy buffer."""
        out = np.asarray(buf)
        msg = self._do_recv(source, tag)
        payload = msg.payload if msg.is_buffer else deserialize(msg.payload)
        payload = np.asarray(payload)
        if payload.size > out.size:
            raise MPIEmulatorError(
                f"receive buffer too small: {out.size} < {payload.size}")
        flat = out.reshape(-1)
        flat[:payload.size] = payload.reshape(-1)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check whether a matching message is deliverable."""
        wsource = self._source_filter(source)
        with self.world.cond:
            self.world.check_abort()
            return self.world.find_message(self.world_rank, wsource,
                                           self.comm_id, tag) is not None

    Iprobe = probe

    def isend(self, obj, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (buffered: completes immediately)."""
        self.send(obj, dest, tag)
        return Request(kind="send", complete_fn=lambda: None,
                       poll_fn=lambda: (True, None))

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``wait()`` returns the object."""
        def poll():
            world = self.world
            wsource = self._source_filter(source)
            with world.cond:
                world.check_abort()
                key = world.find_message(self.world_rank, wsource,
                                         self.comm_id, tag)
                if key is None:
                    return False, None
                msg = world.pop_message(key)
                self.clock.synchronize_to(msg.arrival_time)
                value = msg.payload if msg.is_buffer \
                    else deserialize(msg.payload)
                return True, value
        return Request(kind="recv",
                       complete_fn=lambda: self.recv(source, tag),
                       poll_fn=poll)

    def sendrecv(self, obj, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG):
        """Combined send-then-receive (deadlock-safe: send is buffered)."""
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _charge_collective(self, op: str, root: int, payload_words: int,
                           phase_words: list[int], wire_words: int) -> None:
        """Advance the group's clocks through the collective (lock held)."""
        world = self.world
        world.traffic.record(op, payload_words, wire_words)
        if world.cluster is None or self.size == 1:
            return
        participants = list(self.group)
        wroot = self.group[root]
        clocks = [world.clocks[r] for r in participants]
        t0 = max(c.time for c in clocks)
        duration = 0.0
        joules = 0.0
        for w in phase_words:
            duration += collective_time(
                world.cluster, wroot, participants, w,
                algorithm=world.collective_algorithm)
            joules += collective_energy(
                world.cluster, wroot, participants, w,
                algorithm=world.collective_algorithm)
        for c in clocks:
            c.synchronize_to(t0 + duration)
        # Energy is a global quantity; bill it once, on the root's clock,
        # so that summing clock energies gives the true total.
        world.clocks[wroot].advance(0.0, joules)
        world.record_event(op, participants, t0, t0 + duration,
                           words=payload_words)

    def _rendezvous(self, op: str, root: int, contribution,
                    finalize) -> CollectiveSlot:
        """Join this group's collective number ``seq``."""
        world = self.world
        with world.cond:
            world.check_abort()
            seq = self._coll_seq
            self._coll_seq += 1
            key = (self.comm_id, seq)
            slot = world.collectives.get(key)
            if slot is None:
                slot = CollectiveSlot(op, root)
                world.collectives[key] = slot
            elif slot.op != op or slot.root != root:
                exc = MPIEmulatorError(
                    f"collective mismatch at sequence {seq}: rank "
                    f"{self.rank} called {op}(root={root}) but another rank "
                    f"called {slot.op}(root={slot.root})")
                world._abort(exc)
                raise exc
            slot.contributions[self.rank] = contribution
            slot.arrived += 1
            if slot.arrived == self.size:
                slot.result = finalize(slot)
                slot.completed = True
                world.progress += 1
                world.cond.notify_all()
            else:
                world.blocking_wait(lambda: slot.completed,
                                    rank=self.world_rank,
                                    what=f"collective {op} #{seq} "
                                         f"(comm {self.comm_id})")
            slot.departed += 1
            if slot.departed == self.size:
                del world.collectives[key]
            return slot

    def barrier(self) -> None:
        """Synchronise this communicator's ranks (and virtual clocks)."""
        def finalize(slot):
            world = self.world
            world.traffic.record("barrier", 0, 0)
            if world.cluster is not None and self.size > 1:
                clocks = [world.clocks[r] for r in self.group]
                t0 = max(c.time for c in clocks)
                alpha = world.cluster.machine.latency(
                    inter_node=world.cluster.worst_link_inter())
                for c in clocks:
                    c.synchronize_to(t0 + alpha)
                world.record_event("barrier", self.group, t0, t0 + alpha)
            return None
        self._rendezvous("barrier", 0, None, finalize)

    Barrier = barrier

    def bcast(self, obj, root: int = 0):
        """Broadcast a Python object from ``root`` to all ranks."""
        self._check_root(root)
        payload = serialize(obj) if self.rank == root else None

        def finalize(slot):
            blob = slot.contributions[root]
            w = words_of(deserialize(blob))
            self._charge_collective("bcast", root, w, [w],
                                    (self.size - 1) * w)
            return blob
        slot = self._rendezvous("bcast", root, payload, finalize)
        # Each rank deserialises its own copy: no shared mutable state.
        return deserialize(slot.result)

    def Bcast(self, buf, root: int = 0) -> None:
        """Broadcast a numpy buffer from ``root`` in place."""
        self._check_root(root)
        arr = np.asarray(buf)
        payload = np.ascontiguousarray(arr).copy() if self.rank == root else None

        def finalize(slot):
            data = slot.contributions[root]
            w = words_of(data)
            self._charge_collective("bcast", root, w, [w],
                                    (self.size - 1) * w)
            return data
        slot = self._rendezvous("bcast", root, payload, finalize)
        if self.rank != root:
            src = slot.result
            if src.size != arr.size:
                raise MPIEmulatorError(
                    f"Bcast buffer mismatch: {arr.size} != {src.size}")
            arr.reshape(-1)[:] = src.reshape(-1)

    def _reduce_slot(self, kind: str, root: int, value, op):
        fn = _resolve_op(op)

        def finalize(slot):
            acc = None
            for r in range(self.size):
                v = slot.contributions[r]
                acc = v if acc is None else fn(acc, v)
            w = words_of(acc)
            phases = [w, w] if kind == "allreduce" else [w]
            wire = (2 if kind == "allreduce" else 1) * (self.size - 1) * w
            self._charge_collective(kind, root, sum(phases), phases, wire)
            return acc
        contribution = np.array(value, copy=True) \
            if isinstance(value, np.ndarray) else value
        return self._rendezvous(kind, root, contribution, finalize)

    def reduce(self, value, op="sum", root: int = 0):
        """Reduce Python/numpy values to ``root`` (others get ``None``)."""
        self._check_root(root)
        slot = self._reduce_slot("reduce", root, value, op)
        if self.rank != root:
            return None
        res = slot.result
        return res.copy() if isinstance(res, np.ndarray) else res

    def allreduce(self, value, op="sum"):
        """Reduce values and deliver the result to every rank."""
        slot = self._reduce_slot("allreduce", 0, value, op)
        res = slot.result
        return res.copy() if isinstance(res, np.ndarray) else res

    def Reduce(self, sendbuf, recvbuf, op="sum", root: int = 0) -> None:
        """Buffer reduce: ``recvbuf`` is filled on ``root`` only."""
        result = self.reduce(np.asarray(sendbuf), op=op, root=root)
        if self.rank == root:
            out = np.asarray(recvbuf)
            out.reshape(-1)[:] = np.asarray(result).reshape(-1)

    def Allreduce(self, sendbuf, recvbuf, op="sum") -> None:
        """Buffer allreduce: ``recvbuf`` is filled on every rank."""
        result = self.allreduce(np.asarray(sendbuf), op=op)
        out = np.asarray(recvbuf)
        out.reshape(-1)[:] = np.asarray(result).reshape(-1)

    def reduce_scatter(self, values, op="sum"):
        """Reduce a length-P sequence element-wise, scatter the chunks.

        Rank ``r`` receives ``op``-reduction of ``values[r]`` over all
        ranks — MPI's ``Reduce_scatter`` with one block per rank.
        """
        values = list(values)
        if len(values) != self.size:
            raise ValidationError(
                f"reduce_scatter needs exactly {self.size} values, "
                f"got {len(values)}")
        fn = _resolve_op(op)

        def finalize(slot):
            chunks = []
            w = 0
            for j in range(self.size):
                acc = None
                for r in range(self.size):
                    v = slot.contributions[r][j]
                    acc = v if acc is None else fn(acc, v)
                chunks.append(acc)
                w = max(w, words_of(acc))
            payload = 2 * w
            self._charge_collective("reduce_scatter", 0, payload, [w, w],
                                    2 * (self.size - 1) * w)
            return chunks
        contribution = [np.array(v, copy=True)
                        if isinstance(v, np.ndarray) else v for v in values]
        slot = self._rendezvous("reduce_scatter", 0, contribution, finalize)
        res = slot.result[self.rank]
        return res.copy() if isinstance(res, np.ndarray) else res

    def gather(self, value, root: int = 0):
        """Gather one value per rank into a list on ``root``."""
        self._check_root(root)

        def finalize(slot):
            values = [slot.contributions[r] for r in range(self.size)]
            w = max(words_of(deserialize(v)) for v in values)
            payload = (self.size - 1) * w
            self._charge_collective("gather", root, payload, [payload],
                                    (self.size - 1) * w)
            return values
        slot = self._rendezvous("gather", root, serialize(value), finalize)
        if self.rank != root:
            return None
        return [deserialize(v) for v in slot.result]

    def allgather(self, value):
        """Gather one value per rank into a list on every rank."""
        def finalize(slot):
            values = [slot.contributions[r] for r in range(self.size)]
            w = max(words_of(deserialize(v)) for v in values)
            payload = (self.size - 1) * w
            self._charge_collective("allgather", 0, payload, [payload],
                                    self.size * (self.size - 1) * w)
            return values
        slot = self._rendezvous("allgather", 0, serialize(value), finalize)
        return [deserialize(v) for v in slot.result]

    def Gather(self, sendbuf, recvbuf, root: int = 0) -> None:
        """Buffer gather: rank r's array lands in ``recvbuf[r]`` on root."""
        parts = self.gather(np.ascontiguousarray(sendbuf), root=root)
        if self.rank == root:
            out = np.asarray(recvbuf)
            stacked = np.stack([np.asarray(p) for p in parts])
            out.reshape(stacked.shape)[:] = stacked

    def Allgather(self, sendbuf, recvbuf) -> None:
        """Buffer allgather into ``recvbuf`` (shape ``(P, ...)`` or flat)."""
        parts = self.allgather(np.ascontiguousarray(sendbuf))
        out = np.asarray(recvbuf)
        stacked = np.stack([np.asarray(p) for p in parts])
        out.reshape(stacked.shape)[:] = stacked

    def scatter(self, values, root: int = 0):
        """Scatter a length-P sequence from ``root``; returns own element."""
        self._check_root(root)
        payload = None
        if self.rank == root:
            values = list(values)
            if len(values) != self.size:
                raise ValidationError(
                    f"scatter needs exactly {self.size} values, "
                    f"got {len(values)}")
            payload = [serialize(v) for v in values]

        def finalize(slot):
            blobs = slot.contributions[root]
            w = max(words_of(deserialize(b)) for b in blobs)
            payload_words = (self.size - 1) * w
            self._charge_collective("scatter", root, payload_words,
                                    [payload_words], (self.size - 1) * w)
            return blobs
        slot = self._rendezvous("scatter", root, payload, finalize)
        return deserialize(slot.result[self.rank])

    def Scatter(self, sendbuf, recvbuf, root: int = 0) -> None:
        """Buffer scatter: row r of ``sendbuf`` (on root) → ``recvbuf``."""
        values = None
        if self.rank == root:
            arr = np.asarray(sendbuf)
            values = [np.ascontiguousarray(arr[r]) for r in range(self.size)]
        part = self.scatter(values, root=root)
        out = np.asarray(recvbuf)
        out.reshape(-1)[:] = np.asarray(part).reshape(-1)

    def alltoall(self, values):
        """Personalised all-to-all: rank r receives ``values[r]`` of each."""
        values = list(values)
        if len(values) != self.size:
            raise ValidationError(
                f"alltoall needs exactly {self.size} values, "
                f"got {len(values)}")

        def finalize(slot):
            w = 0
            for r in range(self.size):
                w = max(w, max(words_of(deserialize(b))
                               for b in slot.contributions[r]))
            payload = (self.size - 1) * w
            self._charge_collective("alltoall", 0, payload, [payload],
                                    self.size * (self.size - 1) * w)
            return None
        blobs = [serialize(v) for v in values]
        slot = self._rendezvous("alltoall", 0, blobs, finalize)
        return [deserialize(slot.contributions[r][self.rank])
                for r in range(self.size)]

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def Split(self, color: int, key: int = 0) -> "Communicator | None":
        """Partition this communicator by ``color``; order by ``key``.

        Returns the new sub-communicator, or ``None`` for
        ``color < 0`` (MPI's ``MPI_UNDEFINED``).  Collective over this
        communicator.
        """
        color = int(color)
        key = int(key)
        contribution = (color, key, self.world_rank)

        def finalize(slot):
            # Deterministic fresh comm ids, one per colour, allocated in
            # colour order so every member computes the same mapping.
            world = self.world
            colors = sorted({c for c, _, _ in slot.contributions.values()
                             if c >= 0})
            ids = {}
            for c in colors:
                ids[c] = world.next_comm_id
                world.next_comm_id += 1
            groups = {}
            for c in colors:
                members = sorted(
                    ((k, wr) for (cc, k, wr) in slot.contributions.values()
                     if cc == c))
                groups[c] = tuple(wr for _, wr in members)
            world.traffic.record("split", 0, 0)
            return ids, groups
        slot = self._rendezvous("split", 0, contribution, finalize)
        if color < 0:
            return None
        ids, groups = slot.result
        group = groups[color]
        return Communicator(self.world, group.index(self.world_rank),
                            group=group, comm_id=ids[color])

    def Dup(self) -> "Communicator":
        """Duplicate this communicator: same group, private tag space.

        The MPI idiom for library isolation — messages sent on the
        duplicate can never match receives posted on the original.
        Collective over this communicator.
        """
        def finalize(slot):
            world = self.world
            cid = world.next_comm_id
            world.next_comm_id += 1
            world.traffic.record("dup", 0, 0)
            return cid
        slot = self._rendezvous("dup", 0, None, finalize)
        return Communicator(self.world, self.rank, group=self.group,
                            comm_id=slot.result)

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ValidationError(
                f"root {root} out of range [0, {self.size})")

"""Wall-clock timing helper used by preprocessing-overhead benchmarks."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch accumulating elapsed seconds.

    A single instance can be re-entered; ``elapsed`` accumulates across
    entries, which is how the Table II benchmark sums tuning + transform
    phases.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None, "Timer exited without entering"
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None

    @property
    def running(self) -> bool:
        """Whether the timer is currently inside a ``with`` block."""
        return self._start is not None

"""Wall-clock timing helper used by preprocessing-overhead benchmarks."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch accumulating elapsed seconds.

    A single instance can be re-entered; ``elapsed`` accumulates across
    entries, which is how the Table II benchmark sums tuning + transform
    phases.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        # Real errors, not asserts: ``python -O`` strips assert
        # statements, which would let a misuse slip through and corrupt
        # ``elapsed`` with a ``None`` subtraction further down.
        if self._start is not None:
            raise RuntimeError(
                "Timer entered while already running (nested entry would "
                "discard the outer start time)")
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is None:
            raise RuntimeError("Timer exited without entering")
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None

    @property
    def running(self) -> bool:
        """Whether the timer is currently inside a ``with`` block."""
        return self._start is not None

"""Deterministic random-number-generator plumbing.

Everything stochastic in the library (dictionary subsampling, dataset
synthesis, SGD batching) accepts a ``seed`` argument that may be an int,
``None`` or a ``numpy.random.Generator``; these helpers normalise it.
Reproducibility across processes matters because the SPMD algorithms
(Alg. 1 step 0) require every rank to draw the *same* column subset.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(seed=None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any seed-like input.

    Passing an existing Generator returns it unchanged so that callers can
    thread one generator through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(seed, *key: int) -> int:
    """Derive a child seed deterministically from ``seed`` and a key path.

    Used to give independent-but-reproducible streams to sub-tasks (e.g.
    one stream per trial in the Fig. 4 variance study) without the
    correlated-streams pitfall of ``seed + i``.
    """
    if isinstance(seed, np.random.Generator):
        # Derive from the generator's own bit stream; consumes state.
        base = int(seed.integers(0, 2**63 - 1))
    elif seed is None:
        base = 0
    else:
        base = int(seed)
    ss = np.random.SeedSequence(entropy=base, spawn_key=tuple(int(k) for k in key))
    return int(ss.generate_state(1, dtype=np.uint64)[0])


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def permutation_without(rng: np.random.Generator, n: int, size: int,
                        exclude: Sequence[int] = ()) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(n)`` avoiding ``exclude``."""
    exclude_set = set(int(e) for e in exclude)
    pool = np.array([i for i in range(n) if i not in exclude_set], dtype=np.int64)
    if size > pool.size:
        raise ValueError(
            f"cannot sample {size} distinct indices from {pool.size} candidates")
    return rng.choice(pool, size=size, replace=False)

"""Text rendering of simulated execution traces.

``run_spmd(..., trace=True)`` records every compute segment, message
and collective with simulated start/end times; this module renders the
trace as a per-rank ASCII Gantt chart — the quickest way to *see* why
Algorithm 2 is communication-bound on one platform and compute-bound on
another.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ValidationError

_GLYPHS = {
    "compute": "#",
    "send": ">",
    "bcast": "B",
    "reduce": "R",
    "allreduce": "A",
    "allgather": "G",
    "gather": "g",
    "scatter": "s",
    "alltoall": "X",
    "reduce_scatter": "r",
    "barrier": "|",
}


def trace_summary(trace: Sequence[dict]) -> dict:
    """Aggregate a trace: total busy seconds per op kind."""
    if trace is None:
        raise ValidationError("run with trace=True to collect a trace")
    totals: dict[str, float] = {}
    for event in trace:
        totals[event["op"]] = totals.get(event["op"], 0.0) + \
            (event["end"] - event["start"])
    return totals


def render_timeline(trace: Sequence[dict], n_ranks: int, *,
                    width: int = 72) -> str:
    """ASCII Gantt chart: one row per rank, simulated time left→right.

    Compute segments draw ``#`` on their rank; collectives draw their
    glyph across every participating rank; point-to-point sends draw
    ``>`` on the sender.  Overlaps keep the latest glyph (collectives
    are drawn after compute so synchronisation points stay visible).
    """
    if trace is None:
        raise ValidationError("run with trace=True to collect a trace")
    if n_ranks < 1 or width < 10:
        raise ValidationError(
            f"need n_ranks >= 1 and width >= 10, got {n_ranks}, {width}")
    if not trace:
        return "(empty trace)"
    t_end = max(e["end"] for e in trace)
    t_start = min(e["start"] for e in trace)
    span = max(t_end - t_start, 1e-30)

    def col(t: float) -> int:
        return min(int((t - t_start) / span * (width - 1)), width - 1)

    rows = [[" "] * width for _ in range(n_ranks)]
    ordered = sorted(trace, key=lambda e: (e["op"] != "compute",
                                           e["start"]))
    for event in ordered:
        glyph = _GLYPHS.get(event["op"], "?")
        lo, hi = col(event["start"]), col(event["end"])
        for rank in event["ranks"]:
            if 0 <= rank < n_ranks:
                for c in range(lo, hi + 1):
                    rows[rank][c] = glyph

    label_w = len(str(n_ranks - 1)) + 6
    lines = [f"{'rank':<{label_w}}" + f"0 .. {span:.3e} s (simulated)"]
    for rank in range(n_ranks):
        lines.append(f"rank {rank:<{label_w - 5}}" + "".join(rows[rank]))
    legend = "  ".join(f"{g}={op}" for op, g in _GLYPHS.items()
                       if any(e['op'] == op for e in trace))
    lines.append(legend)
    return "\n".join(lines)

"""Small shared utilities: RNG handling, validation, timing, tables."""

from repro.utils.rng import as_generator, spawn_generators, derive_seed
from repro.utils.validation import (
    check_matrix,
    check_vector,
    check_positive_int,
    check_fraction,
    check_in,
)
from repro.utils.timer import Timer
from repro.utils.tables import format_table
from repro.utils.timeline import render_timeline, trace_summary

__all__ = [
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "check_matrix",
    "check_vector",
    "check_positive_int",
    "check_fraction",
    "check_in",
    "Timer",
    "format_table",
    "render_timeline",
    "trace_summary",
]

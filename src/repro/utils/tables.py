"""Plain-text table formatting for benchmark reports.

The benchmark harness prints the same rows/series the paper reports;
this keeps the rendering consistent and dependency-free.
"""

from __future__ import annotations

from collections.abc import Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_render_cell(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 1))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)

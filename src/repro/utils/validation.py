"""Argument validation helpers.

These raise :class:`repro.errors.ValidationError` with actionable messages;
they are used at the public API boundary only — inner kernels trust their
callers to keep the hot path free of per-call overhead (see the
"optimizing code" guide: validate once, compute many times).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError


def check_matrix(a, name: str = "A", *, dtype=np.float64,
                 allow_empty: bool = False) -> np.ndarray:
    """Validate and return ``a`` as a 2-D float ndarray (C-contiguous)."""
    arr = np.asarray(a, dtype=dtype)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if not allow_empty and (arr.shape[0] == 0 or arr.shape[1] == 0):
        raise ValidationError(f"{name} must be non-empty, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    return np.ascontiguousarray(arr)


def check_vector(x, name: str = "x", *, size: int | None = None,
                 dtype=np.float64) -> np.ndarray:
    """Validate and return ``x`` as a 1-D float ndarray."""
    arr = np.asarray(x, dtype=dtype)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got ndim={arr.ndim}")
    if size is not None and arr.size != size:
        raise ValidationError(f"{name} must have length {size}, got {arr.size}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    return np.ascontiguousarray(arr)


def check_positive_int(value, name: str, *, minimum: int = 1) -> int:
    """Validate an integer argument ``value >= minimum``."""
    try:
        ivalue = int(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be an integer, got {value!r}") from exc
    if isinstance(value, float) and not float(value).is_integer():
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if ivalue < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {ivalue}")
    return ivalue


def check_fraction(value, name: str, *, inclusive_low: bool = False,
                   inclusive_high: bool = True) -> float:
    """Validate a float in (0, 1] (bounds configurable); used for ε."""
    try:
        fvalue = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a float, got {value!r}") from exc
    low_ok = fvalue >= 0.0 if inclusive_low else fvalue > 0.0
    high_ok = fvalue <= 1.0 if inclusive_high else fvalue < 1.0
    if not (low_ok and high_ok and np.isfinite(fvalue)):
        lo = "[0" if inclusive_low else "(0"
        hi = "1]" if inclusive_high else "1)"
        raise ValidationError(f"{name} must be in {lo}, {hi}, got {value!r}")
    return fvalue


def check_in(value, name: str, choices: Sequence):
    """Validate membership of a categorical argument."""
    if value not in choices:
        raise ValidationError(
            f"{name} must be one of {list(choices)!r}, got {value!r}")
    return value

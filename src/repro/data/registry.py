"""Named dataset registry with paper-shape metadata and scaling.

``load_dataset("salina", scale=0.05)`` returns a seeded surrogate whose
column count is ``scale`` times the paper's, keeping experiments
runnable on one core while documenting the original sizes (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import cancer, hyperspectral, lightfield
from repro.errors import ValidationError


@dataclass
class DatasetBundle:
    """A generated dataset plus provenance.

    Attributes
    ----------
    name:
        Registry key.
    matrix:
        The ``(M, N)`` data matrix.
    paper_shape:
        Shape reported in the paper for the real dataset.
    meta:
        Generator metadata (subspace model, seed, scale).
    """

    name: str
    matrix: np.ndarray
    paper_shape: tuple
    meta: dict = field(default_factory=dict)

    @property
    def shape(self) -> tuple:
        """Shape of the generated matrix."""
        return self.matrix.shape


def _make_salina(n: int, seed) -> tuple[np.ndarray, dict]:
    a, model = hyperspectral.salina_like(n=n, seed=seed)
    return a, {"model": model}


def _make_cancer(n: int, seed) -> tuple[np.ndarray, dict]:
    a, model = cancer.cancer_cells_like(n=n, seed=seed)
    return a, {"model": model}


def _make_lightfield(n: int, seed) -> tuple[np.ndarray, dict]:
    a, model = lightfield.lightfield_like(n=n, seed=seed)
    return a, {"model": model}


#: name -> (paper shape, paper application, generator)
DATASETS = {
    "salina": {
        "paper_shape": hyperspectral.PAPER_SHAPE,
        "application": "PCA (Power method)",
        "source": "Salinas hyperspectral scene [34] (synthetic surrogate)",
        "factory": _make_salina,
        "default_n": 1536,
    },
    "cancer": {
        "paper_shape": cancer.PAPER_SHAPE,
        "application": "PCA (Power method)",
        "source": "MD-Anderson cancer-cell morphologies (synthetic surrogate)",
        "factory": _make_cancer,
        "default_n": 1536,
    },
    "lightfield": {
        "paper_shape": lightfield.PAPER_SHAPE,
        "application": "denoising / super-resolution / PCA",
        "source": "Stanford Light Field archive [35] (synthetic surrogate)",
        "factory": _make_lightfield,
        "default_n": 1536,
    },
}


def load_dataset(name: str, *, n: int | None = None, scale: float | None = None,
                 seed=0) -> DatasetBundle:
    """Generate a registered dataset surrogate.

    Parameters
    ----------
    n:
        Explicit column count; overrides ``scale``.
    scale:
        Fraction of the paper's N (e.g. ``0.02`` → ~2%).
    """
    if name not in DATASETS:
        raise ValidationError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}")
    entry = DATASETS[name]
    if n is None:
        if scale is not None:
            if not 0 < scale <= 1:
                raise ValidationError(
                    f"scale must be in (0, 1], got {scale}")
            n = max(int(round(scale * entry["paper_shape"][1])), 64)
        else:
            n = entry["default_n"]
    matrix, meta = entry["factory"](n, seed)
    meta.update({"seed": seed, "application": entry["application"],
                 "source": entry["source"]})
    return DatasetBundle(name=name, matrix=matrix,
                         paper_shape=entry["paper_shape"], meta=meta)


def synthesize_to_store(name: str, path, *, n: int | None = None,
                        scale: float | None = None, seed=0,
                        chunk_width: int = 256):
    """Generate a registered surrogate straight into a column store.

    Returns the opened :class:`~repro.store.ColumnStore`.  Provenance
    (dataset name, paper shape, seed, generator source) is recorded in
    the store manifest's ``attrs`` so a store on disk is
    self-describing.  The surrogate generators produce the matrix in
    memory first (they are cheap at repro scale); the store is what lets
    the downstream pipeline treat it as out-of-core.
    """
    from repro.store import ColumnStore

    bundle = load_dataset(name, n=n, scale=scale, seed=seed)
    attrs = {
        "dataset": bundle.name,
        "paper_shape": list(bundle.paper_shape),
        "application": bundle.meta.get("application"),
        "source": bundle.meta.get("source"),
        "seed": bundle.meta.get("seed"),
    }
    return ColumnStore.from_matrix(path, bundle.matrix,
                                   chunk_width=chunk_width, attrs=attrs)

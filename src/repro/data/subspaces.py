"""Union-of-subspaces data generator — the paper's signal model.

``a₁..a_N ∈ ⋃ᵢ Uᵢ`` with each ``Uᵢ`` a ``Kᵢ``-dimensional subspace of
``R^M`` (Sec. V-B).  Columns in ``Uᵢ`` admit ``Kᵢ``-sparse codes over
any dictionary containing ≥ Kᵢ independent columns from ``Uᵢ``, which
is what makes α(L) decrease with dictionary redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class SubspaceModel:
    """Ground-truth geometry of a generated dataset.

    Attributes
    ----------
    bases:
        One ``(M, Kᵢ)`` orthonormal basis per subspace.
    labels:
        Subspace membership of each column.
    noise:
        Relative noise level used.
    """

    bases: tuple
    labels: np.ndarray
    noise: float

    @property
    def n_subspaces(self) -> int:
        """Number of subspaces."""
        return len(self.bases)

    @property
    def dims(self) -> tuple:
        """Per-subspace intrinsic dimensions Kᵢ."""
        return tuple(b.shape[1] for b in self.bases)

    def density_upper_bound(self, n: int) -> float:
        """``Σ Kᵢ·nᵢ / N`` — the α upper bound of Sec. VII."""
        counts = np.bincount(self.labels, minlength=self.n_subspaces)
        return float(sum(k * c for k, c in zip(self.dims, counts))) / n


def union_of_subspaces(m: int, n: int, *, n_subspaces: int = 4,
                       dim: int | tuple = 3, noise: float = 0.0,
                       weights=None, heavy_tail: bool = False,
                       nonnegative: bool = False,
                       seed=None) -> tuple[np.ndarray, SubspaceModel]:
    """Sample N columns from a union of random subspaces of ``R^M``.

    Parameters
    ----------
    dim:
        Intrinsic dimension Kᵢ — a scalar, or one value per subspace.
    noise:
        Per-column relative Gaussian noise (``‖noise‖ ≈ noise·‖col‖``);
        breaks exact low-rankness the way real data does.
    weights:
        Relative subspace population sizes (defaults to uniform).
    heavy_tail:
        Draw combination coefficients from a Student-t (df=3) instead of
        a normal — produces the "denser geometry" of the cancer-cell
        surrogate.
    nonnegative:
        Clamp entries at zero after mixing (reflectance-like data).

    Returns
    -------
    (A, model) with ``A`` of shape ``(m, n)``.
    """
    if m < 1 or n < 1:
        raise ValidationError(f"m and n must be >= 1, got {m}, {n}")
    if n_subspaces < 1:
        raise ValidationError(
            f"n_subspaces must be >= 1, got {n_subspaces}")
    if np.isscalar(dim):
        dims = [int(dim)] * n_subspaces
    else:
        dims = [int(d) for d in dim]
        if len(dims) != n_subspaces:
            raise ValidationError(
                f"need {n_subspaces} dims, got {len(dims)}")
    if any(d < 1 or d > m for d in dims):
        raise ValidationError(f"dims must lie in [1, {m}], got {dims}")
    if noise < 0:
        raise ValidationError(f"noise must be >= 0, got {noise}")
    rng = as_generator(seed)

    bases = []
    for d in dims:
        raw = rng.standard_normal((m, d))
        q, _ = np.linalg.qr(raw)
        bases.append(q[:, :d])

    if weights is None:
        probs = np.full(n_subspaces, 1.0 / n_subspaces)
    else:
        probs = np.asarray(weights, dtype=np.float64)
        if probs.shape != (n_subspaces,) or np.any(probs < 0):
            raise ValidationError("weights must be non-negative, one per "
                                  "subspace")
        probs = probs / probs.sum()
    labels = rng.choice(n_subspaces, size=n, p=probs)

    a = np.empty((m, n))
    for i, basis in enumerate(bases):
        cols = np.nonzero(labels == i)[0]
        if cols.size == 0:
            continue
        k = basis.shape[1]
        if heavy_tail:
            coefs = rng.standard_t(3, size=(k, cols.size))
        else:
            coefs = rng.standard_normal((k, cols.size))
        a[:, cols] = basis @ coefs
    if nonnegative:
        np.abs(a, out=a)
    if noise > 0:
        scale = np.linalg.norm(a, axis=0, keepdims=True) / np.sqrt(m)
        a = a + noise * scale * rng.standard_normal((m, n))
    model = SubspaceModel(bases=tuple(bases), labels=labels, noise=noise)
    return a, model

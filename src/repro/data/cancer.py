"""Cancer-cell-morphology surrogate.

The paper's MD-Anderson tumour morphology dataset (1024×111 960 in the
Fig. 5 caption) has the *densest* geometry of the three: at equal ε it
needs more OMP iterations per column and yields higher α than Light
Field despite being smaller (Table II's discussion).  The surrogate
realises that with many subspaces of higher intrinsic dimension,
heavy-tailed mixing coefficients and cross-subspace leakage.
"""

from __future__ import annotations

import numpy as np

from repro.data.subspaces import SubspaceModel, union_of_subspaces
from repro.errors import ValidationError
from repro.utils.rng import as_generator, derive_seed

#: Paper shape (Fig. 5 caption): M = 1024, N = 111 960.
PAPER_SHAPE = (1024, 111_960)


def cancer_cells_like(*, m: int = 256, n: int = 2048, n_subspaces: int = 12,
                      dim: int = 5, noise: float = 0.01,
                      leakage: float = 0.08,
                      seed=None) -> tuple[np.ndarray, SubspaceModel]:
    """Generate a cancer-cell-like matrix (morphology features × cells).

    ``leakage`` adds a fraction of a second random subspace's signal to
    each column, the cross-class correlation real morphology data shows;
    it increases OMP iteration counts at tight ε without destroying the
    union-of-subspaces backbone.
    """
    if not 0 <= leakage < 1:
        raise ValidationError(f"leakage must be in [0, 1), got {leakage}")
    a, model = union_of_subspaces(m, n, n_subspaces=n_subspaces, dim=dim,
                                  noise=0.0, heavy_tail=True,
                                  seed=derive_seed(seed, 0))
    rng = as_generator(derive_seed(seed, 1))
    if leakage > 0:
        other = rng.integers(0, n_subspaces, size=n)
        for j in range(n):
            basis = model.bases[int(other[j])]
            mix = basis @ rng.standard_normal(basis.shape[1])
            norm_col = np.linalg.norm(a[:, j])
            norm_mix = np.linalg.norm(mix)
            if norm_mix > 0:
                a[:, j] += leakage * norm_col * mix / norm_mix
    if noise > 0:
        scale = np.linalg.norm(a, axis=0, keepdims=True) / np.sqrt(m)
        a += noise * scale * rng.standard_normal((m, n))
    return a, SubspaceModel(bases=model.bases, labels=model.labels,
                            noise=noise)

"""Synthetic dataset surrogates.

The paper evaluates on Salinas hyperspectral, MD-Anderson Cancer Cell
morphology and Stanford Light Field data — none redistributable here.
Each generator below synthesises data with the one property ExtDict
exploits: columns living on a *union of low-dimensional subspaces*
(Sec. II-B), with per-dataset geometry chosen to match the paper's
observed behaviour (Light Field highly redundant, Cancer Cells dense).
"""

from repro.data.subspaces import SubspaceModel, union_of_subspaces
from repro.data.hyperspectral import salina_like
from repro.data.cancer import cancer_cells_like
from repro.data.lightfield import (
    lightfield_like,
    lightfield_patches,
    camera_subset_rows,
)
from repro.data.images import (
    psnr,
    add_noise_snr,
    image_to_patches,
    patches_to_image,
    synthetic_image,
)
from repro.data.registry import (
    DATASETS,
    DatasetBundle,
    load_dataset,
    synthesize_to_store,
)

__all__ = [
    "SubspaceModel",
    "union_of_subspaces",
    "salina_like",
    "cancer_cells_like",
    "lightfield_like",
    "lightfield_patches",
    "camera_subset_rows",
    "psnr",
    "add_noise_snr",
    "image_to_patches",
    "patches_to_image",
    "synthetic_image",
    "DATASETS",
    "DatasetBundle",
    "load_dataset",
    "synthesize_to_store",
]

"""Light-field surrogate.

A light field camera array captures the same scene from a grid of
viewpoints; an ``8×8`` patch stacked across a ``5×5`` array gives a
``25·64 = 1600``-dimensional vector whose views are near-copies shifted
by disparity — the most redundant (lowest effective rank) of the
paper's datasets.  The super-resolution experiment reconstructs the full
5×5 stack from a central 3×3 subset (1600 vs 576 rows, Sec. VIII-A).
"""

from __future__ import annotations

import numpy as np

from repro.data.images import image_to_patches, synthetic_image
from repro.data.subspaces import SubspaceModel, union_of_subspaces
from repro.errors import ValidationError
from repro.utils.rng import as_generator, derive_seed

#: Paper shape (Fig. 5 caption): M = 18 496, N = 73 000 (patch stacks).
PAPER_SHAPE = (18_496, 73_000)


def lightfield_patches(*, cams: int = 5, patch: int = 8,
                       image_size: int = 48, n_images: int = 4,
                       stride: int = 4, max_disparity: int = 2,
                       seed=None) -> np.ndarray:
    """Build a light-field patch dataset from synthetic scenes.

    Each column stacks the same scene patch as seen by every camera of
    a ``cams×cams`` grid, with integer disparity shifts proportional to
    the camera's offset from the array centre.  Shape:
    ``(cams²·patch², n_patches·n_images)``.
    """
    if cams < 1 or patch < 2:
        raise ValidationError(
            f"need cams >= 1 and patch >= 2, got {cams}, {patch}")
    if max_disparity < 0:
        raise ValidationError(
            f"max_disparity must be >= 0, got {max_disparity}")
    margin = max_disparity * (cams // 2)
    blocks = []
    center = cams // 2
    for i in range(n_images):
        scene = synthetic_image(image_size + 2 * margin,
                                seed=derive_seed(seed, i))
        views = []
        for cy in range(cams):
            for cx in range(cams):
                dy = (cy - center) * max_disparity
                dx = (cx - center) * max_disparity
                window = scene[margin + dy:margin + dy + image_size,
                               margin + dx:margin + dx + image_size]
                views.append(image_to_patches(window, patch, stride))
        blocks.append(np.concatenate(views, axis=0))
    return np.concatenate(blocks, axis=1)


def camera_subset_rows(*, cams_full: int = 5, cams_sub: int = 3,
                       patch: int = 8) -> np.ndarray:
    """Row indices of the centred ``cams_sub×cams_sub`` camera block.

    With the paper's numbers (5→3 cameras, 8×8 patches) this selects
    576 of the 1600 rows.
    """
    if cams_sub > cams_full or cams_sub < 1:
        raise ValidationError(
            f"cams_sub must be in [1, {cams_full}], got {cams_sub}")
    offset = (cams_full - cams_sub) // 2
    ppatch = patch * patch
    rows = []
    for cy in range(offset, offset + cams_sub):
        for cx in range(offset, offset + cams_sub):
            cam = cy * cams_full + cx
            rows.extend(range(cam * ppatch, (cam + 1) * ppatch))
    return np.asarray(rows, dtype=np.int64)


def lightfield_like(*, m: int = 400, n: int = 2048, n_subspaces: int = 3,
                    dim: int = 2, noise: float = 0.005,
                    seed=None) -> tuple[np.ndarray, SubspaceModel]:
    """Generic light-field-statistics matrix for the α(L) sweeps.

    Very few, very low-dimensional subspaces with tiny noise — the
    "highly redundant" end of the spectrum, where the optimally tuned
    dictionary collapses to near L_min (the Fig. 7 RankMap-tie case).
    """
    rng = as_generator(seed)
    return union_of_subspaces(m, n, n_subspaces=n_subspaces, dim=dim,
                              noise=noise, seed=rng)

"""Image utilities: synthesis, patching, noise, PSNR.

Supports the denoising and super-resolution applications (Sec. VIII):
images are processed as stacks of vectorised square patches, and quality
is reported as PSNR = ``10·log10(MAX² / MSE)`` dB.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import as_generator


def synthetic_image(size: int = 64, *, seed=None,
                    n_blobs: int = 6) -> np.ndarray:
    """Piecewise-smooth test image in [0, 1]: gradients + soft blobs.

    Natural-image-like enough for patch dictionaries to be useful:
    smooth regions, localised structures, repeated texture.
    """
    if size < 8:
        raise ValidationError(f"size must be >= 8, got {size}")
    rng = as_generator(seed)
    yy, xx = np.mgrid[0:size, 0:size] / size
    img = 0.3 + 0.3 * xx + 0.2 * yy
    img += 0.08 * np.sin(2 * np.pi * 3 * xx) * np.sin(2 * np.pi * 2 * yy)
    for _ in range(n_blobs):
        cy, cx = rng.uniform(0.1, 0.9, size=2)
        r = rng.uniform(0.05, 0.25)
        amp = rng.uniform(-0.35, 0.35)
        img += amp * np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / r ** 2))
    lo, hi = img.min(), img.max()
    return (img - lo) / max(hi - lo, 1e-12)


def image_to_patches(image: np.ndarray, patch: int,
                     stride: int | None = None) -> np.ndarray:
    """Vectorise overlapping ``patch×patch`` tiles into columns.

    Returns an array of shape ``(patch², n_patches)`` with patches in
    row-major scan order.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValidationError(f"image must be 2-D, got {image.ndim}-D")
    h, w = image.shape
    if patch < 1 or patch > min(h, w):
        raise ValidationError(
            f"patch must be in [1, {min(h, w)}], got {patch}")
    stride = stride or patch
    if stride < 1:
        raise ValidationError(f"stride must be >= 1, got {stride}")
    ys = range(0, h - patch + 1, stride)
    xs = range(0, w - patch + 1, stride)
    cols = [image[y:y + patch, x:x + patch].reshape(-1)
            for y in ys for x in xs]
    return np.stack(cols, axis=1)


def patches_to_image(patches: np.ndarray, shape: tuple[int, int],
                     patch: int, stride: int | None = None) -> np.ndarray:
    """Invert :func:`image_to_patches`, averaging overlapping pixels."""
    patches = np.asarray(patches, dtype=np.float64)
    h, w = shape
    stride = stride or patch
    ys = list(range(0, h - patch + 1, stride))
    xs = list(range(0, w - patch + 1, stride))
    if patches.shape != (patch * patch, len(ys) * len(xs)):
        raise ValidationError(
            f"patches shape {patches.shape} inconsistent with image "
            f"{shape}, patch={patch}, stride={stride}")
    accum = np.zeros(shape)
    count = np.zeros(shape)
    k = 0
    for y in ys:
        for x in xs:
            accum[y:y + patch, x:x + patch] += \
                patches[:, k].reshape(patch, patch)
            count[y:y + patch, x:x + patch] += 1.0
            k += 1
    covered = count > 0
    out = np.zeros(shape)
    out[covered] = accum[covered] / count[covered]
    return out


def add_noise_snr(signal: np.ndarray, snr_db: float,
                  *, seed=None) -> np.ndarray:
    """Add white Gaussian noise at the given signal-to-noise ratio (dB)."""
    signal = np.asarray(signal, dtype=np.float64)
    rng = as_generator(seed)
    power = float(np.mean(signal ** 2))
    if power == 0.0:
        return signal.copy()
    noise_power = power / (10.0 ** (snr_db / 10.0))
    return signal + np.sqrt(noise_power) * rng.standard_normal(signal.shape)


def psnr(reference: np.ndarray, test: np.ndarray,
         *, max_value: float | None = None) -> float:
    """Peak signal-to-noise ratio in dB (Sec. VIII-D definition)."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValidationError(
            f"shape mismatch: {reference.shape} vs {test.shape}")
    mse = float(np.mean((reference - test) ** 2))
    if mse == 0.0:
        return float("inf")
    peak = float(np.max(np.abs(reference))) if max_value is None \
        else float(max_value)
    if peak <= 0:
        raise ValidationError("reference image has no signal")
    return 10.0 * np.log10(peak * peak / mse)

"""Salinas-like hyperspectral surrogate.

The Salinas scene is 204 usable AVIRIS bands over ~54k vegetation
pixels spanning 16 crop classes; each class's spectra are smooth curves
living near a low-dimensional cone.  The surrogate builds smooth
spectral endmember bases (Gaussian bumps + low-order trends) per class
and mixes them non-negatively — dense in the ambient space, union-of-
low-rank underneath, matching the α(L) behaviour of Fig. 4.
"""

from __future__ import annotations

import numpy as np

from repro.data.subspaces import SubspaceModel
from repro.errors import ValidationError
from repro.utils.rng import as_generator

#: Paper shape (Fig. 5 caption): M = 203 bands, N = 54 129 pixels.
PAPER_SHAPE = (203, 54_129)


def _smooth_basis(m: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """Orthonormalised smooth spectral curves (bumps over band index)."""
    grid = np.linspace(0.0, 1.0, m)
    curves = np.empty((m, k))
    for j in range(k):
        center = rng.uniform(0.1, 0.9)
        width = rng.uniform(0.05, 0.3)
        bump = np.exp(-0.5 * ((grid - center) / width) ** 2)
        trend = rng.uniform(-0.5, 0.5) * grid + rng.uniform(0.2, 1.0)
        curves[:, j] = bump * trend
    q, _ = np.linalg.qr(curves)
    return q[:, :k]


def salina_like(*, m: int = 203, n: int = 2048, n_classes: int = 12,
                dim: int = 3, noise: float = 0.01,
                seed=None) -> tuple[np.ndarray, SubspaceModel]:
    """Generate a Salinas-like matrix (bands × pixels).

    Defaults are scaled down from the paper's 203×54 129 for laptop-speed
    experiments; pass ``n=PAPER_SHAPE[1]`` for the full-size surrogate.
    """
    if m < 4 or n < n_classes:
        raise ValidationError(
            f"need m >= 4 and n >= n_classes, got m={m}, n={n}, "
            f"n_classes={n_classes}")
    rng = as_generator(seed)
    bases = [_smooth_basis(m, dim, rng) for _ in range(n_classes)]
    labels = rng.choice(n_classes, size=n)
    a = np.empty((m, n))
    for i, basis in enumerate(bases):
        cols = np.nonzero(labels == i)[0]
        if cols.size == 0:
            continue
        # Non-negative abundances: reflectance-like mixing.
        coefs = np.abs(rng.standard_normal((dim, cols.size))) + 0.05
        a[:, cols] = basis @ coefs
    if noise > 0:
        scale = np.linalg.norm(a, axis=0, keepdims=True) / np.sqrt(m)
        a += noise * scale * rng.standard_normal((m, n))
    model = SubspaceModel(bases=tuple(bases), labels=labels, noise=noise)
    return a, model

"""repro — ExtDict: extensible dictionaries for data- and platform-aware
large-scale learning (IPDPS 2017 reproduction).

Public entry points
-------------------
- :class:`repro.core.ExtDict` — the end-to-end framework (tune +
  transform + distributed execution).
- :func:`repro.core.exd_transform` — Algorithm 1 (the ExD projection).
- :mod:`repro.solvers` — LASSO / ridge / elastic-net / FISTA / CG /
  Power-method / sparse-PCA solvers on serial or distributed Gram
  operators.
- :mod:`repro.baselines` — RCSS, oASIS, RankMap, SGD and the dense
  ``AᵀA`` comparison points.
- :mod:`repro.mpi`, :mod:`repro.platform` — the emulated distributed
  substrate (message passing + performance simulation).
- :mod:`repro.data` — synthetic union-of-subspaces dataset surrogates.
- :mod:`repro.apps` — denoising, super-resolution, PCA, clustering,
  partitioning and classification applications.

See ``docs/api_overview.md`` for the full index.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Comparison points from the paper's evaluation (Sec. VIII-A):

* dense ``AᵀA`` — the untransformed baseline;
* RCSS — randomized column subset selection with dense least-squares
  coefficients [17];
* oASIS — adaptive greedy column selection [22];
* RankMap — error-minimal basis with sparse coefficients, not platform
  tuned [28];
* SGD — distributed minibatch stochastic gradient descent with Adagrad.

Every transformation baseline returns the same
:class:`~repro.core.transform.TransformedData` record as ExD, so it can
be dropped into the ExtDict framework unchanged ("each of these
transformations can substitute ExD within our proposed framework").
"""

from repro.baselines.dense import (
    DenseGramOperator,
    LocalDenseGramWorker,
    dense_gram_update_program,
    run_dense_distributed_gram,
)
from repro.baselines.rcss import rcss_transform
from repro.baselines.oasis import oasis_transform
from repro.baselines.rankmap import rankmap_transform
from repro.baselines.sgd import SGDResult, sgd_lasso, distributed_sgd_lasso

__all__ = [
    "DenseGramOperator",
    "LocalDenseGramWorker",
    "dense_gram_update_program",
    "run_dense_distributed_gram",
    "rcss_transform",
    "oasis_transform",
    "rankmap_transform",
    "SGDResult",
    "sgd_lasso",
    "distributed_sgd_lasso",
]

"""Distributed minibatch SGD with Adagrad — the learning baseline.

The paper's comparison point for the regression applications
(Sec. VIII-A): each iteration samples a row batch ``A_b`` (default 64
rows) and updates with ``A_bᵀ(A_b x − y_b)`` instead of the full Gram
product.  Communication per iteration is bounded by the batch size
(one batch-length reduce + broadcast), lower than ExtDict's
``min(M, L)`` — but convergence is slow and non-guaranteed, and memory
is not reduced at all, which is exactly the trade Fig. 9 shows.

Columns are partitioned across ranks as in Algorithm 2; the batch row
indices are drawn from an identical stream on every rank so no index
traffic is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.solvers.adagrad import AdagradState
from repro.solvers.lasso import soft_threshold
from repro.utils.rng import derive_seed
from repro.utils.validation import check_matrix, check_positive_int


@dataclass
class SGDResult:
    """Solution and trace of an SGD run."""

    x: np.ndarray
    iterations: int
    converged: bool
    history: list = field(default_factory=list)
    spmd: object | None = None


def sgd_lasso(a, y, lam: float, *, batch: int = 64, lr: float = 0.1,
              max_iter: int = 2000, tol: float = 1e-6,
              seed=None, callback=None) -> SGDResult:
    """Serial reference: minibatch proximal-Adagrad SGD for LASSO.

    ``callback(it, x)`` (optional) runs after every iteration — used by
    the convergence-trajectory instrumentation of the Fig. 9 benchmark.
    """
    a = check_matrix(a, "A")
    y = np.asarray(y, dtype=np.float64)
    m, n = a.shape
    if y.shape != (m,):
        raise ValidationError(f"y must have shape ({m},), got {y.shape}")
    batch = min(check_positive_int(batch, "batch"), m)
    rng = np.random.default_rng(derive_seed(seed, 0))
    x = np.zeros(n)
    adagrad = AdagradState(n, lr=lr)
    result = SGDResult(x=x, iterations=0, converged=False)
    for it in range(1, max_iter + 1):
        rows = rng.choice(m, size=batch, replace=False)
        a_b = a[rows]
        resid = a_b @ x - y[rows]
        grad = 2.0 * (a_b.T @ resid)
        step = adagrad.step(grad)
        x_new = soft_threshold(x - step, lam * adagrad.effective_rates())
        change = float(np.linalg.norm(x_new - x)) / \
            max(float(np.linalg.norm(x_new)), 1.0)
        result.history.append(change)
        x = x_new
        if callback is not None:
            callback(it, x)
        if change <= tol:
            result.x = x
            result.iterations = it
            result.converged = True
            return result
    result.x = x
    result.iterations = max_iter
    return result


def sgd_lasso_program(comm, a: np.ndarray, y: np.ndarray, lam: float, *,
                      batch: int = 64, lr: float = 0.1,
                      max_iter: int = 2000, tol: float = 1e-6, seed=None):
    """Rank program: column-partitioned distributed minibatch SGD."""
    rank, p = comm.Get_rank(), comm.Get_size()
    m, n = a.shape
    batch = min(batch, m)
    lo, hi = rank * n // p, (rank + 1) * n // p
    a_loc = np.ascontiguousarray(a[:, lo:hi])
    n_i = hi - lo
    # Identical batch stream on every rank: no index communication.
    rng = np.random.default_rng(derive_seed(seed, 0))
    x_i = np.zeros(n_i)
    adagrad = AdagradState(max(n_i, 1), lr=lr)
    history: list[float] = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        rows = rng.choice(m, size=batch, replace=False)
        a_b = a_loc[rows]
        # Partial batch product, then a batch-length reduce+broadcast —
        # the baseline's entire per-iteration traffic.
        v_i = a_b @ x_i
        comm.charge_flops(2 * batch * n_i)
        v = comm.reduce(v_i, op="sum", root=0)
        if rank == 0:
            v = v - y[rows]
        v = comm.bcast(v, root=0)
        grad_i = 2.0 * (a_b.T @ v)
        comm.charge_flops(2 * batch * n_i)
        if n_i:
            step = adagrad.step(grad_i)
            x_new = soft_threshold(x_i - step,
                                   lam * adagrad.effective_rates())
            comm.charge_flops(6 * n_i)
        else:
            x_new = x_i
        local = np.array([float(np.sum((x_new - x_i) ** 2)),
                          float(np.sum(x_new ** 2))])
        totals = comm.allreduce(local, op="sum")
        change = float(np.sqrt(totals[0])) / max(float(np.sqrt(totals[1])), 1.0)
        history.append(change)
        x_i = x_new
        if change <= tol:
            converged = True
            break
    blocks = comm.gather(x_i, root=0)
    if rank == 0:
        return np.concatenate(blocks), it, converged, history
    return None


def distributed_sgd_lasso(a, y, lam: float, cluster, *, batch: int = 64,
                          lr: float = 0.1, max_iter: int = 2000,
                          tol: float = 1e-6, seed=None) -> SGDResult:
    """Driver: distributed SGD on the emulated cluster."""
    from repro.mpi.runtime import run_spmd

    a = check_matrix(a, "A")
    y = np.asarray(y, dtype=np.float64)
    if y.shape != (a.shape[0],):
        raise ValidationError(
            f"y must have shape ({a.shape[0]},), got {y.shape}")
    result = run_spmd(0, sgd_lasso_program, a, y, lam, batch=batch, lr=lr,
                      max_iter=max_iter, tol=tol, seed=seed,
                      cluster=cluster)
    x, iterations, converged, history = result.returns[0]
    return SGDResult(x=x, iterations=iterations, converged=converged,
                     history=history, spmd=result)

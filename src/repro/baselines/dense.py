"""The untransformed baseline: distributed ``AᵀA x`` on raw data.

Column-partitioned like Algorithm 2 but with the dense data block:
``v_i = A_i x_i`` (length M) reduced to root and broadcast back, then
``z_i = A_iᵀ v``.  Per-iteration critical-path traffic: ``2·M`` words;
arithmetic ``2·M·N/P`` multiplies — the quantities Fig. 7/10 compare
against the transformed costs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sparse.ops import counted_dense_matvec, counted_dense_rmatvec
from repro.utils.validation import check_matrix


class DenseGramOperator:
    """Serial ``x -> AᵀA x`` with FLOP accounting (never forms AᵀA)."""

    def __init__(self, a) -> None:
        self.a = check_matrix(a, "A")
        self.flops = 0

    @property
    def n(self) -> int:
        """Operand length."""
        return self.a.shape[1]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        v, f1 = counted_dense_matvec(self.a, np.asarray(x, np.float64))
        out, f2 = counted_dense_rmatvec(self.a, v)
        self.flops += f1.total + f2.total
        return out


class LocalDenseGramWorker:
    """Per-rank worker for distributed ``AᵀA x`` (baseline of Alg. 2)."""

    def __init__(self, comm, a: np.ndarray) -> None:
        self.comm = comm
        a = np.asarray(a, dtype=np.float64)
        n = a.shape[1]
        p, rank = comm.Get_size(), comm.Get_rank()
        self.lo, self.hi = rank * n // p, (rank + 1) * n // p
        self.a_i = np.ascontiguousarray(a[:, self.lo:self.hi])

    @property
    def local_n(self) -> int:
        """Number of columns this rank owns."""
        return self.hi - self.lo

    def slice_local(self, x: np.ndarray) -> np.ndarray:
        """Extract this rank's block of a full-length vector."""
        return np.asarray(x[self.lo:self.hi], dtype=np.float64).copy()

    def apply(self, x_i: np.ndarray) -> np.ndarray:
        """One distributed Gram update on the raw data."""
        comm = self.comm
        v_i, f1 = counted_dense_matvec(self.a_i, x_i)
        comm.charge_flops(f1)
        v = comm.reduce(v_i, op="sum", root=0)
        v = comm.bcast(v, root=0)
        z_i, f2 = counted_dense_rmatvec(self.a_i, v)
        comm.charge_flops(f2)
        return z_i

    def adjoint_data_apply(self, y: np.ndarray) -> np.ndarray:
        """Local block of ``Aᵀy`` (one-time setup for regression)."""
        out, f = counted_dense_rmatvec(self.a_i, np.asarray(y, np.float64))
        self.comm.charge_flops(f)
        return out


def dense_gram_update_program(comm, a: np.ndarray, x: np.ndarray,
                              iterations: int = 1, *,
                              normalize: bool = False):
    """Rank program: ``iterations`` baseline Gram updates."""
    worker = LocalDenseGramWorker(comm, a)
    x_i = worker.slice_local(x)
    for _ in range(iterations):
        z_i = worker.apply(x_i)
        if normalize:
            norm_sq = comm.allreduce(float(z_i @ z_i), op="sum")
            norm = float(np.sqrt(norm_sq))
            if norm > 0:
                z_i = z_i / norm
        x_i = z_i
    blocks = comm.gather(x_i, root=0)
    if comm.Get_rank() == 0:
        return np.concatenate(blocks)
    return None


def run_dense_distributed_gram(a, x: np.ndarray, cluster, *,
                               iterations: int = 1,
                               normalize: bool = False):
    """Driver: baseline distributed Gram updates on the emulated cluster."""
    from repro.mpi.runtime import run_spmd

    a = check_matrix(a, "A")
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (a.shape[1],):
        raise ValidationError(
            f"x must have shape ({a.shape[1]},), got {x.shape}")
    result = run_spmd(0, dense_gram_update_program, a, x, iterations,
                      normalize=normalize, cluster=cluster)
    return result.returns[0], result

"""RankMap [Mirhoseini et al.] — the paper's closest prior work.

RankMap also factors ``A ≈ DC`` with sparse ``C`` (OMP-based), but its
dictionary size is chosen by an *error-based criterion only*: the
smallest L that meets ε.  It is platform-oblivious — "the error-based
criteria for selecting the transformation basis in RankMap prevents it
from creating versatile and over-complete dictionaries" (Sec. III) — so
ExtDict matches it exactly when the tuned L* happens to equal L_min
(the Light Field case in Fig. 7) and beats it otherwise.
"""

from __future__ import annotations

from repro.core.exd import exd_transform
from repro.core.transform import TransformedData
from repro.core.tuner import find_min_feasible_size
from repro.utils.validation import check_fraction, check_matrix


def rankmap_transform(a, eps: float, *, seed=None,
                      subset_fraction: float = 0.25,
                      trials: int = 1,
                      workers: int | None = None) -> TransformedData:
    """Error-minimal sparse factorisation: ExD at ``L = L_min``."""
    a = check_matrix(a, "A")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    l_min = find_min_feasible_size(a, eps, seed=seed,
                                   subset_fraction=subset_fraction,
                                   trials=trials, workers=workers)
    transform, stats = exd_transform(a, l_min, eps, seed=seed,
                                     workers=workers)
    # The subset-estimated L_min can occasionally be slightly below the
    # full-data requirement; grow until every column converges.
    grow = l_min
    while not stats.all_converged and grow < a.shape[1]:
        grow = min(max(grow + 1, int(round(grow * 1.25))), a.shape[1])
        transform, stats = exd_transform(a, grow, eps, seed=seed,
                                         workers=workers)
    return TransformedData(dictionary=transform.dictionary,
                           coefficients=transform.coefficients, eps=eps,
                           method="rankmap",
                           meta={"l_min": transform.l})

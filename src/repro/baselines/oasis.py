"""oASIS — adaptive column sampling [Patel et al.].

Greedy Nyström-style selection: starting from a seed column, repeatedly
pick the column whose current reconstruction residual is largest and
add it to the dictionary, until every column's *relative* residual is
within ε.  Memory-efficient and linear-time in N per pass (the paper's
description, Sec. III), but — like RCSS — its coefficients ``C = D⁺A``
are dense and its dictionary size is error-minimal rather than
platform-tuned.

Implementation detail: the residuals are maintained through an
incrementally-grown orthonormal basis ``Q`` of the selected columns
(modified Gram–Schmidt), so one selection round costs ``O(M·N)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.dictionary import Dictionary
from repro.core.transform import TransformedData
from repro.errors import DictionaryError
from repro.linalg.parallel_omp import parallel_least_squares
from repro.sparse.csc import CSCMatrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_matrix, check_positive_int


def oasis_transform(a, eps: float, *, max_size: int | None = None,
                    seed=None, size: int | None = None,
                    workers: int | None = None) -> TransformedData:
    """Greedy adaptive column selection meeting the ε criterion.

    Parameters
    ----------
    size:
        Stop after exactly ``size`` selections instead of at the error
        target (used by comparison sweeps).
    workers:
        Column-chunk the final dense ``C = D⁺A`` solve over a worker
        pool (the greedy selection itself is inherently sequential).

    Raises
    ------
    DictionaryError
        When the error target is not reached within ``max_size`` atoms.
    """
    a = check_matrix(a, "A")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    m, n = a.shape
    limit = min(max_size or n, n)
    if size is not None:
        limit = min(check_positive_int(size, "size"), n)
    rng = as_generator(seed)

    norms = np.linalg.norm(a, axis=0)
    norms_safe = np.where(norms > 0, norms, 1.0)
    residual = a.copy()          # residual of each column vs. span(Q)
    q = np.zeros((m, 0))
    selected: list[int] = []

    # Seed with the column of largest norm (deterministic; random
    # tie-break through rng only when several are equal).
    res_norms = np.linalg.norm(residual, axis=0)
    while len(selected) < limit:
        rel = res_norms / norms_safe
        rel[selected] = -np.inf
        if size is None and np.max(rel) <= eps:
            break
        best = int(np.argmax(rel))
        if not np.isfinite(rel[best]) or res_norms[best] <= 1e-14:
            break
        # Orthonormalise the chosen residual direction and update all
        # column residuals in one rank-1 sweep.
        direction = residual[:, best] / res_norms[best]
        proj = direction @ residual
        residual -= np.outer(direction, proj)
        q = np.column_stack([q, direction])
        selected.append(best)
        res_norms = np.linalg.norm(residual, axis=0)
        _ = rng  # reserved for stochastic tie-breaking variants

    if size is None and len(selected) == limit:
        rel = np.delete(res_norms / norms_safe, selected)
        if rel.size and np.max(rel) > eps:
            raise DictionaryError(
                f"oASIS could not reach eps={eps} within {limit} columns")
    if not selected:
        raise DictionaryError("oASIS selected no columns (empty data?)")

    idx = np.sort(np.asarray(selected, dtype=np.int64))
    dictionary = Dictionary(a[:, idx].copy(), idx)
    coef = parallel_least_squares(dictionary.atoms, a, workers=workers)
    c = CSCMatrix.from_dense(coef)
    return TransformedData(dictionary=dictionary, coefficients=c, eps=eps,
                           method="oasis",
                           meta={"selected": len(selected)})

"""RCSS — Randomized Column Subset Selection [Drineas/Mahoney line].

Samples L columns uniformly at random as the dictionary and computes
*dense* least-squares coefficients ``C = D⁺A``.  The size L is grown
(doubling, then bisected) until the measured transformation error meets
ε — RCSS has no sparsity mechanism, so its memory and arithmetic scale
with ``L·N`` regardless of the platform (Table III's contrast).
"""

from __future__ import annotations

import numpy as np

from repro.core.dictionary import sample_dictionary
from repro.core.transform import TransformedData
from repro.errors import DictionaryError
from repro.linalg.norms import relative_frobenius_error
from repro.linalg.parallel_omp import parallel_least_squares
from repro.sparse.csc import CSCMatrix
from repro.utils.rng import derive_seed
from repro.utils.validation import check_fraction, check_matrix, check_positive_int


def _dense_error(a: np.ndarray, d: np.ndarray,
                 workers: int | None = None) -> tuple[np.ndarray, float]:
    coef = parallel_least_squares(d, a, workers=workers)
    return coef, relative_frobenius_error(a, d @ coef)


def rcss_transform(a, eps: float, *, size: int | None = None, seed=None,
                   max_size: int | None = None,
                   workers: int | None = None) -> TransformedData:
    """Build an RCSS projection meeting the ε criterion.

    Parameters
    ----------
    size:
        Fix L instead of searching for the smallest feasible one.
    max_size:
        Upper bound for the search (defaults to N).
    workers:
        Column-chunk the dense ``C = D⁺A`` solves over a worker pool
        (the ``O(L·N)``-dense cost that dominates each probe).

    Raises
    ------
    DictionaryError
        When even ``max_size`` random columns cannot meet ε.
    """
    a = check_matrix(a, "A")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    n = a.shape[1]
    limit = min(max_size or n, n)

    if size is not None:
        size = check_positive_int(size, "size")
        dictionary = sample_dictionary(a, size, seed=seed)
        coef, err = _dense_error(a, dictionary.atoms, workers)
        return _pack(dictionary, coef, eps, err)

    # Doubling search for the smallest feasible L (freshly sampled each
    # probe, as the randomized method prescribes).
    l, lo, hi = min(8, limit), 0, None
    best = None
    while True:
        dictionary = sample_dictionary(a, l, seed=derive_seed(seed, l))
        coef, err = _dense_error(a, dictionary.atoms, workers)
        if err <= eps + 1e-12:
            hi, best = l, (dictionary, coef, err)
            break
        lo = l
        if l >= limit:
            break
        l = min(2 * l, limit)
    if hi is None:
        raise DictionaryError(
            f"RCSS could not reach eps={eps} with up to {limit} columns")
    while hi - lo > max(1, hi // 8):
        mid = (lo + hi) // 2
        dictionary = sample_dictionary(a, mid, seed=derive_seed(seed, mid))
        coef, err = _dense_error(a, dictionary.atoms, workers)
        if err <= eps + 1e-12:
            hi, best = mid, (dictionary, coef, err)
        else:
            lo = mid
    dictionary, coef, err = best
    return _pack(dictionary, coef, eps, err)


def _pack(dictionary, coef: np.ndarray, eps: float,
          err: float) -> TransformedData:
    c = CSCMatrix.from_dense(coef)
    return TransformedData(dictionary=dictionary, coefficients=c, eps=eps,
                           method="rcss", meta={"measured_error": err})

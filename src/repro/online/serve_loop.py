"""Background maintenance for the serving daemon.

:class:`MaintenanceLoop` runs an :class:`~repro.online.maintainer.
OnlineMaintainer` on its own daemon thread next to a
:class:`~repro.serve.registry.DictionaryRegistry` tenant.  Each tick
runs one maintenance step; when the step refreshed or re-seeded atoms
(always when drift fired), the loop snapshots the working dictionary
into a fresh generation and publishes it through the registry's
warm-before-visible hot-swap — exactly the path operators use manually
via ``POST /v1/dictionaries`` — so in-flight encodes finish against the
generation they resolved while new traffic atomically sees the
refreshed atoms.

The loop never blocks the request path: maintenance encodes run on the
loop thread against the maintainer's private working copy, and the only
shared touch points are the registry swap (its own lock) and the Gram
LRU (warmed before visibility).  ``GET /v1/metrics`` embeds
:meth:`MaintenanceLoop.status` — drift status, atom-usage summary and
publish history.
"""

from __future__ import annotations

import threading
import time

from repro import observability as obs
from repro.online.maintainer import OnlineMaintainer

__all__ = ["MaintenanceLoop"]


class MaintenanceLoop:
    """Periodic maintenance + hot-swap publication for one tenant."""

    def __init__(self, registry, tenant: str,
                 maintainer: OnlineMaintainer, *,
                 interval_s: float = 5.0,
                 publish_on_change: bool = True,
                 min_publish_interval_s: float = 0.0) -> None:
        self.registry = registry
        self.tenant = tenant
        self.maintainer = maintainer
        self.interval_s = float(interval_s)
        self.publish_on_change = bool(publish_on_change)
        self.min_publish_interval_s = float(min_publish_interval_s)
        self.published = 0
        self.last_published_at: float | None = None
        self.last_report: dict | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # one tick (callable synchronously from tests / the CLI)
    # ------------------------------------------------------------------
    def run_once(self) -> dict:
        """One maintenance step; publish a generation if atoms changed."""
        report = self.maintainer.step()
        changed = bool(report["atoms_refreshed"]
                       or report["atoms_reseeded"])
        published = False
        if changed and self.publish_on_change and self._may_publish():
            generation = self.maintainer.build_generation()
            gen = self.registry.add_transform(
                self.tenant, generation,
                source=f"maintenance:step{report['step']}",
                set_default=True)
            with self._lock:
                self.published += 1
                self.last_published_at = time.time()
            published = True
            report["published_generation"] = gen.number
            obs.inc("online.generations_published")
        report["published"] = published
        with self._lock:
            self.last_report = report
        return report

    def _may_publish(self) -> bool:
        with self._lock:
            if self.last_published_at is None:
                return True
            return (time.time() - self.last_published_at
                    >= self.min_publish_interval_s)

    # ------------------------------------------------------------------
    # thread lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"maintenance-{self.tenant}")
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the thread and join it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 - keep the daemon alive
                obs.inc("online.maintenance_errors")
            self._stop.wait(self.interval_s)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-ready digest for ``GET /v1/metrics``."""
        with self._lock:
            last_published_at = self.last_published_at
            published = self.published
            last_report = dict(self.last_report) \
                if self.last_report else None
        return {
            "tenant": self.tenant,
            "running": self.running,
            "interval_s": self.interval_s,
            "published_generations": published,
            "last_published_at": last_published_at,
            "last_step": last_report,
            "maintainer": self.maintainer.status(),
        }

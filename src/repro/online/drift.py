"""Drift detection against the tuner's fitted α(L) curve.

The tuner (Sec. VII) measures the density curve α(L) once, on the data
the dictionary was fitted to, and picks L by Eq. 2.  That curve is a
property of the *data distribution*: when traffic drifts, the measured
sparsity of fresh minibatches departs from the fitted curve long before
accuracy falls off a cliff — columns from new subspaces need more atoms
(α up) or stop meeting ε at all (error up).

:func:`fit_alpha_curve` fits the standard log–log linear model
``log α = a·log L + b`` to the tuner table's ``(L, α)`` points — α(L)
is empirically near power-law over the tuner's geometric candidate grid
(Fig. 4), and two points suffice.  :class:`DriftMonitor` then folds
each maintenance minibatch's measured ``(α, error)`` into a rolling
window and fires when either

* the *windowed mean* α deviates from the curve's prediction by more
  than ``alpha_tolerance`` (relative) — averaging first means minibatch
  sampling noise cancels while a systematic shift survives, or
* the windowed mean reconstruction error exceeds
  ``eps · error_tolerance`` (the encode's own target, with slack),

which the maintainer answers with an atom refresh and, on repeated
firing, a (sketched) re-tune of L.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.errors import ValidationError

__all__ = ["AlphaCurve", "DriftConfig", "DriftMonitor", "fit_alpha_curve"]


@dataclass(frozen=True)
class AlphaCurve:
    """Fitted ``α(L) ≈ exp(b) · L^a`` (log–log linear) model."""

    slope: float
    intercept: float
    sizes: tuple
    alphas: tuple

    def predict(self, l: int) -> float:
        """Model density at dictionary size ``l`` (α = nnz/N, the mean
        selected atoms per column — bounded by L, not by 1)."""
        alpha = float(np.exp(self.intercept + self.slope * np.log(l)))
        return max(alpha, 1e-12)


def fit_alpha_curve(points) -> AlphaCurve:
    """Fit the log–log α(L) model to ``(L, α)`` pairs.

    ``points`` is an iterable of pairs or of tuner-table rows (whose
    first two entries are ``L`` and ``α``; extra entries — predicted
    nnz, cost — are ignored, so ``TuningResult.table`` drops straight
    in).  Requires ≥ 2 points with positive α.
    """
    sizes, alphas = [], []
    for row in points:
        l, alpha = row[0], row[1]
        if alpha > 0:
            sizes.append(int(l))
            alphas.append(float(alpha))
    if len(sizes) < 2:
        raise ValidationError(
            f"need at least 2 (L, alpha>0) points to fit an alpha "
            f"curve, got {len(sizes)}")
    logl = np.log(np.asarray(sizes, dtype=np.float64))
    loga = np.log(np.asarray(alphas, dtype=np.float64))
    slope, intercept = np.polyfit(logl, loga, 1)
    return AlphaCurve(slope=float(slope), intercept=float(intercept),
                      sizes=tuple(sizes), alphas=tuple(alphas))


@dataclass(frozen=True)
class DriftConfig:
    """Trigger thresholds (see docs/online.md for the semantics)."""

    window: int = 8             #: minibatches in the rolling window
    min_observations: int = 3   #: don't fire before this many
    alpha_tolerance: float = 0.25   #: relative bound on the windowed
                                    #: mean α's deviation from the fit
    error_tolerance: float = 1.25   #: error band is eps · this

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValidationError(f"window must be >= 1, got {self.window}")
        if self.min_observations < 1:
            raise ValidationError(
                f"min_observations must be >= 1, "
                f"got {self.min_observations}")
        if self.alpha_tolerance <= 0 or self.error_tolerance <= 0:
            raise ValidationError("tolerances must be positive")


class DriftMonitor:
    """Rolling comparison of measured (α, error) against the fit."""

    def __init__(self, curve: AlphaCurve, l: int, eps: float,
                 config: DriftConfig | None = None) -> None:
        self.curve = curve
        self.l = int(l)
        self.eps = float(eps)
        self.config = config or DriftConfig()
        self.expected_alpha = curve.predict(self.l)
        self._alphas: deque = deque(maxlen=self.config.window)
        self._errors: deque = deque(maxlen=self.config.window)
        self.observations = 0
        self.triggers = 0
        self._last: dict = {}

    def observe(self, measured_alpha: float,
                measured_error: float) -> bool:
        """Fold one minibatch's measurements in; returns "fired now?".

        ``measured_alpha`` is ``nnz(C)/n`` — mean selected atoms per
        column, the tuner table's α units; ``measured_error`` the
        relative reconstruction error ``‖X − DC‖_F / ‖X‖_F``.
        """
        deviation = abs(float(measured_alpha) - self.expected_alpha) \
            / self.expected_alpha
        self._alphas.append(float(measured_alpha))
        self._errors.append(float(measured_error))
        self.observations += 1
        fired = self.fired
        self._last = {
            "alpha": float(measured_alpha),
            "error": float(measured_error),
            "alpha_deviation": deviation,
        }
        if fired:
            self.triggers += 1
            obs.inc("online.drift_triggers")
        return fired

    @property
    def mean_alpha_deviation(self) -> float:
        """Relative deviation of the windowed mean α from the fit.

        Averaging *before* taking the deviation lets per-minibatch
        sampling noise cancel (a 64-column minibatch's α easily swings
        ±15% around the population value) while a systematic shift in
        the traffic survives the average untouched.
        """
        if not self._alphas:
            return 0.0
        return abs(float(np.mean(self._alphas)) - self.expected_alpha) \
            / self.expected_alpha

    @property
    def mean_error(self) -> float:
        return float(np.mean(self._errors)) if self._errors else 0.0

    @property
    def fired(self) -> bool:
        """Trigger condition over the current window."""
        if self.observations < self.config.min_observations:
            return False
        if self.mean_alpha_deviation > self.config.alpha_tolerance:
            return True
        return self.mean_error > self.eps * self.config.error_tolerance

    def reset(self) -> None:
        """Clear the window after a refresh/re-tune handled the drift."""
        self._alphas.clear()
        self._errors.clear()
        self.observations = 0

    def rebase(self, curve: AlphaCurve, l: int | None = None) -> None:
        """Adopt a re-fitted curve (after a re-tune) and start over."""
        self.curve = curve
        if l is not None:
            self.l = int(l)
        self.expected_alpha = curve.predict(self.l)
        self.reset()

    def status(self) -> dict:
        """JSON-ready digest for ``GET /v1/metrics`` / the CLI."""
        return {
            "l": self.l,
            "eps": self.eps,
            "expected_alpha": self.expected_alpha,
            "mean_alpha_deviation": self.mean_alpha_deviation,
            "mean_error": self.mean_error,
            "alpha_tolerance": self.config.alpha_tolerance,
            "error_band": self.eps * self.config.error_tolerance,
            "observations": int(self.observations),
            "window": int(self.config.window),
            "fired": self.fired,
            "triggers": int(self.triggers),
            "last": dict(self._last),
        }

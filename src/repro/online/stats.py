"""Per-atom usage statistics fed by the encoder's atom selections.

Every encode path in the repo funnels through ``batch_omp_matrix`` (the
serial loop, the fork-pool parallel engine, ``encode_columns`` behind
the serving micro-batcher, and the ``StreamingEncoder``'s per-block
calls).  The two engines call :func:`record_encode` exactly once per
encode with the dictionary object they were handed plus the finished
CSC coefficients — at that point the parallel engine has already merged
its workers' chunks in column order, so recording there *is* the
cross-worker counter merge, the same way worker metric deltas merge
into the parent's registry.

Recording is opt-in per dictionary: :func:`watch_dictionary` attaches an
:class:`AtomStats` accumulator to a dictionary object (keyed on object
identity, weakref-guarded exactly like the Gram LRU), and the hook in
the encoders is a single empty-dict check when nothing is watched — the
default encode hot path pays nothing.

SPMD rank programs build their own per-rank ``Dictionary`` objects, so
nothing records rank-side; instead :class:`AtomStats` is a plain
mergeable delta (`merge` / `to_deltas` / `from_deltas`) that ranks
gather to rank 0, mirroring how ``repro.observability`` merges counter
deltas across processes.  ``merge`` composes *sequentially* — the
merged ``last_used`` generations read as if the other side's encodes
replayed after ours — which keeps every field exactly equal to a serial
run over the concatenated columns.

This module imports only the standard library and numpy so the linalg
engines can import it without cycles.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

__all__ = [
    "AtomStats",
    "record_encode",
    "unwatch_dictionary",
    "watch_dictionary",
    "watched_stats",
]


class AtomStats:
    """Mergeable per-atom usage accumulator for an ``L``-atom dictionary.

    Tracks, per atom: how many encoded columns selected it
    (``counts``), the running sum of ``|coefficient|`` over those
    selections (``abs_coef_sum``, so ``mean_abs_coef`` is exact), and
    the encode *generation* (batch ordinal) that last used it
    (``last_used``, ``-1`` for never).  ``generation`` counts recorded
    encode batches; ``columns`` counts recorded columns.
    """

    __slots__ = ("size", "counts", "abs_coef_sum", "last_used",
                 "columns", "generation", "_lock")

    def __init__(self, size: int) -> None:
        if int(size) <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = int(size)
        self.counts = np.zeros(self.size, dtype=np.int64)
        self.abs_coef_sum = np.zeros(self.size, dtype=np.float64)
        self.last_used = np.full(self.size, -1, dtype=np.int64)
        self.columns = 0
        self.generation = 0
        self._lock = threading.Lock()

    # pickle across SPMD process ranks: drop the lock, rebuild on load
    def __getstate__(self):
        return self.to_deltas()

    def __setstate__(self, state):
        other = AtomStats.from_deltas(state)
        for name in ("size", "counts", "abs_coef_sum", "last_used",
                     "columns", "generation"):
            setattr(self, name, getattr(other, name))
        self._lock = threading.Lock()

    def record(self, c) -> None:
        """Fold one encode's CSC coefficients into the accumulator.

        ``c`` is anything with ``indices`` / ``data`` arrays and a
        ``shape == (L, N)`` (the engines' ``CSCMatrix``).  One pair of
        ``bincount`` passes at matrix granularity — never inside the
        per-column kernel loop, so the bit-identity of the encode
        itself cannot be perturbed.
        """
        indices = np.asarray(c.indices, dtype=np.int64)
        data = np.asarray(c.data, dtype=np.float64)
        n = int(c.shape[1])
        counts = np.bincount(indices, minlength=self.size)
        weights = np.bincount(indices, weights=np.abs(data),
                              minlength=self.size)
        with self._lock:
            self.generation += 1
            self.columns += n
            self.counts += counts
            self.abs_coef_sum += weights
            if indices.size:
                self.last_used[np.unique(indices)] = self.generation

    def merge(self, other: "AtomStats") -> "AtomStats":
        """Fold ``other`` in as if its encodes replayed after ours."""
        if other.size != self.size:
            raise ValueError(
                f"cannot merge stats for {other.size} atoms into "
                f"{self.size}")
        with self._lock:
            self.counts += other.counts
            self.abs_coef_sum += other.abs_coef_sum
            shifted = np.where(other.last_used >= 0,
                               other.last_used + self.generation,
                               np.int64(-1))
            np.maximum(self.last_used, shifted, out=self.last_used)
            self.generation += other.generation
            self.columns += other.columns
        return self

    @property
    def mean_abs_coef(self) -> np.ndarray:
        """Exact mean ``|coefficient|`` per atom (0 where never used)."""
        return self.abs_coef_sum / np.maximum(self.counts, 1)

    def dead_atoms(self, min_count: int = 1) -> np.ndarray:
        """Indices of atoms selected fewer than ``min_count`` times."""
        return np.flatnonzero(self.counts < int(min_count))

    def reset_atom(self, j: int) -> None:
        """Zero atom ``j``'s statistics (after an evict/re-seed)."""
        with self._lock:
            self.counts[j] = 0
            self.abs_coef_sum[j] = 0.0
            self.last_used[j] = -1

    def to_deltas(self) -> dict:
        """A plain picklable delta dict (the SPMD gather payload)."""
        return {
            "size": self.size,
            "counts": self.counts.copy(),
            "abs_coef_sum": self.abs_coef_sum.copy(),
            "last_used": self.last_used.copy(),
            "columns": self.columns,
            "generation": self.generation,
        }

    @classmethod
    def from_deltas(cls, deltas: dict) -> "AtomStats":
        stats = cls(int(deltas["size"]))
        stats.counts[:] = deltas["counts"]
        stats.abs_coef_sum[:] = deltas["abs_coef_sum"]
        stats.last_used[:] = deltas["last_used"]
        stats.columns = int(deltas["columns"])
        stats.generation = int(deltas["generation"])
        return stats

    def summary(self, top_k: int = 5) -> dict:
        """JSON-ready digest for ``GET /v1/metrics`` and CLI output."""
        with self._lock:
            counts = self.counts.copy()
            mean_abs = self.abs_coef_sum / np.maximum(counts, 1)
            order = np.argsort(counts, kind="stable")[::-1][:int(top_k)]
            return {
                "atoms": self.size,
                "columns": int(self.columns),
                "encode_batches": int(self.generation),
                "dead_atoms": int(np.count_nonzero(counts == 0)),
                "selections": int(counts.sum()),
                "top_atoms": [
                    {"atom": int(j), "count": int(counts[j]),
                     "mean_abs_coef": float(mean_abs[j])}
                    for j in order if counts[j] > 0
                ],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AtomStats(size={self.size}, columns={self.columns}, "
                f"generation={self.generation}, "
                f"dead={int(np.count_nonzero(self.counts == 0))})")


# ----------------------------------------------------------------------
# The watch registry the encode engines consult
# ----------------------------------------------------------------------
# id(object) -> (weakref, AtomStats), mirroring the Gram LRU's keying:
# a recycled id (new object at an old address) can never alias a stale
# watch because the weakref identity is re-checked on every hit.
_WATCHED: dict[int, tuple] = {}
_WATCH_LOCK = threading.Lock()


def _register(obj, stats: AtomStats) -> None:
    key = id(obj)
    try:
        ref = weakref.ref(obj, lambda _r, k=key: _WATCHED.pop(k, None))
    except TypeError:  # non-weakref-able; do not retain
        return
    with _WATCH_LOCK:
        _WATCHED[key] = (ref, stats)


def watch_dictionary(d, stats: AtomStats | None = None) -> AtomStats:
    """Attach an :class:`AtomStats` to a dictionary object.

    ``d`` may be a bare atoms array or any ``DictOperator`` (a
    ``Dictionary``, ``FastDict``, …).  Both the object itself and its
    ``atoms`` array (when it has one) are registered to the same
    accumulator, so the hook matches whichever of the two an encode
    path routes through.  Pass an existing ``stats`` to share one
    accumulator across several dictionary generations.
    """
    atoms = getattr(d, "atoms", d)
    size = int(np.asarray(atoms).shape[1])
    if stats is None:
        stats = AtomStats(size)
    elif stats.size != size:
        raise ValueError(
            f"stats tracks {stats.size} atoms but dictionary has {size}")
    _register(d, stats)
    if atoms is not d:
        _register(atoms, stats)
    return stats


def unwatch_dictionary(d) -> None:
    """Detach ``d`` (and its atoms array) from the watch registry."""
    atoms = getattr(d, "atoms", d)
    with _WATCH_LOCK:
        _WATCHED.pop(id(d), None)
        if atoms is not d:
            _WATCHED.pop(id(atoms), None)


def watched_stats(d) -> AtomStats | None:
    """The accumulator attached to ``d``, or ``None``."""
    for obj in (d, getattr(d, "atoms", d)):
        entry = _WATCHED.get(id(obj))
        if entry is not None and entry[0]() is obj:
            return entry[1]
    return None


def record_encode(d, c) -> None:
    """Encoder hook: fold ``c`` into ``d``'s accumulator, if watched.

    Called exactly once per encode by ``batch_omp_matrix`` (serial
    path) and ``parallel_batch_omp_matrix`` (parent, post-merge).  When
    nothing is watched this is one falsy-dict check.
    """
    if not _WATCHED:
        return
    stats = watched_stats(d)
    if stats is not None:
        stats.record(c)

"""Mensch & Mairal-style minibatch surrogate dictionary updates.

Online dictionary learning ("Dictionary Learning for Massive Matrix
Factorization", PAPERS.md) keeps two surrogate statistics across
minibatches of columns ``X`` with sparse codes ``C``::

    A_t ← β·A_t + C Cᵀ        (L × L)
    B_t ← β·B_t + X Cᵀ        (M × L)

and refreshes each atom by block-coordinate descent on the surrogate
objective::

    d_j ← (b_j − D a_j + A_jj d_j) / A_jj,   then ‖d_j‖ ≤ 1 projection

which is the exact minimiser of the quadratic surrogate in ``d_j`` with
the other atoms fixed.  Atoms with no mass in the surrogate
(``A_jj ≈ 0`` — never selected) are skipped by the refresh and instead
handled by :meth:`OnlineUpdater.evict_dead`, which re-seeds them from
the worst-reconstructed recent columns (deterministically, under
``derive_seed``).

The updater owns a private *working copy* of the atoms and mutates it
in place; every mutation explicitly invalidates the process-wide Gram
LRU for that array (satellite of this subsystem — the fingerprint check
would catch staleness on the next hit, but maintenance makes the
eviction deterministic at mutation time).  Serving never sees the
working copy: :meth:`OnlineUpdater.snapshot_dictionary` materialises a
fresh ``Dictionary`` (new array identity ⇒ its own fresh Gram) for the
registry's warm-before-visible hot-swap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.core.dictionary import Dictionary
from repro.errors import ValidationError
from repro.linalg.parallel_omp import GRAM_CACHE
from repro.utils.rng import as_generator, derive_seed

__all__ = ["OnlineUpdateConfig", "OnlineUpdater"]

#: Surrogate columns with less accumulated energy than this are treated
#: as "never selected" and skipped by the block-coordinate refresh.
A_DIAG_FLOOR = 1e-12


@dataclass(frozen=True)
class OnlineUpdateConfig:
    """Knobs of the surrogate update.

    Attributes
    ----------
    forgetting:
        Exponential down-weighting ``β ∈ (0, 1]`` applied to ``A_t`` /
        ``B_t`` before each new minibatch.  1.0 keeps the full history
        (the convex regime of Mensch & Mairal); smaller values track
        drift faster at the price of noisier atoms.
    min_usage:
        An atom is *dead* when its total selection count over the
        updater's lifetime statistics stays below this.
    norm_floor:
        Atoms whose refreshed norm falls below this are renormalised
        from the floor instead of dividing by ~0.
    """

    forgetting: float = 1.0
    min_usage: int = 1
    norm_floor: float = 1e-10

    def __post_init__(self) -> None:
        if not (0.0 < self.forgetting <= 1.0):
            raise ValidationError(
                f"forgetting must be in (0, 1], got {self.forgetting}")
        if self.min_usage < 0:
            raise ValidationError(
                f"min_usage must be >= 0, got {self.min_usage}")


@dataclass
class OnlineUpdater:
    """Accumulates surrogate statistics and refreshes atoms in place."""

    atoms: np.ndarray
    indices: np.ndarray
    config: OnlineUpdateConfig = field(default_factory=OnlineUpdateConfig)
    seed: int | None = None

    def __post_init__(self) -> None:
        self.atoms = np.array(self.atoms, dtype=np.float64, copy=True)
        self.indices = np.array(self.indices, dtype=np.int64, copy=True)
        if self.atoms.ndim != 2:
            raise ValidationError(
                f"atoms must be 2-D, got {self.atoms.ndim}-D")
        m, l = self.atoms.shape
        self.a_t = np.zeros((l, l), dtype=np.float64)
        self.b_t = np.zeros((m, l), dtype=np.float64)
        self.minibatches = 0
        self.columns_seen = 0
        self.refreshed_atoms = 0
        self.reseeded_atoms = 0

    @property
    def m(self) -> int:
        return self.atoms.shape[0]

    @property
    def size(self) -> int:
        return self.atoms.shape[1]

    # ------------------------------------------------------------------
    # surrogate accumulation
    # ------------------------------------------------------------------
    def observe(self, x: np.ndarray, c) -> None:
        """Fold one encoded minibatch ``(X, C)`` into ``A_t``/``B_t``.

        ``x`` is the ``(M, n)`` minibatch; ``c`` its codes — a
        ``CSCMatrix`` (or any object with ``to_dense``) of shape
        ``(L, n)``, exactly what ``batch_omp_matrix`` returned.
        """
        x = np.asarray(x, dtype=np.float64)
        dense_c = c.to_dense() if hasattr(c, "to_dense") else \
            np.asarray(c, dtype=np.float64)
        if x.shape != (self.m, dense_c.shape[1]) or \
                dense_c.shape[0] != self.size:
            raise ValidationError(
                f"minibatch shapes X{x.shape}, C{dense_c.shape} do not "
                f"match D({self.m}, {self.size})")
        beta = self.config.forgetting
        if beta < 1.0:
            self.a_t *= beta
            self.b_t *= beta
        self.a_t += dense_c @ dense_c.T
        self.b_t += x @ dense_c.T
        self.minibatches += 1
        self.columns_seen += x.shape[1]
        obs.inc("online.minibatches")
        obs.inc("online.columns_observed", x.shape[1])

    # ------------------------------------------------------------------
    # atom refresh / eviction
    # ------------------------------------------------------------------
    def refresh_atoms(self) -> int:
        """One block-coordinate sweep over the atoms; returns #updated.

        Every atom with surrogate mass is rewritten in place and the
        Gram LRU entry for this atom array is invalidated (once, after
        the sweep — one array, one cache key).
        """
        diag = np.diag(self.a_t)
        active = np.flatnonzero(diag > A_DIAG_FLOOR)
        if active.size == 0:
            return 0
        d = self.atoms
        for j in active:
            a_j = self.a_t[:, j]
            u = d[:, j] + (self.b_t[:, j] - d @ a_j) / diag[j]
            norm = float(np.linalg.norm(u))
            # Mairal's projection onto the unit ball keeps the
            # surrogate's majorisation valid; data-sampled atoms are
            # not unit-norm, so project onto the *original* norm scale
            # instead: keep the refreshed atom at the incumbent's norm.
            target = max(float(np.linalg.norm(d[:, j])),
                         self.config.norm_floor)
            if norm > self.config.norm_floor:
                u *= target / norm
            d[:, j] = u
        self.refreshed_atoms += int(active.size)
        GRAM_CACHE.invalidate(self.atoms)
        obs.inc("online.atoms_refreshed", int(active.size))
        return int(active.size)

    def evict_dead(self, dead: np.ndarray, replacements: np.ndarray,
                   source_indices=None) -> list[int]:
        """Replace dead atoms with re-seed columns, worst-error first.

        ``dead`` — atom indices to retire (e.g. from
        ``AtomStats.dead_atoms``); ``replacements`` — an ``(M, k)``
        stack of candidate columns *already ordered* worst-reconstructed
        first (the maintainer ranks them); surplus dead atoms beyond
        ``k`` keep their current value.  Surrogate rows/columns of a
        re-seeded atom are zeroed — its statistics restart.  Returns the
        atom indices actually replaced.
        """
        dead = np.asarray(dead, dtype=np.int64)
        replacements = np.asarray(replacements, dtype=np.float64)
        if replacements.ndim != 2 or replacements.shape[0] != self.m:
            raise ValidationError(
                f"replacements must be (M, k), got {replacements.shape}")
        take = min(int(dead.size), replacements.shape[1])
        replaced: list[int] = []
        for slot in range(take):
            j = int(dead[slot])
            self.atoms[:, j] = replacements[:, slot]
            self.indices[j] = (-1 if source_indices is None
                               else int(source_indices[slot]))
            self.a_t[j, :] = 0.0
            self.a_t[:, j] = 0.0
            self.b_t[:, j] = 0.0
            replaced.append(j)
        if replaced:
            self.reseeded_atoms += len(replaced)
            GRAM_CACHE.invalidate(self.atoms)
            obs.inc("online.atoms_reseeded", len(replaced))
        return replaced

    def rank_reseed_candidates(self, x: np.ndarray, c,
                               k: int) -> np.ndarray:
        """Column order of ``x`` by reconstruction error, worst first.

        Deterministic tie-break by column index (stable sort on the
        negated errors), so re-seeding is reproducible bit-for-bit.
        """
        x = np.asarray(x, dtype=np.float64)
        dense_c = c.to_dense() if hasattr(c, "to_dense") else \
            np.asarray(c, dtype=np.float64)
        err = np.linalg.norm(x - self.atoms @ dense_c, axis=0)
        order = np.argsort(-err, kind="stable")
        return order[:int(k)]

    def draw_minibatch(self, n_total: int, batch: int,
                       step: int) -> np.ndarray:
        """Deterministic column sample for maintenance step ``step``."""
        rng = as_generator(derive_seed(self.seed, 23, step))
        batch = min(int(batch), int(n_total))
        return np.sort(rng.choice(n_total, size=batch, replace=False))

    def snapshot_dictionary(self) -> Dictionary:
        """A fresh :class:`Dictionary` copy of the current atoms.

        New array identity: its Gram is computed (and cached) from
        scratch, so a served generation can never alias the working
        copy this updater keeps mutating.
        """
        return Dictionary(self.atoms.copy(), self.indices.copy())

    def status(self) -> dict:
        return {
            "minibatches": int(self.minibatches),
            "columns_seen": int(self.columns_seen),
            "atoms_refreshed": int(self.refreshed_atoms),
            "atoms_reseeded": int(self.reseeded_atoms),
            "forgetting": float(self.config.forgetting),
            "surrogate_mass": float(np.trace(self.a_t)),
        }

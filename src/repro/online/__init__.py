"""Drift-aware online dictionary maintenance (ROADMAP item 5).

The subsystem that keeps a fitted dictionary healthy while the data
drifts under it:

* :mod:`repro.online.stats` — per-atom usage accumulators fed by every
  encode path (serial, parallel-worker, SPMD, streaming, serving).
* :mod:`repro.online.update` — Mensch & Mairal-style minibatch
  surrogate updates (``A_t``/``B_t`` statistics, block-coordinate atom
  refresh) plus dead-atom eviction and re-seeding.
* :mod:`repro.online.drift` — a monitor comparing the measured
  sparsity/error trajectory against the tuner's fitted α(L) curve.
* :mod:`repro.online.sketch` — α(L) estimation from very sparse random
  projections of store columns (Pourkamali-Anaraki et al.), a fraction
  of the bytes of the exact subset estimator.
* :mod:`repro.online.maintainer` — :class:`OnlineMaintainer`, the
  end-to-end loop binding the four together over a ``ColumnStore``.
* :mod:`repro.online.serve_loop` — the serving daemon's background
  maintenance thread, hot-swapping refreshed generations through the
  versioned registry.

Submodules are imported lazily: ``repro.online.stats`` must stay
importable from ``repro.linalg`` without dragging the rest of the
stack (and its import cycles) in.
"""

from __future__ import annotations

_EXPORTS = {
    "AtomStats": "stats",
    "watch_dictionary": "stats",
    "unwatch_dictionary": "stats",
    "watched_stats": "stats",
    "record_encode": "stats",
    "OnlineUpdateConfig": "update",
    "OnlineUpdater": "update",
    "DriftConfig": "drift",
    "DriftMonitor": "drift",
    "fit_alpha_curve": "drift",
    "AlphaCurve": "drift",
    "SketchConfig": "sketch",
    "sparse_projection": "sketch",
    "sketch_store_columns": "sketch",
    "tune_dictionary_size_sketched": "sketch",
    "MaintenanceConfig": "maintainer",
    "OnlineMaintainer": "maintainer",
    "MaintenanceLoop": "serve_loop",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module 'repro.online' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f"repro.online.{module}"),
                   name)


def __dir__():  # pragma: no cover - introspection aid
    return sorted(set(globals()) | set(_EXPORTS))

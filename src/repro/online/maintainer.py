"""The end-to-end maintenance loop: :class:`OnlineMaintainer`.

One maintainer binds a fitted transform to the ``ColumnStore`` (or
dense matrix) its traffic comes from and, per :meth:`step`,

1. polls ``store.describe()`` — the append ``generation`` counter says
   whether new data arrived since the last step, without touching a
   chunk;
2. draws a deterministic minibatch (``derive_seed`` on the step
   ordinal) biased to the newest columns when fresh data arrived;
3. encodes it against the *working copy* of the atoms — the encode
   feeds the attached :class:`~repro.online.stats.AtomStats` through
   the standard encoder hook, and its measured (α, error) feed the
   :class:`~repro.online.drift.DriftMonitor`;
4. folds the minibatch into the Mensch/Mairal surrogate and runs a
   block-coordinate atom refresh (every ``refresh_every`` steps, and
   always when drift fired);
5. evicts dead atoms (never selected since the warmup threshold) and
   re-seeds them from the worst-reconstructed minibatch columns.

Every atom mutation invalidates the Gram LRU entry for the working
array.  :meth:`build_generation` snapshots the working atoms into a
fresh :class:`~repro.core.dictionary.Dictionary` (new identity — its
own Gram) wrapped in a ``TransformedData`` the serve registry can warm
and hot-swap; :meth:`retune` re-picks L with the sketched tuner when
drift keeps firing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.errors import ValidationError
from repro.linalg.omp import batch_omp_matrix
from repro.online.drift import AlphaCurve, DriftConfig, DriftMonitor
from repro.online.stats import (
    AtomStats,
    unwatch_dictionary,
    watch_dictionary,
)
from repro.online.update import OnlineUpdateConfig, OnlineUpdater
from repro.utils.rng import as_generator, derive_seed

__all__ = ["MaintenanceConfig", "OnlineMaintainer"]


@dataclass(frozen=True)
class MaintenanceConfig:
    """Knobs of the maintenance loop (see docs/online.md)."""

    batch: int = 256          #: minibatch columns per step
    refresh_every: int = 1    #: block-coordinate sweep cadence (steps)
    warmup_columns: int = 512   #: no eviction before this many encoded
    dead_min_count: int = 1   #: atom is dead below this selection count
    max_reseed: int = 8       #: re-seeded atoms per step, at most
    fresh_bias: float = 0.5   #: minibatch fraction drawn from new data
    retune_after: int = 3     #: consecutive fired steps → recommend
    drift: DriftConfig = field(default_factory=DriftConfig)
    update: OnlineUpdateConfig = field(
        default_factory=OnlineUpdateConfig)

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValidationError(f"batch must be >= 1, got {self.batch}")
        if not (0.0 <= self.fresh_bias <= 1.0):
            raise ValidationError(
                f"fresh_bias must be in [0, 1], got {self.fresh_bias}")


class OnlineMaintainer:
    """Keeps one fitted dictionary healthy against one data source.

    Parameters
    ----------
    a:
        The data the traffic comes from — a ``ColumnStore`` (the
        intended deployment) or a dense matrix (tests/benchmarks).
    transform:
        The fitted ``TransformedData`` whose dictionary to maintain.
        The maintainer copies its atoms into a private working array;
        the transform object is never mutated.
    curve:
        The tuner's fitted α(L) model — an
        :class:`~repro.online.drift.AlphaCurve`, a ``TuningResult``
        (its table is fitted), or ``None`` to self-calibrate on the
        first minibatch (expected α := first measured α).
    """

    def __init__(self, a, transform, *, curve=None,
                 config: MaintenanceConfig | None = None,
                 seed: int | None = None, workers: int | None = None,
                 backend=None) -> None:
        from repro.store.column_store import check_matrix_or_store

        self.a = check_matrix_or_store(a, "A")
        self.transform = transform
        self.config = config or MaintenanceConfig()
        self.seed = seed
        self.workers = workers
        self.backend = backend
        self.eps = float(transform.eps)
        dictionary = transform.dictionary
        self.updater = OnlineUpdater(
            atoms=dictionary.atoms, indices=dictionary.indices,
            config=self.config.update, seed=seed)
        self.stats = watch_dictionary(self.updater.atoms)
        self.monitor: DriftMonitor | None = None
        if curve is not None:
            self.monitor = DriftMonitor(
                self._as_curve(curve), dictionary.size, self.eps,
                config=self.config.drift)
        self.steps = 0
        self.consecutive_fired = 0
        self.built_generations = 0
        self.last_seen_store_generation = self._store_generation()
        self.last_store_columns = self.a.shape[1]

    @staticmethod
    def _as_curve(curve) -> AlphaCurve:
        from repro.online.drift import fit_alpha_curve

        if isinstance(curve, AlphaCurve):
            return curve
        table = getattr(curve, "table", curve)
        return fit_alpha_curve(table)

    def _store_generation(self) -> int:
        from repro.store.column_store import is_column_store

        if is_column_store(self.a):
            return self.a.generation
        return 0

    # ------------------------------------------------------------------
    # the loop body
    # ------------------------------------------------------------------
    def _draw_columns(self, fresh_lo: int) -> np.ndarray:
        """Deterministic minibatch, biased to columns >= ``fresh_lo``."""
        n = self.a.shape[1]
        batch = min(self.config.batch, n)
        rng = as_generator(derive_seed(self.seed, 23, self.steps))
        n_fresh = n - fresh_lo
        want_fresh = int(round(self.config.fresh_bias * batch)) \
            if n_fresh > 0 else 0
        want_fresh = min(want_fresh, n_fresh)
        fresh = rng.choice(n_fresh, size=want_fresh,
                           replace=False) + fresh_lo \
            if want_fresh else np.empty(0, dtype=np.int64)
        rest = rng.choice(fresh_lo, size=min(batch - want_fresh, fresh_lo),
                          replace=False) \
            if fresh_lo > 0 else np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate([rest, fresh]).astype(np.int64))

    def step(self) -> dict:
        """Run one maintenance step; returns a JSON-ready step report."""
        from repro.store.column_store import take_columns

        with obs.span("online.step"):
            store_gen = self._store_generation()
            n = self.a.shape[1]
            new_data = (store_gen != self.last_seen_store_generation
                        or n != self.last_store_columns)
            fresh_lo = self.last_store_columns if new_data else n
            fresh_lo = min(fresh_lo, n)
            cols = self._draw_columns(fresh_lo)
            x = take_columns(self.a, cols)

            c, enc_stats = batch_omp_matrix(
                self.updater.atoms, x, self.eps,
                workers=self.workers, backend=self.backend)
            dense_c = c.to_dense()
            resid = x - self.updater.atoms @ dense_c
            x_norm = float(np.linalg.norm(x))
            error = float(np.linalg.norm(resid)) / max(x_norm, 1e-300)
            alpha = c.nnz / x.shape[1]

            fired = False
            if self.monitor is None:
                # Self-calibration (no tuner table): the expected α is
                # anchored on the *second* minibatch — the first one
                # measures the pre-refresh dictionary, whose α is
                # systematically off the post-refresh steady state the
                # monitor will watch.
                if self.steps >= 1:
                    self.monitor = DriftMonitor(
                        AlphaCurve(
                            slope=0.0,
                            intercept=float(np.log(max(alpha, 1e-12))),
                            sizes=(self.updater.size,),
                            alphas=(alpha,)),
                        self.updater.size, self.eps,
                        config=self.config.drift)
            if self.monitor is not None:
                fired = self.monitor.observe(alpha, error)

            self.updater.observe(x, c)
            refreshed = 0
            if fired or (self.steps % self.config.refresh_every == 0):
                refreshed = self.updater.refresh_atoms()

            reseeded: list[int] = []
            if self.stats.columns >= self.config.warmup_columns:
                dead = self.stats.dead_atoms(self.config.dead_min_count)
                if dead.size:
                    k = min(int(dead.size), self.config.max_reseed,
                            x.shape[1])
                    order = self.updater.rank_reseed_candidates(x, c, k)
                    reseeded = self.updater.evict_dead(
                        dead[:k], x[:, order],
                        source_indices=cols[order])
                    for j in reseeded:
                        self.stats.reset_atom(j)

            self.consecutive_fired = self.consecutive_fired + 1 \
                if fired else 0
            self.steps += 1
            self.last_seen_store_generation = store_gen
            self.last_store_columns = n
            obs.inc("online.steps")
            return {
                "step": self.steps,
                "columns": int(x.shape[1]),
                "new_data": bool(new_data),
                "alpha": float(alpha),
                "error": float(error),
                "converged": bool(enc_stats.all_converged)
                if hasattr(enc_stats, "all_converged")
                else bool(enc_stats.converged_mask.all()),
                "drift_fired": bool(fired),
                "atoms_refreshed": int(refreshed),
                "atoms_reseeded": [int(j) for j in reseeded],
                "retune_recommended": self.retune_recommended,
            }

    def run(self, steps: int) -> list[dict]:
        """Run ``steps`` maintenance steps; returns their reports."""
        return [self.step() for _ in range(int(steps))]

    @property
    def retune_recommended(self) -> bool:
        """Drift fired ``retune_after`` consecutive steps."""
        return self.consecutive_fired >= self.config.retune_after

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    def build_generation(self):
        """Snapshot the working atoms as a hot-swappable transform.

        Returns a ``TransformedData`` around a *fresh*
        :class:`~repro.core.dictionary.Dictionary` (new array identity
        — the registry warms its own Gram before visibility).  The
        coefficients are carried over from the source transform and
        refer to the *pre-maintenance* atoms; the meta records this
        (``coefficients_stale``) — serving only needs ``D`` and ε, and
        re-encoding the archive is exactly what the streaming encoder
        is for.
        """
        from repro.core.transform import TransformedData

        snapshot = self.updater.snapshot_dictionary()
        self.built_generations += 1
        meta = dict(self.transform.meta)
        meta.update({
            "maintained": True,
            "maintenance_steps": int(self.steps),
            "maintained_generation": int(self.built_generations),
            "atoms_refreshed": int(self.updater.refreshed_atoms),
            "atoms_reseeded": int(self.updater.reseeded_atoms),
            "coefficients_stale": True,
        })
        obs.inc("online.generations_built")
        return TransformedData(dictionary=snapshot,
                               coefficients=self.transform.coefficients,
                               eps=self.transform.eps,
                               method=self.transform.method,
                               meta=meta)

    def retune(self, cost_model, *, objective: str = "time",
               candidates=None, sketch=None) -> "object":
        """Re-pick L with the sketched tuner and rebase the monitor.

        Returns the :class:`~repro.online.sketch.SketchedTuningResult`.
        The maintainer itself keeps its L (changing L means refitting
        the dictionary — the caller decides); the drift monitor adopts
        the re-fitted α(L) curve so it stops firing on the new normal.
        """
        from repro.online.drift import fit_alpha_curve
        from repro.online.sketch import tune_dictionary_size_sketched

        result = tune_dictionary_size_sketched(
            self.a, self.eps, cost_model, objective=objective,
            candidates=candidates, sketch=sketch,
            seed=derive_seed(self.seed, 43, self.steps),
            workers=self.workers, backend=self.backend)
        if self.monitor is not None and len(result.table) >= 2:
            self.monitor.rebase(fit_alpha_curve(result.table))
        self.consecutive_fired = 0
        obs.inc("online.retunes")
        return result

    def status(self) -> dict:
        """JSON-ready digest (what ``GET /v1/metrics`` embeds)."""
        return {
            "steps": int(self.steps),
            "store": {
                "generation": self._store_generation(),
                "columns": int(self.a.shape[1]),
            },
            "drift": (self.monitor.status()
                      if self.monitor is not None else None),
            "updater": self.updater.status(),
            "atom_usage": self.stats.summary(),
            "generations_built": int(self.built_generations),
            "retune_recommended": self.retune_recommended,
        }

    def close(self) -> None:
        """Detach the stats watch (stop recording on this dictionary)."""
        unwatch_dictionary(self.updater.atoms)

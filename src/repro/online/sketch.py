"""Sketched α(L) tuning via very sparse random projections.

The exact subset estimator (Sec. VII, :mod:`repro.core.tuner`) draws a
*random* column subset per candidate size; on a ``ColumnStore`` those
scattered reads touch nearly every chunk, so one tuning run costs close
to a full pass per candidate — prohibitive at TB scale.  Following
Pourkamali-Anaraki et al. ("Efficient Dictionary Learning via Very
Sparse Random Projections", PAPERS.md), this module instead

1. reads a *small, chunk-aligned* sample of store columns exactly once
   (a handful of whole chunks — sequential I/O the store serves with
   one mmap each);
2. compresses the rows with a very sparse Achlioptas/Li projection
   ``R ∈ {−√(s/k), 0, +√(s/k)}^{k×M}`` with ``P(±) = 1/(2s)``,
   ``s = √M`` — a JL embedding with ~``M/√M`` non-zeros per row;
3. runs the standard α(L) measurement protocol entirely on the
   in-memory sketch.  Because ExD dictionaries *are* data columns, the
   sketched dictionary is automatically the sketch of the sampled
   columns — no separate dictionary projection step exists.

The JL embedding preserves the inner products and residual norms the
OMP selection loop compares, so the measured sketch density tracks the
raw-data α(L) closely (validated against the exact estimator in
``tests/test_online.py``); Eq. 2/3/4 are then billed with the
*original* ``M`` and ``N``, making the resulting table directly
comparable with :func:`repro.core.tuner.tune_dictionary_size`'s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.core.alpha import measure_alpha
from repro.core.cost_model import CostModel
from repro.core.tuner import TuningResult, default_candidates
from repro.errors import TuningError, ValidationError
from repro.linalg.kernels import use_backend
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "SketchConfig",
    "SketchedTuningResult",
    "sketch_store_columns",
    "sparse_projection",
    "tune_dictionary_size_sketched",
]


@dataclass(frozen=True)
class SketchConfig:
    """Sketch geometry knobs.

    Attributes
    ----------
    dim:
        Sketch dimension ``k`` (projected row count).  ``None`` picks
        ``max(16, M//4)`` capped at ``M`` — a 4× row compression that
        keeps the α estimate within a few percent on
        union-of-subspaces data.
    columns:
        Store columns to sample (chunk-aligned, read once).  ``None``
        picks ``max(4·L_max, ⌈0.15·N⌉)`` capped at ``N``.
    sparsity:
        The projection's ``s`` (each entry is ±1-scaled with
        probability ``1/(2s)``).  ``None`` uses ``√M`` (Li et al.'s
        "very sparse" regime).
    """

    dim: int | None = None
    columns: int | None = None
    sparsity: float | None = None

    def resolved_dim(self, m: int) -> int:
        if self.dim is not None:
            return min(check_positive_int(self.dim, "sketch dim"), m)
        return min(m, max(16, m // 4))

    def resolved_sparsity(self, m: int) -> float:
        if self.sparsity is not None:
            s = float(self.sparsity)
            if s < 1.0:
                raise ValidationError(
                    f"sketch sparsity must be >= 1, got {s}")
            return s
        return float(np.sqrt(m))


@dataclass
class SketchedTuningResult(TuningResult):
    """A :class:`~repro.core.tuner.TuningResult` plus sketch accounting.

    ``subset_columns`` reports the sketched sample size (the columns
    actually read); ``bytes_read`` / ``chunks_read`` the store I/O the
    sketch cost, for direct comparison with the exact estimator's.
    """

    sketch_dim: int = 0
    sketch_columns: int = 0
    sketch_sparsity: float = 0.0
    bytes_read: int = 0
    chunks_read: int = 0
    column_indices: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))


def sparse_projection(k: int, m: int, *, seed=None,
                      sparsity: float | None = None) -> np.ndarray:
    """A ``(k, M)`` very sparse ±1 JL projection, deterministic in seed.

    Entries are ``±√(s/k)`` with probability ``1/(2s)`` each and zero
    otherwise (Achlioptas for ``s = 3``; Li/Hastie/Church justify
    ``s = √M``).  ``E[RᵀR] = I``, so sketched inner products are
    unbiased.
    """
    k = check_positive_int(k, "k")
    m = check_positive_int(m, "m")
    s = float(np.sqrt(m)) if sparsity is None else float(sparsity)
    if s < 1.0:
        raise ValidationError(f"sparsity must be >= 1, got {s}")
    rng = as_generator(seed)
    u = rng.random((k, m))
    r = np.zeros((k, m), dtype=np.float64)
    scale = np.sqrt(s / k)
    r[u < 0.5 / s] = scale
    r[u > 1.0 - 0.5 / s] = -scale
    return r


def sketch_store_columns(a, n_cols: int, *, seed=None):
    """Sample ``n_cols`` columns of ``a`` with chunk-aligned reads.

    For a :class:`~repro.store.ColumnStore`, whole chunks are drawn
    (deterministically under the seed) and each is read exactly once
    with one sequential ``read_range`` — this is where the byte savings
    over the exact estimator's scattered per-candidate subsets come
    from.  Dense inputs just sample columns.  Returns
    ``(columns, indices)`` with ``columns`` of shape ``(M, ≤ n_cols)``.
    """
    from repro.store.column_store import is_column_store

    n = a.shape[1]
    n_cols = min(check_positive_int(n_cols, "n_cols"), n)
    rng = as_generator(derive_seed(seed, 29))
    if not is_column_store(a):
        idx = np.sort(rng.choice(n, size=n_cols, replace=False))
        return np.asarray(a, dtype=np.float64)[:, idx], idx
    bounds = a.chunk_bounds()
    order = rng.permutation(len(bounds))
    picked: list[int] = []
    total = 0
    for ci in order:
        picked.append(int(ci))
        total += bounds[ci][1] - bounds[ci][0]
        if total >= n_cols:
            break
    picked.sort()
    parts = [a.read_range(bounds[ci][0], bounds[ci][1]) for ci in picked]
    columns = np.concatenate(parts, axis=1)
    indices = np.concatenate(
        [np.arange(bounds[ci][0], bounds[ci][1]) for ci in picked])
    if columns.shape[1] > n_cols:
        keep = np.sort(rng.choice(columns.shape[1], size=n_cols,
                                  replace=False))
        columns = columns[:, keep]
        indices = indices[keep]
    return np.ascontiguousarray(columns), indices


def tune_dictionary_size_sketched(a, eps: float, cost_model: CostModel, *,
                                  objective: str = "time",
                                  candidates=None,
                                  sketch: SketchConfig | None = None,
                                  subset_fraction: float = 0.25,
                                  trials: int = 1, seed=None,
                                  workers: int | None = None,
                                  backend=None) -> SketchedTuningResult:
    """Pick L* from a sketched sample instead of raw subset columns.

    Mirrors :func:`repro.core.tuner.tune_dictionary_size` — identical
    candidate grid semantics, α-measurement protocol and Eq. 2/3/4
    evaluation — but every encode runs on the ``(k, n_sketch)`` sketch,
    and Eq. 2/3/4 are billed with the *original* ``M`` and ``N`` so the
    returned costs live on the same scale as the exact tuner's table.

    ``a`` may be a ``ColumnStore`` (the intended use: the sample is a
    few whole chunks, read once) or a dense matrix (validation).
    """
    from repro.store.column_store import check_matrix_or_store

    a = check_matrix_or_store(a, "A")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    sketch = sketch or SketchConfig()
    m, n = a.shape
    k = sketch.resolved_dim(m)
    s = sketch.resolved_sparsity(m)

    with obs.span("tuner.tune_sketched"), use_backend(backend):
        # I/O accounting deltas (meaningful while observability is on —
        # the bench and the maintainer run under obs.observed()).
        bytes_before = obs.REGISTRY.counter("store.bytes_read")
        chunks_before = obs.REGISTRY.counter("store.chunks_read")

        # Upper bound of the candidate grid first: the sample must hold
        # enough columns for the largest candidate's 2·L subset rule.
        if candidates is not None:
            cand_sorted = sorted({check_positive_int(c, "candidate")
                                  for c in candidates})
            l_max = cand_sorted[-1]
        else:
            cand_sorted = None
            l_max = min(4 * m, n)
        n_cols = sketch.columns
        if n_cols is None:
            n_cols = max(4 * l_max, int(np.ceil(0.15 * n)))
        n_cols = min(int(n_cols), n)

        sample, col_indices = sketch_store_columns(
            a, n_cols, seed=derive_seed(seed, 31))
        r = sparse_projection(k, m, seed=derive_seed(seed, 37),
                              sparsity=s)
        sketched = r @ sample          # (k, n_sketch), in memory
        n_sketch = sketched.shape[1]
        obs.inc("online.sketch_columns", n_sketch)
        obs.set_gauge("online.sketch_dim", k)

        if cand_sorted is None:
            from repro.core.tuner import find_min_feasible_size
            l_min = find_min_feasible_size(
                sketched, eps, seed=derive_seed(seed, 7),
                subset_fraction=subset_fraction, trials=trials,
                workers=workers)
            cand_sorted = default_candidates(m, n, l_min)

        rng = as_generator(derive_seed(seed, 41))
        n_sub = max(min(n_sketch, int(round(subset_fraction * n_sketch))),
                    2)
        order = rng.permutation(n_sketch)

        table = []
        columns_read = 0
        for l in cand_sorted:
            n_eff = min(max(n_sub, 2 * l), n_sketch)
            if l > n_eff:
                continue
            columns_read = max(columns_read, n_eff)
            sub = sketched[:, np.sort(order[:n_eff])]
            est = measure_alpha(sub, l, eps, trials=trials,
                                seed=derive_seed(seed, 2, l),
                                workers=workers)
            if not est.feasible:
                continue
            predicted_nnz = est.mean * n
            cost = cost_model.objective(objective, m, l, predicted_nnz, n)
            table.append((l, est.mean, predicted_nnz, cost))

        bytes_read = obs.REGISTRY.counter("store.bytes_read") - bytes_before
        chunks_read = (obs.REGISTRY.counter("store.chunks_read")
                       - chunks_before)

    obs.inc("tuner.candidates_evaluated", len(cand_sorted))
    obs.inc("tuner.candidates_feasible", len(table))
    if not table:
        raise TuningError(
            f"no feasible candidate among {cand_sorted} at eps={eps} "
            f"on a (k={k}, n={n_sketch}) sketch")
    best = min(table, key=lambda row: row[3])
    return SketchedTuningResult(
        best_size=best[0], objective=objective, table=table,
        subset_columns=columns_read, sketch_dim=k,
        sketch_columns=n_sketch, sketch_sparsity=s,
        bytes_read=int(bytes_read), chunks_read=int(chunks_read),
        column_indices=np.asarray(col_indices, dtype=np.int64))

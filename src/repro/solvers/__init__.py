"""Iterative learning algorithms on Gram operators.

Every solver takes the Gram matrix as an abstract ``x -> Gx`` operation,
so the same code runs on the raw data (``AᵀA``), the ExD transform
(``(DC)ᵀDC``), serially or on the emulated cluster — exactly the
"learning algorithm as an iterative update function on the Gram matrix"
interface of the paper's API (Sec. VIII).
"""

from repro.solvers.adagrad import AdagradState
from repro.solvers.lasso import LassoResult, lasso_gd, soft_threshold
from repro.solvers.ridge import ridge_gd
from repro.solvers.elastic_net import elastic_net_gd
from repro.solvers.power_method import (
    DistributedEigenResult,
    distributed_power_method,
    power_method_transformed,
)
from repro.solvers.distributed import (
    distributed_elastic_net,
    distributed_lasso,
    distributed_ridge,
)
from repro.solvers.fista import fista, estimate_lipschitz
from repro.solvers.conjugate_gradient import conjugate_gradient
from repro.solvers.sparse_pca import (
    hard_truncate,
    sparse_principal_components,
    truncated_power_method,
)

__all__ = [
    "fista",
    "estimate_lipschitz",
    "conjugate_gradient",
    "hard_truncate",
    "sparse_principal_components",
    "truncated_power_method",
    "AdagradState",
    "LassoResult",
    "lasso_gd",
    "soft_threshold",
    "ridge_gd",
    "elastic_net_gd",
    "DistributedEigenResult",
    "distributed_power_method",
    "power_method_transformed",
    "distributed_lasso",
    "distributed_ridge",
    "distributed_elastic_net",
]

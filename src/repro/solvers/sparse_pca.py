"""Sparse PCA by the truncated Power method.

The paper lists sparse PCA among the Power-method applications ExtDict
serves (Sec. II-A).  TPower [Yuan & Zhang 2013] interleaves the usual
``x ← Gx`` update with hard truncation to the ``k`` largest-magnitude
coordinates, converging to a k-sparse dominant eigenvector.  Runs on
any Gram operator, so it inherits the ExD acceleration unchanged.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int


def hard_truncate(x: np.ndarray, k: int) -> np.ndarray:
    """Keep the ``k`` largest-|.| entries of ``x``, zero the rest."""
    x = np.asarray(x, dtype=np.float64)
    k = check_positive_int(k, "k")
    if k >= x.size:
        return x.copy()
    out = np.zeros_like(x)
    idx = np.argpartition(np.abs(x), -k)[-k:]
    out[idx] = x[idx]
    return out


def truncated_power_method(gram_op: Callable[[np.ndarray], np.ndarray],
                           n: int, k: int, *, tol: float = 1e-8,
                           max_iter: int = 500,
                           seed=None) -> tuple[float, np.ndarray, int]:
    """k-sparse dominant eigenvector of a PSD Gram operator.

    Returns ``(rayleigh_quotient, unit k-sparse vector, iterations)``.
    The Rayleigh quotient ``xᵀGx`` lower-bounds the true λ_max and is
    the explained variance of the sparse component.
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    if k > n:
        raise ValidationError(f"k={k} exceeds n={n}")
    rng = as_generator(seed)
    x = hard_truncate(rng.standard_normal(n), k)
    norm = float(np.linalg.norm(x))
    x = x / norm if norm > 0 else np.eye(n)[0]
    value = 0.0
    it = 0
    for it in range(1, max_iter + 1):
        y = gram_op(x)
        new_value = float(x @ y)
        y = hard_truncate(y, k)
        norm = float(np.linalg.norm(y))
        if norm == 0.0:
            return 0.0, x, it
        x_new = y / norm
        if abs(new_value - value) <= tol * max(abs(new_value), 1e-30) and \
                it > 1:
            return new_value, x_new, it
        x, value = x_new, new_value
    return value, x, max_iter


def sparse_principal_components(gram_op, n: int, n_components: int,
                                k: int, *, tol: float = 1e-8,
                                max_iter: int = 500,
                                seed=None) -> tuple[np.ndarray, np.ndarray]:
    """Several k-sparse components by truncated power + deflation.

    Deflation is orthogonal projection against found components (their
    supports may overlap; sparse components are not exactly orthogonal,
    so this is the standard projection-deflation heuristic).

    Returns ``(explained_values, components)`` with components as
    columns.
    """
    n_components = check_positive_int(n_components, "n_components")
    if n_components > n:
        raise ValidationError(
            f"n_components={n_components} exceeds n={n}")
    comps = np.zeros((n, 0))
    values = np.empty(n_components)
    rng = as_generator(seed)
    for i in range(n_components):
        def deflated(x):
            y = gram_op(x - comps @ (comps.T @ x)) if comps.size else \
                gram_op(x)
            if comps.size:
                y = y - comps @ (comps.T @ y)
            return y
        lam, vec, _ = truncated_power_method(deflated, n, k, tol=tol,
                                             max_iter=max_iter, seed=rng)
        values[i] = lam
        comps = np.column_stack([comps, vec])
    return values, comps

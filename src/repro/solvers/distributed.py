"""Distributed proximal-Adagrad regression on a local Gram worker.

One generic rank program serves LASSO, ridge and elastic net: the
smooth gradient is ``2(Gx − Aᵀy) + 2λ₂x`` and the ℓ1 part enters
through the proximal soft-threshold with weight λ₁.  The per-iteration
schedule matches Algorithm 2 plus two scalars in one allreduce for the
stopping rule: Adagrad and the prox are coordinate-wise, so optimiser
state stays fully local to each rank's column block — no extra vector
traffic beyond the Gram update's ``min(M, L)`` words.
"""

from __future__ import annotations

import numpy as np

from repro import observability as obs
from repro.errors import ValidationError
from repro.solvers.adagrad import AdagradState
from repro.solvers.lasso import LassoResult, soft_threshold
from repro.utils.validation import check_positive_int

#: Absolute floor of the stopping rule's denominator.  The documented
#: criterion is *relative* — ``‖Δx‖ ≤ tol·‖x_new‖`` — and the floor only
#: guards the exact-zero iterate; it must sit far below any solution
#: magnitude of interest so small-norm solutions still stop on relative
#: change (a floor of 1.0 would silently turn the test absolute
#: whenever ``‖x‖ < 1``).
NORM_FLOOR = 1e-12


def regression_program(comm, worker_factory, y: np.ndarray, lam1: float,
                       lam2: float, *, lr: float = 0.1,
                       max_iter: int = 500, tol: float = 1e-6):
    """Rank program: distributed proximal gradient descent.

    ``y`` (length M) is broadcast once, each rank forms its block of
    ``Aᵀy`` locally, then iterates Gram updates.  ``lam1`` weights the
    ℓ1 prox, ``lam2`` the ℓ2 gradient term.
    """
    worker = worker_factory(comm)
    rank = comm.Get_rank()
    y = comm.bcast(np.asarray(y, dtype=np.float64) if rank == 0 else None,
                   root=0)
    aty_i = worker.adjoint_data_apply(y)
    n_i = worker.local_n
    x_i = np.zeros(n_i)
    adagrad = AdagradState(max(n_i, 1), lr=lr)
    history: list[float] = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        gx_i = worker.apply(x_i)
        grad_i = 2.0 * (gx_i - aty_i)
        if lam2:
            grad_i += 2.0 * lam2 * x_i
        comm.charge_flops(2 * n_i)
        if n_i:
            step = adagrad.step(grad_i)
            if lam1:
                rates = adagrad.effective_rates()
                x_new = soft_threshold(x_i - step, lam1 * rates)
            else:
                x_new = x_i - step
            comm.charge_flops(6 * n_i)
        else:
            x_new = x_i
        # Global relative change: two scalars in one allreduce.
        local = np.array([float(np.sum((x_new - x_i) ** 2)),
                          float(np.sum(x_new ** 2))])
        comm.charge_flops(4 * n_i)
        totals = comm.allreduce(local, op="sum")
        change = float(np.sqrt(totals[0])) / \
            max(float(np.sqrt(totals[1])), NORM_FLOOR)
        history.append(change)
        x_i = x_new
        if change <= tol:
            converged = True
            break
    blocks = comm.gather(x_i, root=0)
    if rank == 0:
        return np.concatenate(blocks), it, converged, history
    return None


def _run(cluster, worker_factory, y, lam1: float, lam2: float, *,
         lr: float, max_iter: int, tol: float) -> tuple[LassoResult, object]:
    from repro.mpi.runtime import run_spmd

    check_positive_int(max_iter, "max_iter")
    if lam1 < 0 or lam2 < 0:
        raise ValidationError(
            f"penalties must be >= 0, got lam1={lam1}, lam2={lam2}")
    with obs.span("solver.distributed"):
        result = run_spmd(0, regression_program, worker_factory,
                          np.asarray(y, dtype=np.float64), lam1, lam2,
                          lr=lr, max_iter=max_iter, tol=tol,
                          cluster=cluster)
    x, iterations, converged, history = result.returns[0]
    obs.inc("solver.distributed.runs")
    obs.inc("solver.distributed.iterations", iterations)
    if converged:
        obs.inc("solver.distributed.converged")
    return (LassoResult(x=x, iterations=iterations, converged=converged,
                        history=history), result)


def distributed_lasso(cluster, worker_factory, y: np.ndarray, lam: float, *,
                      lr: float = 0.1, max_iter: int = 500,
                      tol: float = 1e-6) -> tuple[LassoResult, object]:
    """Distributed LASSO: ``min ‖Ax−y‖² + λ‖x‖₁`` on the emulated cluster.

    Returns ``(LassoResult, SPMDResult)`` — the latter carries simulated
    time/energy for the Fig. 9 comparison.
    """
    return _run(cluster, worker_factory, y, lam, 0.0, lr=lr,
                max_iter=max_iter, tol=tol)


def distributed_ridge(cluster, worker_factory, y: np.ndarray, lam: float, *,
                      lr: float = 0.1, max_iter: int = 500,
                      tol: float = 1e-6) -> tuple[LassoResult, object]:
    """Distributed ridge: ``min ‖Ax−y‖² + λ‖x‖₂²``."""
    return _run(cluster, worker_factory, y, 0.0, lam, lr=lr,
                max_iter=max_iter, tol=tol)


def distributed_elastic_net(cluster, worker_factory, y: np.ndarray,
                            lam1: float, lam2: float, *, lr: float = 0.1,
                            max_iter: int = 500,
                            tol: float = 1e-6) -> tuple[LassoResult, object]:
    """Distributed elastic net: ``min ‖Ax−y‖² + λ₁‖x‖₁ + λ₂‖x‖₂²``."""
    return _run(cluster, worker_factory, y, lam1, lam2, lr=lr,
                max_iter=max_iter, tol=tol)

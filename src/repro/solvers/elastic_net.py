"""Elastic Net: ℓ1 + ℓ2 regularised least squares.

Objective: ``min_x ‖Ax − y‖₂² + λ₁‖x‖₁ + λ₂‖x‖₂²``.  Combines the ridge
gradient with the LASSO proximal step — the paper names Elastic Net as
one of the generic Gram-iterative algorithms ExtDict serves that
problem-specific accelerations cannot (Sec. III).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ValidationError
from repro.solvers.adagrad import AdagradState
from repro.solvers.lasso import LassoResult, soft_threshold
from repro.utils.validation import check_positive_int


def elastic_net_gd(gram_op: Callable[[np.ndarray], np.ndarray],
                   aty: np.ndarray, n: int, lam1: float, lam2: float, *,
                   lr: float = 0.1, max_iter: int = 500, tol: float = 1e-6,
                   x0: np.ndarray | None = None) -> LassoResult:
    """Solve the Elastic Net by proximal-Adagrad gradient descent."""
    n = check_positive_int(n, "n")
    aty = np.asarray(aty, dtype=np.float64)
    if aty.shape != (n,):
        raise ValidationError(f"aty must have shape ({n},), got {aty.shape}")
    if lam1 < 0 or lam2 < 0:
        raise ValidationError(
            f"penalties must be >= 0, got lam1={lam1}, lam2={lam2}")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    adagrad = AdagradState(n, lr=lr)
    result = LassoResult(x=x, iterations=0, converged=False)
    for it in range(1, max_iter + 1):
        grad = 2.0 * (gram_op(x) - aty) + 2.0 * lam2 * x
        step = adagrad.step(grad)
        rates = adagrad.effective_rates()
        x_new = soft_threshold(x - step, lam1 * rates)
        change = float(np.linalg.norm(x_new - x)) / \
            max(float(np.linalg.norm(x_new)), 1.0)
        result.history.append(change)
        x = x_new
        if change <= tol:
            result.x = x
            result.iterations = it
            result.converged = True
            return result
    result.x = x
    result.iterations = max_iter
    return result

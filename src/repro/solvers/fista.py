"""FISTA — accelerated proximal gradient for the LASSO objective.

[Beck & Teboulle 2009].  Same Gram-operator interface as
:func:`repro.solvers.lasso.lasso_gd` but with Nesterov momentum and a
fixed step ``1/(2·Lip)`` where ``Lip`` is (an upper bound on) the largest
eigenvalue of ``G`` — estimated with a few power iterations on the same
operator, so the whole solver still only ever touches the data through
Gram updates.  Converges in ``O(1/k²)`` versus plain descent's
``O(1/k)``; an optional extension beyond the paper's Adagrad scheme.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ValidationError
from repro.linalg.power_iteration import power_iteration
from repro.solvers.lasso import LassoResult, soft_threshold
from repro.utils.validation import check_positive_int


def estimate_lipschitz(gram_op: Callable[[np.ndarray], np.ndarray],
                       n: int, *, iters: int = 30, seed=0) -> float:
    """Upper-bound ``2·λ_max(G)`` — the gradient Lipschitz constant."""
    lam, _, _ = power_iteration(gram_op, n, tol=1e-4, max_iter=iters,
                                seed=seed)
    # 10% headroom: power iteration approaches λ_max from below.
    return 2.0 * 1.1 * max(lam, 1e-30)


def fista(gram_op: Callable[[np.ndarray], np.ndarray], aty: np.ndarray,
          n: int, lam: float, *, max_iter: int = 500, tol: float = 1e-6,
          x0: np.ndarray | None = None,
          lipschitz: float | None = None, seed=0) -> LassoResult:
    """Solve ``min_x ‖Ax − y‖² + λ‖x‖₁`` with FISTA.

    Parameters match :func:`repro.solvers.lasso.lasso_gd`; ``lipschitz``
    may be supplied to skip the power-iteration estimate.
    """
    n = check_positive_int(n, "n")
    aty = np.asarray(aty, dtype=np.float64)
    if aty.shape != (n,):
        raise ValidationError(f"aty must have shape ({n},), got {aty.shape}")
    if lam < 0:
        raise ValidationError(f"lam must be >= 0, got {lam}")
    lip = lipschitz if lipschitz is not None \
        else estimate_lipschitz(gram_op, n, seed=seed)
    if lip <= 0:
        raise ValidationError(f"lipschitz must be positive, got {lip}")
    step = 1.0 / lip

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    z = x.copy()
    t = 1.0
    result = LassoResult(x=x, iterations=0, converged=False)
    for it in range(1, max_iter + 1):
        grad = 2.0 * (gram_op(z) - aty)
        x_new = soft_threshold(z - step * grad, lam * step)
        t_new = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        z = x_new + ((t - 1.0) / t_new) * (x_new - x)
        change = float(np.linalg.norm(x_new - x)) / \
            max(float(np.linalg.norm(x_new)), 1.0)
        result.history.append(change)
        x, t = x_new, t_new
        if change <= tol:
            result.x = x
            result.iterations = it
            result.converged = True
            return result
    result.x = x
    result.iterations = max_iter
    return result

"""Distributed Power method with deflation (the paper's PCA engine).

Runs on any *local Gram worker* — an object owning a column block that
performs one distributed Gram update (``repro.core.gram.LocalGramWorker``
for the ExD transform, ``repro.baselines.dense.LocalDenseGramWorker``
for raw ``AᵀA``) — so ExtDict and the baseline share the identical
iteration and communication schedule except for the update itself.

Deflation keeps previously-found eigenvectors distributed: projecting
them out costs one ``k``-word allreduce per iteration, negligible next
to the ``min(M, L)``-word Gram update traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.errors import ValidationError
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive_int


@dataclass
class DistributedEigenResult:
    """Top-k spectrum from a distributed Power-method run.

    Attributes
    ----------
    eigenvalues:
        Estimated eigenvalues of the Gram matrix, in discovery
        (descending) order.  May hold *fewer* than the requested ``k``
        entries: when deflation exhausts the numerical spectrum
        (``k > rank(Gram)``), the result is truncated to the eigenpairs
        actually found instead of being padded with garbage.
    eigenvectors:
        ``(N, len(eigenvalues))`` array (assembled on the driver).
    iterations:
        Power iterations spent per eigenvalue.
    spmd:
        The :class:`~repro.mpi.runtime.SPMDResult` with simulated
        time/energy/traffic (set by the driver).
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    iterations: list = field(default_factory=list)
    spmd: object | None = None


def power_method_program(comm, worker_factory, k: int, *, tol: float = 1e-7,
                         max_iter: int = 200, seed=None,
                         rank_tol: float = 1e-12):
    """Rank program: top-k eigenpairs by power iteration + deflation.

    Stops early when deflation exhausts the numerical spectrum: an
    iterate whose deflated image has norm ``λ ≤ rank_tol · λ_max``
    (``λ_max`` = largest eigenvalue found so far; exact zero before the
    first) carries no remaining signal, so the loop returns only the
    eigenpairs actually found rather than padding the basis with noise
    vectors and phantom eigenvalues.  The decision is driven by
    allreduce results that are identical on every rank, so all ranks
    truncate at the same point and the collective schedule stays
    matched.
    """
    worker = worker_factory(comm)
    rank = comm.Get_rank()
    rng = np.random.default_rng(derive_seed(seed, rank))
    n_i = worker.local_n
    basis = np.zeros((n_i, 0))
    eigenvalues: list[float] = []
    iteration_counts: list[int] = []

    def deflate_and_norm(z_i: np.ndarray) -> tuple[np.ndarray, float]:
        """Project out the found basis and return the global norm.

        Fused into ONE allreduce carrying ``[Bᵀz, zᵀz]``: since the
        basis is globally orthonormal, ``‖z − B c‖² = ‖z‖² − ‖c‖²`` —
        no second reduction needed.  Keeping collective count low
        matters: each collective costs a latency on every platform.
        """
        kk = basis.shape[1]
        local = np.empty(kk + 1)
        if kk:
            local[:kk] = basis.T @ z_i
            comm.charge_flops(2 * n_i * kk)
        local[kk] = float(z_i @ z_i)
        comm.charge_flops(2 * n_i)
        total = comm.allreduce(local, op="sum")
        coefs, z_sq = total[:kk], float(total[kk])
        if kk:
            z_i = z_i - basis @ coefs
            comm.charge_flops(2 * n_i * kk)
            z_sq = max(z_sq - float(coefs @ coefs), 0.0)
        return z_i, float(np.sqrt(z_sq))

    for _ in range(k):
        x_i = rng.standard_normal(n_i)
        x_i, norm = deflate_and_norm(x_i)
        if norm == 0.0:
            break  # the found basis already spans the whole space
        x_i = x_i / norm
        # Numerical-rank floor: relative to the largest eigenvalue found
        # (a norm is >= 0, so before the first pair only an exact zero —
        # e.g. the zero Gram — trips it).
        lam_floor = rank_tol * (eigenvalues[0] if eigenvalues else 0.0)
        lam_prev, lam, it = 0.0, 0.0, 0
        exhausted = False
        for it in range(1, max_iter + 1):
            z_i, lam = deflate_and_norm(worker.apply(x_i))
            if lam <= lam_floor:
                exhausted = True
                break
            x_i = z_i / lam
            if abs(lam - lam_prev) <= tol * max(lam, 1e-30):
                break
            lam_prev = lam
        if exhausted:
            break
        # Re-orthonormalise before appending (stops deflation drift).
        x_i, norm = deflate_and_norm(x_i)
        if norm > 0:
            x_i = x_i / norm
        basis = np.column_stack([basis, x_i])
        eigenvalues.append(lam)
        iteration_counts.append(it)

    blocks = comm.gather(basis, root=0)
    if rank == 0:
        vectors = np.concatenate(blocks, axis=0)
        return np.asarray(eigenvalues), vectors, iteration_counts
    return None


def distributed_power_method(cluster, worker_factory, k: int, *,
                             tol: float = 1e-7, max_iter: int = 200,
                             seed=None,
                             rank_tol: float = 1e-12) -> DistributedEigenResult:
    """Driver: run the Power method on the emulated cluster.

    ``worker_factory(comm)`` must build the per-rank Gram worker.  When
    ``k`` exceeds the numerical rank of the Gram matrix, the returned
    spectrum is truncated to the eigenpairs actually found (see
    :func:`power_method_program`).
    """
    from repro.mpi.runtime import run_spmd

    k = check_positive_int(k, "k")
    with obs.span("power_method"):
        result = run_spmd(0, power_method_program, worker_factory, k,
                          tol=tol, max_iter=max_iter, seed=seed,
                          rank_tol=rank_tol, cluster=cluster)
    eigenvalues, vectors, iters = result.returns[0]
    obs.inc("power_method.runs")
    obs.inc("power_method.eigenpairs", len(eigenvalues))
    obs.inc("power_method.iterations", int(sum(iters)))
    return DistributedEigenResult(eigenvalues=eigenvalues,
                                  eigenvectors=vectors, iterations=iters,
                                  spmd=result)


def power_method_transformed(transform, cluster, k: int, *,
                             tol: float = 1e-7, max_iter: int = 200,
                             seed=None) -> DistributedEigenResult:
    """ExtDict flavour: Power method on ``(DC)ᵀDC`` (Fig. 10)."""
    from repro.core.gram import LocalGramWorker

    if k > transform.n:
        raise ValidationError(
            f"k={k} exceeds the number of data columns {transform.n}")
    d = transform.dictionary.atoms
    c = transform.coefficients

    def factory(comm):
        return LocalGramWorker(comm, d, c)

    return distributed_power_method(cluster, factory, k, tol=tol,
                                    max_iter=max_iter, seed=seed)

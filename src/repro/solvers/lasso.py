"""LASSO by proximal gradient descent with Adagrad step sizes.

Objective: ``min_x ‖Ax − y‖₂² + λ‖x‖₁`` (paper Sec. VIII-A).  Each
iteration needs one Gram update ``Gx`` — supplied as an abstract
operator, so it costs ``AᵀA x`` on raw data or ``(DC)ᵀDC x`` under
ExtDict — plus the precomputed ``Aᵀy``.

The smooth gradient is ``2(Gx − Aᵀy)``; the ℓ1 term is handled with the
proximal soft-threshold under the Adagrad metric (per-coordinate
thresholds ``λ·η_i``), which converges to the true LASSO solution —
the paper's "provably converging gradient-descent" contrast to SGD.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.solvers.adagrad import AdagradState
from repro.utils.validation import check_positive_int


def soft_threshold(x: np.ndarray, thresholds) -> np.ndarray:
    """Coordinate-wise soft threshold ``sign(x)·max(|x| − t, 0)``."""
    t = np.asarray(thresholds, dtype=np.float64)
    return np.sign(x) * np.maximum(np.abs(x) - t, 0.0)


@dataclass
class LassoResult:
    """Solution and convergence trace of one LASSO solve.

    Attributes
    ----------
    x:
        The solution vector.
    iterations:
        Gradient steps taken.
    converged:
        Whether the relative-change stopping rule fired before
        ``max_iter``.
    history:
        Per-iteration ``‖Δx‖/max(‖x‖,1)`` values.
    objective_history:
        Per-iteration objective values when objective tracking is on.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    history: list = field(default_factory=list)
    objective_history: list = field(default_factory=list)


def lasso_gd(gram_op: Callable[[np.ndarray], np.ndarray], aty: np.ndarray,
             n: int, lam: float, *, lr: float = 0.1, max_iter: int = 500,
             tol: float = 1e-6, x0: np.ndarray | None = None,
             y_sq: float | None = None,
             callback: Callable | None = None) -> LassoResult:
    """Serial proximal-Adagrad LASSO on an abstract Gram operator.

    Parameters
    ----------
    gram_op:
        ``x -> Gx`` for ``G = AᵀA`` (exact or transformed).
    aty:
        Precomputed ``Aᵀy`` (length n).
    lam:
        ℓ1 penalty weight.
    y_sq:
        Optional ``‖y‖²``; when given the true objective value is
        recorded each iteration in ``objective_history``.
    callback:
        Called as ``callback(it, x)`` after every iteration.
    """
    n = check_positive_int(n, "n")
    aty = np.asarray(aty, dtype=np.float64)
    if aty.shape != (n,):
        raise ValidationError(f"aty must have shape ({n},), got {aty.shape}")
    if lam < 0:
        raise ValidationError(f"lam must be >= 0, got {lam}")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if x.shape != (n,):
        raise ValidationError(f"x0 must have shape ({n},), got {x.shape}")
    adagrad = AdagradState(n, lr=lr)
    result = LassoResult(x=x, iterations=0, converged=False)
    for it in range(1, max_iter + 1):
        gx = gram_op(x)
        grad = 2.0 * (gx - aty)
        step = adagrad.step(grad)
        rates = adagrad.effective_rates()
        x_new = soft_threshold(x - step, lam * rates)
        change = float(np.linalg.norm(x_new - x)) / \
            max(float(np.linalg.norm(x_new)), 1.0)
        result.history.append(change)
        if y_sq is not None:
            # ‖Ax−y‖² = xᵀGx − 2xᵀAᵀy + ‖y‖² — no extra Gram update: gx
            # is from the pre-step x, close enough for a trace.
            quad = float(x @ gx) - 2.0 * float(x @ aty) + y_sq
            result.objective_history.append(
                quad + lam * float(np.abs(x).sum()))
        x = x_new
        if callback is not None:
            callback(it, x)
        if change <= tol:
            result.x = x
            result.iterations = it
            result.converged = True
            return result
    result.x = x
    result.iterations = max_iter
    return result

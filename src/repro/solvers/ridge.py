"""Ridge regression by Adagrad gradient descent on a Gram operator.

Objective: ``min_x ‖Ax − y‖₂² + λ‖x‖₂²``; gradient
``2(Gx − Aᵀy) + 2λx``.  One of the paper's motivating iterative-update
algorithms (Sec. II-A).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ValidationError
from repro.solvers.adagrad import AdagradState
from repro.solvers.lasso import LassoResult
from repro.utils.validation import check_positive_int


def ridge_gd(gram_op: Callable[[np.ndarray], np.ndarray], aty: np.ndarray,
             n: int, lam: float, *, lr: float = 0.1, max_iter: int = 500,
             tol: float = 1e-6, x0: np.ndarray | None = None) -> LassoResult:
    """Solve ridge regression; returns the same result record as LASSO."""
    n = check_positive_int(n, "n")
    aty = np.asarray(aty, dtype=np.float64)
    if aty.shape != (n,):
        raise ValidationError(f"aty must have shape ({n},), got {aty.shape}")
    if lam < 0:
        raise ValidationError(f"lam must be >= 0, got {lam}")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    adagrad = AdagradState(n, lr=lr)
    result = LassoResult(x=x, iterations=0, converged=False)
    for it in range(1, max_iter + 1):
        grad = 2.0 * (gram_op(x) - aty) + 2.0 * lam * x
        x_new = x - adagrad.step(grad)
        change = float(np.linalg.norm(x_new - x)) / \
            max(float(np.linalg.norm(x_new)), 1.0)
        result.history.append(change)
        x = x_new
        if change <= tol:
            result.x = x
            result.iterations = it
            result.converged = True
            return result
    result.x = x
    result.iterations = max_iter
    return result

"""Conjugate gradient on the (regularised) Gram operator.

Solves ``(G + λI) x = Aᵀy`` — the ridge normal equations — using only
Gram updates, one per iteration.  CG is the natural exact solver for the
ℓ2 problems ExtDict targets and converges in ``O(√κ)`` iterations; it is
also the engine behind interior-point SVM steps the paper lists among
its target algorithms.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.solvers.lasso import LassoResult
from repro.utils.validation import check_positive_int


def conjugate_gradient(gram_op: Callable[[np.ndarray], np.ndarray],
                       b: np.ndarray, n: int, *, lam: float = 0.0,
                       max_iter: int = 500, tol: float = 1e-8,
                       x0: np.ndarray | None = None,
                       raise_on_fail: bool = False) -> LassoResult:
    """Solve ``(G + λI) x = b`` by conjugate gradients.

    Parameters
    ----------
    gram_op:
        ``x -> Gx`` for symmetric PSD ``G``.
    b:
        Right-hand side (typically ``Aᵀy``).
    lam:
        Tikhonov shift; ``lam > 0`` guarantees positive-definiteness.
    tol:
        Relative residual target ``‖r‖ ≤ tol·‖b‖``.
    """
    n = check_positive_int(n, "n")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValidationError(f"b must have shape ({n},), got {b.shape}")
    if lam < 0:
        raise ValidationError(f"lam must be >= 0, got {lam}")

    def op(v: np.ndarray) -> np.ndarray:
        out = gram_op(v)
        return out + lam * v if lam else out

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - op(x)
    p = r.copy()
    rs = float(r @ r)
    b_norm = max(float(np.linalg.norm(b)), 1e-30)
    result = LassoResult(x=x, iterations=0, converged=False)
    for it in range(1, max_iter + 1):
        gp = op(p)
        denom = float(p @ gp)
        if denom <= 0:
            # Numerically singular direction: G PSD means we are done
            # up to round-off unless lam=0 and b has a null-space part.
            break
        alpha = rs / denom
        x = x + alpha * p
        r = r - alpha * gp
        rs_new = float(r @ r)
        rel = float(np.sqrt(rs_new)) / b_norm
        result.history.append(rel)
        if rel <= tol:
            result.x = x
            result.iterations = it
            result.converged = True
            return result
        p = r + (rs_new / rs) * p
        rs = rs_new
    if raise_on_fail:
        raise ConvergenceError(
            f"CG did not reach tol={tol} in {max_iter} iterations",
            iterations=max_iter,
            residual=result.history[-1] if result.history else None)
    result.x = x
    result.iterations = max_iter
    return result

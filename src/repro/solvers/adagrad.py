"""Adagrad step-size adaptation [Duchi et al. 2011].

The paper uses Adagrad for both its gradient-descent LASSO and the SGD
baseline ("We use the Adagrad method for updating the gradient [36]").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


class AdagradState:
    """Per-coordinate accumulated squared gradients.

    ``step(g)`` returns the scaled step ``lr · g / (δ + √h_t)`` where
    ``h_t = Σ g²`` — larger for rarely-updated coordinates.
    """

    def __init__(self, n: int, *, lr: float = 0.1, delta: float = 1e-8) -> None:
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        if lr <= 0 or delta <= 0:
            raise ValidationError(
                f"lr and delta must be positive, got {lr}, {delta}")
        self.lr = float(lr)
        self.delta = float(delta)
        self.accum = np.zeros(n)

    def step(self, gradient: np.ndarray) -> np.ndarray:
        """Accumulate ``gradient²`` and return the adapted step."""
        g = np.asarray(gradient, dtype=np.float64)
        if g.shape != self.accum.shape:
            raise ValidationError(
                f"gradient shape {g.shape} != state shape {self.accum.shape}")
        self.accum += g * g
        return self.lr * g / (self.delta + np.sqrt(self.accum))

    def effective_rates(self) -> np.ndarray:
        """Current per-coordinate learning rates (for prox scaling).

        Capped at ``lr``: the raw ``lr/(δ+√h)`` blows up for coordinates
        with (near-)zero gradient history, which would make proximal
        thresholds of ``λ·rate`` annihilate a warm start.  The gradient
        *step* never exceeds ``lr·|g|/√(g²) = lr``, so the cap keeps the
        prox consistent with the step metric.
        """
        return np.minimum(self.lr / (self.delta + np.sqrt(self.accum)),
                          self.lr)

"""Power iteration with deflation on an abstract Gram operator.

The paper's PCA application runs the Power method on ``G = AᵀA``
(baseline) or ``(DC)ᵀDC`` (ExtDict): ``x_{t+1} = Gx_t / ‖Gx_t‖`` until
the Rayleigh quotient stabilises, then deflates and repeats for the next
eigenvalue (Sec. VIII-A).  The operator is passed as a callable so the
same loop drives dense, transformed, serial and distributed backends.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.utils.rng import as_generator


def power_iteration(operator: Callable[[np.ndarray], np.ndarray], n: int,
                    *, tol: float = 1e-9, max_iter: int = 1000,
                    seed=None, deflate_basis: np.ndarray | None = None,
                    raise_on_fail: bool = False) -> tuple[float, np.ndarray, int]:
    """Leading eigenpair of a symmetric PSD operator.

    Parameters
    ----------
    operator:
        Maps ``x -> G x`` for an implicit symmetric PSD ``G`` of size n.
    deflate_basis:
        Optional orthonormal columns to project out each iteration
        (previously found eigenvectors).
    raise_on_fail:
        Raise :class:`~repro.errors.ConvergenceError` when ``max_iter``
        is exhausted instead of returning the best estimate.

    Returns
    -------
    (eigenvalue, eigenvector, iterations)
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    rng = as_generator(seed)
    x = rng.standard_normal(n)
    if deflate_basis is not None and deflate_basis.size:
        x -= deflate_basis @ (deflate_basis.T @ x)
    norm = np.linalg.norm(x)
    if norm == 0.0:
        x = np.ones(n)
        norm = np.sqrt(n)
    x /= norm
    eigenvalue = 0.0
    for it in range(1, max_iter + 1):
        y = operator(x)
        if deflate_basis is not None and deflate_basis.size:
            y -= deflate_basis @ (deflate_basis.T @ y)
        new_eigenvalue = float(np.linalg.norm(y))
        if new_eigenvalue == 0.0:
            return 0.0, x, it
        x = y / new_eigenvalue
        if abs(new_eigenvalue - eigenvalue) <= tol * max(new_eigenvalue, 1e-30):
            return new_eigenvalue, x, it
        eigenvalue = new_eigenvalue
    if raise_on_fail:
        raise ConvergenceError(
            f"power iteration did not converge in {max_iter} iterations",
            iterations=max_iter, residual=abs(new_eigenvalue - eigenvalue))
    return eigenvalue, x, max_iter


def top_eigenpairs(operator: Callable[[np.ndarray], np.ndarray], n: int,
                   k: int, *, tol: float = 1e-9, max_iter: int = 1000,
                   seed=None) -> tuple[np.ndarray, np.ndarray, int]:
    """Top-``k`` eigenpairs by repeated power iteration + deflation.

    Deflation is done by orthogonal projection against found vectors
    (equivalent to the paper's "content associated with the found
    eigenvalue is subtracted from the data").

    Returns
    -------
    (eigenvalues desc, eigenvectors as columns, total iterations)
    """
    if not 1 <= k <= n:
        raise ValidationError(f"k must be in [1, {n}], got {k}")
    values = np.empty(k)
    vectors = np.empty((n, k))
    total_iters = 0
    rng = as_generator(seed)
    for i in range(k):
        basis = vectors[:, :i] if i else None
        lam, vec, iters = power_iteration(
            operator, n, tol=tol, max_iter=max_iter, seed=rng,
            deflate_basis=basis)
        # Re-orthogonalise against earlier vectors to stop drift.
        if i:
            vec = vec - vectors[:, :i] @ (vectors[:, :i].T @ vec)
            nv = np.linalg.norm(vec)
            if nv > 0:
                vec = vec / nv
        values[i] = lam
        vectors[:, i] = vec
        total_iters += iters
    return values, vectors, total_iters

"""Shared-memory parallel Batch-OMP encoding engine.

ExD preprocessing sparse-codes every column of ``A`` independently
(Alg. 1 step 3), which makes the encode embarrassingly parallel over
columns — the paper distributes exactly this step across ranks, and
RankMap / Mensch et al. report near-linear scaling for column-wise
sparse coding.  This module provides the single-host analogue:

* :func:`parallel_batch_omp_matrix` — a worker-pool chunked column
  scheduler over the Batch-OMP kernel.  The parent computes ``G = DᵀD``
  and ``DᵀA`` once (one BLAS-3 product each); workers inherit them via
  fork-time copy-on-write pages, so nothing heavy is pickled.  Chunks
  are merged **in column order**, which makes the CSC output and the
  :class:`~repro.linalg.omp.BatchOMPStats` bit-identical to the serial
  path for every worker count and chunk size.
* :class:`GramCache` / :func:`cached_gram` — a process-wide LRU cache of
  ``DᵀD`` keyed on dictionary identity, so tuner trials (and evolving
  updates) that reuse a dictionary stop recomputing the Gram matrix.
* :func:`fork_map` — the generic deterministic fork-pool map the engine
  is built on, reused by the trial-parallel α estimators and the dense
  baselines.

Workers are plain ``fork`` processes.  When forking is unsafe or
unavailable — non-fork platforms, daemonic workers (no nested pools), or
a multi-threaded parent such as the MPI emulator's rank threads — the
engine degrades to in-process chunked execution, which returns the very
same bits; ``workers`` is therefore always safe to pass.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.errors import DictionaryError, ValidationError
from repro.online.stats import record_encode

__all__ = [
    "GramCache",
    "cached_gram",
    "encode_columns",
    "fork_map",
    "parallel_batch_omp_matrix",
    "parallel_least_squares",
    "resolve_workers",
]


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` knob to an effective worker count.

    ``None``, ``0`` and ``1`` mean serial; a negative value means "all
    available cores" (CPU affinity-aware); any other positive integer is
    taken literally.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        try:
            return max(len(os.sched_getaffinity(0)), 1)
        except (AttributeError, OSError):
            return os.cpu_count() or 1
    return max(workers, 1)


# ----------------------------------------------------------------------
# Process-wide Gram cache
# ----------------------------------------------------------------------
class GramCache:
    """LRU cache of ``DᵀD`` keyed on the identity of the atom array.

    The key is ``id(d)`` guarded by a weak reference, so a recycled id
    (new array at an old address) can never alias a stale entry, and
    entries die with their dictionary.  Hits additionally check a
    content fingerprint, so in-place mutation of a cached array (K-SVD
    rewrites atoms between sweeps) invalidates its entry instead of
    serving a stale Gram; the hash costs ``O(M·L)`` per lookup against
    the ``O(M·L²)`` recompute it saves.

    Bounded by entry count and by per-entry size (grams larger than
    ``max_bytes`` are returned but not retained).
    """

    def __init__(self, max_entries: int = 8,
                 max_bytes: int = 1 << 28) -> None:
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        # RLock: the weakref eviction callback can fire re-entrantly
        # while the cache lock is already held (e.g. a del inside get()
        # drops the last strong reference).
        self._lock = threading.RLock()
        self._entries: OrderedDict[int, tuple] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every cached Gram matrix (and reset the hit counters)."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def _evict(self, key: int) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def invalidate(self, d) -> bool:
        """Explicitly drop the cached Gram for ``d`` (if present).

        ``d`` is the atom array itself or anything carrying one in an
        ``atoms`` attribute (a ``Dictionary``/``DictOperator``); the key
        matches :meth:`get`'s.  The content-fingerprint check already
        protects lookups against in-place mutation, but online atom
        updates call this at every mutation so a stale ``G = DᵀD`` is
        *deterministically* gone the moment the atoms change — not
        merely detectable on the next hit.  Returns whether an entry
        was actually evicted.
        """
        atoms = getattr(d, "atoms", d)
        with self._lock:
            dropped = self._entries.pop(id(atoms), None) is not None
        if dropped:
            obs.inc("gram_cache.invalidations")
        return dropped

    @staticmethod
    def _fingerprint(d: np.ndarray) -> int:
        return hash(d.tobytes())

    def get(self, d: np.ndarray) -> np.ndarray:
        """Return ``d.T @ d``, cached across calls with the same array."""
        key = id(d)
        fp = self._fingerprint(d)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                ref, cached_fp, gram = entry
                if ref() is d and cached_fp == fp:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    obs.inc("gram_cache.hits")
                    return gram
                del self._entries[key]
        gram = d.T @ d
        obs.inc("gram_cache.misses")
        with self._lock:
            self.misses += 1
            if gram.nbytes <= self.max_bytes:
                try:
                    ref = weakref.ref(d, lambda _r, k=key: self._evict(k))
                except TypeError:
                    return gram  # non-weakref-able input; don't retain
                self._entries[key] = (ref, fp, gram)
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
        return gram


#: The process-wide cache used by ``batch_omp_matrix`` (serial and
#: parallel paths alike) whenever no explicit ``gram`` is supplied.
GRAM_CACHE = GramCache()


def cached_gram(d: np.ndarray) -> np.ndarray:
    """``DᵀD`` through the process-wide :data:`GRAM_CACHE`."""
    return GRAM_CACHE.get(d)


# ----------------------------------------------------------------------
# Generic deterministic fork-pool map
# ----------------------------------------------------------------------
# Workers read the payload-independent state from this module global,
# which they inherit at fork time (copy-on-write; nothing is pickled).
_FORK_SHARED = None
# Guards the set-global -> fork window against concurrent fork_map calls.
_FORK_LOCK = threading.Lock()


def _can_fork() -> bool:
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    if multiprocessing.current_process().daemon:
        return False  # pool workers cannot spawn nested pools
    # fork() from a multi-threaded parent (e.g. the MPI emulator's rank
    # threads) can deadlock the child on locks held by other threads.
    if threading.active_count() > 1:
        return False
    return True


def _fork_invoke(task):
    fn, payload = task
    return fn(_FORK_SHARED, payload)


def _pinned_backend_name() -> str | None:
    """The concrete kernel name the parent resolves *right now*.

    Fork workers snapshot env/config at fork time, but the in-process
    fallback runs task-by-task in the parent — if something mutates
    ``REPRO_OMP_BACKEND`` mid-map, later tasks would silently resolve a
    different kernel than earlier ones (and than the fork path).  Both
    paths therefore run under one backend pinned here, before the first
    task.  An unresolvable default (env naming an unknown/unavailable
    backend) is left unpinned so the task itself raises the usual
    KernelError instead of the map call.
    """
    from repro.errors import KernelError
    from repro.linalg.kernels import resolve_backend

    try:
        return resolve_backend(None).name
    except KernelError:
        return None


def fork_map(fn, payloads, shared, workers: int) -> list:
    """Map ``fn(shared, payload)`` over ``payloads``, in payload order.

    ``fn`` must be a module-level function (pickled by reference);
    ``shared`` is handed to workers through fork-time inheritance and is
    never pickled.  Falls back to an in-process loop — same results,
    same order — whenever forking is unsafe (see :func:`_can_fork`).
    The kernel backend the parent resolves at entry is pinned for the
    whole map on both paths (see :func:`_pinned_backend_name`).
    """
    from repro.linalg.kernels import use_backend

    payloads = list(payloads)
    workers = min(int(workers), len(payloads))
    pinned = _pinned_backend_name()
    if workers <= 1 or not _can_fork():
        with use_backend(pinned):
            return [fn(shared, p) for p in payloads]
    global _FORK_SHARED
    ctx = multiprocessing.get_context("fork")
    with _FORK_LOCK:
        _FORK_SHARED = shared
        try:
            # Workers fork while the pinned default is installed and
            # inherit it for their whole lifetime.
            with use_backend(pinned):
                pool = ctx.Pool(processes=workers)
        finally:
            _FORK_SHARED = None
    try:
        return pool.map(_fork_invoke, [(fn, p) for p in payloads],
                        chunksize=1)
    finally:
        pool.close()
        pool.join()


# ----------------------------------------------------------------------
# The parallel encode engine
# ----------------------------------------------------------------------
@dataclass
class _EncodeShared:
    """Fork-inherited state of one parallel encode call."""

    gram: np.ndarray      # DᵀD, (L, L)
    dta: np.ndarray       # DᵀA, (L, N)
    col_sq: np.ndarray    # per-column ‖a_j‖², blocked schedule
    eps: float
    max_atoms: int | None
    strict: bool
    backend: str = "numpy"   # concrete kernel name, resolved pre-fork


def _encode_chunk(shared: _EncodeShared, bounds: tuple[int, int]):
    """Code columns ``[lo, hi)``; returns arrays ready for ordered merge.

    The per-column computation runs through exactly the kernel backend
    the parent resolved (same kernel, same ``‖a‖²`` dot, same stable
    row sort as the serial path), which is what makes the merged output
    bit-identical — workers never re-resolve config/env, they inherit
    the concrete backend name in ``shared``.
    """
    from repro.linalg.kernels import get_backend

    kernel = get_backend(shared.backend)
    lo, hi = bounds
    data_parts: list[np.ndarray] = []
    index_parts: list[np.ndarray] = []
    col_nnz = np.zeros(hi - lo, dtype=np.int64)
    iterations = np.zeros(hi - lo, dtype=np.int64)
    converged = np.zeros(hi - lo, dtype=bool)
    results = kernel.batch_omp_columns(
        shared.gram, shared.dta[:, lo:hi], shared.col_sq[lo:hi],
        shared.eps, shared.max_atoms)
    for off, (support, coef, res_sq, it, ok) in enumerate(results):
        if shared.strict and not ok:
            # Serial raises at the first failing column; report it so the
            # parent can raise deterministically for the smallest j.
            return ("error", lo + off, float(res_sq),
                    float(shared.col_sq[lo + off]))
        order = np.argsort(support, kind="stable")
        index_parts.append(support[order])
        data_parts.append(coef[order])
        col_nnz[off] = support.size
        iterations[off] = it
        converged[off] = ok
    data = (np.concatenate(data_parts) if data_parts
            else np.empty(0, dtype=np.float64))
    indices = (np.concatenate(index_parts) if index_parts
               else np.empty(0, dtype=np.int64))
    # Worker-side metric deltas: a forked child cannot write into the
    # parent's registry, so counts travel back with the chunk result and
    # the parent merges them (repro.observability cross-process merge).
    metric_deltas = {"omp.columns_encoded": hi - lo,
                     "omp.converged_columns": int(converged.sum()),
                     "omp.iterations": int(iterations.sum())}
    return ("ok", data, indices, col_nnz, iterations, converged,
            metric_deltas)


def default_chunk_size(n: int, workers: int) -> int:
    """Columns per task: ~4 tasks per worker for load balance."""
    return max(1, -(-n // (max(workers, 1) * 4)))


def parallel_batch_omp_matrix(d, a, eps: float, *,
                              max_atoms: int | None = None,
                              strict: bool = False,
                              gram: np.ndarray | None = None,
                              workers: int | None = None,
                              chunk_size: int | None = None,
                              backend=None):
    """Sparse-code every column of ``a`` with a chunked worker pool.

    Drop-in replacement for the serial ``batch_omp_matrix`` loop: the
    returned ``(CSCMatrix, BatchOMPStats)`` pair is bit-identical to the
    serial path regardless of ``workers`` and ``chunk_size`` — chunks
    are merged in column order, every chunk runs the identical kernel on
    the identical precomputed ``G``/``DᵀA``, and the stats are reduced
    from per-column integers.  Normally reached through
    ``batch_omp_matrix(..., workers=...)`` rather than called directly.
    """
    from repro.linalg.kernels import resolve_backend
    from repro.linalg.omp import (
        BatchOMPStats,
        blocked_column_squares,
        blocked_dta,
        is_dict_operator,
    )

    op = d if is_dict_operator(d) else None
    if op is None:
        d = np.asarray(d, dtype=np.float64)
        if d.ndim != 2:
            raise ValidationError(f"dictionary must be 2-D, got {d.ndim}-D")
        m, l = d.shape
        transform_nnz = m * l
    else:
        # DictOperator (dense Dictionary / FastDict / block operator):
        # only the parent touches it — workers receive the precomputed
        # G/DᵀA panels, never the operator itself.
        m, l = op.m, op.size
        transform_nnz = op.transform_nnz
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != m:
        raise ValidationError(
            f"incompatible shapes: D({m}, {l}), A{a.shape}")
    n = a.shape[1]
    nworkers = resolve_workers(workers)
    # Resolve config/env to a concrete kernel up front so every fork
    # worker runs the same backend the parent chose, and pay any JIT
    # compilation before forking — children then inherit the compiled
    # code copy-on-write instead of recompiling it per worker.
    kernel = resolve_backend(backend)
    kernel.warmup()
    with obs.span("omp.encode"):
        if gram is None:
            gram = op.gram() if op is not None else cached_gram(d)
        # Same aligned-panel schedule as the serial path (see
        # repro.linalg.omp.ENCODE_BLOCK_COLS): serial, parallel and
        # store-streaming encodes all see bit-identical G/DᵀA/‖a_j‖².
        dta_all = blocked_dta(d, a)
        col_sq = blocked_column_squares(a)
        if chunk_size is None:
            chunk_size = default_chunk_size(n, nworkers)
        chunk_size = max(int(chunk_size), 1)
        chunks = [(lo, min(lo + chunk_size, n))
                  for lo in range(0, n, chunk_size)]
        obs.inc("pool.chunks", len(chunks))
        obs.set_gauge("pool.workers", nworkers)
        obs.set_gauge("pool.chunk_size", chunk_size)
        shared = _EncodeShared(gram=gram, dta=dta_all, col_sq=col_sq,
                               eps=eps, max_atoms=max_atoms, strict=strict,
                               backend=kernel.name)
        parts = fork_map(_encode_chunk, chunks, shared, nworkers)

    failures = [p for p in parts if p[0] == "error"]
    if failures:
        _, j, res_sq, a_sq = min(failures, key=lambda p: p[1])
        target_sq = (eps * float(np.sqrt(a_sq))) ** 2
        raise DictionaryError(
            f"Batch-OMP could not reach eps={eps} with {l} atoms "
            f"(residual {np.sqrt(res_sq):.3e} > "
            f"target {np.sqrt(target_sq):.3e})")

    data = np.concatenate([p[1] for p in parts]) if parts else \
        np.empty(0, dtype=np.float64)
    indices = np.concatenate([p[2] for p in parts]) if parts else \
        np.empty(0, dtype=np.int64)
    col_nnz = np.concatenate([p[3] for p in parts]) if parts else \
        np.empty(0, dtype=np.int64)
    iterations = np.concatenate([p[4] for p in parts]) if parts else \
        np.empty(0, dtype=np.int64)
    converged = np.concatenate([p[5] for p in parts]) if parts else \
        np.empty(0, dtype=bool)

    from repro.sparse.csc import CSCMatrix
    indptr = np.concatenate(([0], np.cumsum(col_nnz))).astype(np.int64)
    c = CSCMatrix(data, indices, indptr, (l, n), check=False)
    total_iters = int(iterations.sum())
    flops = 2 * transform_nnz * n + 4 * l * total_iters + 2 * c.nnz
    stats = BatchOMPStats(columns=n,
                          converged_columns=int(converged.sum()),
                          total_iterations=total_iters, flops=int(flops),
                          converged_mask=converged)
    for p in parts:
        obs.merge_counters(p[6])
    obs.merge_counters({"omp.flops": stats.flops})
    # Parent-side atom-usage recording: the merged CSC already contains
    # every worker's selections in column order, so recording here IS
    # the cross-worker counter merge (same pattern as metric_deltas).
    record_encode(op if op is not None else d, c)
    return c, stats


# ----------------------------------------------------------------------
# Shared-G micro-batch encode (the serving daemon's kernel)
# ----------------------------------------------------------------------
def encode_columns(d, columns, eps: float, *,
                   gram: np.ndarray | None = None,
                   max_atoms: int | None = None,
                   workers: int | None = None,
                   backend=None):
    """Sparse-code a stack of columns against ``d``, sharing one ``G``.

    ``d`` may be a dense array or any ``DictOperator`` (the serving
    registry hands the generation's dictionary object straight through,
    so a factored ``FastDict`` tenant pays the factored ``DᵀA`` cost).
    ``columns`` is ``(M, k)`` — typically a micro-batch of coalesced
    single-column requests.  One call amortises the ``DᵀA`` product (and
    the Gram lookup) across the whole batch, which is exactly what makes
    Batch-OMP fast; thanks to the fixed-width padded compute panels of
    :func:`~repro.linalg.omp.blocked_dta`, each column's code is
    bit-identical to encoding it alone, in any other batch, or inside a
    full ``batch_omp_matrix`` run — coalescing never changes answers.

    Returns ``(results, stats)`` where ``results`` is a list of
    ``(support, coefficients, converged)`` triples in column order
    (support index-sorted, as in the CSC output) and ``stats`` the usual
    :class:`~repro.linalg.omp.BatchOMPStats`.
    """
    from repro.linalg.omp import batch_omp_matrix

    columns = np.asarray(columns, dtype=np.float64)
    if columns.ndim != 2:
        raise ValidationError(
            f"columns must be 2-D (M, k), got {columns.ndim}-D")
    c, stats = batch_omp_matrix(d, columns, eps, max_atoms=max_atoms,
                                gram=gram, workers=workers,
                                backend=backend)
    results = []
    for j in range(columns.shape[1]):
        lo, hi = int(c.indptr[j]), int(c.indptr[j + 1])
        results.append((c.indices[lo:hi], c.data[lo:hi],
                        bool(stats.converged_mask[j])))
    return results, stats


# ----------------------------------------------------------------------
# Chunked dense least squares (RCSS / oASIS baselines)
# ----------------------------------------------------------------------
def _lstsq_chunk(shared, bounds):
    from repro.linalg.pseudo_inverse import least_squares_coefficients

    d, a = shared
    lo, hi = bounds
    return least_squares_coefficients(d, a[:, lo:hi])


def parallel_least_squares(d, a, *, workers: int | None = None,
                           chunk_size: int | None = None) -> np.ndarray:
    """Dense ``C = argmin_C ‖A − DC‖_F`` with column-chunked workers.

    Serial (``workers=None``) keeps the baselines' historical single
    ``lstsq`` call; with workers each chunk solves against the same
    ``D`` and the results are concatenated in column order.
    """
    from repro.linalg.pseudo_inverse import least_squares_coefficients

    d = np.asarray(d, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    if d.ndim != 2 or a.ndim != 2 or d.shape[0] != a.shape[0]:
        raise ValidationError(
            f"incompatible shapes: D{d.shape}, A{a.shape}")
    n = a.shape[1]
    nworkers = resolve_workers(workers)
    if nworkers <= 1 or n < 2:
        return least_squares_coefficients(d, a)
    if chunk_size is None:
        chunk_size = max(1, -(-n // nworkers))
    chunks = [(lo, min(lo + int(chunk_size), n))
              for lo in range(0, n, int(chunk_size))]
    parts = fork_map(_lstsq_chunk, chunks, (d, a), nworkers)
    return np.concatenate(parts, axis=1)

"""Pluggable kernel backends for the Batch-OMP greedy loop.

The Batch-OMP *orchestration* — panel-blocked ``DᵀA`` products, CSC
assembly, strict-mode semantics, the Eq. 2/3 FLOP ledger and the
observability counters — is pure python and lives in
:mod:`repro.linalg.omp` / :mod:`repro.linalg.parallel_omp`.  The
per-column greedy selection loop underneath it is the hot path: for
every selected atom it performs an argmax over ``L`` correlations, an
``O(k²)`` progressive Cholesky update and an ``O(L·k)`` correlation
refresh, all of which the reference implementation pays python-loop
overhead for on every atom.  This package splits that loop out behind a
narrow backend interface — the same pure-python-orchestration-over-
compiled-kernels layering RankMap and gpaw use — so compiled
implementations can be swapped in without touching the accounting
layer:

``numpy``
    The bit-exact reference (the historical ``_batch_omp_column`` loop,
    moved verbatim into :mod:`repro.linalg.kernels.numpy_ref`).
``numba``
    A lazily-compiled ``@njit`` kernel running the whole panel's greedy
    loops in machine code (:mod:`repro.linalg.kernels.numba_kernel`).
    Optional dependency: registered always, available only when numba
    imports.
``cupy``
    A registration stub reserving the name for the GPU path
    (:mod:`repro.linalg.kernels.cupy_kernel`); see ROADMAP item 2.

Selection precedence (first match wins):

1. an explicit ``backend=`` argument (name or backend instance) on
   ``batch_omp_matrix`` / ``encode_columns`` / ``StreamingEncoder`` /
   ``MicroBatcher`` / the tuner;
2. a process default installed with :func:`set_default_backend` (the
   CLI's ``--backend`` flag does this);
3. the ``REPRO_OMP_BACKEND`` environment variable;
4. the built-in default, ``numpy``.

The special name ``auto`` resolves to the first *available* compiled
backend (currently numba) and silently degrades to the numpy reference
when none is importable — it never warns and never fails.

Tolerance contract
------------------
Compiled backends must select the **identical atom sequence** as the
numpy reference on well-conditioned inputs (the conformance suite's
golden cases) and reproduce its coefficients to :data:`COEF_RTOL` /
:data:`COEF_ATOL`.  Exact bit-identity across backends is *not*
promised — compiled substitution loops round differently from
LAPACK — which is why the backend choice is recorded by consumers that
persist results (the streaming encoder's checkpoints) and why every
bit-identity guarantee in the repo (serial vs. parallel vs. streaming
vs. serving) is scoped to *within one backend*.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from repro.errors import KernelError

__all__ = [
    "COEF_ATOL",
    "COEF_RTOL",
    "OMP_BACKEND_ENV",
    "OMPKernelBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "registered_backend_names",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]

#: Environment variable consulted when no explicit backend is given.
OMP_BACKEND_ENV = "REPRO_OMP_BACKEND"

#: Coefficient agreement demanded of every backend against the numpy
#: reference (the conformance suite enforces exactly these numbers).
#: Supports must match exactly on the golden cases; coefficients may
#: differ only by reordered floating-point reductions.
COEF_RTOL = 1e-9
COEF_ATOL = 1e-12

#: Compiled backends tried, in order, when resolving ``auto``.
AUTO_PREFERENCE = ("numba",)


class OMPKernelBackend:
    """One implementation of the per-column Batch-OMP greedy loop.

    Subclasses implement :meth:`batch_omp_columns` — everything else
    (strict-mode raises, CSC assembly, FLOP accounting, metrics) stays
    in the orchestration layer, so a backend only ever sees numeric
    arrays and returns numeric arrays.
    """

    #: Registry key; also what ``REPRO_OMP_BACKEND`` matches against.
    name: str = "?"
    #: Whether this backend runs compiled code (``auto`` prefers these).
    compiled: bool = False

    @classmethod
    def available(cls) -> bool:
        """Whether the backend can actually run in this process."""
        return True

    @classmethod
    def unavailable_reason(cls) -> str | None:
        """Human-readable reason when :meth:`available` is False."""
        return None

    def warmup(self) -> None:
        """Pay one-time costs (JIT compilation) eagerly.

        Called by the parallel engine before forking workers so the
        compiled code is inherited copy-on-write instead of being
        recompiled per child.  The default is a no-op.
        """

    def batch_omp_columns(self, gram, dta_panel, col_sq, eps: float,
                          max_atoms: int | None):
        """Greedy-code every column of one precomputed panel.

        Parameters
        ----------
        gram:
            ``DᵀD``, shape ``(L, L)``, float64.
        dta_panel:
            ``DᵀA`` for the panel's columns, shape ``(L, k)``; computed
            by the orchestration layer on its fixed-width aligned
            panels (never by the backend).
        col_sq:
            Per-column ``‖a_j‖²``, shape ``(k,)``.
        eps:
            Relative tolerance of Eq. 1.
        max_atoms:
            Optional sparsity cap (``None`` means ``L``).

        Returns
        -------
        list of ``(support, coefficients, res_sq, iterations,
        converged)`` — one tuple per column, in column order, with the
        support in **selection order** (the orchestration layer sorts).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<OMPKernelBackend {self.name!r}>"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[OMPKernelBackend]] = {}
_INSTANCES: dict[str, OMPKernelBackend] = {}
# Process-default override (set_default_backend / CLI --backend); takes
# precedence over the environment variable.
_DEFAULT_OVERRIDE: str | None = None
_LOCK = threading.Lock()


def register_backend(cls: type[OMPKernelBackend]) -> type[OMPKernelBackend]:
    """Register a backend class under ``cls.name`` (decorator-friendly).

    Registration reserves the name; availability is checked only at
    resolution time, so optional-dependency backends register
    unconditionally.
    """
    if not cls.name or cls.name in ("auto", "?"):
        raise KernelError(f"backend class {cls!r} needs a concrete name")
    with _LOCK:
        _REGISTRY[cls.name] = cls
        _INSTANCES.pop(cls.name, None)
    return cls


def registered_backend_names() -> list[str]:
    """Every registered backend name (available or not), sorted."""
    return sorted(_REGISTRY)


def available_backends() -> list[str]:
    """Names of the backends that can run in this process, sorted."""
    return [name for name in registered_backend_names()
            if _REGISTRY[name].available()]


def get_backend(name: str) -> OMPKernelBackend:
    """Instance of the backend registered under ``name``.

    Raises :class:`~repro.errors.KernelError` for unknown names and for
    registered-but-unavailable backends (missing optional dependency).
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise KernelError(
            f"unknown OMP kernel backend {name!r}; registered backends: "
            f"{', '.join(registered_backend_names())} (or 'auto')")
    if not cls.available():
        reason = cls.unavailable_reason() or "dependency not importable"
        raise KernelError(
            f"OMP kernel backend {name!r} is registered but unavailable: "
            f"{reason}")
    with _LOCK:
        instance = _INSTANCES.get(name)
        if instance is None:
            instance = _INSTANCES[name] = cls()
    return instance


def default_backend_name() -> str:
    """The name the process would resolve with no explicit backend."""
    if _DEFAULT_OVERRIDE is not None:
        return _DEFAULT_OVERRIDE
    return os.environ.get(OMP_BACKEND_ENV, "").strip().lower() or "numpy"


def resolve_backend(backend=None) -> OMPKernelBackend:
    """Resolve an explicit/configured backend choice to an instance.

    ``backend`` may be a backend instance (returned as-is), a name, or
    ``None`` — in which case the process default, then
    ``REPRO_OMP_BACKEND``, then ``numpy`` apply.  ``auto`` picks the
    first available compiled backend and falls back to ``numpy``.
    """
    if isinstance(backend, OMPKernelBackend):
        return backend
    if backend is not None and not isinstance(backend, str):
        raise KernelError(
            f"backend must be a name or an OMPKernelBackend instance, "
            f"got {type(backend).__name__}")
    name = (backend or default_backend_name()).strip().lower()
    if name == "auto":
        for candidate in AUTO_PREFERENCE:
            cls = _REGISTRY.get(candidate)
            if cls is not None and cls.compiled and cls.available():
                return get_backend(candidate)
        return get_backend("numpy")
    return get_backend(name)


def set_default_backend(name: str | None) -> str | None:
    """Install (or with ``None`` clear) the process-default backend.

    The name is validated immediately — resolving it must succeed — so
    a typo fails at configuration time, not at the first encode.
    Returns the concrete name the default currently resolves to.
    """
    global _DEFAULT_OVERRIDE
    if name is None:
        _DEFAULT_OVERRIDE = None
        return None
    name = str(name).strip().lower()
    resolved = resolve_backend(name)
    _DEFAULT_OVERRIDE = name
    return resolved.name


@contextmanager
def use_backend(name: str | None):
    """Temporarily set the process-default backend (``None`` is a no-op).

    Restores the previous default on exit; this is how coarse-grained
    callers (the tuner) plumb one ``backend`` knob through their whole
    call tree without threading a parameter into every estimator.
    """
    if name is None:
        yield
        return
    global _DEFAULT_OVERRIDE
    previous = _DEFAULT_OVERRIDE
    set_default_backend(name)
    try:
        yield
    finally:
        _DEFAULT_OVERRIDE = previous


# Built-in backends register on import (cheap: no optional dependency
# is imported until a backend is actually resolved and used).
from repro.linalg.kernels import cupy_kernel  # noqa: E402,F401
from repro.linalg.kernels import numba_kernel  # noqa: E402,F401
from repro.linalg.kernels import numpy_ref  # noqa: E402,F401

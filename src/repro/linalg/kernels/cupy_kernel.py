"""CuPy GPU backend — registration stub (ROADMAP item 2's follow-on).

The serving daemon's batch encodes are the intended consumer: a whole
coalesced panel's greedy loops launched as one GPU kernel over the
device-resident ``G``.  This module reserves the ``cupy`` name in the
backend registry and documents the contract a real implementation must
meet; it deliberately reports itself unavailable (even when cupy is
importable) until a kernel that honours the package tolerance contract
lands, so ``REPRO_OMP_BACKEND=cupy`` fails loudly with a pointer here
instead of silently running the reference.

Filling the stub in means:

1. implement ``batch_omp_columns`` with device transfers at the panel
   boundary only (``G`` uploaded once per dictionary, panels streamed);
2. flip :meth:`CuPyBackend.available` to a real ``cupy`` +
   device-presence probe;
3. add the backend to ``AUTO_PREFERENCE`` behind numba and to the CI
   backend matrix — the conformance suite in
   ``tests/test_kernel_backends.py`` picks it up automatically.
"""

from __future__ import annotations

from repro.linalg.kernels import OMPKernelBackend, register_backend

__all__ = ["CuPyBackend"]


@register_backend
class CuPyBackend(OMPKernelBackend):
    """Reserved GPU backend; not yet implemented."""

    name = "cupy"
    compiled = True

    @classmethod
    def available(cls) -> bool:
        return False

    @classmethod
    def unavailable_reason(cls) -> str | None:
        return ("the cupy backend is a registration stub; see "
                "repro/linalg/kernels/cupy_kernel.py for what a real "
                "implementation must provide")

    def batch_omp_columns(self, gram, dta_panel, col_sq, eps: float,
                          max_atoms: int | None):  # pragma: no cover
        raise NotImplementedError(self.unavailable_reason())

"""Numba-compiled Batch-OMP kernel (optional dependency).

The whole per-panel greedy loop — argmax selection, progressive
Cholesky update, triangular solves and the ``α = Dᵀa − G[:, I] c``
refresh — runs inside one ``@njit`` function, eliminating the per-atom
python overhead the reference pays.  The algorithm is a line-for-line
transcription of :func:`repro.linalg.kernels.numpy_ref.batch_omp_column`
(same selection rule, same ``1e-12`` pivot tolerance, same stopping
floor), so atom-selection sequences match the reference; coefficients
agree to the package tolerance contract (compiled substitution loops
round differently from LAPACK's blocked triangular solves).

Compilation is lazy (first encode) and cached: ``cache=True`` persists
the machine code next to this file, so one process's compile pays for
every later one, and the parallel engine's pre-fork
:meth:`~NumbaBackend.warmup` makes children inherit the compiled kernel
copy-on-write instead of recompiling per worker.

Numba is NOT a hard dependency: the module registers the backend
unconditionally but imports numba only when the backend is actually
resolved, and :meth:`NumbaBackend.available` lets ``auto`` degrade to
the numpy reference silently.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.linalg.kernels import OMPKernelBackend, register_backend

__all__ = ["NumbaBackend"]

# Same numerical-dependence threshold as IncrementalCholesky's default.
_PIVOT_TOL = 1e-12

_KERNEL = None
_WARMED = False


def _build_kernel():
    """Compile (or load from cache) the panel kernel. Imports numba."""
    import numba

    @numba.njit(cache=True, fastmath=False)
    def panel_kernel(gram, dta, col_sq, eps, budget):  # pragma: no cover
        l = gram.shape[0]
        k = dta.shape[1]
        cap = budget if budget > 0 else 1
        supports = np.zeros((k, cap), dtype=np.int64)
        coefs = np.zeros((k, cap), dtype=np.float64)
        nnz = np.zeros(k, dtype=np.int64)
        iters = np.zeros(k, dtype=np.int64)
        res_out = np.zeros(k, dtype=np.float64)
        conv = np.zeros(k, dtype=np.bool_)

        alpha = np.empty(l, dtype=np.float64)
        excluded = np.empty(l, dtype=np.bool_)
        lfac = np.zeros((cap, cap), dtype=np.float64)
        w = np.empty(cap, dtype=np.float64)
        y = np.empty(cap, dtype=np.float64)
        coef = np.empty(cap, dtype=np.float64)

        for j in range(k):
            a_sq = col_sq[j]
            if a_sq == 0.0:
                conv[j] = True
                continue
            target_sq = (eps * np.sqrt(a_sq)) ** 2
            stop_sq = max(target_sq, a_sq * 1e-12)
            for i in range(l):
                alpha[i] = dta[i, j]
                excluded[i] = False
            size = 0
            res_sq = a_sq
            it = 0
            while res_sq > stop_sq and it < budget:
                # argmax |alpha| over atoms neither banned nor selected
                # (first index wins ties, like np.argmax over the
                # -inf-masked scores of the reference).
                best = -1
                best_score = -1.0
                for i in range(l):
                    if excluded[i]:
                        continue
                    s = abs(alpha[i])
                    if s > best_score:
                        best_score = s
                        best = i
                if best < 0:
                    break
                # Progressive Cholesky append of G[best, best] with
                # cross terms G[support, best]; a non-positive pivot
                # means the atom is numerically dependent — ban it and
                # retry, exactly like IncrementalCholesky.append.
                ok = True
                if size == 0:
                    diag = gram[best, best]
                    if diag <= _PIVOT_TOL:
                        ok = False
                    else:
                        lfac[0, 0] = np.sqrt(diag)
                else:
                    for r in range(size):
                        acc = gram[supports[j, r], best]
                        for t in range(r):
                            acc -= lfac[r, t] * w[t]
                        w[r] = acc / lfac[r, r]
                    pivot_sq = gram[best, best]
                    for t in range(size):
                        pivot_sq -= w[t] * w[t]
                    if pivot_sq <= _PIVOT_TOL:
                        ok = False
                    else:
                        for t in range(size):
                            lfac[size, t] = w[t]
                        lfac[size, size] = np.sqrt(pivot_sq)
                if not ok:
                    excluded[best] = True
                    continue
                supports[j, size] = best
                excluded[best] = True
                size += 1
                # Solve (L Lᵀ) c = (Dᵀa)_I by forward/back substitution.
                for r in range(size):
                    acc = dta[supports[j, r], j]
                    for t in range(r):
                        acc -= lfac[r, t] * y[t]
                    y[r] = acc / lfac[r, r]
                for r in range(size - 1, -1, -1):
                    acc = y[r]
                    for t in range(r + 1, size):
                        acc -= lfac[t, r] * coef[t]
                    coef[r] = acc / lfac[r, r]
                # α = Dᵀa − G[:, I] c and ‖r‖² = ‖a‖² − cᵀ(Dᵀa)_I.
                for i in range(l):
                    acc = dta[i, j]
                    for t in range(size):
                        acc -= gram[i, supports[j, t]] * coef[t]
                    alpha[i] = acc
                dot = 0.0
                for t in range(size):
                    dot += coef[t] * dta[supports[j, t], j]
                res_sq = a_sq - dot
                if res_sq < 0.0:
                    res_sq = 0.0
                it += 1
            nnz[j] = size
            iters[j] = it
            res_out[j] = res_sq
            conv[j] = res_sq <= stop_sq + 1e-12 * a_sq
            for t in range(size):
                coefs[j, t] = coef[t]
        return supports, coefs, nnz, res_out, iters, conv

    return panel_kernel


def _get_kernel():
    global _KERNEL
    if _KERNEL is None:
        _KERNEL = _build_kernel()
    return _KERNEL


@register_backend
class NumbaBackend(OMPKernelBackend):
    """Compiled backend: the panel greedy loop as one ``@njit`` kernel."""

    name = "numba"
    compiled = True

    @classmethod
    def available(cls) -> bool:
        return importlib.util.find_spec("numba") is not None

    @classmethod
    def unavailable_reason(cls) -> str | None:
        if cls.available():
            return None
        return ("numba is not installed; pip install numba, or select "
                "backend 'numpy'/'auto'")

    def warmup(self) -> None:
        """Force JIT compilation now (one tiny 1-atom encode)."""
        global _WARMED
        if _WARMED:
            return
        gram = np.ones((1, 1))
        dta = np.ones((1, 1))
        _get_kernel()(gram, dta, np.ones(1), 0.5, 1)
        _WARMED = True

    def batch_omp_columns(self, gram, dta_panel, col_sq, eps: float,
                          max_atoms: int | None):
        l = gram.shape[0]
        budget = l if max_atoms is None else max(min(int(max_atoms), l), 0)
        gram = np.ascontiguousarray(gram, dtype=np.float64)
        dta_panel = np.ascontiguousarray(dta_panel, dtype=np.float64)
        col_sq = np.ascontiguousarray(col_sq, dtype=np.float64)
        supports, coefs, nnz, res_sq, iters, conv = _get_kernel()(
            gram, dta_panel, col_sq, float(eps), budget)
        results = []
        for j in range(dta_panel.shape[1]):
            s = int(nnz[j])
            results.append((supports[j, :s].copy(), coefs[j, :s].copy(),
                            float(res_sq[j]), int(iters[j]),
                            bool(conv[j])))
        return results

"""The bit-exact numpy reference kernel for Batch-OMP.

This is the historical ``repro.linalg.omp._batch_omp_column`` loop,
moved behind the :class:`~repro.linalg.kernels.OMPKernelBackend`
interface unchanged — it is the oracle every other backend's
conformance is measured against (supports exactly equal, coefficients
within :data:`~repro.linalg.kernels.COEF_RTOL` /
:data:`~repro.linalg.kernels.COEF_ATOL`), and the fallback ``auto``
degrades to when no compiled backend is importable.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.cholesky import IncrementalCholesky
from repro.linalg.kernels import OMPKernelBackend, register_backend

__all__ = ["NumpyBackend", "batch_omp_column"]


def batch_omp_column(gram, dta, a_sq: float, eps: float,
                     max_atoms: int | None):
    """Batch-OMP greedy loop for one column on precomputed correlations.

    The reference per-column kernel (formerly
    ``repro.linalg.omp._batch_omp_column``).  Returns ``(support,
    coefficients, res_sq, iterations, converged)`` with the support in
    selection order.
    """
    l = gram.shape[0]
    budget = l if max_atoms is None else min(int(max_atoms), l)
    a_norm = np.sqrt(a_sq)
    target_sq = (eps * a_norm) ** 2
    # The recurrence ‖r‖² = ‖a‖² − cᵀ(Dᵀa)_I cancels catastrophically
    # below ~√ε_machine·‖a‖, so targets under that floor are unreachable
    # noise-chasing; stop there instead.
    stop_sq = max(target_sq, a_sq * 1e-12)
    if a_sq == 0.0:
        return np.empty(0, dtype=np.int64), np.empty(0), 0.0, 0, True

    alpha = dta.copy()
    support: list[int] = []
    banned = np.zeros(l, dtype=bool)
    chol = IncrementalCholesky(capacity=min(16, l))
    coef = np.empty(0)
    res_sq = a_sq
    it = 0
    while res_sq > stop_sq and it < budget:
        scores = np.abs(alpha)
        scores[banned] = -np.inf
        if support:
            scores[np.asarray(support)] = -np.inf
        k = int(np.argmax(scores))
        if not np.isfinite(scores[k]):
            break
        if not chol.append(gram[np.asarray(support, dtype=np.int64), k]
                           if support else np.empty(0), float(gram[k, k])):
            banned[k] = True
            continue
        support.append(k)
        idx = np.asarray(support, dtype=np.int64)
        coef = chol.solve(dta[idx])
        alpha = dta - gram[:, idx] @ coef
        res_sq = max(a_sq - float(coef @ dta[idx]), 0.0)
        it += 1
    converged = res_sq <= stop_sq + 1e-12 * a_sq
    return (np.asarray(support, dtype=np.int64), np.asarray(coef),
            res_sq, it, converged)


@register_backend
class NumpyBackend(OMPKernelBackend):
    """Reference backend: the plain-numpy greedy loop, column by column."""

    name = "numpy"
    compiled = False

    def batch_omp_columns(self, gram, dta_panel, col_sq, eps: float,
                          max_atoms: int | None):
        return [batch_omp_column(gram, dta_panel[:, j], float(col_sq[j]),
                                 eps, max_atoms)
                for j in range(dta_panel.shape[1])]

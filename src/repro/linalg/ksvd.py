"""K-SVD dictionary learning [Aharon, Elad, Bruckstein 2006].

ExD deliberately does **not** learn its dictionary — Algorithm 1 samples
columns, which is what makes preprocessing linear-time and scalable
(Sec. V).  K-SVD is implemented here as the classical learned-dictionary
comparison point: alternating Batch-OMP sparse coding with per-atom
rank-1 (SVD) updates.  The learned dictionary codes sparser at equal
size, but each training sweep costs a full sparse-coding pass plus L
SVD updates — the scalability trade the paper's design sidesteps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.linalg.omp import batch_omp_matrix
from repro.sparse.csc import CSCMatrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_matrix, check_positive_int


@dataclass
class KSVDResult:
    """Learned dictionary, final codes, and the training trace."""

    dictionary: np.ndarray
    codes: CSCMatrix
    errors: list = field(default_factory=list)   # per-sweep rel. F-error

    @property
    def iterations(self) -> int:
        """Completed training sweeps."""
        return len(self.errors)


def _init_dictionary(a: np.ndarray, n_atoms: int,
                     rng: np.random.Generator) -> np.ndarray:
    idx = rng.choice(a.shape[1], size=n_atoms,
                     replace=n_atoms > a.shape[1])
    d = a[:, idx].astype(np.float64, copy=True)
    norms = np.linalg.norm(d, axis=0)
    bad = norms <= 1e-12
    if np.any(bad):
        d[:, bad] = rng.standard_normal((a.shape[0], int(bad.sum())))
        norms = np.linalg.norm(d, axis=0)
    return d / norms


def ksvd(a, n_atoms: int, *, sparsity: int | None = None,
         eps: float = 0.0, iterations: int = 10,
         seed=None) -> KSVDResult:
    """Learn an ``n_atoms`` dictionary for the columns of ``a``.

    Parameters
    ----------
    sparsity:
        Per-column atom budget for the coding stage (the classical
        K-SVD setting).  When ``None``, coding runs error-constrained
        with tolerance ``eps`` instead.
    iterations:
        Training sweeps (code → update every atom).

    Returns
    -------
    :class:`KSVDResult` with unit-norm atoms.
    """
    a = check_matrix(a, "A")
    n_atoms = check_positive_int(n_atoms, "n_atoms")
    iterations = check_positive_int(iterations, "iterations")
    if sparsity is not None:
        sparsity = check_positive_int(sparsity, "sparsity")
    m, n = a.shape
    rng = as_generator(seed)
    d = _init_dictionary(a, n_atoms, rng)
    a_norm = max(float(np.linalg.norm(a)), 1e-30)

    codes = None
    errors: list[float] = []
    for _ in range(iterations):
        codes, _ = batch_omp_matrix(d, a, eps, max_atoms=sparsity)
        c_dense = codes.to_dense()
        residual = a - d @ c_dense
        errors.append(float(np.linalg.norm(residual)) / a_norm)
        for k in range(n_atoms):
            users = np.nonzero(c_dense[k] != 0)[0]
            if users.size == 0:
                # Dead atom: re-seed with the worst-coded column.
                worst = int(np.argmax(np.linalg.norm(residual, axis=0)))
                atom = a[:, worst] - d @ c_dense[:, worst] \
                    if np.linalg.norm(residual[:, worst]) > 1e-12 \
                    else rng.standard_normal(m)
                norm = np.linalg.norm(atom)
                if norm > 1e-12:
                    d[:, k] = atom / norm
                continue
            # Error matrix restricted to this atom's users, with the
            # atom's own contribution added back.
            e_k = residual[:, users] + np.outer(d[:, k], c_dense[k, users])
            # Rank-1 fit via one SVD of the (m × |users|) block.
            u, s, vt = np.linalg.svd(e_k, full_matrices=False)
            d[:, k] = u[:, 0]
            c_dense[k, users] = s[0] * vt[0]
            residual[:, users] = e_k - np.outer(d[:, k], c_dense[k, users])
        codes = CSCMatrix.from_dense(c_dense, tol=1e-12)
    return KSVDResult(dictionary=d, codes=codes, errors=errors)

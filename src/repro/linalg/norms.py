"""Norm helpers used by the transformation-error criterion of Eq. 1."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def frobenius_norm(a) -> float:
    """``‖A‖_F`` of a dense array."""
    a = np.asarray(a, dtype=np.float64)
    return float(np.linalg.norm(a.reshape(-1)))


def relative_frobenius_error(a, approx) -> float:
    """``‖A − Â‖_F / ‖A‖_F`` — the paper's transformation error.

    ``approx`` may be dense or anything with ``to_dense()``.
    """
    a = np.asarray(a, dtype=np.float64)
    if hasattr(approx, "to_dense"):
        approx = approx.to_dense()
    approx = np.asarray(approx, dtype=np.float64)
    if approx.shape != a.shape:
        raise ValidationError(
            f"shape mismatch: {a.shape} vs {approx.shape}")
    denom = frobenius_norm(a)
    if denom == 0.0:
        return 0.0 if frobenius_norm(approx) == 0.0 else np.inf
    return frobenius_norm(a - approx) / denom

"""Orthogonal Matching Pursuit — the sparse-coding core of ExD.

Two implementations:

* :func:`omp_solve` — the textbook greedy loop exactly as written in the
  paper's Algorithm 1 step 3 (re-solving the least-squares projection on
  the grown support each iteration).  Kept as the readable reference and
  the oracle for tests.
* :func:`batch_omp_solve` / :func:`batch_omp_matrix` — Batch-OMP with
  progressive Cholesky updates [Rubinstein et al. 2008], which the paper
  uses in its implementation (Sec. V-D).  ``batch_omp_matrix`` amortises
  ``G = DᵀD`` and ``DᵀA`` across all N columns — the whole-matrix
  ``DᵀA`` is one BLAS-3 product, which is where the ``O(MNL)`` term of
  the paper's complexity bound lives.

Both enforce the *relative* stopping rule of Eq. 1 per column:
``‖a − D c‖₂ ≤ eps · ‖a‖₂``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.errors import DictionaryError, ValidationError
from repro.linalg.kernels import resolve_backend
from repro.online.stats import record_encode
from repro.linalg.kernels.numpy_ref import batch_omp_column
from repro.sparse.builder import ColumnBuilder
from repro.sparse.csc import CSCMatrix

#: Backwards-compatible alias: the reference per-column kernel now lives
#: in :mod:`repro.linalg.kernels.numpy_ref` (it is the ``numpy``
#: backend); historical imports keep working.
_batch_omp_column = batch_omp_column


@dataclass
class OMPResult:
    """Sparse code of one column.

    Attributes
    ----------
    support:
        Selected atom indices, in selection order.
    coefficients:
        Least-squares coefficients for the selected atoms (same order).
    residual_norm:
        Final ``‖a − D_I c‖₂``.
    converged:
        Whether the relative tolerance was met.
    iterations:
        Number of greedy selections performed.
    """

    support: np.ndarray
    coefficients: np.ndarray
    residual_norm: float
    converged: bool
    iterations: int


#: Width of the fixed, absolutely-aligned column blocks every matrix
#: encode uses for its BLAS-3 precomputations (``DᵀA``, column norms).
#: BLAS results are not column-wise reproducible across different matrix
#: widths (small-N GEMM/GEMV dispatch to different kernels), so every
#: panel — including a trailing partial one — is evaluated at exactly
#: this width, zero-padded when fewer columns remain.  A fixed-shape
#: GEMM computes each output column from its own input column alone with
#: an instruction sequence independent of the panel's other contents, so
#: a column's coefficients depend only on ``(D, a_j)`` — the invariant
#: that makes the in-memory, out-of-core (:mod:`repro.store`) and
#: serving micro-batch (:mod:`repro.serve`) paths bit-identical however
#: the columns are grouped.  256 columns keeps the per-panel GEMM
#: comfortably in the BLAS-3 regime.
ENCODE_BLOCK_COLS = 256


def encode_block_bounds(n: int, block: int = ENCODE_BLOCK_COLS):
    """Aligned ``[lo, hi)`` compute-block bounds covering ``n`` columns."""
    return [(lo, min(lo + block, n)) for lo in range(0, n, block)]


def _padded_panel(a: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Contiguous ``ENCODE_BLOCK_COLS``-wide panel of ``a[:, lo:hi]``.

    A full panel is returned as a contiguous copy; a partial one is
    zero-padded on the right to the fixed width so the downstream GEMM /
    einsum always runs at the same shape.
    """
    if hi - lo == ENCODE_BLOCK_COLS:
        return np.ascontiguousarray(a[:, lo:hi])
    panel = np.zeros((a.shape[0], ENCODE_BLOCK_COLS), dtype=np.float64)
    panel[:, :hi - lo] = a[:, lo:hi]
    return panel


def is_dict_operator(d) -> bool:
    """True when ``d`` is a dictionary-like linear operator.

    Duck-typed on the :class:`~repro.core.dictionary.DictOperator`
    protocol members the encode paths need (``apply_t``/``gram``/
    ``atoms``) rather than an isinstance check, so this low-level
    module needs no import from :mod:`repro.core`.
    """
    return (hasattr(d, "apply_t") and hasattr(d, "gram")
            and hasattr(d, "atoms"))


def blocked_dta(d, a: np.ndarray, *, out: np.ndarray | None = None
                ) -> np.ndarray:
    """``DᵀA`` evaluated on fixed-width contiguous column panels.

    ``d`` may be a dense ``(M, L)`` array or any ``DictOperator`` —
    the panel product then routes through ``d.apply_t`` so a factored
    dictionary pays ``O(transform_nnz)`` per panel column instead of
    ``O(M·L)``.  (A dense :class:`~repro.core.dictionary.Dictionary`
    operator evaluates the very same ``atoms.T @ panel`` expression as
    a bare array, so the bits are unchanged.)

    ``out`` lets hot loops that evaluate many same-shaped products
    (the streaming encoder's per-block precompute, the serve path's
    per-micro-batch precompute, benchmarks) reuse one ``(L, n)``
    float64 workspace: first-touch page faults on a fresh output are
    comparable to the apply arithmetic itself for a factored
    dictionary, so the reuse is where much of the fast-transform win
    is realised.  The values written are identical either way.

    Bit-for-bit reproducible for any storage layout *and any column
    grouping* of ``a``: every panel apply runs at exactly
    :data:`ENCODE_BLOCK_COLS` columns (zero-padded when partial), so
    each output column is a fixed-shape function of its input column
    alone — encoding the full matrix, an aligned sub-range, or an
    arbitrary micro-batch of single columns produces identical values.
    """
    if is_dict_operator(d):
        l = d.size
        apply_t = d.apply_t
    else:
        l = d.shape[1]
        apply_t = d.T.__matmul__
    if out is None:
        out = np.empty((l, a.shape[1]), dtype=np.float64)
    elif out.shape != (l, a.shape[1]) or out.dtype != np.float64:
        raise ValidationError(
            f"out must be float64 of shape ({l}, {a.shape[1]}), got "
            f"{out.dtype} {out.shape}")
    for lo, hi in encode_block_bounds(a.shape[1]):
        out[:, lo:hi] = apply_t(_padded_panel(a, lo, hi))[:, :hi - lo]
    return out


def iter_panel_dta(d, a: np.ndarray):
    """Yield ``(lo, hi, DᵀA[:, lo:hi])`` one panel at a time.

    The values are exactly those of :func:`blocked_dta` — one padded
    fixed-width apply per panel — but the full ``(L, N)`` product is
    never materialised, so a consumer that uses each panel once (the
    serial encode sweep) pays only the apply arithmetic plus one live
    ``(L, 256)`` panel of memory traffic.  For a factored dictionary
    the avoided ``(L, N)`` write/read is comparable to the whole
    ``O(transform_nnz·N)`` apply, which is where the fast-transform
    speedup is realised end to end.
    """
    if is_dict_operator(d):
        apply_t = d.apply_t
    else:
        apply_t = d.T.__matmul__
    for lo, hi in encode_block_bounds(a.shape[1]):
        yield lo, hi, apply_t(_padded_panel(a, lo, hi))[:, :hi - lo]


def blocked_column_squares(a: np.ndarray) -> np.ndarray:
    """Per-column ``‖a_j‖²`` over the same fixed-width padded panels."""
    out = np.empty(a.shape[1], dtype=np.float64)
    for lo, hi in encode_block_bounds(a.shape[1]):
        panel = _padded_panel(a, lo, hi)
        out[lo:hi] = np.einsum("ij,ij->j", panel, panel)[:hi - lo]
    return out


def blocked_column_norms(a: np.ndarray) -> np.ndarray:
    """Per-column ℓ2 norms sharing the blocked reduction schedule."""
    return np.sqrt(blocked_column_squares(a))


def _prepare(d, a):
    d = np.asarray(d, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    if d.ndim != 2:
        raise ValidationError(f"dictionary must be 2-D, got {d.ndim}-D")
    if a.shape != (d.shape[0],):
        raise ValidationError(
            f"signal must have shape ({d.shape[0]},), got {a.shape}")
    return d, a


def omp_solve(d, a, eps: float, *, max_atoms: int | None = None,
              strict: bool = False) -> OMPResult:
    """Reference OMP: greedy atom selection + full re-projection.

    Parameters
    ----------
    d:
        Dictionary, shape ``(M, L)``; atoms need not be normalised
        (selection uses plain correlations ``|d_jᵀ r|`` as in Alg. 1,
        which assumes the input data matrix was column-normalised).
    a:
        Signal to code, shape ``(M,)``.
    eps:
        Relative tolerance of Eq. 1.
    max_atoms:
        Optional sparsity cap; defaults to ``L``.
    strict:
        Raise :class:`~repro.errors.DictionaryError` instead of returning
        an unconverged result when the tolerance cannot be met.
    """
    d, a = _prepare(d, a)
    m, l = d.shape
    budget = l if max_atoms is None else min(int(max_atoms), l)
    a_norm = float(np.linalg.norm(a))
    target = eps * a_norm
    # Numerical floor: residuals below ~1e-9·‖a‖ are float noise; chasing
    # them only pads the support with zero-weight atoms.
    stop_at = max(target, 1e-9 * a_norm)
    if a_norm == 0.0:
        return OMPResult(np.empty(0, dtype=np.int64), np.empty(0), 0.0,
                         True, 0)
    residual = a.copy()
    support: list[int] = []
    coef = np.empty(0)
    banned = np.zeros(l, dtype=bool)
    it = 0
    while float(np.linalg.norm(residual)) > stop_at and it < budget:
        corr = np.abs(d.T @ residual)
        corr[banned] = -np.inf
        if support:
            corr[np.asarray(support)] = -np.inf
        k = int(np.argmax(corr))
        if not np.isfinite(corr[k]):
            break
        trial = support + [k]
        sub = d[:, trial]
        coef_trial, *_ = np.linalg.lstsq(sub, a, rcond=None)
        new_residual = a - sub @ coef_trial
        if float(np.linalg.norm(new_residual)) >= \
                float(np.linalg.norm(residual)) - 1e-15 * a_norm:
            # Atom adds nothing (numerically dependent); ban and retry.
            banned[k] = True
            continue
        support = trial
        coef = coef_trial
        residual = new_residual
        it += 1
    rnorm = float(np.linalg.norm(residual))
    converged = rnorm <= stop_at + 1e-12 * a_norm
    if strict and not converged:
        raise DictionaryError(
            f"OMP could not reach eps={eps} with {l} atoms "
            f"(residual {rnorm:.3e} > target {target:.3e})")
    return OMPResult(np.asarray(support, dtype=np.int64), np.asarray(coef),
                     rnorm, converged, it)


def _strict_failure(eps: float, l: int, res_sq: float,
                    a_sq: float) -> DictionaryError:
    target_sq = (eps * float(np.sqrt(a_sq))) ** 2
    return DictionaryError(
        f"Batch-OMP could not reach eps={eps} with {l} atoms "
        f"(residual {np.sqrt(res_sq):.3e} > "
        f"target {np.sqrt(target_sq):.3e})")


def batch_omp_solve(d, a, eps: float, *, gram: np.ndarray | None = None,
                    dta: np.ndarray | None = None,
                    max_atoms: int | None = None,
                    strict: bool = False) -> OMPResult:
    """Batch-OMP for one column, reusing precomputed ``G`` and ``Dᵀa``.

    The residual is never formed: correlations are updated through
    ``α = Dᵀa − G[:, I] c`` and the residual norm through
    ``‖r‖² = ‖a‖² − cᵀ (Dᵀa)_I`` (valid because ``r ⊥ span(D_I)``).
    """
    d, a = _prepare(d, a)
    m, l = d.shape
    if gram is None:
        gram = d.T @ d
    if dta is None:
        dta = d.T @ a
    a_sq = float(a @ a)
    support, coef, res_sq, it, converged = _batch_omp_column(
        gram, dta, a_sq, eps, max_atoms)
    if strict and not converged:
        raise _strict_failure(eps, l, res_sq, a_sq)
    return OMPResult(support, coef, float(np.sqrt(res_sq)), converged, it)


@dataclass
class BatchOMPStats:
    """Aggregate accounting of one ``batch_omp_matrix`` call.

    ``converged_mask`` carries the per-column ε verdicts (the same flags
    ``batch_omp_solve`` would report column by column), so callers like
    the evolving-data update never need a dense ``O(M·N·L)``
    re-reconstruction to find the unrepresentable columns.
    """

    columns: int
    converged_columns: int
    total_iterations: int
    flops: int
    converged_mask: np.ndarray | None = None


def batch_omp_matrix(d, a, eps: float, *, max_atoms: int | None = None,
                     strict: bool = False,
                     gram: np.ndarray | None = None,
                     workers: int | None = None,
                     chunk_size: int | None = None,
                     backend=None) \
        -> tuple[CSCMatrix, BatchOMPStats]:
    """Sparse-code every column of ``a`` against dictionary ``d``.

    ``d`` may be a dense ``(M, L)`` array or any ``DictOperator``
    (dense :class:`~repro.core.dictionary.Dictionary`, factored
    :class:`~repro.core.fastdict.FastDict`, evolve-path block
    operator): the ``DᵀA`` precompute and the FLOP ledger then route
    through the operator, so a factored dictionary's precompute costs
    ``O(transform_nnz·N)`` instead of ``O(M·L·N)``.  A dense operator
    reproduces the bare-array bits exactly.

    Returns the coefficient matrix ``C`` (CSC, shape ``(L, N)``) and the
    aggregate statistics (including an analytic FLOP estimate used to
    charge virtual clocks in the distributed preprocessing).

    Parameters
    ----------
    workers:
        Column-parallel encode over a shared-memory worker pool (see
        :mod:`repro.linalg.parallel_omp`).  ``None``/``1`` is serial;
        ``-1`` uses every available core.  The output is bit-identical
        to the serial path for every worker count.
    chunk_size:
        Columns per worker task (parallel path only); defaults to ~4
        tasks per worker.
    gram:
        Precomputed ``DᵀD``.  When omitted, it is obtained through the
        process-wide Gram cache, so repeated encodes against the same
        dictionary object skip the ``O(M·L²)`` product.
    backend:
        Which :mod:`~repro.linalg.kernels` implementation runs the
        per-column greedy loop: a name (``"numpy"``, ``"numba"``,
        ``"auto"``), a backend instance, or ``None`` for the
        process/environment default (``REPRO_OMP_BACKEND``).  All
        FLOP/metric accounting stays here in the orchestration layer,
        so Eq. 2/3 numbers are backend-independent; results are
        bit-identical across the serial/parallel/streaming/serving
        paths *for any fixed backend*, and within the kernels package's
        documented tolerance across backends.

    Raises
    ------
    DictionaryError
        With ``strict=True``, as soon as any column cannot meet ``eps``
        — the paper's ``L < L_min`` infeasible regime.
    """
    from repro.linalg.parallel_omp import (
        cached_gram,
        parallel_batch_omp_matrix,
        resolve_workers,
    )

    op = d if is_dict_operator(d) else None
    if op is None:
        d = np.asarray(d, dtype=np.float64)
        if d.ndim != 2:
            raise ValidationError(f"dictionary must be 2-D, got {d.ndim}-D")
        m, l = d.shape
        transform_nnz = m * l
    else:
        m, l = op.m, op.size
        transform_nnz = op.transform_nnz
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != m:
        raise ValidationError(
            f"incompatible shapes: D({m}, {l}), A{a.shape}")
    if resolve_workers(workers) > 1:
        return parallel_batch_omp_matrix(d, a, eps, max_atoms=max_atoms,
                                         strict=strict, gram=gram,
                                         workers=workers,
                                         chunk_size=chunk_size,
                                         backend=backend)
    kernel = resolve_backend(backend)
    n = a.shape[1]
    with obs.span("omp.encode"):
        if gram is None:
            gram = op.gram() if op is not None else cached_gram(d)
        col_sq = blocked_column_squares(a)
        builder = ColumnBuilder(nrows=l)
        total_iters = 0
        converged_mask = np.zeros(n, dtype=bool)
        # The greedy loops run panel-by-panel through the selected
        # kernel backend (each column is independent, so the grouping
        # is free); the DᵀA precompute streams through the same aligned
        # BLAS-3 panels (never materialising the (L, N) product — the
        # fixed partition is also what lets the out-of-core streaming
        # encoder reproduce these bits block by block).  Strict-mode
        # still fails on the smallest out-of-tolerance column index.
        for lo, hi, dta_panel in iter_panel_dta(d, a):
            results = kernel.batch_omp_columns(
                gram, dta_panel, col_sq[lo:hi], eps, max_atoms)
            for off, (support, coef, res_sq, it, ok) in enumerate(results):
                if strict and not ok:
                    raise _strict_failure(eps, l, res_sq,
                                          float(col_sq[lo + off]))
                builder.add_column(support, coef)
                total_iters += it
                converged_mask[lo + off] = ok
        c = builder.finalize()
    # FLOP model: DᵀA is 2·transform_nnz·N (= 2·M·N·L dense — a
    # factored dictionary's ledger counts its actual Σⱼ nnz(Sⱼ)); each
    # greedy iteration touches O(L·k) for the alpha update plus O(k²)
    # solves — dominated by 2·L per support entry per iteration,
    # approximated with the paper's O(M·N·L + nnz(C)) bound.
    flops = 2 * transform_nnz * n + 4 * l * total_iters + 2 * c.nnz
    stats = BatchOMPStats(columns=n,
                          converged_columns=int(converged_mask.sum()),
                          total_iterations=total_iters, flops=int(flops),
                          converged_mask=converged_mask)
    obs.merge_counters({"omp.columns_encoded": stats.columns,
                        "omp.converged_columns": stats.converged_columns,
                        "omp.iterations": total_iters,
                        "omp.flops": stats.flops})
    # Atom-usage hook (repro.online): one falsy-dict check when nothing
    # is watched; the parallel path records in its own parent instead
    # (this function returned early above), so each encode records once.
    record_encode(op if op is not None else d, c)
    return c, stats

"""Numerical building blocks: OMP sparse coding, incremental Cholesky,
pseudo-inverse and power iteration.

The OMP routines are the computational core of ExD (Alg. 1 step 3); the
Batch-OMP variant with progressive Cholesky updates is the one the paper
uses ("we use Batch-OMP based on Cholesky factorization updates [32]").
"""

from repro.linalg.cholesky import IncrementalCholesky
from repro.linalg.kernels import (
    OMPKernelBackend,
    available_backends,
    registered_backend_names,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.linalg.omp import (
    BatchOMPStats,
    OMPResult,
    omp_solve,
    batch_omp_solve,
    batch_omp_matrix,
)
from repro.linalg.parallel_omp import (
    GRAM_CACHE,
    GramCache,
    cached_gram,
    parallel_batch_omp_matrix,
    parallel_least_squares,
    resolve_workers,
)
from repro.linalg.pseudo_inverse import pseudo_inverse, least_squares_coefficients
from repro.linalg.power_iteration import power_iteration, top_eigenpairs
from repro.linalg.norms import frobenius_norm, relative_frobenius_error

__all__ = [
    "IncrementalCholesky",
    "OMPKernelBackend",
    "available_backends",
    "registered_backend_names",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "BatchOMPStats",
    "OMPResult",
    "omp_solve",
    "batch_omp_solve",
    "batch_omp_matrix",
    "GRAM_CACHE",
    "GramCache",
    "cached_gram",
    "parallel_batch_omp_matrix",
    "parallel_least_squares",
    "resolve_workers",
    "pseudo_inverse",
    "least_squares_coefficients",
    "power_iteration",
    "top_eigenpairs",
    "frobenius_norm",
    "relative_frobenius_error",
]

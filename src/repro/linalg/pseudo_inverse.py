"""Pseudo-inverse and dense least-squares coefficient computation.

Subspace-sampling baselines (RCSS, oASIS) form their coefficient matrix
as ``C = D⁺ A`` with ``D⁺ = (DᵀD)⁻¹Dᵀ`` (paper Sec. V-C footnote), which
yields *dense* coefficients — the contrast that motivates ExD's sparse
coding.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.errors import ValidationError


def pseudo_inverse(d, *, rcond: float = 1e-12) -> np.ndarray:
    """Moore–Penrose pseudo-inverse of a tall (or square) dictionary.

    Uses the normal-equations form when ``DᵀD`` is well conditioned
    (cheaper, matches the paper's footnote) and falls back to SVD-based
    ``pinv`` otherwise.
    """
    d = np.asarray(d, dtype=np.float64)
    if d.ndim != 2:
        raise ValidationError(f"dictionary must be 2-D, got {d.ndim}-D")
    gram = d.T @ d
    try:
        cho = sla.cho_factor(gram, check_finite=False)
        ident = np.eye(gram.shape[0])
        inv = sla.cho_solve(cho, ident, check_finite=False)
        if not np.all(np.isfinite(inv)):
            raise np.linalg.LinAlgError("non-finite Cholesky solve")
        return inv @ d.T
    except (np.linalg.LinAlgError, sla.LinAlgError):
        return np.linalg.pinv(d, rcond=rcond)


def least_squares_coefficients(d, a) -> np.ndarray:
    """Dense coefficients ``C = argmin_C ‖A − DC‖_F`` (one lstsq call)."""
    d = np.asarray(d, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    if d.ndim != 2 or a.ndim != 2 or d.shape[0] != a.shape[0]:
        raise ValidationError(f"incompatible shapes: D{d.shape}, A{a.shape}")
    coef, *_ = np.linalg.lstsq(d, a, rcond=None)
    return coef

"""Incremental (progressive) Cholesky factorisation.

Batch-OMP grows the Gram submatrix ``G[I, I]`` by one row/column per
selected atom.  Refactorising from scratch each iteration costs
``O(k³)`` per step; the progressive update below costs ``O(k²)`` —
append ``w = L⁻¹ g`` and the new diagonal ``sqrt(g_kk − wᵀw)``.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from repro.errors import ValidationError


class IncrementalCholesky:
    """Lower-triangular factor of a growing SPD matrix.

    Example
    -------
    >>> import numpy as np
    >>> g = np.array([[4.0, 2.0], [2.0, 3.0]])
    >>> chol = IncrementalCholesky(capacity=2)
    >>> chol.append(g[0, :0], g[0, 0])
    True
    >>> chol.append(g[1, :1], g[1, 1])
    True
    >>> np.allclose(chol.factor @ chol.factor.T, g)
    True
    """

    def __init__(self, capacity: int = 16, *, pivot_tol: float = 1e-12) -> None:
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self._l = np.zeros((capacity, capacity))
        self.size = 0
        self.pivot_tol = float(pivot_tol)

    @property
    def factor(self) -> np.ndarray:
        """The current k×k lower-triangular factor (a view)."""
        return self._l[:self.size, :self.size]

    def _grow(self) -> None:
        if self.size == self._l.shape[0]:
            bigger = np.zeros((2 * self._l.shape[0],) * 2)
            bigger[:self.size, :self.size] = self.factor
            self._l = bigger

    def append(self, cross: np.ndarray, diag: float) -> bool:
        """Extend the factorised matrix by one row ``[cross, diag]``.

        Returns False (and leaves the factor unchanged) when the new row
        is numerically dependent on the existing ones — the caller should
        then reject the corresponding atom.
        """
        cross = np.asarray(cross, dtype=np.float64)
        if cross.shape != (self.size,):
            raise ValidationError(
                f"cross must have shape ({self.size},), got {cross.shape}")
        self._grow()
        k = self.size
        if k == 0:
            if diag <= self.pivot_tol:
                return False
            self._l[0, 0] = np.sqrt(diag)
            self.size = 1
            return True
        w = solve_triangular(self.factor, cross, lower=True,
                             check_finite=False)
        pivot_sq = float(diag) - float(w @ w)
        if pivot_sq <= self.pivot_tol:
            return False
        self._l[k, :k] = w
        self._l[k, k] = np.sqrt(pivot_sq)
        self.size = k + 1
        return True

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``(L Lᵀ) x = b`` for the factorised matrix."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.size,):
            raise ValidationError(
                f"b must have shape ({self.size},), got {b.shape}")
        y = solve_triangular(self.factor, b, lower=True, check_finite=False)
        return solve_triangular(self.factor.T, y, lower=False,
                                check_finite=False)

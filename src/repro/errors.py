"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by the library derive from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors (``TypeError`` etc. are still raised for
misuse that static checking would catch).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (shape, dtype, range, ...)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative routine failed to satisfy its stopping criterion.

    Attributes
    ----------
    iterations:
        Number of iterations executed before giving up.
    residual:
        Last observed residual / error measure (``None`` when not
        meaningful for the failing routine).
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class KernelError(ReproError, ValueError):
    """An OMP kernel backend is unknown, unavailable or misconfigured.

    Raised by :mod:`repro.linalg.kernels` when resolving a backend name
    (``REPRO_OMP_BACKEND``, CLI ``--backend`` or an explicit ``backend=``
    argument) fails — an unregistered name, or a registered backend whose
    dependency (numba, cupy) is not importable.
    """


class DictionaryError(ReproError, RuntimeError):
    """The sampled dictionary cannot satisfy the requested tolerance.

    Raised e.g. when OMP exhausts every atom of ``D`` and the residual of
    some column still exceeds ``eps * ||a_i||`` (the paper's ``L < L_min``
    regime, Sec. VII).
    """


class MPIEmulatorError(ReproError, RuntimeError):
    """Generic failure inside the MPI emulator runtime."""


class DeadlockError(MPIEmulatorError):
    """The emulator detected that every live rank is blocked."""


class RankFailedError(MPIEmulatorError):
    """A rank program raised; carries the original exception per rank.

    Attributes
    ----------
    failures:
        Mapping ``rank -> exception`` for every rank that raised.
    """

    def __init__(self, failures: dict[int, BaseException]) -> None:
        ranks = ", ".join(str(r) for r in sorted(failures))
        super().__init__(f"rank program failed on rank(s) {ranks}: "
                         f"{next(iter(failures.values()))!r}")
        self.failures = dict(failures)


class PlatformError(ReproError, RuntimeError):
    """Invalid platform description or cost-model query."""


class TuningError(ReproError, RuntimeError):
    """The ExD tuner could not produce a feasible dictionary size."""


class CheckpointError(ReproError, RuntimeError):
    """A streaming-encode checkpoint cannot be created or resumed.

    Raised when a checkpoint directory holds state that conflicts with
    the requested run (different store contents, different ExD
    parameters, or a fresh run pointed at a populated directory without
    ``resume=True``).
    """

"""Low-latency ExD encode service (see :mod:`repro.serve.app`).

The package splits the daemon into three testable layers:

* :mod:`repro.serve.protocol` — wire schemas and :class:`ServeError`;
* :mod:`repro.serve.registry` — versioned multi-tenant dictionary
  store with warm Gram caches and atomic default hot-swap;
* :mod:`repro.serve.batcher` — the async micro-batcher that coalesces
  concurrent single-column encodes into shared-``G`` Batch-OMP calls;
* :mod:`repro.serve.app` — the stdlib asyncio HTTP front.
"""

from repro.serve.app import ServeApp
from repro.serve.batcher import MAX_BATCH_LIMIT, MicroBatcher
from repro.serve.protocol import (
    EncodeRequest,
    EncodeResult,
    ServeError,
    parse_encode_request,
    parse_vector,
)
from repro.serve.registry import DictionaryRegistry, Generation

__all__ = [
    "MAX_BATCH_LIMIT",
    "DictionaryRegistry",
    "EncodeRequest",
    "EncodeResult",
    "Generation",
    "MicroBatcher",
    "ServeApp",
    "ServeError",
    "parse_encode_request",
    "parse_vector",
]

"""The long-lived encode service: asyncio HTTP/1.1 on stdlib only.

No web framework ships in the reproduction's dependency set, so the
app speaks a deliberately small slice of HTTP/1.1 over
``asyncio.start_server``: request line + headers + ``Content-Length``
bodies, JSON in / JSON out, keep-alive connections.  That slice is all
the service needs and keeps the whole daemon dependency-free.

Endpoints
---------
``GET  /healthz``                liveness + uptime + queue depth
``GET  /v1/dictionaries``        tenants, generations, defaults
``POST /v1/dictionaries``        load a transform as a new generation
``POST /v1/dictionaries/default``  atomic default hot-swap
``POST /v1/encode``              sparse-code one column (micro-batched)
``POST /v1/reconstruct``         ``D[:, support] @ coefficients``
``POST /v1/pca``                 top-k eigenvalues via the transform
``GET  /v1/metrics``             unified RunReport + serving meta

Backpressure and deadlines are the batcher's (429 + ``Retry-After``,
504); every other failure maps through
:class:`~repro.serve.protocol.ServeError`.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from repro import observability as obs
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import ServeError, parse_encode_request, parse_vector
from repro.serve.registry import DictionaryRegistry

__all__ = ["ServeApp"]

MAX_BODY_BYTES = 64 * 2**20
MAX_HEADER_BYTES = 64 * 2**10

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class ServeApp:
    """One serving daemon: registry + micro-batcher + HTTP front."""

    def __init__(self, registry: DictionaryRegistry | None = None, *,
                 batcher: MicroBatcher | None = None,
                 default_tenant: str = "default",
                 observe: bool = True,
                 **batcher_kwargs) -> None:
        self.observe = observe
        self.registry = registry if registry is not None \
            else DictionaryRegistry()
        self.batcher = batcher if batcher is not None \
            else MicroBatcher(self.registry, **batcher_kwargs)
        self.default_tenant = default_tenant
        self.started_at = time.time()
        self.maintenance = None  # MaintenanceLoop, via attach_maintenance
        self._server: asyncio.AbstractServer | None = None
        self._routes = {
            ("GET", "/healthz"): self._healthz,
            ("GET", "/v1/dictionaries"): self._dictionaries,
            ("POST", "/v1/dictionaries"): self._load_dictionary,
            ("POST", "/v1/dictionaries/default"): self._swap_default,
            ("POST", "/v1/encode"): self._encode,
            ("POST", "/v1/reconstruct"): self._reconstruct,
            ("POST", "/v1/pca"): self._pca,
            ("GET", "/v1/metrics"): self._metrics,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Start the batcher and the listener; returns ``(host, port)``.

        Switches the observability layer on (unless ``observe=False``)
        so the serving counters behind ``GET /v1/metrics`` accumulate
        for the daemon's lifetime.
        """
        if self.observe:
            obs.enable()
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        sock = self._server.sockets[0].getsockname()
        self.started_at = time.time()
        return sock[0], sock[1]

    async def stop(self) -> None:
        """Stop accepting, halt maintenance, drain the batcher."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.maintenance is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.maintenance.stop)
        await self.batcher.stop()

    def attach_maintenance(self, loop, *, start: bool = True):
        """Attach a :class:`~repro.online.serve_loop.MaintenanceLoop`.

        The loop's drift status and atom-usage summaries appear under
        ``meta.maintenance`` in ``GET /v1/metrics``; it is stopped with
        the app.  ``start=False`` attaches without starting the thread
        (tests drive ``run_once`` directly).
        """
        self.maintenance = loop
        if start:
            loop.start()
        return loop

    async def run_forever(self, host: str, port: int) -> None:
        """CLI entry: start and serve until cancelled."""
        await self.start(host, port)
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload, extra = await self._route(method, path, body)
                self._write_response(writer, status, payload, extra,
                                     keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            raise
        if len(head) > MAX_HEADER_BYTES:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    def _write_response(self, writer, status: int, payload: dict,
                        extra_headers: dict, keep_alive: bool) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        headers += [f"{k}: {v}" for k, v in extra_headers.items()]
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1")
                     + body)

    async def _route(self, method: str, path: str, body: bytes):
        handler = self._routes.get((method, path))
        if handler is None:
            known_paths = {p for _m, p in self._routes}
            status = 405 if path in known_paths else 404
            return status, {"error": f"no route {method} {path}"}, {}
        parsed: dict = {}
        if body:
            try:
                parsed = json.loads(body)
            except json.JSONDecodeError as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}, {}
        try:
            with obs.span(f"serve.http{path.replace('/', '.')}"):
                payload = await handler(parsed)
            return 200, payload, {}
        except ServeError as exc:
            extra = {}
            if exc.retry_after is not None:
                extra["Retry-After"] = f"{max(exc.retry_after, 0):.0f}"
            obs.inc(f"serve.errors.{exc.status}")
            return exc.status, {"error": exc.message}, extra
        except Exception as exc:  # noqa: BLE001 - keep the daemon alive
            obs.inc("serve.errors.500")
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    async def _healthz(self, _body: dict) -> dict:
        return {
            "status": "ok",
            "uptime_s": time.time() - self.started_at,
            "tenants": self.registry.tenants(),
            "queue_depth": self.batcher.queue_depth,
        }

    async def _dictionaries(self, _body: dict) -> dict:
        return self.registry.describe()

    async def _load_dictionary(self, body: dict) -> dict:
        tenant = body.get("tenant", self.default_tenant)
        path = body.get("path")
        if not isinstance(path, str) or not path:
            raise ServeError(400, "path must be a transform .npz path")
        set_default = bool(body.get("set_default", True))
        from repro.errors import ValidationError
        try:
            gen = await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.registry.load(
                    tenant, path, set_default=set_default))
        except ValidationError as exc:
            raise ServeError(400, f"cannot load {path}: {exc}") from exc
        return {"tenant": tenant, "generation": gen.number,
                "default": set_default}

    async def _swap_default(self, body: dict) -> dict:
        tenant = body.get("tenant", self.default_tenant)
        generation = body.get("generation")
        if isinstance(generation, bool) or not isinstance(generation, int):
            raise ServeError(400, "generation must be an integer")
        gen = self.registry.set_default(tenant, generation)
        return {"tenant": tenant, "default_generation": gen.number}

    async def _encode(self, body: dict) -> dict:
        request = parse_encode_request(
            body, default_tenant=self.default_tenant)
        result = await self.batcher.submit(request)
        return result.to_dict()

    async def _reconstruct(self, body: dict) -> dict:
        if not isinstance(body, dict):
            raise ServeError(400, "request body must be a JSON object")
        tenant = body.get("tenant", self.default_tenant)
        gen = self.registry.resolve(tenant, body.get("generation"))
        atoms = gen.transform.dictionary.atoms
        support = body.get("support")
        if not isinstance(support, (list, tuple)):
            raise ServeError(400, "support must be a JSON array of ints")
        try:
            idx = np.asarray(support, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise ServeError(400, f"support is not integer: {exc}") from exc
        if idx.ndim != 1 or (idx.size and (idx.min() < 0
                                           or idx.max() >= atoms.shape[1])):
            raise ServeError(
                400, f"support indices must lie in [0, {atoms.shape[1]})")
        coef = parse_vector(body.get("coefficients"), "coefficients",
                            m=int(idx.size))
        column = atoms[:, idx] @ coef if idx.size \
            else np.zeros(atoms.shape[0])
        obs.inc(f"serve.tenant.{tenant}.reconstructs")
        return {"column": [float(v) for v in column],
                "generation": gen.number}

    async def _pca(self, body: dict) -> dict:
        if not isinstance(body, dict):
            raise ServeError(400, "request body must be a JSON object")
        tenant = body.get("tenant", self.default_tenant)
        gen = self.registry.resolve(tenant, body.get("generation"))
        k = body.get("k", 5)
        if isinstance(k, bool) or not isinstance(k, int) or k < 1:
            raise ServeError(400, f"k must be a positive integer, got {k!r}")
        transform = gen.transform
        if k > transform.n:
            raise ServeError(
                400, f"k={k} exceeds the transform's N={transform.n}")

        def _run():
            from repro.core.gram import TransformedGramOperator
            from repro.linalg.power_iteration import top_eigenpairs
            op = TransformedGramOperator(transform)
            values, _vectors, iterations = top_eigenpairs(
                op, transform.n, k)
            return values, iterations, op.flops

        with obs.span("serve.pca"):
            values, iterations, flops = \
                await asyncio.get_running_loop().run_in_executor(None, _run)
        obs.inc(f"serve.tenant.{tenant}.pca_requests")
        obs.inc(f"serve.tenant.{tenant}.pca_flops", flops)
        return {"eigenvalues": [float(v) for v in values],
                "iterations": int(iterations),
                "generation": gen.number,
                "k": int(len(values))}

    async def _metrics(self, _body: dict) -> dict:
        meta = {
            "uptime_s": time.time() - self.started_at,
            "tenants": len(self.registry.tenants()),
            "queue_depth": self.batcher.queue_depth,
            "batches": self.batcher.batches,
            "coalesced_batches": self.batcher.coalesced_batches,
            "encoded_columns": self.batcher.encoded_columns,
            "max_batch": self.batcher.max_batch,
            "max_wait_ms": self.batcher.max_wait * 1e3,
            "backend": self.batcher.backend,
        }
        if self.maintenance is not None:
            meta["maintenance"] = self.maintenance.status()
        report = obs.collect_report(command="serve", meta=meta)
        return report.to_dict()

"""Versioned multi-tenant dictionary registry with atomic hot-swap.

The serving premise of the paper (and of RankMap) is that a fitted
``(D, C)`` is a long-lived asset: the evolve path keeps producing new
dictionary *generations* while old ones are still answering traffic.
The registry holds, per tenant, every loaded generation plus a default
pointer; :meth:`DictionaryRegistry.set_default` switches the pointer
under the registry lock, so in-flight requests that resolved the old
generation finish against it while new requests atomically see the new
one — no request ever observes a half-swapped dictionary.

Loading a generation warms its Gram matrix through the process-wide
:data:`~repro.linalg.parallel_omp.GRAM_CACHE` (the registry keeps the
transform — and hence the keyed atoms array — alive, so the cache entry
survives for the generation's lifetime).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro import observability as obs
from repro.core.io import load_transform
from repro.core.transform import TransformedData
from repro.serve.protocol import ServeError

__all__ = ["DictionaryRegistry", "Generation"]


@dataclass
class Generation:
    """One loaded transform generation of a tenant."""

    number: int
    transform: TransformedData
    source: str
    loaded_at: float

    def describe(self) -> dict:
        t = self.transform
        tnnz = int(t.dictionary.transform_nnz)
        return {
            "generation": self.number,
            "source": self.source,
            "loaded_at": self.loaded_at,
            "m": t.m,
            "l": t.l,
            "n": t.n,
            "nnz": t.nnz,
            "alpha": t.alpha,
            "eps": t.eps,
            "method": t.method,
            "transform_nnz": tnnz,
            "relative_complexity": tnnz / (t.m * t.l),
        }


@dataclass
class _Tenant:
    generations: dict[int, Generation] = field(default_factory=dict)
    default: int = 0
    next_number: int = 1


class DictionaryRegistry:
    """Thread-safe tenant → generations → default-pointer store."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._tenants: dict[str, _Tenant] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_transform(self, tenant: str, transform: TransformedData,
                      *, source: str = "inline",
                      set_default: bool = True) -> Generation:
        """Register a fitted transform as the tenant's next generation.

        Warms ``G = DᵀD`` in the Gram cache before the generation
        becomes visible, so the first request against it never pays the
        ``O(M·L²)`` product on the request path.
        """
        if not tenant:
            raise ServeError(400, "tenant must be a non-empty string")
        # Warm before visibility.  Routing through the operator keeps
        # the cache keyed on the materialised atoms for any dictionary
        # kind — a factored generation warms (and serves) the same
        # cache entry the encode path will hit.
        transform.dictionary.gram()
        with self._lock:
            entry = self._tenants.setdefault(tenant, _Tenant())
            number = entry.next_number
            entry.next_number += 1
            gen = Generation(number=number, transform=transform,
                             source=source, loaded_at=time.time())
            entry.generations[number] = gen
            if set_default or entry.default == 0:
                entry.default = number
        obs.inc("serve.generations_loaded")
        return gen

    def load(self, tenant: str, path, *,
             set_default: bool = True) -> Generation:
        """Load a ``save_transform`` archive as a new generation."""
        transform = load_transform(path)
        return self.add_transform(tenant, transform, source=str(path),
                                  set_default=set_default)

    def set_default(self, tenant: str, generation: int) -> Generation:
        """Atomically repoint the tenant's default generation."""
        with self._lock:
            gen = self._resolve_locked(tenant, generation)
            self._tenants[tenant].default = gen.number
        obs.inc("serve.hot_swaps")
        return gen

    def retire(self, tenant: str, generation: int) -> None:
        """Drop a non-default generation (its Gram cache entry dies
        with the transform once no in-flight request references it)."""
        with self._lock:
            entry = self._tenants.get(tenant)
            if entry is None or generation not in entry.generations:
                raise ServeError(
                    404, f"unknown generation {generation} for tenant "
                         f"{tenant!r}")
            if entry.default == generation:
                raise ServeError(
                    409, f"generation {generation} is the default for "
                         f"tenant {tenant!r}; swap the default first")
            del entry.generations[generation]

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _resolve_locked(self, tenant: str,
                        generation: int | None) -> Generation:
        entry = self._tenants.get(tenant)
        if entry is None or not entry.generations:
            raise ServeError(404, f"unknown tenant {tenant!r}")
        number = entry.default if generation is None else generation
        gen = entry.generations.get(number)
        if gen is None:
            raise ServeError(
                404, f"unknown generation {generation} for tenant "
                     f"{tenant!r}")
        return gen

    def resolve(self, tenant: str,
                generation: int | None = None) -> Generation:
        """The tenant's requested (or default) generation."""
        with self._lock:
            return self._resolve_locked(tenant, generation)

    def tenants(self) -> list[str]:
        """Registered tenant names, sorted."""
        with self._lock:
            return sorted(self._tenants)

    def describe(self) -> dict:
        """JSON document for ``GET /v1/dictionaries``."""
        with self._lock:
            return {
                "tenants": {
                    name: {
                        "default_generation": entry.default,
                        "generations": [
                            entry.generations[k].describe()
                            for k in sorted(entry.generations)
                        ],
                    }
                    for name, entry in sorted(self._tenants.items())
                },
            }

"""Async micro-batcher: coalesce single-column encodes into Batch-OMP.

Batch-OMP's economics (paper Fig. 2) come from amortising ``G = DᵀD``
and the ``DᵀA`` product across many columns — economics a naive
request-per-call server throws away.  The batcher restores them on the
request path:

* requests enqueue into a bounded queue; a full queue answers **429**
  with ``Retry-After`` (backpressure) instead of building unbounded
  latency;
* a collector loop drains the queue, waiting at most ``max_wait_ms``
  after the first request and closing a batch at ``max_batch`` columns;
* each batch groups by ``(tenant, generation, eps, max_atoms)``, stacks
  the columns and runs **one**
  :func:`~repro.linalg.parallel_omp.encode_columns` call per group on
  an executor thread (numpy releases the GIL, so the event loop keeps
  accepting work while a batch encodes — arrivals during an encode
  coalesce naturally into the next, larger batch);
* requests whose deadline passed while queued are answered **504**
  without being encoded — enforced both at dispatch (cheap skip) and on
  the awaiting side (``asyncio.wait_for``), so the 504 arrives at the
  deadline even when the collector is stuck behind a slow batch.

Because the encode panels are fixed-width (see
:data:`~repro.linalg.omp.ENCODE_BLOCK_COLS`), a column's coefficients
are bit-identical however it was batched — coalescing is purely a
latency/throughput decision, never a correctness one.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.core.cost_model import CostModel
from repro.linalg.kernels import resolve_backend
from repro.linalg.omp import ENCODE_BLOCK_COLS
from repro.linalg.parallel_omp import encode_columns
from repro.serve.protocol import EncodeRequest, EncodeResult, ServeError
from repro.serve.registry import DictionaryRegistry, Generation

__all__ = ["MicroBatcher"]

#: Ceiling on columns per coalesced Batch-OMP call.  One fixed-width
#: compute panel (ENCODE_BLOCK_COLS) is the natural upper bound: beyond
#: it a second GEMM panel starts and the marginal amortisation is zero.
MAX_BATCH_LIMIT = ENCODE_BLOCK_COLS


def _max_batch_limit() -> int:
    """The panel width, read at construction time so the clamp tracks
    :data:`~repro.linalg.omp.ENCODE_BLOCK_COLS` rather than a copy."""
    from repro.linalg import omp

    return int(omp.ENCODE_BLOCK_COLS)


@dataclass
class _Pending:
    """One queued encode request plus its completion future."""

    request: EncodeRequest
    generation: Generation
    eps: float
    max_atoms: int | None
    deadline: float          # event-loop clock
    enqueued: float
    future: asyncio.Future


class MicroBatcher:
    """Coalesce concurrent encode requests into shared-``G`` batches.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.registry.DictionaryRegistry` requests
        resolve against.  Resolution happens at submit time: requests
        already queued keep the generation they resolved, requests
        arriving after a hot-swap see the new default.
    max_batch:
        Largest coalesced batch (clamped to one compute panel).
    max_wait_ms:
        How long the collector holds an open batch for stragglers after
        the first request arrives.  ``0`` disables coalescing.
    max_queue:
        Bound on queued requests; beyond it submissions fail with 429.
    timeout_ms:
        Default per-request deadline (a request's own ``timeout_ms``
        overrides it).
    cost_model:
        Optional :class:`~repro.core.cost_model.CostModel` for per-
        tenant Eq. 2/3 cost accounting (folded into the metrics
        registry and served at ``GET /v1/metrics``).
    backend:
        OMP kernel backend for batch encodes (see
        :mod:`repro.linalg.kernels`).  Resolved eagerly so a
        misconfigured server fails at construction, not on the first
        request.  ``None`` keeps the process default.
    """

    def __init__(self, registry: DictionaryRegistry, *,
                 max_batch: int = 64, max_wait_ms: float = 2.0,
                 max_queue: int = 512, timeout_ms: float = 1000.0,
                 cost_model: CostModel | None = None,
                 workers: int | None = None,
                 backend: str | None = None) -> None:
        if max_batch < 1:
            raise ServeError(400, f"max_batch must be >= 1, got {max_batch}")
        self.registry = registry
        self.max_batch = min(int(max_batch), _max_batch_limit())
        self.max_wait = max(float(max_wait_ms), 0.0) / 1e3
        self.max_queue = int(max_queue)
        self.timeout = max(float(timeout_ms), 1.0) / 1e3
        self.cost_model = cost_model
        self.workers = workers
        self.backend = resolve_backend(backend).name
        self._queue: asyncio.Queue[_Pending] | None = None
        self._task: asyncio.Task | None = None
        # one encode thread: keeps batches strictly ordered and lets
        # the unbatched configuration exhibit honest queueing delay
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-encode")
        self.batches = 0
        self.coalesced_batches = 0
        self.encoded_columns = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the queue and start the collector loop."""
        if self._task is not None:
            return
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Cancel the collector and fail whatever is still queued.

        Also drops the queue reference so late :meth:`submit` calls get
        an immediate 503 instead of enqueuing into a queue nothing will
        ever drain (a hang bounded only by the caller's own timeout).
        """
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None
        while self._queue is not None and not self._queue.empty():
            pending = self._queue.get_nowait()
            if not pending.future.done():
                pending.future.set_exception(
                    ServeError(503, "server shutting down"))
        self._queue = None
        self._executor.shutdown(wait=False)

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting to be batched."""
        return 0 if self._queue is None else self._queue.qsize()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(self, request: EncodeRequest) -> EncodeResult:
        """Enqueue one request and await its sparse code.

        Raises :class:`ServeError` — 404 (unknown tenant/generation),
        400 (shape mismatch), 429 (queue full), 504 (deadline).
        """
        if self._queue is None:
            raise ServeError(503, "batcher is not running")
        generation = self.registry.resolve(request.tenant,
                                           request.generation)
        transform = generation.transform
        if request.column.size != transform.m:
            raise ServeError(
                400, f"column has {request.column.size} entries, tenant "
                     f"{request.tenant!r} dictionary has M={transform.m}")
        eps = transform.eps if request.eps is None else request.eps
        timeout = (self.timeout if request.timeout_ms is None
                   else request.timeout_ms / 1e3)
        loop = asyncio.get_running_loop()
        pending = _Pending(
            request=request, generation=generation, eps=eps,
            max_atoms=request.max_atoms,
            deadline=loop.time() + timeout, enqueued=loop.time(),
            future=loop.create_future())
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            obs.inc("serve.rejected_full")
            raise ServeError(
                429, f"encode queue is full ({self.max_queue} waiting); "
                     f"retry later",
                retry_after=max(self.timeout, 2 * self.max_wait)) from None
        obs.inc("serve.requests")
        # Enforce the deadline on the awaiting side too: the dispatch-
        # time check only fires when the collector reaches the request,
        # so a request stuck behind a slow batch would otherwise wait
        # arbitrarily long past its deadline.  ``wait_for`` cancels the
        # future on timeout, which the collector's ``future.done()``
        # guards treat as "skip".
        try:
            return await asyncio.wait_for(pending.future, timeout)
        except asyncio.TimeoutError:
            obs.inc("serve.deadline_exceeded")
            raise ServeError(
                504, "request deadline exceeded while queued") from None

    # ------------------------------------------------------------------
    # the collector loop
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            close_at = loop.time() + self.max_wait
            while len(batch) < self.max_batch:
                remaining = close_at - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            await self._dispatch(batch, loop)

    async def _dispatch(self, batch: list[_Pending], loop) -> None:
        now = loop.time()
        live: dict[tuple, list[_Pending]] = {}
        for pending in batch:
            if pending.future.done():
                continue
            if now > pending.deadline:
                obs.inc("serve.deadline_exceeded")
                pending.future.set_exception(ServeError(
                    504, "request deadline exceeded while queued"))
                continue
            key = (pending.request.tenant, pending.generation.number,
                   pending.eps, pending.max_atoms)
            live.setdefault(key, []).append(pending)
        for group in live.values():
            await self._encode_group(group, loop)

    async def _encode_group(self, group: list[_Pending], loop) -> None:
        generation = group[0].generation
        eps = group[0].eps
        max_atoms = group[0].max_atoms
        columns = np.stack([p.request.column for p in group], axis=1)
        try:
            with obs.span("serve.batch_encode"):
                results, stats = await loop.run_in_executor(
                    self._executor, self._encode, generation, columns,
                    eps, max_atoms)
        except ServeError as exc:
            for pending in group:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        except Exception as exc:  # noqa: BLE001 - fail the requests, not the loop
            obs.inc("serve.encode_errors")
            for pending in group:
                if not pending.future.done():
                    pending.future.set_exception(ServeError(
                        500, f"encode failed: {exc}"))
            return
        self.batches += 1
        self.encoded_columns += len(group)
        if len(group) > 1:
            self.coalesced_batches += 1
            obs.inc("serve.coalesced_batches")
        obs.inc("serve.batches")
        obs.observe("serve.batch_size", len(group))
        self._account(group, results, loop)
        for pending, (support, coef, converged) in zip(group, results):
            if pending.future.done():
                continue
            pending.future.set_result(EncodeResult(
                support=support, coefficients=coef, converged=converged,
                generation=generation.number, batch_size=len(group),
                eps=eps))

    def _encode(self, generation: Generation, columns: np.ndarray,
                eps: float, max_atoms: int | None):
        """Executor-side body: one shared-``G`` Batch-OMP call.

        The Gram matrix travels through the process-wide
        :data:`~repro.linalg.parallel_omp.GRAM_CACHE` (warmed at load,
        keyed on the generation's atoms array), so the request path
        never recomputes ``DᵀD``.  The dictionary is passed as an
        operator: a factored generation computes the ``DᵀA`` precompute
        through its factor chain at ``O(transform_nnz)`` per column.
        """
        return encode_columns(generation.transform.dictionary,
                              columns, eps, max_atoms=max_atoms,
                              workers=self.workers, backend=self.backend)

    def _account(self, group: list[_Pending], results, loop) -> None:
        """Per-tenant request metrics + Eq. 2/3 cost accounting.

        Every served column is billed one Gram-update at the
        generation's ``(M, L)`` and the column's own ``nnz`` — the
        Eq. 2 (time) and Eq. 3 (energy) FLOP-equivalents a downstream
        learning iteration over this column would cost on the
        configured platform.  Totals land in per-tenant counters and
        surface at ``GET /v1/metrics``.
        """
        now = loop.time()
        for pending, (support, _coef, _ok) in zip(group, results):
            tenant = pending.request.tenant
            t = pending.generation.transform
            obs.inc(f"serve.tenant.{tenant}.columns")
            obs.inc(f"serve.tenant.{tenant}.nnz", int(support.size))
            obs.observe("serve.latency_ms", (now - pending.enqueued) * 1e3)
            if self.cost_model is not None:
                obs.inc(f"serve.tenant.{tenant}.eq2_flops",
                        self.cost_model.time(t.m, t.l, int(support.size)))
                obs.inc(f"serve.tenant.{tenant}.eq3_flops",
                        self.cost_model.energy(t.m, t.l, int(support.size)))

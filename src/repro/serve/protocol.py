"""Wire protocol of the encode service: JSON schemas + typed errors.

Everything the HTTP layer and the micro-batcher exchange is defined
here so both sides (and the tests) share one vocabulary:

* :class:`ServeError` — an HTTP-mappable failure (status code, message,
  optional ``Retry-After``), raised anywhere on the request path and
  rendered as a JSON error body by the app;
* :class:`EncodeRequest` / :class:`EncodeResult` — the parsed form of
  ``POST /v1/encode`` and its answer;
* parsing helpers that validate JSON payloads into numpy-ready values
  with precise 400-level messages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EncodeRequest",
    "EncodeResult",
    "ServeError",
    "parse_encode_request",
    "parse_vector",
]


class ServeError(Exception):
    """Request-path failure carrying its HTTP rendering.

    Attributes
    ----------
    status:
        HTTP status code (400 bad request, 404 unknown tenant or
        generation, 429 queue full, 504 deadline exceeded, ...).
    message:
        Human-readable cause, returned as ``{"error": message}``.
    retry_after:
        Seconds for a ``Retry-After`` header (backpressure responses).
    """

    def __init__(self, status: int, message: str,
                 *, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.retry_after = retry_after


def parse_vector(payload, name: str, *, m: int | None = None) -> np.ndarray:
    """Validate a JSON array as a finite float64 vector (optionally of
    length ``m``)."""
    if not isinstance(payload, (list, tuple)):
        raise ServeError(400, f"{name} must be a JSON array of numbers")
    try:
        vec = np.asarray(payload, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ServeError(
            400, f"{name} is not numeric: {exc}") from exc
    if vec.ndim != 1:
        raise ServeError(400, f"{name} must be 1-D, got shape {vec.shape}")
    if not np.all(np.isfinite(vec)):
        raise ServeError(400, f"{name} contains NaN or infinite entries")
    if m is not None and vec.size != m:
        raise ServeError(
            400, f"{name} has {vec.size} entries, expected {m}")
    return vec


@dataclass
class EncodeRequest:
    """One parsed ``POST /v1/encode`` body.

    ``eps`` defaults to the target generation's fit-time tolerance;
    ``generation`` defaults to the tenant's current default, resolved
    when the request is accepted — a hot-swap applies to every request
    submitted after it.
    """

    tenant: str
    column: np.ndarray
    generation: int | None = None
    eps: float | None = None
    max_atoms: int | None = None
    timeout_ms: float | None = None


@dataclass
class EncodeResult:
    """Sparse code of one served column, plus batching provenance."""

    support: np.ndarray
    coefficients: np.ndarray
    converged: bool
    generation: int
    batch_size: int
    eps: float

    def to_dict(self) -> dict:
        return {
            "support": [int(i) for i in self.support],
            "coefficients": [float(v) for v in self.coefficients],
            "nnz": int(self.support.size),
            "converged": bool(self.converged),
            "generation": int(self.generation),
            "batch_size": int(self.batch_size),
            "eps": float(self.eps),
        }


def _opt_number(body: dict, key: str, kind, *, positive: bool = True):
    value = body.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeError(400, f"{key} must be a number")
    value = kind(value)
    if positive and value <= 0:
        raise ServeError(400, f"{key} must be positive, got {value}")
    return value


def parse_encode_request(body, *, default_tenant: str | None = None) \
        -> EncodeRequest:
    """Validate a JSON body into an :class:`EncodeRequest`."""
    if not isinstance(body, dict):
        raise ServeError(400, "request body must be a JSON object")
    tenant = body.get("tenant", default_tenant)
    if not isinstance(tenant, str) or not tenant:
        raise ServeError(400, "tenant must be a non-empty string")
    column = parse_vector(body.get("column"), "column")
    if column.size == 0:
        raise ServeError(400, "column must be non-empty")
    generation = body.get("generation")
    if generation is not None:
        if isinstance(generation, bool) or not isinstance(generation, int):
            raise ServeError(400, "generation must be an integer")
        if generation < 1:
            raise ServeError(
                400, f"generation must be >= 1, got {generation}")
    eps = _opt_number(body, "eps", float)
    if eps is not None and eps >= 1.0:
        raise ServeError(400, f"eps must be in (0, 1), got {eps}")
    max_atoms = _opt_number(body, "max_atoms", int)
    timeout_ms = _opt_number(body, "timeout_ms", float)
    return EncodeRequest(tenant=tenant, column=column,
                         generation=generation, eps=eps,
                         max_atoms=max_atoms, timeout_ms=timeout_ms)

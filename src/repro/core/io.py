"""Persistence for transforms.

The ExD projection is a one-time preprocessing investment amortised over
many learning runs (Sec. IV) — so a production deployment stores it.
``save_transform``/``load_transform`` round-trip a
:class:`~repro.core.transform.TransformedData` through a single ``.npz``
file (dictionary atoms, CSC arrays, ε, provenance).

Format history: v1 stores a dense dictionary (``atoms``/``atom_indices``
arrays).  v2 adds factored dictionaries
(:class:`~repro.core.fastdict.FastDict` and the evolve-path block
operator): the header grows a ``dictionary_kind`` field and the factor
arrays are stored under their :func:`~repro.core.fastdict
.operator_to_arrays` keys.  Dense transforms still write v1, so older
readers keep working on anything they could have produced.
"""

from __future__ import annotations

import json
import warnings
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.core.dictionary import Dictionary
from repro.core.transform import TransformedData
from repro.errors import ValidationError
from repro.sparse.csc import CSCMatrix

_FORMAT_VERSION = 2
#: Version written for dense-dictionary transforms (back-compatible).
_DENSE_FORMAT_VERSION = 1


def save_transform(transform: TransformedData, path) -> Path:
    """Write a transform to ``path`` (``.npz`` appended if missing).

    Only JSON-scalar meta values (str/int/float/bool/None) survive the
    round-trip; anything else is dropped with a warning naming the keys.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {k: v for k, v in transform.meta.items()
            if isinstance(v, (str, int, float, bool, type(None)))}
    dropped = sorted(set(transform.meta) - set(meta))
    if dropped:
        warnings.warn(
            f"save_transform: dropping non-scalar meta keys {dropped}; "
            f"only str/int/float/bool/None values are persisted",
            stacklevel=2)
    dictionary = transform.dictionary
    if isinstance(dictionary, Dictionary):
        version = _DENSE_FORMAT_VERSION
        dict_arrays = {"atoms": dictionary.atoms,
                       "atom_indices": dictionary.indices}
        kind = None
    else:
        from repro.core.fastdict import operator_to_arrays

        version = _FORMAT_VERSION
        kind, dict_arrays = operator_to_arrays(dictionary)
    header = {
        "format_version": version,
        "eps": transform.eps,
        "method": transform.method,
        "meta": meta,
    }
    if kind is not None:
        header["dictionary_kind"] = kind
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"),
                             dtype=np.uint8),
        c_data=transform.coefficients.data,
        c_indices=transform.coefficients.indices,
        c_indptr=transform.coefficients.indptr,
        c_shape=np.asarray(transform.coefficients.shape, dtype=np.int64),
        **dict_arrays,
    )
    return path


def load_transform(path) -> TransformedData:
    """Read a transform previously written by :func:`save_transform`.

    Raises
    ------
    ValidationError
        When the file is missing, truncated/corrupt, not a transform
        archive, or written by a newer format version of this library.
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such transform file: {path}")
    try:
        with np.load(path) as blob:
            try:
                header = json.loads(bytes(blob["header"]).decode("utf-8"))
            except (KeyError, json.JSONDecodeError,
                    UnicodeDecodeError) as exc:
                raise ValidationError(
                    f"{path} is not a repro transform file") from exc
            version = header.get("format_version")
            if isinstance(version, int) and version > _FORMAT_VERSION:
                raise ValidationError(
                    f"{path} uses transform format {version}, newer than "
                    f"the latest supported ({_FORMAT_VERSION}); upgrade "
                    f"repro to read it")
            if version not in (_DENSE_FORMAT_VERSION, _FORMAT_VERSION):
                raise ValidationError(
                    f"unsupported transform format {version!r} in {path}")
            kind = header.get("dictionary_kind")
            if kind is not None:
                from repro.core.fastdict import operator_from_arrays

                reserved = {"header", "c_data", "c_indices", "c_indptr",
                            "c_shape"}
                arrays = {k: blob[k] for k in blob.files
                          if k not in reserved}
                dictionary = operator_from_arrays(str(kind), arrays)
            else:
                dictionary = Dictionary(blob["atoms"],
                                        blob["atom_indices"])
            c = CSCMatrix(blob["c_data"], blob["c_indices"],
                          blob["c_indptr"], tuple(blob["c_shape"]))
            return TransformedData(dictionary=dictionary, coefficients=c,
                                   eps=float(header["eps"]),
                                   method=str(header["method"]),
                                   meta=dict(header.get("meta", {})))
    except ValidationError:
        raise
    # np.load raises ValueError/OSError on non-npz bytes, BadZipFile on a
    # damaged archive; truncated members surface as zlib/EOF errors when
    # the arrays are materialised.
    except (KeyError, ValueError, OSError, EOFError,
            zipfile.BadZipFile, zlib.error) as exc:
        raise ValidationError(
            f"{path} is corrupt or truncated "
            f"({type(exc).__name__}: {exc})") from exc

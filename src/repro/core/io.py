"""Persistence for transforms.

The ExD projection is a one-time preprocessing investment amortised over
many learning runs (Sec. IV) — so a production deployment stores it.
``save_transform``/``load_transform`` round-trip a
:class:`~repro.core.transform.TransformedData` through a single ``.npz``
file (dictionary atoms, CSC arrays, ε, provenance).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.dictionary import Dictionary
from repro.core.transform import TransformedData
from repro.errors import ValidationError
from repro.sparse.csc import CSCMatrix

_FORMAT_VERSION = 1


def save_transform(transform: TransformedData, path) -> Path:
    """Write a transform to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {k: v for k, v in transform.meta.items()
            if isinstance(v, (str, int, float, bool, type(None)))}
    header = {
        "format_version": _FORMAT_VERSION,
        "eps": transform.eps,
        "method": transform.method,
        "meta": meta,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"),
                             dtype=np.uint8),
        atoms=transform.dictionary.atoms,
        atom_indices=transform.dictionary.indices,
        c_data=transform.coefficients.data,
        c_indices=transform.coefficients.indices,
        c_indptr=transform.coefficients.indptr,
        c_shape=np.asarray(transform.coefficients.shape, dtype=np.int64),
    )
    return path


def load_transform(path) -> TransformedData:
    """Read a transform previously written by :func:`save_transform`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such transform file: {path}")
    with np.load(path) as blob:
        try:
            header = json.loads(bytes(blob["header"]).decode("utf-8"))
        except (KeyError, json.JSONDecodeError) as exc:
            raise ValidationError(
                f"{path} is not a repro transform file") from exc
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValidationError(
                f"unsupported transform format "
                f"{header.get('format_version')!r} in {path}")
        dictionary = Dictionary(blob["atoms"], blob["atom_indices"])
        c = CSCMatrix(blob["c_data"], blob["c_indices"], blob["c_indptr"],
                      tuple(blob["c_shape"]))
        return TransformedData(dictionary=dictionary, coefficients=c,
                               eps=float(header["eps"]),
                               method=str(header["method"]),
                               meta=dict(header.get("meta", {})))

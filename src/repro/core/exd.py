"""Algorithm 1 — the ExD projection.

Given a (column-)normalised data matrix ``A``, a tolerance ``ε`` and a
dictionary size ``L``:

0. rank 0 draws a random index set ``I`` of size ``L`` and broadcasts it;
1. every rank loads ``D = A[:, I]``;
2. every rank loads its column block ``A_i``;
3. every rank sparse-codes its block with (Batch-)OMP.

:func:`exd_transform` is the serial entry point (also used per-rank);
:func:`exd_transform_distributed` executes the SPMD version on the MPI
emulator, charging the virtual clocks with the Batch-OMP FLOP model so
preprocessing overhead (Table II) can be simulated per platform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.core.dictionary import Dictionary, sample_dictionary
from repro.core.transform import TransformedData
from repro.errors import ValidationError
from repro.linalg.omp import batch_omp_matrix, blocked_column_norms
from repro.sparse.csc import CSCMatrix
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_fraction, check_matrix, check_positive_int


@dataclass
class ExDStats:
    """Bookkeeping from one ExD run."""

    columns: int
    converged_columns: int
    omp_iterations: int
    flops: int

    @property
    def all_converged(self) -> bool:
        """Whether every column met the ε criterion (L ≥ L_min)."""
        return self.converged_columns == self.columns


def normalize_columns(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Scale columns to unit ℓ2 norm; zero columns stay zero.

    Returns the normalised matrix and the original norms.  The norms use
    the encode engine's aligned blocked reduction
    (:func:`repro.linalg.omp.blocked_column_norms`), so normalising a
    whole matrix and normalising any aligned column block of it produce
    bit-identical values — the invariant the out-of-core streaming
    encoder relies on.
    """
    norms = blocked_column_norms(np.asarray(a, dtype=np.float64))
    safe = np.where(norms > 0, norms, 1.0)
    return a / safe, norms


def exd_transform(a, size: int, eps: float, *, seed=None,
                  normalize: bool = True, max_atoms: int | None = None,
                  strict: bool = False,
                  dictionary: Dictionary | None = None,
                  workers: int | None = None,
                  memory_budget_bytes: int | None = None,
                  block_width: int | None = None,
                  checkpoint_dir=None, resume: bool = False,
                  fast_dict=None) \
        -> tuple[TransformedData, ExDStats]:
    """Serial ExD: sample ``D`` and sparse-code every column of ``A``.

    Parameters
    ----------
    a:
        Data matrix ``(M, N)`` — a dense array, or a
        :class:`~repro.store.ColumnStore` to encode out-of-core (the
        result is bit-identical to passing ``store.as_array()``).
    size:
        Dictionary size L (the tunable redundancy knob).
    eps:
        Relative transformation error tolerance of Eq. 1.
    normalize:
        Column-normalise ``A`` before coding (Algorithm 1's input is the
        normalised matrix); coefficients are rescaled afterwards so the
        returned transform approximates the *original* ``A``.
    dictionary:
        Reuse a pre-sampled dictionary instead of sampling one (used by
        the SPMD driver, where rank 0's sample is shared).  May be any
        ``DictOperator`` — passing a fitted
        :class:`~repro.core.fastdict.FastDict` encodes through the
        factor chain.
    fast_dict:
        Learn a sparse-factor fast transform of the sampled dictionary
        before encoding (see :mod:`repro.core.fastdict`): a float is
        the relative-complexity budget ``RC``, or pass a full
        :class:`~repro.core.fastdict.FastDictConfig`.  Ignored when an
        explicit already-factored ``dictionary`` is supplied; the fit
        is deterministic given ``seed``.
    strict:
        Propagate :class:`~repro.errors.DictionaryError` when a column
        cannot meet ``eps`` (the ``L < L_min`` regime); otherwise the
        result carries ``stats.all_converged == False``.
    workers:
        Column-parallel Batch-OMP worker count (``None`` = serial,
        ``-1`` = all cores); the coefficients are bit-identical to the
        serial encode for every value.
    memory_budget_bytes, block_width, checkpoint_dir, resume:
        Out-of-core knobs, only meaningful for a
        :class:`~repro.store.ColumnStore` input (see
        :class:`~repro.store.StreamingEncoder`); passing any of them
        with an in-memory array raises
        :class:`~repro.errors.ValidationError`.
    """
    from repro.store.column_store import is_column_store

    if is_column_store(a):
        from repro.store.streaming import StreamingEncoder

        encoder = StreamingEncoder(
            a, size, eps, seed=seed, normalize=normalize,
            max_atoms=max_atoms, strict=strict, workers=workers,
            dictionary=dictionary,
            memory_budget_bytes=memory_budget_bytes,
            block_width=block_width, checkpoint_dir=checkpoint_dir,
            fast_dict=fast_dict)
        transform, stats, _report = encoder.run(resume=resume)
        return transform, stats
    if (memory_budget_bytes is not None or block_width is not None
            or checkpoint_dir is not None or resume):
        raise ValidationError(
            "memory_budget_bytes/block_width/checkpoint_dir/resume "
            "require a ColumnStore input; in-memory arrays are encoded "
            "in one pass")
    a = check_matrix(a, "A")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    with obs.span("exd.transform"):
        if dictionary is None:
            size = check_positive_int(size, "size")
            rng = as_generator(seed)
        if normalize:
            a_work, norms = normalize_columns(a)
        else:
            a_work, norms = a, None
        if dictionary is None:
            dictionary = sample_dictionary(a_work, size, seed=rng)
        elif dictionary.m != a.shape[0]:
            raise ValidationError(
                f"dictionary rows {dictionary.m} != data rows {a.shape[0]}")
        if fast_dict is not None and isinstance(dictionary, Dictionary):
            from repro.core.fastdict import as_fast_dict_config, fit_fast_dict
            cfg = as_fast_dict_config(fast_dict)
            dictionary = fit_fast_dict(dictionary, rc=cfg.rc,
                                       levels=cfg.levels, iters=cfg.iters,
                                       seed=derive_seed(seed, 11))

        c, omp_stats = batch_omp_matrix(dictionary, a_work, eps,
                                        max_atoms=max_atoms, strict=strict,
                                        workers=workers)
        if normalize:
            c = _rescale_columns(c, norms)
    stats = ExDStats(columns=omp_stats.columns,
                     converged_columns=omp_stats.converged_columns,
                     omp_iterations=omp_stats.total_iterations,
                     flops=omp_stats.flops)
    meta = {"normalized": normalize}
    if not isinstance(dictionary, Dictionary):
        meta["fastdict_rc"] = float(dictionary.relative_complexity)
        meta["fastdict_residual"] = float(getattr(dictionary, "residual",
                                                  0.0))
    transform = TransformedData(dictionary=dictionary, coefficients=c,
                                eps=eps, method="exd", meta=meta)
    obs.inc("exd.transforms")
    obs.observe("exd.alpha", transform.alpha)
    return transform, stats


def _rescale_columns(c: CSCMatrix, norms: np.ndarray) -> CSCMatrix:
    """Multiply column ``j`` of ``c`` by ``norms[j]`` (undo normalisation)."""
    scale = norms[c.col_indices_expanded()]
    return CSCMatrix(c.data * scale, c.indices, c.indptr, c.shape,
                     check=False)


def _exd_rank_program(comm, a, size, eps, seed, normalize, max_atoms,
                      workers=None):
    """SPMD body of Algorithm 1 (one rank)."""
    rank, p = comm.Get_rank(), comm.Get_size()
    m, n = a.shape
    # Defence in depth for direct run_spmd callers: the public driver
    # validates this before launching ranks (fast fail, no rank thread).
    if size > n:
        raise ValidationError(
            f"cannot sample {size} distinct dictionary columns from "
            f"N={n} data columns")
    if normalize:
        a_work, norms = normalize_columns(a)
    else:
        a_work, norms = a, None
    # Step 0: rank 0 samples the index set and broadcasts it.
    if rank == 0:
        rng = as_generator(seed)
        idx = np.sort(rng.choice(n, size=size, replace=False))
    else:
        idx = None
    idx = comm.bcast(idx, root=0)
    # Step 1-2: every rank loads D and its column block.
    dictionary = Dictionary(a_work[:, idx].copy(), idx)
    lo = rank * n // p
    hi = (rank + 1) * n // p
    block = a_work[:, lo:hi]
    # Step 3: local Batch-OMP; FLOPs billed to this rank's clock.
    c_local, stats = batch_omp_matrix(dictionary, block, eps,
                                      max_atoms=max_atoms, workers=workers)
    comm.charge_flops(stats.flops)
    if normalize:
        c_local = _rescale_columns(c_local, norms[lo:hi])
    # Assemble the full C on rank 0 (evaluation convenience; the
    # execution phase keeps C distributed).
    blocks = comm.gather((c_local, stats), root=0)
    if rank != 0:
        return None
    full = blocks[0][0]
    for blk, _ in blocks[1:]:
        full = full.hstack(blk)
    agg = ExDStats(
        columns=sum(s.columns for _, s in blocks),
        converged_columns=sum(s.converged_columns for _, s in blocks),
        omp_iterations=sum(s.total_iterations for _, s in blocks),
        flops=sum(s.flops for _, s in blocks),
    )
    return TransformedData(dictionary=dictionary, coefficients=full,
                           eps=eps, method="exd",
                           meta={"normalized": normalize}), agg


def _exd_store_rank_program(comm, store, size, eps, seed, normalize,
                            max_atoms, workers, block_width):
    """SPMD body of Algorithm 1 over a ColumnStore (one rank).

    Rank 0 samples the dictionary from disk (panel-aligned, the
    streaming encoder's replay) and broadcasts it; column blocks are
    then partitioned by the store's deterministic ``shard_plan``, so
    each rank streams (roughly) only its chunk partition from disk.
    Block boundaries, normalisation and the per-block Batch-OMP calls
    mirror :class:`~repro.store.StreamingEncoder` exactly, which makes
    the assembled transform bit-identical to the serial streaming
    encode — on either MPI backend.
    """
    from repro.store.streaming import (
        DEFAULT_STREAM_BLOCK,
        sample_store_dictionary,
    )

    rank, p = comm.Get_rank(), comm.Get_size()
    m, n = store.shape
    if rank == 0:
        d = sample_store_dictionary(store, size, seed=seed,
                                    normalize=normalize)
        payload = (d.atoms, d.indices)
    else:
        payload = None
    atoms, idx = comm.bcast(payload, root=0)
    dictionary = Dictionary(atoms, idx)
    gram = dictionary.gram()

    width = block_width if block_width is not None else DEFAULT_STREAM_BLOCK
    bounds = [(lo, min(lo + width, n)) for lo in range(0, n, width)]
    plan = store.shard_plan(p)
    # A block belongs to the rank whose shard contains its first column
    # (shards are contiguous and cover [0, N), so this is total and
    # agreed on by every rank without communication).
    mine = [i for i, (lo, _hi) in enumerate(bounds)
            if plan[rank][0] <= lo < plan[rank][1]]

    local = []
    flops = 0
    for index in mine:
        lo, hi = bounds[index]
        raw = store.read_range(lo, hi)
        if normalize:
            work, norms = normalize_columns(raw)
        else:
            work, norms = raw, None
        c_blk, st = batch_omp_matrix(dictionary, work, eps,
                                     max_atoms=max_atoms, gram=gram,
                                     workers=workers)
        if normalize:
            c_blk = _rescale_columns(c_blk, norms)
        flops += st.flops
        local.append((index, c_blk.data, c_blk.indices, c_blk.indptr,
                      st.total_iterations, st.converged_columns))
    comm.charge_flops(flops)

    gathered = comm.gather((local, flops), root=0)
    if rank != 0:
        return None
    pieces = sorted((blk for part, _f in gathered for blk in part),
                    key=lambda b: b[0])
    l = dictionary.size
    full = CSCMatrix.hstack_all(
        CSCMatrix(data, indices, indptr, (l, indptr.size - 1), check=False)
        for _i, data, indices, indptr, _it, _cv in pieces)
    agg = ExDStats(
        columns=n,
        converged_columns=sum(b[5] for b in pieces),
        omp_iterations=sum(b[4] for b in pieces),
        flops=sum(f for _part, f in gathered),
    )
    return TransformedData(dictionary=dictionary, coefficients=full,
                           eps=eps, method="exd",
                           meta={"normalized": normalize}), agg


def exd_transform_distributed(a, size: int, eps: float, cluster, *,
                              seed=None, normalize: bool = True,
                              max_atoms: int | None = None,
                              workers: int | None = None,
                              block_width: int | None = None,
                              backend: str | None = None):
    """Run Algorithm 1 on the emulated cluster.

    Returns ``(transform, stats, spmd_result)`` where ``spmd_result``
    carries the simulated preprocessing time/energy for the platform.
    ``workers`` parallelises each rank's local Batch-OMP encode (the
    per-rank coefficients — and hence the assembled transform — are
    bit-identical to the serial encode).

    ``a`` may be a :class:`~repro.store.ColumnStore`: each rank then
    streams only its ``shard_plan`` partition of the chunks from disk
    (``block_width`` tunes the read granularity, as in the streaming
    encoder) and the result is bit-identical to the serial streaming
    encode.  ``backend`` selects the SPMD execution backend
    (``"threads"``/``"processes"``/``"auto"``; see
    :func:`repro.mpi.run_spmd`).
    """
    from repro.mpi.runtime import run_spmd
    from repro.store.column_store import is_column_store, matrix_shape

    if is_column_store(a):
        eps = check_fraction(eps, "eps", inclusive_low=True)
        size = check_positive_int(size, "size")
        n = matrix_shape(a)[1]
        if size > n:
            raise ValidationError(
                f"cannot sample {size} distinct dictionary columns from "
                f"N={n} data columns")
        with obs.span("exd.transform_distributed"):
            result = run_spmd(0, _exd_store_rank_program, a, size, eps,
                              seed, normalize, max_atoms, workers,
                              block_width, cluster=cluster,
                              backend=backend)
        transform, stats = result.returns[0]
        return transform, stats, result
    if block_width is not None:
        raise ValidationError(
            "block_width requires a ColumnStore input; in-memory arrays "
            "are encoded in one pass per rank")
    a = check_matrix(a, "A")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    size = check_positive_int(size, "size")
    if size > a.shape[1]:
        # Fail fast with the serial path's clear error instead of dying
        # inside a rank thread with an opaque RankFailedError.
        raise ValidationError(
            f"cannot sample {size} distinct dictionary columns from "
            f"N={a.shape[1]} data columns")
    with obs.span("exd.transform_distributed"):
        result = run_spmd(0, _exd_rank_program, a, size, eps, seed,
                          normalize, max_atoms, workers, cluster=cluster,
                          backend=backend)
    transform, stats = result.returns[0]
    return transform, stats, result
